
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnumap/io/fasta.cpp" "src/CMakeFiles/gnumap_io.dir/gnumap/io/fasta.cpp.o" "gcc" "src/CMakeFiles/gnumap_io.dir/gnumap/io/fasta.cpp.o.d"
  "/root/repo/src/gnumap/io/fastq.cpp" "src/CMakeFiles/gnumap_io.dir/gnumap/io/fastq.cpp.o" "gcc" "src/CMakeFiles/gnumap_io.dir/gnumap/io/fastq.cpp.o.d"
  "/root/repo/src/gnumap/io/gzip_stream.cpp" "src/CMakeFiles/gnumap_io.dir/gnumap/io/gzip_stream.cpp.o" "gcc" "src/CMakeFiles/gnumap_io.dir/gnumap/io/gzip_stream.cpp.o.d"
  "/root/repo/src/gnumap/io/quality.cpp" "src/CMakeFiles/gnumap_io.dir/gnumap/io/quality.cpp.o" "gcc" "src/CMakeFiles/gnumap_io.dir/gnumap/io/quality.cpp.o.d"
  "/root/repo/src/gnumap/io/read_stream.cpp" "src/CMakeFiles/gnumap_io.dir/gnumap/io/read_stream.cpp.o" "gcc" "src/CMakeFiles/gnumap_io.dir/gnumap/io/read_stream.cpp.o.d"
  "/root/repo/src/gnumap/io/sam.cpp" "src/CMakeFiles/gnumap_io.dir/gnumap/io/sam.cpp.o" "gcc" "src/CMakeFiles/gnumap_io.dir/gnumap/io/sam.cpp.o.d"
  "/root/repo/src/gnumap/io/snp_catalog.cpp" "src/CMakeFiles/gnumap_io.dir/gnumap/io/snp_catalog.cpp.o" "gcc" "src/CMakeFiles/gnumap_io.dir/gnumap/io/snp_catalog.cpp.o.d"
  "/root/repo/src/gnumap/io/snp_writer.cpp" "src/CMakeFiles/gnumap_io.dir/gnumap/io/snp_writer.cpp.o" "gcc" "src/CMakeFiles/gnumap_io.dir/gnumap/io/snp_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gnumap_util.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_genome.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

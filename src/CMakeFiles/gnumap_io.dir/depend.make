# Empty dependencies file for gnumap_io.
# This may be replaced when dependencies are built.

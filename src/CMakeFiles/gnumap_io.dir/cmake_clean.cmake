file(REMOVE_RECURSE
  "CMakeFiles/gnumap_io.dir/gnumap/io/fasta.cpp.o"
  "CMakeFiles/gnumap_io.dir/gnumap/io/fasta.cpp.o.d"
  "CMakeFiles/gnumap_io.dir/gnumap/io/fastq.cpp.o"
  "CMakeFiles/gnumap_io.dir/gnumap/io/fastq.cpp.o.d"
  "CMakeFiles/gnumap_io.dir/gnumap/io/gzip_stream.cpp.o"
  "CMakeFiles/gnumap_io.dir/gnumap/io/gzip_stream.cpp.o.d"
  "CMakeFiles/gnumap_io.dir/gnumap/io/quality.cpp.o"
  "CMakeFiles/gnumap_io.dir/gnumap/io/quality.cpp.o.d"
  "CMakeFiles/gnumap_io.dir/gnumap/io/read_stream.cpp.o"
  "CMakeFiles/gnumap_io.dir/gnumap/io/read_stream.cpp.o.d"
  "CMakeFiles/gnumap_io.dir/gnumap/io/sam.cpp.o"
  "CMakeFiles/gnumap_io.dir/gnumap/io/sam.cpp.o.d"
  "CMakeFiles/gnumap_io.dir/gnumap/io/snp_catalog.cpp.o"
  "CMakeFiles/gnumap_io.dir/gnumap/io/snp_catalog.cpp.o.d"
  "CMakeFiles/gnumap_io.dir/gnumap/io/snp_writer.cpp.o"
  "CMakeFiles/gnumap_io.dir/gnumap/io/snp_writer.cpp.o.d"
  "libgnumap_io.a"
  "libgnumap_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgnumap_io.a"
)

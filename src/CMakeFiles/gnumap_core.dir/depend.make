# Empty dependencies file for gnumap_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgnumap_core.a"
)

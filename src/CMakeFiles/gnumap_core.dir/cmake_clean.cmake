file(REMOVE_RECURSE
  "CMakeFiles/gnumap_core.dir/gnumap/core/dist_modes.cpp.o"
  "CMakeFiles/gnumap_core.dir/gnumap/core/dist_modes.cpp.o.d"
  "CMakeFiles/gnumap_core.dir/gnumap/core/evaluation.cpp.o"
  "CMakeFiles/gnumap_core.dir/gnumap/core/evaluation.cpp.o.d"
  "CMakeFiles/gnumap_core.dir/gnumap/core/obs_bridge.cpp.o"
  "CMakeFiles/gnumap_core.dir/gnumap/core/obs_bridge.cpp.o.d"
  "CMakeFiles/gnumap_core.dir/gnumap/core/pipeline.cpp.o"
  "CMakeFiles/gnumap_core.dir/gnumap/core/pipeline.cpp.o.d"
  "CMakeFiles/gnumap_core.dir/gnumap/core/read_mapper.cpp.o"
  "CMakeFiles/gnumap_core.dir/gnumap/core/read_mapper.cpp.o.d"
  "CMakeFiles/gnumap_core.dir/gnumap/core/sam_export.cpp.o"
  "CMakeFiles/gnumap_core.dir/gnumap/core/sam_export.cpp.o.d"
  "CMakeFiles/gnumap_core.dir/gnumap/core/session.cpp.o"
  "CMakeFiles/gnumap_core.dir/gnumap/core/session.cpp.o.d"
  "CMakeFiles/gnumap_core.dir/gnumap/core/snp_caller.cpp.o"
  "CMakeFiles/gnumap_core.dir/gnumap/core/snp_caller.cpp.o.d"
  "libgnumap_core.a"
  "libgnumap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnumap/core/dist_modes.cpp" "src/CMakeFiles/gnumap_core.dir/gnumap/core/dist_modes.cpp.o" "gcc" "src/CMakeFiles/gnumap_core.dir/gnumap/core/dist_modes.cpp.o.d"
  "/root/repo/src/gnumap/core/evaluation.cpp" "src/CMakeFiles/gnumap_core.dir/gnumap/core/evaluation.cpp.o" "gcc" "src/CMakeFiles/gnumap_core.dir/gnumap/core/evaluation.cpp.o.d"
  "/root/repo/src/gnumap/core/obs_bridge.cpp" "src/CMakeFiles/gnumap_core.dir/gnumap/core/obs_bridge.cpp.o" "gcc" "src/CMakeFiles/gnumap_core.dir/gnumap/core/obs_bridge.cpp.o.d"
  "/root/repo/src/gnumap/core/pipeline.cpp" "src/CMakeFiles/gnumap_core.dir/gnumap/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/gnumap_core.dir/gnumap/core/pipeline.cpp.o.d"
  "/root/repo/src/gnumap/core/read_mapper.cpp" "src/CMakeFiles/gnumap_core.dir/gnumap/core/read_mapper.cpp.o" "gcc" "src/CMakeFiles/gnumap_core.dir/gnumap/core/read_mapper.cpp.o.d"
  "/root/repo/src/gnumap/core/sam_export.cpp" "src/CMakeFiles/gnumap_core.dir/gnumap/core/sam_export.cpp.o" "gcc" "src/CMakeFiles/gnumap_core.dir/gnumap/core/sam_export.cpp.o.d"
  "/root/repo/src/gnumap/core/session.cpp" "src/CMakeFiles/gnumap_core.dir/gnumap/core/session.cpp.o" "gcc" "src/CMakeFiles/gnumap_core.dir/gnumap/core/session.cpp.o.d"
  "/root/repo/src/gnumap/core/snp_caller.cpp" "src/CMakeFiles/gnumap_core.dir/gnumap/core/snp_caller.cpp.o" "gcc" "src/CMakeFiles/gnumap_core.dir/gnumap/core/snp_caller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gnumap_index.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_phmm.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_accum.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_stats.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_mpsim.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_io.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_obs.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_genome.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_fault.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

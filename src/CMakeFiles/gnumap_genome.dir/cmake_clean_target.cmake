file(REMOVE_RECURSE
  "libgnumap_genome.a"
)

# Empty dependencies file for gnumap_genome.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gnumap_genome.dir/gnumap/genome/align_ops.cpp.o"
  "CMakeFiles/gnumap_genome.dir/gnumap/genome/align_ops.cpp.o.d"
  "CMakeFiles/gnumap_genome.dir/gnumap/genome/genome.cpp.o"
  "CMakeFiles/gnumap_genome.dir/gnumap/genome/genome.cpp.o.d"
  "CMakeFiles/gnumap_genome.dir/gnumap/genome/partition.cpp.o"
  "CMakeFiles/gnumap_genome.dir/gnumap/genome/partition.cpp.o.d"
  "CMakeFiles/gnumap_genome.dir/gnumap/genome/sequence.cpp.o"
  "CMakeFiles/gnumap_genome.dir/gnumap/genome/sequence.cpp.o.d"
  "libgnumap_genome.a"
  "libgnumap_genome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_genome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

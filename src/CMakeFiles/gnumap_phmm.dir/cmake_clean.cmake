file(REMOVE_RECURSE
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/batched.cpp.o"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/batched.cpp.o.d"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/batched_kernels.cpp.o"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/batched_kernels.cpp.o.d"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/batched_kernels_avx2.cpp.o"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/batched_kernels_avx2.cpp.o.d"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/forward_backward.cpp.o"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/forward_backward.cpp.o.d"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/marginal.cpp.o"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/marginal.cpp.o.d"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/nw.cpp.o"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/nw.cpp.o.d"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/params.cpp.o"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/params.cpp.o.d"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/pwm.cpp.o"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/pwm.cpp.o.d"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/viterbi.cpp.o"
  "CMakeFiles/gnumap_phmm.dir/gnumap/phmm/viterbi.cpp.o.d"
  "libgnumap_phmm.a"
  "libgnumap_phmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_phmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnumap/phmm/batched.cpp" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/batched.cpp.o" "gcc" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/batched.cpp.o.d"
  "/root/repo/src/gnumap/phmm/batched_kernels.cpp" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/batched_kernels.cpp.o" "gcc" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/batched_kernels.cpp.o.d"
  "/root/repo/src/gnumap/phmm/batched_kernels_avx2.cpp" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/batched_kernels_avx2.cpp.o" "gcc" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/batched_kernels_avx2.cpp.o.d"
  "/root/repo/src/gnumap/phmm/forward_backward.cpp" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/forward_backward.cpp.o" "gcc" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/forward_backward.cpp.o.d"
  "/root/repo/src/gnumap/phmm/marginal.cpp" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/marginal.cpp.o" "gcc" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/marginal.cpp.o.d"
  "/root/repo/src/gnumap/phmm/nw.cpp" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/nw.cpp.o" "gcc" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/nw.cpp.o.d"
  "/root/repo/src/gnumap/phmm/params.cpp" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/params.cpp.o" "gcc" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/params.cpp.o.d"
  "/root/repo/src/gnumap/phmm/pwm.cpp" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/pwm.cpp.o" "gcc" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/pwm.cpp.o.d"
  "/root/repo/src/gnumap/phmm/viterbi.cpp" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/viterbi.cpp.o" "gcc" "src/CMakeFiles/gnumap_phmm.dir/gnumap/phmm/viterbi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gnumap_genome.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_io.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_obs.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

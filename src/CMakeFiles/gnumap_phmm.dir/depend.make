# Empty dependencies file for gnumap_phmm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgnumap_phmm.a"
)

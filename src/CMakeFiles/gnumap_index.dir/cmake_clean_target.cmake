file(REMOVE_RECURSE
  "libgnumap_index.a"
)

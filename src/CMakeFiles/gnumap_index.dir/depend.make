# Empty dependencies file for gnumap_index.
# This may be replaced when dependencies are built.

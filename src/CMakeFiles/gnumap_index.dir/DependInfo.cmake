
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnumap/index/hash_index.cpp" "src/CMakeFiles/gnumap_index.dir/gnumap/index/hash_index.cpp.o" "gcc" "src/CMakeFiles/gnumap_index.dir/gnumap/index/hash_index.cpp.o.d"
  "/root/repo/src/gnumap/index/kmer.cpp" "src/CMakeFiles/gnumap_index.dir/gnumap/index/kmer.cpp.o" "gcc" "src/CMakeFiles/gnumap_index.dir/gnumap/index/kmer.cpp.o.d"
  "/root/repo/src/gnumap/index/seeder.cpp" "src/CMakeFiles/gnumap_index.dir/gnumap/index/seeder.cpp.o" "gcc" "src/CMakeFiles/gnumap_index.dir/gnumap/index/seeder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gnumap_genome.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_io.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

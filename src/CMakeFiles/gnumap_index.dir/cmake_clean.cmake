file(REMOVE_RECURSE
  "CMakeFiles/gnumap_index.dir/gnumap/index/hash_index.cpp.o"
  "CMakeFiles/gnumap_index.dir/gnumap/index/hash_index.cpp.o.d"
  "CMakeFiles/gnumap_index.dir/gnumap/index/kmer.cpp.o"
  "CMakeFiles/gnumap_index.dir/gnumap/index/kmer.cpp.o.d"
  "CMakeFiles/gnumap_index.dir/gnumap/index/seeder.cpp.o"
  "CMakeFiles/gnumap_index.dir/gnumap/index/seeder.cpp.o.d"
  "libgnumap_index.a"
  "libgnumap_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

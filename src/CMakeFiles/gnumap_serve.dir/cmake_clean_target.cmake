file(REMOVE_RECURSE
  "libgnumap_serve.a"
)

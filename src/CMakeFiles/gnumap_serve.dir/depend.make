# Empty dependencies file for gnumap_serve.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gnumap_serve.dir/gnumap/serve/client.cpp.o"
  "CMakeFiles/gnumap_serve.dir/gnumap/serve/client.cpp.o.d"
  "CMakeFiles/gnumap_serve.dir/gnumap/serve/fault_shim.cpp.o"
  "CMakeFiles/gnumap_serve.dir/gnumap/serve/fault_shim.cpp.o.d"
  "CMakeFiles/gnumap_serve.dir/gnumap/serve/server.cpp.o"
  "CMakeFiles/gnumap_serve.dir/gnumap/serve/server.cpp.o.d"
  "CMakeFiles/gnumap_serve.dir/gnumap/serve/socket.cpp.o"
  "CMakeFiles/gnumap_serve.dir/gnumap/serve/socket.cpp.o.d"
  "CMakeFiles/gnumap_serve.dir/gnumap/serve/wire.cpp.o"
  "CMakeFiles/gnumap_serve.dir/gnumap/serve/wire.cpp.o.d"
  "libgnumap_serve.a"
  "libgnumap_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgnumap_accum.a"
)

# Empty dependencies file for gnumap_accum.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnumap/accum/accumulator.cpp" "src/CMakeFiles/gnumap_accum.dir/gnumap/accum/accumulator.cpp.o" "gcc" "src/CMakeFiles/gnumap_accum.dir/gnumap/accum/accumulator.cpp.o.d"
  "/root/repo/src/gnumap/accum/centdisc_accumulator.cpp" "src/CMakeFiles/gnumap_accum.dir/gnumap/accum/centdisc_accumulator.cpp.o" "gcc" "src/CMakeFiles/gnumap_accum.dir/gnumap/accum/centdisc_accumulator.cpp.o.d"
  "/root/repo/src/gnumap/accum/chardisc_accumulator.cpp" "src/CMakeFiles/gnumap_accum.dir/gnumap/accum/chardisc_accumulator.cpp.o" "gcc" "src/CMakeFiles/gnumap_accum.dir/gnumap/accum/chardisc_accumulator.cpp.o.d"
  "/root/repo/src/gnumap/accum/codebook.cpp" "src/CMakeFiles/gnumap_accum.dir/gnumap/accum/codebook.cpp.o" "gcc" "src/CMakeFiles/gnumap_accum.dir/gnumap/accum/codebook.cpp.o.d"
  "/root/repo/src/gnumap/accum/norm_accumulator.cpp" "src/CMakeFiles/gnumap_accum.dir/gnumap/accum/norm_accumulator.cpp.o" "gcc" "src/CMakeFiles/gnumap_accum.dir/gnumap/accum/norm_accumulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gnumap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

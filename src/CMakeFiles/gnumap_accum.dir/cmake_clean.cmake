file(REMOVE_RECURSE
  "CMakeFiles/gnumap_accum.dir/gnumap/accum/accumulator.cpp.o"
  "CMakeFiles/gnumap_accum.dir/gnumap/accum/accumulator.cpp.o.d"
  "CMakeFiles/gnumap_accum.dir/gnumap/accum/centdisc_accumulator.cpp.o"
  "CMakeFiles/gnumap_accum.dir/gnumap/accum/centdisc_accumulator.cpp.o.d"
  "CMakeFiles/gnumap_accum.dir/gnumap/accum/chardisc_accumulator.cpp.o"
  "CMakeFiles/gnumap_accum.dir/gnumap/accum/chardisc_accumulator.cpp.o.d"
  "CMakeFiles/gnumap_accum.dir/gnumap/accum/codebook.cpp.o"
  "CMakeFiles/gnumap_accum.dir/gnumap/accum/codebook.cpp.o.d"
  "CMakeFiles/gnumap_accum.dir/gnumap/accum/norm_accumulator.cpp.o"
  "CMakeFiles/gnumap_accum.dir/gnumap/accum/norm_accumulator.cpp.o.d"
  "libgnumap_accum.a"
  "libgnumap_accum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_accum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

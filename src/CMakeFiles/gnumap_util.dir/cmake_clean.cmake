file(REMOVE_RECURSE
  "CMakeFiles/gnumap_util.dir/gnumap/util/log.cpp.o"
  "CMakeFiles/gnumap_util.dir/gnumap/util/log.cpp.o.d"
  "CMakeFiles/gnumap_util.dir/gnumap/util/rng.cpp.o"
  "CMakeFiles/gnumap_util.dir/gnumap/util/rng.cpp.o.d"
  "CMakeFiles/gnumap_util.dir/gnumap/util/string_util.cpp.o"
  "CMakeFiles/gnumap_util.dir/gnumap/util/string_util.cpp.o.d"
  "CMakeFiles/gnumap_util.dir/gnumap/util/thread_pool.cpp.o"
  "CMakeFiles/gnumap_util.dir/gnumap/util/thread_pool.cpp.o.d"
  "libgnumap_util.a"
  "libgnumap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

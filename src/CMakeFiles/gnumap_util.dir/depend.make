# Empty dependencies file for gnumap_util.
# This may be replaced when dependencies are built.

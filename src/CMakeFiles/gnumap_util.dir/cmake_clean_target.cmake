file(REMOVE_RECURSE
  "libgnumap_util.a"
)

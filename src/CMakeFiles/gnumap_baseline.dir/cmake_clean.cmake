file(REMOVE_RECURSE
  "CMakeFiles/gnumap_baseline.dir/gnumap/baseline/maq_like.cpp.o"
  "CMakeFiles/gnumap_baseline.dir/gnumap/baseline/maq_like.cpp.o.d"
  "libgnumap_baseline.a"
  "libgnumap_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gnumap_baseline.
# This may be replaced when dependencies are built.

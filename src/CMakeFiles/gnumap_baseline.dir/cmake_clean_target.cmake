file(REMOVE_RECURSE
  "libgnumap_baseline.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/gnumap_mpsim.dir/gnumap/mpsim/communicator.cpp.o"
  "CMakeFiles/gnumap_mpsim.dir/gnumap/mpsim/communicator.cpp.o.d"
  "CMakeFiles/gnumap_mpsim.dir/gnumap/mpsim/cost_model.cpp.o"
  "CMakeFiles/gnumap_mpsim.dir/gnumap/mpsim/cost_model.cpp.o.d"
  "libgnumap_mpsim.a"
  "libgnumap_mpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_mpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgnumap_mpsim.a"
)

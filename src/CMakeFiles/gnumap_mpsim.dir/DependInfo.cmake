
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnumap/mpsim/communicator.cpp" "src/CMakeFiles/gnumap_mpsim.dir/gnumap/mpsim/communicator.cpp.o" "gcc" "src/CMakeFiles/gnumap_mpsim.dir/gnumap/mpsim/communicator.cpp.o.d"
  "/root/repo/src/gnumap/mpsim/cost_model.cpp" "src/CMakeFiles/gnumap_mpsim.dir/gnumap/mpsim/cost_model.cpp.o" "gcc" "src/CMakeFiles/gnumap_mpsim.dir/gnumap/mpsim/cost_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gnumap_util.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_obs.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for gnumap_mpsim.
# This may be replaced when dependencies are built.

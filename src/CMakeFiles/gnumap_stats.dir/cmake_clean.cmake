file(REMOVE_RECURSE
  "CMakeFiles/gnumap_stats.dir/gnumap/stats/chi2.cpp.o"
  "CMakeFiles/gnumap_stats.dir/gnumap/stats/chi2.cpp.o.d"
  "CMakeFiles/gnumap_stats.dir/gnumap/stats/fdr.cpp.o"
  "CMakeFiles/gnumap_stats.dir/gnumap/stats/fdr.cpp.o.d"
  "CMakeFiles/gnumap_stats.dir/gnumap/stats/lrt.cpp.o"
  "CMakeFiles/gnumap_stats.dir/gnumap/stats/lrt.cpp.o.d"
  "libgnumap_stats.a"
  "libgnumap_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

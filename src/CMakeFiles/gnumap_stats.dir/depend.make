# Empty dependencies file for gnumap_stats.
# This may be replaced when dependencies are built.

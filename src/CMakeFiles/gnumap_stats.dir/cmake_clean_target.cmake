file(REMOVE_RECURSE
  "libgnumap_stats.a"
)

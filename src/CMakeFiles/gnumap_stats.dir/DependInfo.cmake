
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnumap/stats/chi2.cpp" "src/CMakeFiles/gnumap_stats.dir/gnumap/stats/chi2.cpp.o" "gcc" "src/CMakeFiles/gnumap_stats.dir/gnumap/stats/chi2.cpp.o.d"
  "/root/repo/src/gnumap/stats/fdr.cpp" "src/CMakeFiles/gnumap_stats.dir/gnumap/stats/fdr.cpp.o" "gcc" "src/CMakeFiles/gnumap_stats.dir/gnumap/stats/fdr.cpp.o.d"
  "/root/repo/src/gnumap/stats/lrt.cpp" "src/CMakeFiles/gnumap_stats.dir/gnumap/stats/lrt.cpp.o" "gcc" "src/CMakeFiles/gnumap_stats.dir/gnumap/stats/lrt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gnumap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

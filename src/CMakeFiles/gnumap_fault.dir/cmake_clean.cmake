file(REMOVE_RECURSE
  "CMakeFiles/gnumap_fault.dir/gnumap/fault/fault.cpp.o"
  "CMakeFiles/gnumap_fault.dir/gnumap/fault/fault.cpp.o.d"
  "libgnumap_fault.a"
  "libgnumap_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

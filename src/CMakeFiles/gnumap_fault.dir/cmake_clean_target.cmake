file(REMOVE_RECURSE
  "libgnumap_fault.a"
)

# Empty dependencies file for gnumap_fault.
# This may be replaced when dependencies are built.

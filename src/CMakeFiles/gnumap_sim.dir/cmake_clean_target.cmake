file(REMOVE_RECURSE
  "libgnumap_sim.a"
)

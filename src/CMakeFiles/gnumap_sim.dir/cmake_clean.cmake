file(REMOVE_RECURSE
  "CMakeFiles/gnumap_sim.dir/gnumap/sim/catalog_gen.cpp.o"
  "CMakeFiles/gnumap_sim.dir/gnumap/sim/catalog_gen.cpp.o.d"
  "CMakeFiles/gnumap_sim.dir/gnumap/sim/mutator.cpp.o"
  "CMakeFiles/gnumap_sim.dir/gnumap/sim/mutator.cpp.o.d"
  "CMakeFiles/gnumap_sim.dir/gnumap/sim/read_sim.cpp.o"
  "CMakeFiles/gnumap_sim.dir/gnumap/sim/read_sim.cpp.o.d"
  "CMakeFiles/gnumap_sim.dir/gnumap/sim/reference_gen.cpp.o"
  "CMakeFiles/gnumap_sim.dir/gnumap/sim/reference_gen.cpp.o.d"
  "libgnumap_sim.a"
  "libgnumap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

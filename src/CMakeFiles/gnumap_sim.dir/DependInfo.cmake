
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnumap/sim/catalog_gen.cpp" "src/CMakeFiles/gnumap_sim.dir/gnumap/sim/catalog_gen.cpp.o" "gcc" "src/CMakeFiles/gnumap_sim.dir/gnumap/sim/catalog_gen.cpp.o.d"
  "/root/repo/src/gnumap/sim/mutator.cpp" "src/CMakeFiles/gnumap_sim.dir/gnumap/sim/mutator.cpp.o" "gcc" "src/CMakeFiles/gnumap_sim.dir/gnumap/sim/mutator.cpp.o.d"
  "/root/repo/src/gnumap/sim/read_sim.cpp" "src/CMakeFiles/gnumap_sim.dir/gnumap/sim/read_sim.cpp.o" "gcc" "src/CMakeFiles/gnumap_sim.dir/gnumap/sim/read_sim.cpp.o.d"
  "/root/repo/src/gnumap/sim/reference_gen.cpp" "src/CMakeFiles/gnumap_sim.dir/gnumap/sim/reference_gen.cpp.o" "gcc" "src/CMakeFiles/gnumap_sim.dir/gnumap/sim/reference_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gnumap_genome.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_io.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

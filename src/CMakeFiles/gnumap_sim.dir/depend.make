# Empty dependencies file for gnumap_sim.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnumap/obs/build_info.cpp" "src/CMakeFiles/gnumap_obs.dir/gnumap/obs/build_info.cpp.o" "gcc" "src/CMakeFiles/gnumap_obs.dir/gnumap/obs/build_info.cpp.o.d"
  "/root/repo/src/gnumap/obs/metrics.cpp" "src/CMakeFiles/gnumap_obs.dir/gnumap/obs/metrics.cpp.o" "gcc" "src/CMakeFiles/gnumap_obs.dir/gnumap/obs/metrics.cpp.o.d"
  "/root/repo/src/gnumap/obs/obs_cli.cpp" "src/CMakeFiles/gnumap_obs.dir/gnumap/obs/obs_cli.cpp.o" "gcc" "src/CMakeFiles/gnumap_obs.dir/gnumap/obs/obs_cli.cpp.o.d"
  "/root/repo/src/gnumap/obs/trace.cpp" "src/CMakeFiles/gnumap_obs.dir/gnumap/obs/trace.cpp.o" "gcc" "src/CMakeFiles/gnumap_obs.dir/gnumap/obs/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gnumap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

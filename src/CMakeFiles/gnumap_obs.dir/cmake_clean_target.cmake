file(REMOVE_RECURSE
  "libgnumap_obs.a"
)

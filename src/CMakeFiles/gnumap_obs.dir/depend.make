# Empty dependencies file for gnumap_obs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gnumap_obs.dir/gnumap/obs/build_info.cpp.o"
  "CMakeFiles/gnumap_obs.dir/gnumap/obs/build_info.cpp.o.d"
  "CMakeFiles/gnumap_obs.dir/gnumap/obs/metrics.cpp.o"
  "CMakeFiles/gnumap_obs.dir/gnumap/obs/metrics.cpp.o.d"
  "CMakeFiles/gnumap_obs.dir/gnumap/obs/obs_cli.cpp.o"
  "CMakeFiles/gnumap_obs.dir/gnumap/obs/obs_cli.cpp.o.d"
  "CMakeFiles/gnumap_obs.dir/gnumap/obs/trace.cpp.o"
  "CMakeFiles/gnumap_obs.dir/gnumap/obs/trace.cpp.o.d"
  "libgnumap_obs.a"
  "libgnumap_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "gnumap/fault/fault.hpp"

#include <random>

namespace gnumap {

FaultPlan& FaultPlan::crash(int rank, std::uint64_t at_step) {
  require(rank >= 0, "FaultPlan::crash: rank must be >= 0");
  events_.push_back({FaultKind::kCrash, rank, at_step, 0.0, 1.0});
  return *this;
}

FaultPlan& FaultPlan::drop(int rank, std::uint64_t at_send) {
  require(rank >= 0, "FaultPlan::drop: rank must be >= 0");
  events_.push_back({FaultKind::kDropMessage, rank, at_send, 0.0, 1.0});
  return *this;
}

FaultPlan& FaultPlan::delay(int rank, std::uint64_t at_send, double seconds) {
  require(rank >= 0, "FaultPlan::delay: rank must be >= 0");
  require(seconds >= 0.0, "FaultPlan::delay: seconds must be >= 0");
  events_.push_back({FaultKind::kDelayMessage, rank, at_send, seconds, 1.0});
  return *this;
}

FaultPlan& FaultPlan::slow(int rank, double factor) {
  require(rank >= 0, "FaultPlan::slow: rank must be >= 0");
  require(factor >= 1.0, "FaultPlan::slow: factor must be >= 1");
  events_.push_back({FaultKind::kSlowCompute, rank, 0, 0.0, factor});
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, int world_size,
                            const RandomFaultOptions& options) {
  require(world_size >= 1, "FaultPlan::random: world_size must be >= 1");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> rank_dist(0, world_size - 1);
  std::uniform_int_distribution<std::uint64_t> step_dist(
      1, options.max_step > 0 ? options.max_step : 1);
  std::uniform_int_distribution<std::uint64_t> send_dist(
      0, options.max_send > 0 ? options.max_send - 1 : 0);
  std::uniform_real_distribution<double> delay_dist(
      0.0, options.max_delay_seconds);

  FaultPlan plan;
  for (int i = 0; i < options.crashes; ++i) {
    plan.crash(rank_dist(rng), step_dist(rng));
  }
  for (int i = 0; i < options.drops; ++i) {
    plan.drop(rank_dist(rng), send_dist(rng));
  }
  for (int i = 0; i < options.delays; ++i) {
    plan.delay(rank_dist(rng), send_dist(rng), delay_dist(rng));
  }
  return plan;
}

FaultState::FaultState(FaultPlan plan)
    : events_(plan.events()), fired_(events_.size(), 0) {}

bool FaultState::should_crash(int rank, std::uint64_t step) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (fired_[i] || e.kind != FaultKind::kCrash) continue;
    // `>=` rather than `==`: after a restart the step sequence replays from
    // the checkpoint, so a rank may skip past the exact step it was doomed
    // at; an unfired crash still takes effect at the first opportunity.
    if (e.rank == rank && step >= e.at) {
      fired_[i] = 1;
      return true;
    }
  }
  return false;
}

FaultState::SendAction FaultState::on_send(int rank, std::uint64_t send_index,
                                           double* delay_seconds) {
  *delay_seconds = 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (fired_[i] || e.rank != rank || e.at != send_index) continue;
    if (e.kind == FaultKind::kDropMessage) {
      fired_[i] = 1;
      return SendAction::kDrop;
    }
    if (e.kind == FaultKind::kDelayMessage) {
      fired_[i] = 1;
      *delay_seconds = e.seconds;
      return SendAction::kDeliver;
    }
  }
  return SendAction::kDeliver;
}

double FaultState::compute_scale(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double scale = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kSlowCompute && e.rank == rank) {
      scale *= e.factor;
    }
  }
  return scale;
}

std::uint64_t FaultState::fired_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const char f : fired_) n += f != 0;
  return n;
}

}  // namespace gnumap

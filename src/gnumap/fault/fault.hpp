// Deterministic fault injection: the shared plan/state core.
//
// The paper ran GNUMAP over MPI on a 30-node cluster, where node failure and
// message loss are the dominant operational risk.  This module is the
// fault-injection core shared by every chaos surface in the repository: the
// mpsim runtime consumes FaultPlan/FaultState directly (rank crashes,
// message drops/delays, stragglers), and the serving stack's wire-level shim
// (serve/fault_shim.hpp) reuses the same seeded-plan / one-shot-event model
// for socket faults.  This module lets tests and benches script faults
// against the in-process substrate:
//
//  * crash a rank at a chosen step (a "step" is one communicator operation —
//    send/recv/collective — or one application-reported progress tick via
//    Communicator::step(), so crashes can land mid-compute between
//    checkpoints);
//  * drop an individual message (it is counted as sent — lost on the wire —
//    but never delivered, so the receiver times out);
//  * delay an individual message by a fixed interval (the sender's link
//    stalls before delivery);
//  * slow a rank's compute by a factor (scales the rank's attributed compute
//    time in the cost model, modeling a straggler node).
//
// Plans are either scripted event-by-event or generated from a seed
// (FaultPlan::random) for chaos testing.  A FaultState instance tracks which
// one-shot events (crash/drop/delay) have fired; it is shared across restart
// attempts so a consumed fault does not re-fire on the replacement rank —
// the transient-fault model under which checkpoint/restart converges.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "gnumap/util/error.hpp"

namespace gnumap {

/// Thrown by the communicator on the rank a kCrash event targets; derives
/// from CommError so recovery loops treat it like any other comm failure.
class InjectedCrash : public CommError {
 public:
  InjectedCrash(const std::string& what, int rank)
      : CommError(what), rank_(rank) {}
  int rank() const { return rank_; }

 private:
  int rank_;
};

enum class FaultKind : std::uint8_t {
  kCrash,        ///< rank throws InjectedCrash at step `at`
  kDropMessage,  ///< rank's `at`-th outgoing message is never delivered
  kDelayMessage, ///< rank's `at`-th outgoing message is delayed by `seconds`
  kSlowCompute,  ///< rank's attributed compute time is scaled by `factor`
};

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  int rank = 0;          ///< the afflicted rank (sender, for message faults)
  std::uint64_t at = 0;  ///< step index (kCrash) or send index (drop/delay)
  double seconds = 0.0;  ///< kDelayMessage: delivery delay
  double factor = 1.0;   ///< kSlowCompute: compute-time multiplier
};

/// Options for FaultPlan::random.
struct RandomFaultOptions {
  int crashes = 1;
  int drops = 1;
  int delays = 1;
  std::uint64_t max_step = 64;     ///< crash steps drawn from [1, max_step]
  std::uint64_t max_send = 24;     ///< drop/delay send indices from [0, max_send)
  double max_delay_seconds = 5e-3;
};

/// An ordered list of fault events; immutable once handed to a FaultState.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& crash(int rank, std::uint64_t at_step);
  FaultPlan& drop(int rank, std::uint64_t at_send);
  FaultPlan& delay(int rank, std::uint64_t at_send, double seconds);
  FaultPlan& slow(int rank, double factor);

  /// Deterministic chaos plan: same (seed, world_size, options) always
  /// yields the same events.
  static FaultPlan random(std::uint64_t seed, int world_size,
                          const RandomFaultOptions& options = {});

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

/// Runtime state of a plan: consults events and consumes one-shot ones.
/// Shared by every rank of a world and across restart attempts; all methods
/// are thread-safe.
class FaultState {
 public:
  explicit FaultState(FaultPlan plan);

  /// True exactly once for the (rank, step) a pending kCrash event names.
  bool should_crash(int rank, std::uint64_t step);

  enum class SendAction : std::uint8_t { kDeliver, kDrop };
  /// Consumes a matching drop/delay event for this rank's `send_index`-th
  /// outgoing message; on kDeliver, `*delay_seconds` holds any injected
  /// link stall (0 if none).
  SendAction on_send(int rank, std::uint64_t send_index,
                     double* delay_seconds);

  /// Product of kSlowCompute factors for this rank (persistent; a slow node
  /// stays slow across restarts).
  double compute_scale(int rank) const;

  /// Number of one-shot events that have fired so far.
  std::uint64_t fired_count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<FaultEvent> events_;
  std::vector<char> fired_;
};

}  // namespace gnumap

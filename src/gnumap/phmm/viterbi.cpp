#include "gnumap/phmm/viterbi.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gnumap {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
enum State : std::uint8_t { kM = 0, kGX = 1, kGY = 2, kNone = 3 };
}  // namespace

ViterbiResult viterbi_align(const PairHmm& hmm, const Pwm& pwm,
                            std::span<const std::uint8_t> window) {
  const auto& params = hmm.params();
  const std::size_t n = pwm.length();
  const std::size_t m = window.size();
  ViterbiResult result;
  result.log_prob = kNegInf;
  if (n == 0 || m == 0) return result;

  const std::size_t stride = m + 1;
  const std::vector<double> mixed = pwm.mixed_emissions(params);
  const double lt_mm = std::log(params.t_mm());
  const double lt_mg = std::log(params.t_mg());
  const double lt_gm = std::log(params.t_gm());
  const double lt_gg = std::log(params.t_gg());
  const double lq = std::log(params.q);

  std::vector<double> vm((n + 1) * stride, kNegInf);
  std::vector<double> vgx((n + 1) * stride, kNegInf);
  std::vector<double> vgy((n + 1) * stride, kNegInf);
  // Backpointers: predecessor state per cell per state.
  std::vector<std::uint8_t> pm((n + 1) * stride, kNone);
  std::vector<std::uint8_t> pgx((n + 1) * stride, kNone);
  std::vector<std::uint8_t> pgy((n + 1) * stride, kNone);

  if (hmm.mode() == BoundaryMode::kGlobal) {
    vm[0] = 0.0;
  } else {
    for (std::size_t j = 0; j <= m; ++j) vm[j] = 0.0;
  }

  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t row = i * stride;
    const std::size_t prev = row - stride;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::uint8_t y = std::min<std::uint8_t>(window[j - 1], 4);
      const double lp = std::log(mixed[(i - 1) * 5 + y]);
      // Match.
      {
        const double from_m = lt_mm + vm[prev + j - 1];
        const double from_gx = lt_gm + vgx[prev + j - 1];
        const double from_gy = lt_gm + vgy[prev + j - 1];
        double best = from_m;
        std::uint8_t who = kM;
        if (from_gx > best) { best = from_gx; who = kGX; }
        if (from_gy > best) { best = from_gy; who = kGY; }
        vm[row + j] = lp + best;
        pm[row + j] = who;
      }
      // Read gap (G_X): consumes x only.
      {
        const double from_m = lt_mg + vm[prev + j];
        const double from_gx = lt_gg + vgx[prev + j];
        vgx[row + j] = lq + std::max(from_m, from_gx);
        pgx[row + j] = from_m >= from_gx ? kM : kGX;
      }
      // Genome gap (G_Y): consumes y only.
      {
        const double from_m = lt_mg + vm[row + j - 1];
        const double from_gy = lt_gg + vgy[row + j - 1];
        vgy[row + j] = lq + std::max(from_m, from_gy);
        pgy[row + j] = from_m >= from_gy ? kM : kGY;
      }
    }
    // Column 0: leading read gaps, allowed in semi-global mode only (the
    // paper's global initialization zeroes the whole column).
    if (hmm.mode() == BoundaryMode::kSemiGlobal) {
      vgx[row] = lq + std::max(lt_mg + vm[prev], lt_gg + vgx[prev]);
      pgx[row] = (lt_mg + vm[prev]) >= (lt_gg + vgx[prev]) ? kM : kGX;
    }
  }

  // Pick the terminal cell.
  std::size_t end_j = m;
  State end_state = kM;
  double best = kNegInf;
  auto consider = [&](State s, std::size_t j, double value) {
    if (value > best) {
      best = value;
      end_state = s;
      end_j = j;
    }
  };
  if (hmm.mode() == BoundaryMode::kGlobal) {
    // Trailing genome gaps would be needed to reach column m; emulate the
    // forward terminal by allowing G_Y chains from any column (scored).
    consider(kM, m, vm[n * stride + m]);
    consider(kGX, m, vgx[n * stride + m]);
    consider(kGY, m, vgy[n * stride + m]);
  } else {
    for (std::size_t j = 1; j <= m; ++j) {
      consider(kM, j, vm[n * stride + j]);
      consider(kGX, j, vgx[n * stride + j]);
    }
  }
  if (best == kNegInf) return result;
  result.log_prob = best;

  // Traceback.
  std::size_t i = n;
  std::size_t j = end_j;
  State state = end_state;
  std::vector<AlignOp> rops;
  while (i > 0 || (hmm.mode() == BoundaryMode::kGlobal && state == kGY)) {
    std::uint8_t from = kNone;
    switch (state) {
      case kM:
        rops.push_back(AlignOp::kMatch);
        from = pm[i * stride + j];
        --i;
        --j;
        break;
      case kGX:
        rops.push_back(AlignOp::kReadGap);
        from = pgx[i * stride + j];
        --i;
        break;
      case kGY:
        rops.push_back(AlignOp::kGenomeGap);
        from = pgy[i * stride + j];
        --j;
        break;
      default:
        i = 0;
        break;
    }
    if (i == 0 && (state == kM || state == kGX)) break;
    if (from == kNone) break;
    state = static_cast<State>(from);
  }
  result.window_begin = j;
  result.window_end = end_j;
  result.ops.assign(rops.rbegin(), rops.rend());
  return result;
}

}  // namespace gnumap

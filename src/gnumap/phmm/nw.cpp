#include "gnumap/phmm/nw.hpp"

#include <algorithm>
#include <limits>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/quality.hpp"

namespace gnumap {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
enum State : std::uint8_t { kM = 0, kGX = 1, kGY = 2 };
}  // namespace

NwResult nw_align(const Read& read, std::span<const std::uint8_t> window,
                  const NwParams& params) {
  const std::size_t n = read.length();
  const std::size_t m = window.size();
  NwResult result;
  result.score = kNegInf;
  if (n == 0 || m == 0) return result;
  const std::size_t stride = m + 1;

  // Three-state affine DP (Gotoh).  sm: best score ending in a match at
  // (i,j); sx: read-gap; sy: genome-gap.
  std::vector<double> sm((n + 1) * stride, kNegInf);
  std::vector<double> sx((n + 1) * stride, kNegInf);
  std::vector<double> sy((n + 1) * stride, kNegInf);
  std::vector<std::uint8_t> pm((n + 1) * stride, 0);
  std::vector<std::uint8_t> px((n + 1) * stride, 0);
  std::vector<std::uint8_t> py((n + 1) * stride, 0);

  // Row 0: free genome prefix (semi-global) or scored genome gaps (global).
  sm[0] = 0.0;
  for (std::size_t j = 1; j <= m; ++j) {
    if (params.free_genome_flanks) {
      sm[j] = 0.0;
    } else {
      sy[j] = params.gap_open + params.gap_extend * static_cast<double>(j - 1);
      py[j] = j == 1 ? kM : kGY;
    }
  }
  // Column 0: leading read gaps are always scored.
  for (std::size_t i = 1; i <= n; ++i) {
    sx[i * stride] =
        params.gap_open + params.gap_extend * static_cast<double>(i - 1);
    px[i * stride] = i == 1 ? kM : kGX;
  }

  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t row = i * stride;
    const std::size_t prev = row - stride;
    const std::uint8_t x = read.bases[i - 1];
    const std::uint8_t q = i - 1 < read.quals.size() ? read.quals[i - 1] : 30;
    const double weight =
        params.quality_weighted ? 1.0 - phred_to_error(q) : 1.0;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::uint8_t y = window[j - 1];
      const bool match = x < 4 && x == y;
      const double sub =
          (match ? params.match : params.mismatch) * weight;
      // Match state.
      {
        double best = sm[prev + j - 1];
        std::uint8_t who = kM;
        if (sx[prev + j - 1] > best) { best = sx[prev + j - 1]; who = kGX; }
        if (sy[prev + j - 1] > best) { best = sy[prev + j - 1]; who = kGY; }
        sm[row + j] = best + sub;
        pm[row + j] = who;
      }
      // Read gap.
      {
        const double open = sm[prev + j] + params.gap_open;
        const double extend = sx[prev + j] + params.gap_extend;
        sx[row + j] = std::max(open, extend);
        px[row + j] = open >= extend ? kM : kGX;
      }
      // Genome gap.
      {
        const double open = sm[row + j - 1] + params.gap_open;
        const double extend = sy[row + j - 1] + params.gap_extend;
        sy[row + j] = std::max(open, extend);
        py[row + j] = open >= extend ? kM : kGY;
      }
    }
  }

  // Terminal: free genome suffix scans row n; global requires column m.
  std::size_t end_j = m;
  State end_state = kM;
  double best = kNegInf;
  auto consider = [&](State s, std::size_t j, double value) {
    if (value > best) {
      best = value;
      end_state = s;
      end_j = j;
    }
  };
  if (params.free_genome_flanks) {
    for (std::size_t j = 1; j <= m; ++j) {
      consider(kM, j, sm[n * stride + j]);
      consider(kGX, j, sx[n * stride + j]);
    }
  } else {
    consider(kM, m, sm[n * stride + m]);
    consider(kGX, m, sx[n * stride + m]);
    consider(kGY, m, sy[n * stride + m]);
  }
  if (best == kNegInf) return result;
  result.score = best;

  // Traceback.
  std::size_t i = n;
  std::size_t j = end_j;
  State state = end_state;
  std::vector<AlignOp> rops;
  while (i > 0 || (!params.free_genome_flanks && state == kGY && j > 0)) {
    std::uint8_t from;
    switch (state) {
      case kM: {
        rops.push_back(AlignOp::kMatch);
        const std::uint8_t x = read.bases[i - 1];
        const std::uint8_t y = window[j - 1];
        if (!(x < 4 && x == y)) {
          ++result.mismatches;
          result.mismatch_quality_sum +=
              i - 1 < read.quals.size() ? read.quals[i - 1] : 30;
        }
        from = pm[i * stride + j];
        --i;
        --j;
        break;
      }
      case kGX:
        rops.push_back(AlignOp::kReadGap);
        from = px[i * stride + j];
        --i;
        break;
      case kGY:
        rops.push_back(AlignOp::kGenomeGap);
        from = py[i * stride + j];
        --j;
        break;
      default:
        from = kM;
        break;
    }
    if (i == 0 && (state == kM || state == kGX)) {
      if (params.free_genome_flanks || j == 0) break;
    }
    state = static_cast<State>(from);
  }
  result.window_begin = j;
  result.window_end = end_j;
  result.ops.assign(rops.rbegin(), rops.rend());
  return result;
}

}  // namespace gnumap

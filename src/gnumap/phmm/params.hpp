// Pair-HMM parameters.
//
// Three hidden states as in the paper: M (match), G_X (read base against a
// gap), G_Y (genome base against a gap).  Transition probabilities follow the
// paper's notation T_MM, T_MG, T_GM, T_GG and are derived from a gap-open /
// gap-extend pair so they stay a proper distribution:
//   from M:  T_MM = 1 - 2*gap_open,  T_MG = gap_open   (to either gap state)
//   from G:  T_GM = 1 - gap_extend,  T_GG = gap_extend (no G_X <-> G_Y moves)
// Emissions: a match state emits the pair (x_i, y_j) with joint probability
// p_xy (diagonal-heavy), gap states emit a single nucleotide with q = 1/4.
#pragma once

#include <array>

#include "gnumap/genome/sequence.hpp"

namespace gnumap {

struct PhmmParams {
  double gap_open = 0.02;    ///< delta: M -> G_X or M -> G_Y
  double gap_extend = 0.30;  ///< epsilon: G -> G
  /// Probability mass of mismatching pairs in the match emission
  /// (the per-pair mismatch rate; diagonal entries share 1 - mismatch_mass).
  double mismatch_mass = 0.08;
  /// Gap-state emission probability per nucleotide.
  double q = 0.25;

  double t_mm() const { return 1.0 - 2.0 * gap_open; }
  double t_mg() const { return gap_open; }
  double t_gm() const { return 1.0 - gap_extend; }
  double t_gg() const { return gap_extend; }

  /// Joint match-emission probability p_xy.  Rows/columns are base codes;
  /// any N participant falls back to background 1/16.
  double emission(std::uint8_t x, std::uint8_t y) const {
    if (x >= 4 || y >= 4) return 1.0 / 16.0;
    return x == y ? (1.0 - mismatch_mass) / 4.0 : mismatch_mass / 12.0;
  }

  /// Throws ConfigError unless every derived probability is valid.
  void validate() const;
};

}  // namespace gnumap

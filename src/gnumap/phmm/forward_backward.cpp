#include "gnumap/phmm/forward_backward.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gnumap/util/error.hpp"

namespace gnumap {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Rescales one row of the three matrices by a common factor so that their
/// combined sum is one.  Returns log of the factor removed (0 if the row is
/// entirely zero).
double scale_row(std::vector<double>& a, std::vector<double>& b,
                 std::vector<double>& c, std::size_t row_begin,
                 std::size_t row_len) {
  double sum = 0.0;
  for (std::size_t j = 0; j < row_len; ++j) {
    sum += a[row_begin + j] + b[row_begin + j] + c[row_begin + j];
  }
  if (!(sum > 0.0)) return 0.0;
  const double inv = 1.0 / sum;
  for (std::size_t j = 0; j < row_len; ++j) {
    a[row_begin + j] *= inv;
    b[row_begin + j] *= inv;
    c[row_begin + j] *= inv;
  }
  return std::log(sum);
}
}  // namespace

void AlignmentMatrices::reset(std::size_t read_len, std::size_t window_len) {
  n = read_len;
  m = window_len;
  const std::size_t cells = (n + 1) * (m + 1);
  for (auto* mat : {&fm, &fgx, &fgy, &bm, &bgx, &bgy}) {
    if (mat->capacity() < cells) {
      // Grow geometrically so a workspace cycling through slowly increasing
      // window sizes does not reallocate on every call.
      mat->reserve(std::max(cells, mat->capacity() + mat->capacity() / 2));
    }
    mat->assign(cells, 0.0);
  }
  log_likelihood = kNegInf;
}

PairHmm::PairHmm(const PhmmParams& params, BoundaryMode mode)
    : params_(params), mode_(mode) {
  params_.validate();
}

bool PairHmm::align(const Pwm& pwm, std::span<const std::uint8_t> window,
                    AlignmentMatrices& mats) const {
  const std::size_t n = pwm.length();
  const std::size_t m = window.size();
  mats.reset(n, m);
  if (n == 0 || m == 0) return false;

  // p*(i, y_j) flattened as pstar[(i-1) * (m+1) + j] for 1-based i, j.
  // (Row 0 / column 0 are never read.)
  const std::vector<double> mixed = pwm.mixed_emissions(params_);
  std::vector<double> pstar(n * (m + 1), 0.0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const std::uint8_t y = std::min<std::uint8_t>(window[j - 1], 4);
      pstar[(i - 1) * (m + 1) + j] = mixed[(i - 1) * 5 + y];
    }
  }

  double log_scale = 0.0;
  run_forward(pstar, mats, log_scale);

  // Total likelihood: sum of terminal states.  Global mode terminates at
  // (N, M); semi-global sums over every genome end column (free suffix).
  double terminal = 0.0;
  if (mode_ == BoundaryMode::kGlobal) {
    terminal = mats.at(mats.fm, n, m) + mats.at(mats.fgx, n, m) +
               mats.at(mats.fgy, n, m);
  } else {
    for (std::size_t j = 0; j <= m; ++j) {
      terminal += mats.at(mats.fm, n, j) + mats.at(mats.fgx, n, j);
    }
  }
  if (!(terminal > 0.0)) return false;
  mats.log_likelihood = std::log(terminal) + log_scale;

  run_backward(pstar, mats);
  return true;
}

void PairHmm::run_forward(const std::vector<double>& pstar,
                          AlignmentMatrices& mats, double& log_scale) const {
  const std::size_t n = mats.n;
  const std::size_t m = mats.m;
  const std::size_t stride = m + 1;
  const double t_mm = params_.t_mm();
  const double t_mg = params_.t_mg();
  const double t_gm = params_.t_gm();
  const double t_gg = params_.t_gg();
  const double q = params_.q;

  auto& fm = mats.fm;
  auto& fgx = mats.fgx;
  auto& fgy = mats.fgy;

  // Initialization.  Global: only (0,0) is live.  Semi-global: the read may
  // start after any free genome prefix, so every f_M(0, j) is live.
  if (mode_ == BoundaryMode::kGlobal) {
    fm[0] = 1.0;
  } else {
    for (std::size_t j = 0; j <= m; ++j) fm[j] = 1.0;
  }

  log_scale = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t row = i * stride;
    const std::size_t prev = row - stride;
    const double* p_row = &pstar[(i - 1) * stride];
    for (std::size_t j = 1; j <= m; ++j) {
      // Durbin et al.: every predecessor of a match sits at (i-1, j-1).
      fm[row + j] = p_row[j] * (t_mm * fm[prev + j - 1] +
                                t_gm * (fgx[prev + j - 1] + fgy[prev + j - 1]));
      // Read base x_i against a gap: consumes x only.
      fgx[row + j] = q * (t_mg * fm[prev + j] + t_gg * fgx[prev + j]);
      // Genome base y_j against a gap: consumes y only (within-row).
      fgy[row + j] = q * (t_mg * fm[row + j - 1] + t_gg * fgy[row + j - 1]);
    }
    // Column 0 of row i: leading read gaps (G_X before any genome base).
    // The paper's global initialization pins the whole column to zero (an
    // alignment must open with a match); semi-global allows them so a read
    // overhanging the window start can still align.
    if (mode_ == BoundaryMode::kSemiGlobal) {
      fgx[row] = q * (t_mg * fm[prev] + t_gg * fgx[prev]);
    }
    log_scale += scale_row(fm, fgx, fgy, row, stride);
  }
}

void PairHmm::run_backward(const std::vector<double>& pstar,
                           AlignmentMatrices& mats) const {
  const std::size_t n = mats.n;
  const std::size_t m = mats.m;
  const std::size_t stride = m + 1;
  const double t_mm = params_.t_mm();
  const double t_mg = params_.t_mg();
  const double t_gm = params_.t_gm();
  const double t_gg = params_.t_gg();
  const double q = params_.q;

  auto& bm = mats.bm;
  auto& bgx = mats.bgx;
  auto& bgy = mats.bgy;

  // Termination row.
  const std::size_t last = n * stride;
  if (mode_ == BoundaryMode::kGlobal) {
    bm[last + m] = 1.0;
    bgx[last + m] = 1.0;
    bgy[last + m] = 1.0;
    // Within row N, paths may still consume trailing genome gaps (G_Y).
    for (std::size_t j = m; j-- > 0;) {
      bm[last + j] = q * t_mg * bgy[last + j + 1];
      bgy[last + j] = q * t_gg * bgy[last + j + 1];
      // bgx stays 0: a G_X state would need to consume another read base.
    }
  } else {
    // Free genome suffix: finishing anywhere in row N costs nothing.  A path
    // may not *end* in G_Y (the suffix is unaligned rather than gapped).
    for (std::size_t j = 0; j <= m; ++j) {
      bm[last + j] = 1.0;
      bgx[last + j] = 1.0;
    }
  }
  scale_row(bm, bgx, bgy, last, stride);

  for (std::size_t i = n; i-- > 0;) {
    const std::size_t row = i * stride;
    const std::size_t next = row + stride;
    const double* p_next = &pstar[i * stride];  // p*(i+1, .)
    for (std::size_t j = m + 1; j-- > 0;) {
      const double match_next = j < m ? p_next[j + 1] * bm[next + j + 1] : 0.0;
      const double gx_next = q * bgx[next + j];
      const double gy_next = j < m ? q * bgy[row + j + 1] : 0.0;
      bm[row + j] = t_mm * match_next + t_mg * (gx_next + gy_next);
      bgx[row + j] = t_gm * match_next + t_gg * gx_next;
      bgy[row + j] = t_gm * match_next + t_gg * gy_next;
    }
    scale_row(bm, bgx, bgy, row, stride);
  }
}

std::vector<double> PairHmm::row_masses(const AlignmentMatrices& mats) const {
  const std::size_t n = mats.n;
  const std::size_t m = mats.m;
  const std::size_t stride = m + 1;
  std::vector<double> masses(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t row = i * stride;
    double c = 0.0;
    for (std::size_t j = 0; j <= m; ++j) {
      c += mats.fm[row + j] * mats.bm[row + j] +
           mats.fgx[row + j] * mats.bgx[row + j];
    }
    masses[i] = c;
  }
  return masses;
}

}  // namespace gnumap

// AVX2 backend for the batched Pair-HMM kernels.
//
// This translation unit is compiled with -mavx2 when the compiler supports
// it (see src/CMakeLists.txt); callers must gate on cpu_supports_avx2()
// before dispatching here.  Deliberately compiled WITHOUT -mfma: the kernels
// must not contract multiply-add pairs, or lane results would drift from the
// scalar oracle (see batched_kernels_impl.hpp).
#include "gnumap/phmm/batched_kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>

#include "gnumap/phmm/batched_kernels_impl.hpp"

namespace gnumap::phmm::detail {

namespace {

struct Avx2V {
  static constexpr std::size_t width = 4;
  using elem = double;
  using reg = __m256d;
  static reg load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static void store_wide(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg set1(double x) { return _mm256_set1_pd(x); }
  static reg zero() { return _mm256_setzero_pd(); }
  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
  static void transpose(reg (&r)[4]) {
    const reg t0 = _mm256_unpacklo_pd(r[0], r[1]);
    const reg t1 = _mm256_unpackhi_pd(r[0], r[1]);
    const reg t2 = _mm256_unpacklo_pd(r[2], r[3]);
    const reg t3 = _mm256_unpackhi_pd(r[2], r[3]);
    r[0] = _mm256_permute2f128_pd(t0, t2, 0x20);
    r[1] = _mm256_permute2f128_pd(t1, t3, 0x20);
    r[2] = _mm256_permute2f128_pd(t0, t2, 0x31);
    r[3] = _mm256_permute2f128_pd(t1, t3, 0x31);
  }
};

struct Avx2VF {
  static constexpr std::size_t width = 8;
  using elem = float;
  using reg = __m256;
  static reg load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, reg v) { _mm256_storeu_ps(p, v); }
  static void store_wide(double* p, reg v) {
    _mm256_storeu_pd(p, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    _mm256_storeu_pd(p + 4, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  static reg set1(double x) { return _mm256_set1_ps(static_cast<float>(x)); }
  static reg zero() { return _mm256_setzero_ps(); }
  static reg add(reg a, reg b) { return _mm256_add_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_ps(a, b); }
  static void transpose(reg (&r)[8]) {
    // 8x8 via pairwise unpacks, 4-wide shuffles, then 128-bit lane swaps.
    const reg t0 = _mm256_unpacklo_ps(r[0], r[1]);
    const reg t1 = _mm256_unpackhi_ps(r[0], r[1]);
    const reg t2 = _mm256_unpacklo_ps(r[2], r[3]);
    const reg t3 = _mm256_unpackhi_ps(r[2], r[3]);
    const reg t4 = _mm256_unpacklo_ps(r[4], r[5]);
    const reg t5 = _mm256_unpackhi_ps(r[4], r[5]);
    const reg t6 = _mm256_unpacklo_ps(r[6], r[7]);
    const reg t7 = _mm256_unpackhi_ps(r[6], r[7]);
    const reg u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    const reg u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    const reg u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    const reg u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    const reg u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    const reg u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    const reg u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    const reg u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
    r[0] = _mm256_permute2f128_ps(u0, u4, 0x20);
    r[1] = _mm256_permute2f128_ps(u1, u5, 0x20);
    r[2] = _mm256_permute2f128_ps(u2, u6, 0x20);
    r[3] = _mm256_permute2f128_ps(u3, u7, 0x20);
    r[4] = _mm256_permute2f128_ps(u0, u4, 0x31);
    r[5] = _mm256_permute2f128_ps(u1, u5, 0x31);
    r[6] = _mm256_permute2f128_ps(u2, u6, 0x31);
    r[7] = _mm256_permute2f128_ps(u3, u7, 0x31);
  }
};

void avx2_forward(const PackConstants& c, const PackState& s) {
  forward_pack<Avx2V, false>(c, s);
}
void avx2_backward(const PackConstants& c, const PackState& s) {
  backward_pack<Avx2V, false>(c, s);
}
void avx2_forward_masked(const PackConstants& c, const PackState& s) {
  forward_pack<Avx2V, true>(c, s);
}
void avx2_backward_masked(const PackConstants& c, const PackState& s) {
  backward_pack<Avx2V, true>(c, s);
}
void avx2_interleave(double* dst, const double* const* src,
                     std::size_t count) {
  interleave_row<Avx2V>(dst, src, count);
}
void avx2_forward_f32(const PackConstants& c, const PackStateF& s) {
  forward_pack<Avx2VF, false>(c, s);
}
void avx2_backward_f32(const PackConstants& c, const PackStateF& s) {
  backward_pack<Avx2VF, false>(c, s);
}
void avx2_forward_masked_f32(const PackConstants& c, const PackStateF& s) {
  forward_pack<Avx2VF, true>(c, s);
}
void avx2_backward_masked_f32(const PackConstants& c, const PackStateF& s) {
  backward_pack<Avx2VF, true>(c, s);
}
void avx2_interleave_f32(float* dst, const float* const* src,
                         std::size_t count) {
  interleave_row<Avx2VF>(dst, src, count);
}

}  // namespace

KernelBackend avx2_backend() {
  return KernelBackend{.width = 4,
                       .forward = &avx2_forward,
                       .backward = &avx2_backward,
                       .forward_masked = &avx2_forward_masked,
                       .backward_masked = &avx2_backward_masked,
                       .interleave = &avx2_interleave,
                       .width_f32 = 8,
                       .forward_f32 = &avx2_forward_f32,
                       .backward_f32 = &avx2_backward_f32,
                       .forward_masked_f32 = &avx2_forward_masked_f32,
                       .backward_masked_f32 = &avx2_backward_masked_f32,
                       .interleave_f32 = &avx2_interleave_f32};
}

}  // namespace gnumap::phmm::detail

#else  // !defined(__AVX2__)

namespace gnumap::phmm::detail {

KernelBackend avx2_backend() { return KernelBackend{}; }

}  // namespace gnumap::phmm::detail

#endif

// AVX2 backend for the batched Pair-HMM kernels.
//
// This translation unit is compiled with -mavx2 when the compiler supports
// it (see src/CMakeLists.txt); callers must gate on cpu_supports_avx2()
// before dispatching here.  Deliberately compiled WITHOUT -mfma: the kernels
// must not contract multiply-add pairs, or lane results would drift from the
// scalar oracle (see batched_kernels_impl.hpp).
#include "gnumap/phmm/batched_kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>

#include "gnumap/phmm/batched_kernels_impl.hpp"

namespace gnumap::phmm::detail {

namespace {

struct Avx2V {
  static constexpr std::size_t width = 4;
  using reg = __m256d;
  static reg load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg set1(double x) { return _mm256_set1_pd(x); }
  static reg zero() { return _mm256_setzero_pd(); }
  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
  static void transpose(reg (&r)[4]) {
    const reg t0 = _mm256_unpacklo_pd(r[0], r[1]);
    const reg t1 = _mm256_unpackhi_pd(r[0], r[1]);
    const reg t2 = _mm256_unpacklo_pd(r[2], r[3]);
    const reg t3 = _mm256_unpackhi_pd(r[2], r[3]);
    r[0] = _mm256_permute2f128_pd(t0, t2, 0x20);
    r[1] = _mm256_permute2f128_pd(t1, t3, 0x20);
    r[2] = _mm256_permute2f128_pd(t0, t2, 0x31);
    r[3] = _mm256_permute2f128_pd(t1, t3, 0x31);
  }
};

void avx2_forward(const PackConstants& c, const PackState& s) {
  forward_pack<Avx2V>(c, s);
}
void avx2_backward(const PackConstants& c, const PackState& s) {
  backward_pack<Avx2V>(c, s);
}
void avx2_interleave(double* dst, const double* const* src,
                     std::size_t count) {
  interleave_row<Avx2V>(dst, src, count);
}

}  // namespace

KernelBackend avx2_backend() {
  return KernelBackend{4, &avx2_forward, &avx2_backward, &avx2_interleave};
}

}  // namespace gnumap::phmm::detail

#else  // !defined(__AVX2__)

namespace gnumap::phmm::detail {

KernelBackend avx2_backend() { return KernelBackend{}; }

}  // namespace gnumap::phmm::detail

#endif

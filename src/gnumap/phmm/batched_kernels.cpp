// Scalar and SSE2 backends for the batched Pair-HMM kernels, plus the
// runtime CPU feature checks.  The AVX2 backend lives in
// batched_kernels_avx2.cpp (compiled with -mavx2).
#include "gnumap/phmm/batched_kernels.hpp"

#include "gnumap/phmm/batched_kernels_impl.hpp"

#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#define GNUMAP_KERNEL_SSE2 1
#include <emmintrin.h>
#endif

namespace gnumap::phmm::detail {

namespace {

struct ScalarV {
  static constexpr std::size_t width = 1;
  using reg = double;
  static reg load(const double* p) { return *p; }
  static void store(double* p, reg v) { *p = v; }
  static reg set1(double x) { return x; }
  static reg zero() { return 0.0; }
  static reg add(reg a, reg b) { return a + b; }
  static reg mul(reg a, reg b) { return a * b; }
  static void transpose(reg (&)[1]) {}  // 1x1: nothing to do
};

void scalar_forward(const PackConstants& c, const PackState& s) {
  forward_pack<ScalarV>(c, s);
}
void scalar_backward(const PackConstants& c, const PackState& s) {
  backward_pack<ScalarV>(c, s);
}
void scalar_interleave(double* dst, const double* const* src,
                       std::size_t count) {
  interleave_row<ScalarV>(dst, src, count);
}

#if GNUMAP_KERNEL_SSE2
struct Sse2V {
  static constexpr std::size_t width = 2;
  using reg = __m128d;
  static reg load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, reg v) { _mm_storeu_pd(p, v); }
  static reg set1(double x) { return _mm_set1_pd(x); }
  static reg zero() { return _mm_setzero_pd(); }
  static reg add(reg a, reg b) { return _mm_add_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm_mul_pd(a, b); }
  static void transpose(reg (&r)[2]) {
    const reg t0 = _mm_unpacklo_pd(r[0], r[1]);
    const reg t1 = _mm_unpackhi_pd(r[0], r[1]);
    r[0] = t0;
    r[1] = t1;
  }
};

void sse2_forward(const PackConstants& c, const PackState& s) {
  forward_pack<Sse2V>(c, s);
}
void sse2_backward(const PackConstants& c, const PackState& s) {
  backward_pack<Sse2V>(c, s);
}
void sse2_interleave(double* dst, const double* const* src,
                     std::size_t count) {
  interleave_row<Sse2V>(dst, src, count);
}
#endif  // GNUMAP_KERNEL_SSE2

}  // namespace

KernelBackend scalar_backend() {
  return KernelBackend{1, &scalar_forward, &scalar_backward,
                       &scalar_interleave};
}

KernelBackend sse2_backend() {
#if GNUMAP_KERNEL_SSE2
  return KernelBackend{2, &sse2_forward, &sse2_backward, &sse2_interleave};
#else
  return KernelBackend{};
#endif
}

bool cpu_supports_sse2() {
#if GNUMAP_KERNEL_SSE2
  // SSE2 is part of the x86-64 baseline; if this TU compiled with it, the
  // host (which is running this binary) has it.
  return true;
#else
  return false;
#endif
}

bool cpu_supports_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace gnumap::phmm::detail

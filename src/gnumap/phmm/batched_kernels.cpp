// Scalar and SSE2 backends for the batched Pair-HMM kernels, plus the
// runtime CPU feature checks.  The AVX2 backend lives in
// batched_kernels_avx2.cpp (compiled with -mavx2).
//
// Each ISA contributes two vector-traits types — a double one and a float
// one at twice the lane count — and the shared template in
// batched_kernels_impl.hpp is instantiated over both, in uniform and masked
// flavors.  `store_wide` is the one asymmetric operation: it stores a
// register of lanes as doubles (identity for the double traits, a widening
// convert for the float ones), which is how fp32 sweeps fill the
// always-double destination matrices.
#include "gnumap/phmm/batched_kernels.hpp"

#include "gnumap/phmm/batched_kernels_impl.hpp"

#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#define GNUMAP_KERNEL_SSE2 1
#include <emmintrin.h>
#endif

namespace gnumap::phmm::detail {

namespace {

struct ScalarV {
  static constexpr std::size_t width = 1;
  using elem = double;
  using reg = double;
  static reg load(const double* p) { return *p; }
  static void store(double* p, reg v) { *p = v; }
  static void store_wide(double* p, reg v) { *p = v; }
  static reg set1(double x) { return x; }
  static reg zero() { return 0.0; }
  static reg add(reg a, reg b) { return a + b; }
  static reg mul(reg a, reg b) { return a * b; }
  static void transpose(reg (&)[1]) {}  // 1x1: nothing to do
};

struct ScalarVF {
  static constexpr std::size_t width = 1;
  using elem = float;
  using reg = float;
  static reg load(const float* p) { return *p; }
  static void store(float* p, reg v) { *p = v; }
  static void store_wide(double* p, reg v) { *p = static_cast<double>(v); }
  static reg set1(double x) { return static_cast<float>(x); }
  static reg zero() { return 0.0f; }
  static reg add(reg a, reg b) { return a + b; }
  static reg mul(reg a, reg b) { return a * b; }
  static void transpose(reg (&)[1]) {}
};

void scalar_forward(const PackConstants& c, const PackState& s) {
  forward_pack<ScalarV, false>(c, s);
}
void scalar_backward(const PackConstants& c, const PackState& s) {
  backward_pack<ScalarV, false>(c, s);
}
void scalar_forward_masked(const PackConstants& c, const PackState& s) {
  forward_pack<ScalarV, true>(c, s);
}
void scalar_backward_masked(const PackConstants& c, const PackState& s) {
  backward_pack<ScalarV, true>(c, s);
}
void scalar_interleave(double* dst, const double* const* src,
                       std::size_t count) {
  interleave_row<ScalarV>(dst, src, count);
}
void scalar_forward_f32(const PackConstants& c, const PackStateF& s) {
  forward_pack<ScalarVF, false>(c, s);
}
void scalar_backward_f32(const PackConstants& c, const PackStateF& s) {
  backward_pack<ScalarVF, false>(c, s);
}
void scalar_forward_masked_f32(const PackConstants& c, const PackStateF& s) {
  forward_pack<ScalarVF, true>(c, s);
}
void scalar_backward_masked_f32(const PackConstants& c, const PackStateF& s) {
  backward_pack<ScalarVF, true>(c, s);
}
void scalar_interleave_f32(float* dst, const float* const* src,
                           std::size_t count) {
  interleave_row<ScalarVF>(dst, src, count);
}

#if GNUMAP_KERNEL_SSE2
struct Sse2V {
  static constexpr std::size_t width = 2;
  using elem = double;
  using reg = __m128d;
  static reg load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, reg v) { _mm_storeu_pd(p, v); }
  static void store_wide(double* p, reg v) { _mm_storeu_pd(p, v); }
  static reg set1(double x) { return _mm_set1_pd(x); }
  static reg zero() { return _mm_setzero_pd(); }
  static reg add(reg a, reg b) { return _mm_add_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm_mul_pd(a, b); }
  static void transpose(reg (&r)[2]) {
    const reg t0 = _mm_unpacklo_pd(r[0], r[1]);
    const reg t1 = _mm_unpackhi_pd(r[0], r[1]);
    r[0] = t0;
    r[1] = t1;
  }
};

struct Sse2VF {
  static constexpr std::size_t width = 4;
  using elem = float;
  using reg = __m128;
  static reg load(const float* p) { return _mm_loadu_ps(p); }
  static void store(float* p, reg v) { _mm_storeu_ps(p, v); }
  static void store_wide(double* p, reg v) {
    _mm_storeu_pd(p, _mm_cvtps_pd(v));
    _mm_storeu_pd(p + 2, _mm_cvtps_pd(_mm_movehl_ps(v, v)));
  }
  static reg set1(double x) { return _mm_set1_ps(static_cast<float>(x)); }
  static reg zero() { return _mm_setzero_ps(); }
  static reg add(reg a, reg b) { return _mm_add_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm_mul_ps(a, b); }
  static void transpose(reg (&r)[4]) {
    _MM_TRANSPOSE4_PS(r[0], r[1], r[2], r[3]);
  }
};

void sse2_forward(const PackConstants& c, const PackState& s) {
  forward_pack<Sse2V, false>(c, s);
}
void sse2_backward(const PackConstants& c, const PackState& s) {
  backward_pack<Sse2V, false>(c, s);
}
void sse2_forward_masked(const PackConstants& c, const PackState& s) {
  forward_pack<Sse2V, true>(c, s);
}
void sse2_backward_masked(const PackConstants& c, const PackState& s) {
  backward_pack<Sse2V, true>(c, s);
}
void sse2_interleave(double* dst, const double* const* src,
                     std::size_t count) {
  interleave_row<Sse2V>(dst, src, count);
}
void sse2_forward_f32(const PackConstants& c, const PackStateF& s) {
  forward_pack<Sse2VF, false>(c, s);
}
void sse2_backward_f32(const PackConstants& c, const PackStateF& s) {
  backward_pack<Sse2VF, false>(c, s);
}
void sse2_forward_masked_f32(const PackConstants& c, const PackStateF& s) {
  forward_pack<Sse2VF, true>(c, s);
}
void sse2_backward_masked_f32(const PackConstants& c, const PackStateF& s) {
  backward_pack<Sse2VF, true>(c, s);
}
void sse2_interleave_f32(float* dst, const float* const* src,
                         std::size_t count) {
  interleave_row<Sse2VF>(dst, src, count);
}
#endif  // GNUMAP_KERNEL_SSE2

}  // namespace

KernelBackend scalar_backend() {
  return KernelBackend{.width = 1,
                       .forward = &scalar_forward,
                       .backward = &scalar_backward,
                       .forward_masked = &scalar_forward_masked,
                       .backward_masked = &scalar_backward_masked,
                       .interleave = &scalar_interleave,
                       .width_f32 = 1,
                       .forward_f32 = &scalar_forward_f32,
                       .backward_f32 = &scalar_backward_f32,
                       .forward_masked_f32 = &scalar_forward_masked_f32,
                       .backward_masked_f32 = &scalar_backward_masked_f32,
                       .interleave_f32 = &scalar_interleave_f32};
}

KernelBackend sse2_backend() {
#if GNUMAP_KERNEL_SSE2
  return KernelBackend{.width = 2,
                       .forward = &sse2_forward,
                       .backward = &sse2_backward,
                       .forward_masked = &sse2_forward_masked,
                       .backward_masked = &sse2_backward_masked,
                       .interleave = &sse2_interleave,
                       .width_f32 = 4,
                       .forward_f32 = &sse2_forward_f32,
                       .backward_f32 = &sse2_backward_f32,
                       .forward_masked_f32 = &sse2_forward_masked_f32,
                       .backward_masked_f32 = &sse2_backward_masked_f32,
                       .interleave_f32 = &sse2_interleave_f32};
#else
  return KernelBackend{};
#endif
}

bool cpu_supports_sse2() {
#if GNUMAP_KERNEL_SSE2
  // SSE2 is part of the x86-64 baseline; if this TU compiled with it, the
  // host (which is running this binary) has it.
  return true;
#else
  return false;
#endif
}

bool cpu_supports_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace gnumap::phmm::detail

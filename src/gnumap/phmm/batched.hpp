// Batched, vectorized Pair-HMM forward/backward — the mapper's hot kernel.
//
// The scalar PairHmm (forward_backward.hpp) sweeps one (read, window) DP at
// a time; the within-row dependency chain of f_GY (each cell reads its left
// neighbour) caps its throughput well below what the hardware allows.  This
// engine instead exploits *inter-task* parallelism: many independent
// alignment problems are collected into a batch and swept together, with one
// SIMD lane per problem, in structure-of-arrays form — the layout gpuPairHMM
// and Endeavor use.  Lanes never interact, so every per-lane arithmetic
// operation happens in exactly the same order as the scalar kernel and (FMA
// contraction being deliberately avoided) the results are bit-identical to
// PairHmm::align at every dispatch level, not merely "close".  The scalar
// routines in forward_backward.cpp remain the reference oracle; the
// equivalence suite (tests/test_phmm_batched.cpp) holds the two together.
//
// Two scheduling/precision knobs sit on top of the lane engine:
//
//  * Length binning (on by default, `bin_slack`): tasks are sorted by DP
//    shape and nearby shapes are packed into one sweep using masked kernels,
//    so lanes retire together instead of waiting out the longest read of the
//    batch.  Masking is exact arithmetic (multiply by 1.0/0.0), so binned
//    results remain bit-identical to the scalar oracle; docs/KERNELS.md §7.
//  * FP32 lanes (`Precision::kSingle`, off by default): the same recursions
//    in single precision at twice the lane count, writing widened doubles
//    downstream.  Scores are approximate; the mapper recomputes any read
//    whose decision lands within a margin of a call threshold with the
//    scalar double oracle, keeping SNP output bit-identical (KERNELS.md §8).
//
// The full kernel-math spec — the recursion actually implemented, the two
// documented deviations from the paper's printed equations, the row-
// rescaling invariant, the SoA batch layout, and the dispatch matrix — lives
// in docs/KERNELS.md.
//
// Dispatch: scalar (1 lane), SSE2 (2 lanes), AVX2 (4 lanes), selected at
// runtime from CPUID; fp32 doubles each width.  The GNUMAP_SIMD environment
// variable ("scalar", "sse2", "avx2", "auto") overrides the automatic choice
// for any component that asks for SimdLevel::kAuto; an explicit non-auto
// request (tests, benchmarks) wins over the environment.  Requests above
// what the host supports are clamped, never rejected.  GNUMAP_PHMM_FP32
// plays the same role for Precision::kAuto.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "gnumap/phmm/forward_backward.hpp"
#include "gnumap/phmm/params.hpp"
#include "gnumap/phmm/pwm.hpp"

namespace gnumap::phmm {

/// Vector instruction tier the batched kernel runs at.  Values are ordered:
/// a level can always be clamped downward to a supported one.
enum class SimdLevel : std::uint8_t {
  kScalar = 0,  ///< one lane; portable reference path
  kSse2 = 1,    ///< 2 x f64 / 4 x f32 lanes (baseline on x86-64)
  kAvx2 = 2,    ///< 4 x f64 / 8 x f32 lanes
  kAuto = 3,    ///< resolve from GNUMAP_SIMD, else the best supported level
};

/// Human-readable name ("scalar", "sse2", "avx2", "auto").
const char* simd_level_name(SimdLevel level);

/// Best level this binary + CPU can execute (compile-time backend presence
/// AND runtime CPUID check; never returns kAuto).
SimdLevel max_supported_simd_level();

/// Resolves `requested` to a concrete, supported level.
///  * kAuto: the GNUMAP_SIMD environment variable decides if set (unknown
///    values are ignored); otherwise max_supported_simd_level().
///  * explicit levels are honoured but clamped to what the host supports.
SimdLevel resolve_simd_level(SimdLevel requested = SimdLevel::kAuto);

/// Lane element precision of the batched sweeps.  kDouble lanes are
/// bit-identical to the scalar oracle; kSingle lanes trade exactness for
/// twice the lane count (the mapper's recompute margin restores exact call
/// decisions — docs/KERNELS.md §8).
enum class Precision : std::uint8_t {
  kDouble = 0,
  kSingle = 1,
  kAuto = 2,  ///< resolve from GNUMAP_PHMM_FP32 (truthy => kSingle)
};

/// Human-readable name ("fp64", "fp32", "auto").
const char* precision_name(Precision precision);

/// Resolves kAuto against the GNUMAP_PHMM_FP32 environment variable
/// ("1"/"true"/"on"/"yes", case-insensitive, selects kSingle; anything else
/// — including unset — selects kDouble).  Explicit values pass through.
Precision resolve_precision(Precision requested = Precision::kAuto);

/// Default length-binning slack (DP cells of shape mismatch tolerated
/// within one pack, both dimensions).  Chosen so one pack never sweeps more
/// than a few percent padding on Illumina-length reads while still merging
/// the common off-by-a-few window-length variation the mapper produces.
inline constexpr std::size_t kDefaultBinSlack = 16;

/// Scheduler/precision options for BatchedForward::configure.
struct EngineOptions {
  SimdLevel simd = SimdLevel::kAuto;
  Precision precision = Precision::kAuto;
  /// Max (n, m) spread packed into one sweep; 0 disables binning (only
  /// identical shapes share a pack, the pre-binning behavior).
  std::size_t bin_slack = kDefaultBinSlack;
};

/// Wall-clock accounting for one batch of kernel sweeps.  Feeds MapStats and
/// from there the alpha-beta cost model and the Figure-4/Table-3 benches.
struct KernelTimings {
  /// Time inside the forward sweeps, including streaming finished rows into
  /// the per-task result matrices (the copy-out is fused into the sweep).
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;  ///< likewise for the backward sweeps
  std::uint64_t cells = 0;        ///< useful DP cells, (n+1)*(m+1) per task
  /// DP cells swept including padding: width * (N+1) * (M+1) per pack.
  /// cells / swept_cells is the lane-occupancy the scheduler maximizes;
  /// cells / seconds is the GCUPS number reported to obs and the benches.
  std::uint64_t swept_cells = 0;
  std::uint64_t tasks = 0;  ///< alignment problems processed

  KernelTimings& operator+=(const KernelTimings& other) {
    forward_seconds += other.forward_seconds;
    backward_seconds += other.backward_seconds;
    cells += other.cells;
    swept_cells += other.swept_cells;
    tasks += other.tasks;
    return *this;
  }
};

/// Per-task result header.  ok == false means no alignment path has nonzero
/// probability (or the task was degenerate: empty read or empty window); the
/// task's matrices then hold zeroed backward state exactly as a failed
/// PairHmm::align would leave them, and must not be used for posteriors.
struct BatchOutcome {
  std::uint64_t tag = 0;  ///< caller-supplied identifier, returned verbatim
  double log_likelihood = 0.0;  ///< log P(x, y); -inf when !ok
  bool ok = false;
};

/// Batched forward/backward engine.
///
/// Usage:
///   BatchedForward batch(params, BoundaryMode::kSemiGlobal);
///   batch.add(pwm_a, window_a, tag_a);   // pwm/window must outlive run()
///   batch.add(pwm_b, window_b, tag_b);
///   batch.run();
///   batch.outcome(0), batch.matrices(0), ...
///
/// Reuse contract: the engine owns per-task AlignmentMatrices and all SoA
/// scratch, and retains their capacity across clear()/configure() cycles —
/// a long-lived instance (one per worker thread, inside MapperWorkspace)
/// stops allocating once it has seen the largest problem shape.  The Pwm and
/// window storage passed to add() is borrowed, not copied; it must stay
/// valid until run() returns.  Results are indexed by the task id add()
/// returned, in insertion order, regardless of how tasks were grouped into
/// SIMD packs internally.  Not thread-safe; use one instance per thread.
class BatchedForward {
 public:
  /// Default-constructed engines hold default parameters; call configure()
  /// (or the value constructor) before add()/run().
  BatchedForward() = default;

  explicit BatchedForward(const PhmmParams& params,
                          BoundaryMode mode = BoundaryMode::kSemiGlobal,
                          SimdLevel level = SimdLevel::kAuto);

  BatchedForward(const PhmmParams& params, BoundaryMode mode,
                 const EngineOptions& options);

  /// Re-points the engine at (params, mode, level) and clears any pending
  /// tasks, results, and timings.  Scratch capacity is retained.  Throws
  /// ConfigError if the parameters are invalid.
  void configure(const PhmmParams& params, BoundaryMode mode,
                 SimdLevel level = SimdLevel::kAuto);

  /// Full-options configure: SIMD level, lane precision, binning slack.
  void configure(const PhmmParams& params, BoundaryMode mode,
                 const EngineOptions& options);

  /// Drops pending tasks, results, and timings; keeps configuration and
  /// scratch capacity.
  void clear();

  /// Enqueues one (read-PWM, genome-window) alignment problem and returns
  /// its task id (dense, insertion-ordered).  `pwm` and the bytes behind
  /// `window` are borrowed until run() returns.
  std::size_t add(const Pwm& pwm, std::span<const std::uint8_t> window,
                  std::uint64_t tag = 0);

  /// Invoked once per task by the draining run() overload, in pack
  /// completion order (NOT insertion order).  matrices(task) is valid only
  /// for the duration of the call; outcome(task) stays valid afterwards.
  using TaskConsumer = std::function<void(std::size_t task)>;

  /// Sweeps every pending task: sorts tasks by DP shape, packs them into
  /// SIMD lanes (identical shapes into uniform packs; shapes within
  /// bin_slack of each other into masked packs), runs the forward and
  /// backward recursions lane-parallel, and streams the results into
  /// per-task matrices that stay valid until the next clear()/configure().
  /// Idempotent per batch: call once after the last add().
  void run();

  /// Like run(), but recycles a width-sized matrix pool instead of
  /// materializing every task: `consume` is called for each task as its
  /// pack finishes, while the matrices are still cache-hot, and the pool is
  /// reused for the next pack.  This is the mapper's path — per-task DRAM
  /// round trips would otherwise dominate large batches.  Tasks arrive in
  /// shape-grouped pack order, not insertion order; callers that need
  /// ordered results should write into positional slots keyed by task id.
  /// add()/run() must not be called from inside `consume`.
  void run(const TaskConsumer& consume);

  std::size_t size() const { return tasks_.size(); }

  /// Valid after run(), indexed by task id.
  const BatchOutcome& outcome(std::size_t task) const {
    return outcomes_[task];
  }

  /// The six scaled DP matrices for `task`, laid out exactly as
  /// PairHmm::align produces them (valid for posterior extraction through
  /// condense_marginals / PairHmm::row_masses when outcome(task).ok).
  /// After run(): valid for every task.  Inside a run(consume) callback:
  /// valid only for the task being consumed (pool-backed).
  const AlignmentMatrices& matrices(std::size_t task) const;

  /// Timings accumulated since the last configure()/clear().
  const KernelTimings& timings() const { return timings_; }

  /// The concrete dispatch level the engine executes at (never kAuto).
  SimdLevel level() const { return level_; }
  /// The concrete lane precision (never kAuto).
  Precision precision() const { return precision_; }
  /// Length-binning slack in effect (0 = identical shapes only).
  std::size_t bin_slack() const { return bin_slack_; }
  const PhmmParams& params() const { return params_; }
  BoundaryMode mode() const { return mode_; }

 private:
  struct Task {
    const Pwm* pwm;
    std::span<const std::uint8_t> window;
    std::uint64_t tag;
  };

  /// Upper bound on any backend's lane width (AVX2 fp32 packs 8 lanes).
  static constexpr std::size_t kMaxWidth = 8;

  /// Lane-interleaved SoA scratch, one instance per lane element type: the
  /// full emission table (pstar), two ping-pong DP rows per matrix
  /// (fm..bgy), the contiguous per-lane rows staged for interleaving
  /// (row_stage), and the masked-pack column mask / backward-init rows.
  template <typename T>
  struct LaneScratch {
    std::vector<T> pstar, fm, fgx, fgy, bm, bgx, bgy;
    std::vector<T> row_stage;
    std::vector<T> colmask, binit_bm, binit_bgx, binit_bgy;
  };

  template <typename T>
  LaneScratch<T>& scratch() {
    if constexpr (std::is_same_v<T, double>) {
      return scratch64_;
    } else {
      return scratch32_;
    }
  }

  void run_impl(const TaskConsumer* consume);
  void run_pack(std::span<const std::size_t> task_ids, std::size_t n,
                std::size_t m, const TaskConsumer* consume);
  template <typename T>
  void run_pack_impl(std::span<const std::size_t> task_ids, std::size_t n,
                     std::size_t m, const TaskConsumer* consume);

  PhmmParams params_;
  BoundaryMode mode_ = BoundaryMode::kSemiGlobal;
  SimdLevel level_ = SimdLevel::kScalar;
  Precision precision_ = Precision::kDouble;
  std::size_t bin_slack_ = kDefaultBinSlack;

  std::vector<Task> tasks_;
  std::vector<BatchOutcome> outcomes_;
  std::vector<AlignmentMatrices> mats_;  // materialize-all storage (run())
  std::vector<AlignmentMatrices> pool_;  // recycled pack slots (run(consume))
  std::vector<std::size_t> order_;  // task ids sorted by shape
  // Pack currently being drained through a TaskConsumer: task id -> pool
  // slot, consulted by matrices() before mats_.
  std::size_t pack_task_[kMaxWidth] = {};
  const AlignmentMatrices* pack_mats_[kMaxWidth] = {};
  std::size_t pack_count_ = 0;

  LaneScratch<double> scratch64_;
  LaneScratch<float> scratch32_;
  // Write-only trash matrix absorbing padding-lane output of partial
  // uniform packs (masked packs never write padding lanes); always double,
  // like every destination matrix.
  std::vector<double> trash_;
  // Emission-fill scratch: per-lane mixed-emission tables and decoded
  // window symbols (lane-major, kMaxWidth x m); shared by both precisions.
  std::array<std::vector<double>, kMaxWidth> mixed_;
  std::vector<std::uint8_t> ycodes_;
  // Per-lane DP shapes of the pack being swept, plus the double-precision
  // chain row used to stage global-mode backward inits bit-exactly.
  std::size_t lane_n_[kMaxWidth] = {};
  std::size_t lane_m_[kMaxWidth] = {};
  std::vector<double> binit_chain_;

  KernelTimings timings_;
};

}  // namespace gnumap::phmm

#include "gnumap/phmm/params.hpp"

#include "gnumap/util/error.hpp"

namespace gnumap {

void PhmmParams::validate() const {
  require(gap_open > 0.0 && gap_open < 0.5,
          "PhmmParams: gap_open must be in (0, 0.5)");
  require(gap_extend > 0.0 && gap_extend < 1.0,
          "PhmmParams: gap_extend must be in (0, 1)");
  require(mismatch_mass > 0.0 && mismatch_mass < 1.0,
          "PhmmParams: mismatch_mass must be in (0, 1)");
  require(q > 0.0 && q <= 1.0, "PhmmParams: q must be in (0, 1]");
}

}  // namespace gnumap

#include "gnumap/phmm/batched.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <string>

#include "gnumap/obs/metrics.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/phmm/batched_kernels.hpp"
#include "gnumap/util/timer.hpp"

#if defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#include <xmmintrin.h>  // _mm_getcsr / _mm_setcsr
#define GNUMAP_PHMM_HAVE_MXCSR 1
#endif

namespace gnumap::phmm {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Flush-to-zero + denormals-are-zero for the duration of an fp32 pack.
/// The rescaled DP's off-diagonal mass decays geometrically and crosses
/// into the float-denormal range (~1e-38) within a few dozen cells of the
/// alignment band; without FTZ every such cell takes a microcode assist
/// and the fp32 sweep runs *slower* than fp64 on long reads.  Flushed
/// cells read as +0.0, which the fp32 error model already absorbs
/// (docs/KERNELS.md §8: any value this small is far below the recompute
/// margin's resolution).  MXCSR is restored on scope exit, so the fp64
/// kernels — and the scalar oracle they are bit-identical to — keep full
/// denormal semantics.
class DenormalFlushGuard {
 public:
  explicit DenormalFlushGuard(bool enable) {
#ifdef GNUMAP_PHMM_HAVE_MXCSR
    if (enable) {
      saved_ = _mm_getcsr();
      _mm_setcsr(saved_ | 0x8040u);  // FTZ (bit 15) | DAZ (bit 6)
      active_ = true;
    }
#else
    (void)enable;
#endif
  }
  ~DenormalFlushGuard() {
#ifdef GNUMAP_PHMM_HAVE_MXCSR
    if (active_) _mm_setcsr(saved_);
#endif
  }
  DenormalFlushGuard(const DenormalFlushGuard&) = delete;
  DenormalFlushGuard& operator=(const DenormalFlushGuard&) = delete;

 private:
#ifdef GNUMAP_PHMM_HAVE_MXCSR
  unsigned saved_ = 0;
  bool active_ = false;
#endif
};

detail::KernelBackend backend_for(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return detail::avx2_backend();
    case SimdLevel::kSse2:
      return detail::sse2_backend();
    default:
      return detail::scalar_backend();
  }
}

/// Sizes `v` to exactly `size` elements without clearing existing contents
/// (only a grown tail is value-initialized).  Used where every retained
/// element is overwritten before it is read.
template <typename T>
void resize_for_overwrite(std::vector<T>& v, std::size_t size) {
  if (v.size() != size) v.resize(size);
}

std::string lowered_copy(const char* value) {
  std::string lowered(value);
  for (char& ch : lowered) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return lowered;
}

/// Parses a GNUMAP_SIMD value; returns kAuto for unknown/empty strings (the
/// documented "ignored" behavior — a typo must not silently de-vectorize).
SimdLevel parse_simd_env(const char* value) {
  if (value == nullptr) return SimdLevel::kAuto;
  const std::string lowered = lowered_copy(value);
  if (lowered == "scalar" || lowered == "0") return SimdLevel::kScalar;
  if (lowered == "sse2" || lowered == "1") return SimdLevel::kSse2;
  if (lowered == "avx2" || lowered == "2") return SimdLevel::kAvx2;
  return SimdLevel::kAuto;
}

}  // namespace

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    default:
      return "auto";
  }
}

SimdLevel max_supported_simd_level() {
  if (detail::avx2_backend().width != 0 && detail::cpu_supports_avx2()) {
    return SimdLevel::kAvx2;
  }
  if (detail::sse2_backend().width != 0 && detail::cpu_supports_sse2()) {
    return SimdLevel::kSse2;
  }
  return SimdLevel::kScalar;
}

SimdLevel resolve_simd_level(SimdLevel requested) {
  if (requested == SimdLevel::kAuto) {
    requested = parse_simd_env(std::getenv("GNUMAP_SIMD"));
  }
  const SimdLevel best = max_supported_simd_level();
  if (requested == SimdLevel::kAuto || requested > best) return best;
  return requested;
}

const char* precision_name(Precision precision) {
  switch (precision) {
    case Precision::kDouble:
      return "fp64";
    case Precision::kSingle:
      return "fp32";
    default:
      return "auto";
  }
}

Precision resolve_precision(Precision requested) {
  if (requested != Precision::kAuto) return requested;
  const char* value = std::getenv("GNUMAP_PHMM_FP32");
  if (value == nullptr) return Precision::kDouble;
  const std::string lowered = lowered_copy(value);
  if (lowered == "1" || lowered == "true" || lowered == "on" ||
      lowered == "yes") {
    return Precision::kSingle;
  }
  return Precision::kDouble;
}

BatchedForward::BatchedForward(const PhmmParams& params, BoundaryMode mode,
                               SimdLevel level) {
  configure(params, mode, level);
}

BatchedForward::BatchedForward(const PhmmParams& params, BoundaryMode mode,
                               const EngineOptions& options) {
  configure(params, mode, options);
}

void BatchedForward::configure(const PhmmParams& params, BoundaryMode mode,
                               SimdLevel level) {
  configure(params, mode, EngineOptions{.simd = level});
}

void BatchedForward::configure(const PhmmParams& params, BoundaryMode mode,
                               const EngineOptions& options) {
  params.validate();
  params_ = params;
  mode_ = mode;
  level_ = resolve_simd_level(options.simd);
  precision_ = resolve_precision(options.precision);
  bin_slack_ = options.bin_slack;
  clear();
}

void BatchedForward::clear() {
  tasks_.clear();
  outcomes_.clear();
  order_.clear();
  timings_ = KernelTimings{};
  // mats_ and the SoA scratch are deliberately kept: they are the capacity
  // cache that makes a long-lived engine allocation-free in steady state.
}

std::size_t BatchedForward::add(const Pwm& pwm,
                                std::span<const std::uint8_t> window,
                                std::uint64_t tag) {
  tasks_.push_back(Task{&pwm, window, tag});
  return tasks_.size() - 1;
}

void BatchedForward::run() { run_impl(nullptr); }

void BatchedForward::run(const TaskConsumer& consume) { run_impl(&consume); }

const AlignmentMatrices& BatchedForward::matrices(std::size_t task) const {
  // Inside a run(consume) callback the task's matrices live in a pool slot;
  // packs are at most kMaxWidth wide, so a linear scan is cheapest.
  for (std::size_t k = 0; k < pack_count_; ++k) {
    if (pack_task_[k] == task) return *pack_mats_[k];
  }
  return mats_[task];
}

void BatchedForward::run_impl(const TaskConsumer* consume) {
  const std::size_t count = tasks_.size();
  const detail::KernelBackend backend = backend_for(level_);
  const std::size_t width =
      precision_ == Precision::kSingle ? backend.width_f32 : backend.width;
  obs::TraceSpan span("batched_sweep", "phmm", "tasks",
                      static_cast<double>(count), "width",
                      static_cast<double>(width));
  const KernelTimings before = timings_;
  outcomes_.assign(count, BatchOutcome{});
  if (consume != nullptr) {
    if (pool_.size() < kMaxWidth) pool_.resize(kMaxWidth);
  } else if (mats_.size() < count) {
    mats_.resize(count);  // never shrinks: capacity pool
  }

  // Sort tasks by DP shape so the packer sees monotone lengths.  Each pack
  // then greedily admits shapes within bin_slack of the pack's first task
  // (both dimensions): identical shapes form uniform packs, nearby shapes
  // form masked packs that are still bit-identical per lane, and slack 0
  // restores the PR 2 identical-shapes-only packing.  Sorting means the
  // spread inside a pack is the spread of adjacent order statistics, which
  // for Illumina-style length mixes is usually zero or tiny — that, not the
  // mask arithmetic, is where the occupancy win comes from.
  order_.resize(count);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  auto shape = [this](std::size_t t) {
    return std::pair<std::size_t, std::size_t>(tasks_[t].pwm->length(),
                                               tasks_[t].window.size());
  };
  std::stable_sort(order_.begin(), order_.end(),
                   [&](std::size_t a, std::size_t b) { return shape(a) < shape(b); });

  std::size_t begin = 0;
  while (begin < count) {
    const auto [n0, m0] = shape(order_[begin]);
    if (n0 == 0 || m0 == 0) {
      // Degenerate tasks mirror a failed PairHmm::align: zeroed matrices of
      // the nominal shape, -inf likelihood, no sweep.
      const std::size_t t = order_[begin];
      AlignmentMatrices& dst = consume != nullptr ? pool_[0] : mats_[t];
      dst.reset(n0, m0);
      outcomes_[t] = BatchOutcome{tasks_[t].tag, kNegInf, false};
      ++timings_.tasks;
      if (consume != nullptr) {
        pack_task_[0] = t;
        pack_mats_[0] = &dst;
        pack_count_ = 1;
        (*consume)(t);
        pack_count_ = 0;
      }
      ++begin;
      continue;
    }
    // Grow the pack: lanes available, candidate non-degenerate, and both
    // shape dimensions within bin_slack of the pack's extremes.  n is
    // monotone under the sort but m is not, so the m spread tracks min and
    // max explicitly.
    std::size_t end = begin + 1;
    std::size_t max_n = n0;
    std::size_t min_m = m0;
    std::size_t max_m = m0;
    while (end < count && end - begin < width) {
      const auto [n2, m2] = shape(order_[end]);
      if (n2 == 0 || m2 == 0) break;
      if (n2 - n0 > bin_slack_) break;
      const std::size_t lo = std::min(min_m, m2);
      const std::size_t hi = std::max(max_m, m2);
      if (hi - lo > bin_slack_) break;
      max_n = n2;  // sorted: n2 >= max_n
      min_m = lo;
      max_m = hi;
      ++end;
    }
    run_pack(std::span<const std::size_t>(order_.data() + begin, end - begin),
             max_n, max_m, consume);
    begin = end;
  }

  // Publish this run's throughput: GCUPS over useful cells (padding
  // excluded — the honest number next to published Pair-HMM kernels) and
  // the lane occupancy the binner is there to maximize.
  const double delta_seconds = (timings_.forward_seconds - before.forward_seconds) +
                               (timings_.backward_seconds - before.backward_seconds);
  const std::uint64_t delta_cells = timings_.cells - before.cells;
  const std::uint64_t delta_swept = timings_.swept_cells - before.swept_cells;
  if (delta_swept > 0) {
    static obs::Gauge& occupancy = obs::registry().gauge(
        "gnumap_phmm_lane_occupancy",
        "Useful / swept DP cells of the last batched PHMM run (1.0 = no "
        "padding lanes or cells)");
    occupancy.set(static_cast<double>(delta_cells) /
                  static_cast<double>(delta_swept));
  }
  if (delta_cells > 0 && delta_seconds > 0.0) {
    static obs::Gauge& gcups = obs::registry().gauge(
        "gnumap_phmm_gcups",
        "Billions of useful DP cell updates per second (forward + backward) "
        "of the last batched PHMM run");
    gcups.set(static_cast<double>(delta_cells) / delta_seconds / 1e9);
  }
}

void BatchedForward::run_pack(std::span<const std::size_t> task_ids,
                              std::size_t n, std::size_t m,
                              const TaskConsumer* consume) {
  if (precision_ == Precision::kSingle) {
    run_pack_impl<float>(task_ids, n, m, consume);
  } else {
    run_pack_impl<double>(task_ids, n, m, consume);
  }
}

template <typename T>
void BatchedForward::run_pack_impl(std::span<const std::size_t> task_ids,
                                   std::size_t n, std::size_t m,
                                   const TaskConsumer* consume) {
  constexpr bool kF32 = std::is_same_v<T, float>;
  const detail::KernelBackend backend = backend_for(level_);
  const std::size_t W = kF32 ? backend.width_f32 : backend.width;
  const auto interleave = [&] {
    if constexpr (kF32) {
      return backend.interleave_f32;
    } else {
      return backend.interleave;
    }
  }();
  const std::size_t active = task_ids.size();
  const std::size_t stride = m + 1;
  const std::size_t cells = (n + 1) * stride;
  const std::size_t row_w = stride * W;  // lane-interleaved row

  // Per-lane DP shapes.  When every live lane matches the pack shape the
  // uniform kernels run (no masks, fused transpose flush, trash-matrix
  // padding); otherwise the masked kernels keep each lane bit-identical to
  // a solo scalar align of its own (lane_n, lane_m) problem.
  bool uniform = true;
  for (std::size_t l = 0; l < kMaxWidth; ++l) lane_n_[l] = lane_m_[l] = 0;
  for (std::size_t l = 0; l < active; ++l) {
    const Task& task = tasks_[task_ids[l]];
    lane_n_[l] = task.pwm->length();
    lane_m_[l] = task.window.size();
    uniform = uniform && lane_n_[l] == n && lane_m_[l] == m;
  }

  // The kernels keep only two lane-interleaved rows per matrix (ping-pong)
  // and stream each finished row straight into the per-task matrices, so the
  // scratch footprint is one full emission table plus 12 rows.  Padding
  // lanes of a partial uniform pack stage zero emissions (so no stale mass,
  // or NaN from reused scratch, ever enters them) and get a trash matrix to
  // absorb their streamed output; masked packs never write padding lanes.
  LaneScratch<T>& sc = scratch<T>();
  resize_for_overwrite(sc.pstar, n * row_w);
  for (auto* buf : {&sc.fm, &sc.fgx, &sc.fgy, &sc.bm, &sc.bgx, &sc.bgy}) {
    resize_for_overwrite(*buf, 2 * row_w);
  }
  if (uniform && active < W) resize_for_overwrite(trash_, cells);

  // p*(i, y_j) per lane, flattened as pstar[((i-1)*(m+1) + j)*W + l] for
  // 1-based i, j — the lane-interleaved twin of the scalar kernel's layout.
  // Per lane: decode the window symbols once and compute the mixed-emission
  // table into reusable scratch; then each DP row is gathered contiguously
  // and interleaved into pstar_ with the backend's vector transpose.  Cells
  // outside a lane's own extent stage exact zeros — the masked recursions
  // rely on that to keep out-of-extent fm at +0.0.  The j == 0 slots of
  // each interleaved row are left untouched — neither sweep reads them
  // (emissions are 1-based in j).
  resize_for_overwrite(sc.row_stage, W * m);
  if (ycodes_.size() != W * m) ycodes_.resize(W * m);
  std::fill(sc.row_stage.begin() + active * m, sc.row_stage.end(), T(0));
  const T* stage[kMaxWidth];
  for (std::size_t l = 0; l < W; ++l) stage[l] = sc.row_stage.data() + l * m;
  for (std::size_t l = 0; l < active; ++l) {
    const Task& task = tasks_[task_ids[l]];
    task.pwm->mixed_emissions(params_, mixed_[l]);
    std::uint8_t* codes = ycodes_.data() + l * m;
    for (std::size_t j = 0; j < lane_m_[l]; ++j) {
      codes[j] = std::min<std::uint8_t>(task.window[j], 4);
    }
  }
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t l = 0; l < active; ++l) {
      T* out = sc.row_stage.data() + l * m;
      if (i <= lane_n_[l]) {
        const double* mixed_row = &mixed_[l][(i - 1) * 5];
        const std::uint8_t* codes = ycodes_.data() + l * m;
        const std::size_t ml = lane_m_[l];
        for (std::size_t j = 0; j < ml; ++j) {
          out[j] = static_cast<T>(mixed_row[codes[j]]);
        }
        std::fill(out + ml, out + m, T(0));
      } else {
        std::fill(out, out + m, T(0));
      }
    }
    interleave(&sc.pstar[(i - 1) * row_w + W], stage, m);
  }

  // Masked packs additionally stage the column mask and the backward-init
  // rows.  The init values are computed per lane in double with the scalar
  // kernel's exact expression trees (then narrowed to T), so a double
  // masked lane's backward matrices match the oracle bit for bit.
  if (!uniform) {
    resize_for_overwrite(sc.colmask, row_w);
    for (std::size_t j = 0; j <= m; ++j) {
      for (std::size_t l = 0; l < W; ++l) {
        sc.colmask[j * W + l] =
            (l < active && j <= lane_m_[l]) ? T(1) : T(0);
      }
    }
    for (auto* buf : {&sc.binit_bm, &sc.binit_bgx, &sc.binit_bgy}) {
      resize_for_overwrite(*buf, row_w);
      std::fill(buf->begin(), buf->end(), T(0));
    }
    if (mode_ == BoundaryMode::kSemiGlobal) {
      // Free genome suffix: finishing anywhere in the last row costs
      // nothing; a path may not end in G_Y.
      for (std::size_t l = 0; l < active; ++l) {
        for (std::size_t j = 0; j <= lane_m_[l]; ++j) {
          sc.binit_bm[j * W + l] = T(1);
          sc.binit_bgx[j * W + l] = T(1);
        }
      }
    } else {
      // Global: within the last row, paths may still consume trailing
      // genome gaps — the same q*t chain the uniform kernel computes.
      const double q_t_mg = params_.q * params_.t_mg();
      const double q_t_gg = params_.q * params_.t_gg();
      resize_for_overwrite(binit_chain_, stride);
      for (std::size_t l = 0; l < active; ++l) {
        const std::size_t ml = lane_m_[l];
        binit_chain_[ml] = 1.0;
        for (std::size_t j = ml; j-- > 0;) {
          binit_chain_[j] = q_t_gg * binit_chain_[j + 1];
        }
        sc.binit_bm[ml * W + l] = T(1);
        sc.binit_bgx[ml * W + l] = T(1);
        sc.binit_bgy[ml * W + l] = T(1);
        for (std::size_t j = 0; j < ml; ++j) {
          sc.binit_bm[j * W + l] =
              static_cast<T>(q_t_mg * binit_chain_[j + 1]);
          sc.binit_bgy[j * W + l] = static_cast<T>(binit_chain_[j]);
          // bgx stays 0 below the corner: G_X needs another read base.
        }
      }
    }
  }

  // Size the destination matrices up front: the kernels stream every
  // finished row directly into them.  Uniform packs write all
  // (n+1)*(m+1) cells of all six matrices (boundary zeros included) with
  // padding lanes pointed at the shared trash matrix; masked packs write
  // exactly each live lane's own (lane_n+1)*(lane_m+1) cells.  In drain
  // mode the destinations are the recycled pool slots — after the first
  // pack of a shape they are L2-hot, which is precisely the point.
  AlignmentMatrices* dst[kMaxWidth] = {};
  std::array<double*, kMaxWidth> out_fm, out_fgx, out_fgy, out_bm, out_bgx,
      out_bgy;
  for (std::size_t l = 0; l < W; ++l) {
    if (l < active) {
      dst[l] = consume != nullptr ? &pool_[l] : &mats_[task_ids[l]];
      AlignmentMatrices& mats = *dst[l];
      mats.n = lane_n_[l];
      mats.m = lane_m_[l];
      const std::size_t lane_cells = (lane_n_[l] + 1) * (lane_m_[l] + 1);
      for (auto field : {&AlignmentMatrices::fm, &AlignmentMatrices::fgx,
                         &AlignmentMatrices::fgy, &AlignmentMatrices::bm,
                         &AlignmentMatrices::bgx, &AlignmentMatrices::bgy}) {
        resize_for_overwrite(mats.*field, lane_cells);
      }
      out_fm[l] = mats.fm.data();
      out_fgx[l] = mats.fgx.data();
      out_fgy[l] = mats.fgy.data();
      out_bm[l] = mats.bm.data();
      out_bgx[l] = mats.bgx.data();
      out_bgy[l] = mats.bgy.data();
    } else if (uniform) {
      out_fm[l] = out_fgx[l] = out_fgy[l] = trash_.data();
      out_bm[l] = out_bgx[l] = out_bgy[l] = trash_.data();
    } else {
      out_fm[l] = out_fgx[l] = out_fgy[l] = nullptr;
      out_bm[l] = out_bgx[l] = out_bgy[l] = nullptr;
    }
  }

  const detail::PackConstants constants{
      params_.t_mm(), params_.t_mg(), params_.t_gm(), params_.t_gg(),
      params_.q,      mode_ == BoundaryMode::kSemiGlobal};
  alignas(64) std::array<double, kMaxWidth> log_scale{};
  alignas(64) std::array<double, kMaxWidth> log_likelihood{};
  std::array<std::uint8_t, kMaxWidth> ok{};
  detail::PackStateT<T> state;
  state.n = n;
  state.m = m;
  state.active = active;
  state.pstar = sc.pstar.data();
  state.fm = sc.fm.data();
  state.fgx = sc.fgx.data();
  state.fgy = sc.fgy.data();
  state.bm = sc.bm.data();
  state.bgx = sc.bgx.data();
  state.bgy = sc.bgy.data();
  state.out_fm = out_fm.data();
  state.out_fgx = out_fgx.data();
  state.out_fgy = out_fgy.data();
  state.out_bm = out_bm.data();
  state.out_bgx = out_bgx.data();
  state.out_bgy = out_bgy.data();
  state.log_scale = log_scale.data();
  state.log_likelihood = log_likelihood.data();
  state.ok = ok.data();
  if (!uniform) {
    state.colmask = sc.colmask.data();
    state.binit_bm = sc.binit_bm.data();
    state.binit_bgx = sc.binit_bgx.data();
    state.binit_bgy = sc.binit_bgy.data();
    state.lane_n = lane_n_;
    state.lane_m = lane_m_;
  }

  const auto forward = [&] {
    if constexpr (kF32) {
      return uniform ? backend.forward_f32 : backend.forward_masked_f32;
    } else {
      return uniform ? backend.forward : backend.forward_masked;
    }
  }();
  const auto backward = [&] {
    if constexpr (kF32) {
      return uniform ? backend.backward_f32 : backend.backward_masked_f32;
    } else {
      return uniform ? backend.backward : backend.backward_masked;
    }
  }();
  const DenormalFlushGuard ftz(kF32);
  Timer forward_timer;
  forward(constants, state);
  timings_.forward_seconds += forward_timer.seconds();
  Timer backward_timer;
  backward(constants, state);
  timings_.backward_seconds += backward_timer.seconds();

  for (std::size_t l = 0; l < active; ++l) {
    const std::size_t t = task_ids[l];
    AlignmentMatrices& mats = *dst[l];
    mats.log_likelihood = log_likelihood[l];
    outcomes_[t] = BatchOutcome{tasks_[t].tag, log_likelihood[l], ok[l] != 0};
    const std::size_t lane_cells = (lane_n_[l] + 1) * (lane_m_[l] + 1);
    timings_.cells += lane_cells;
    if (ok[l] == 0) {
      // A failed scalar align never runs the backward sweep, leaving those
      // matrices zeroed; discard what the lane computed to match.
      mats.bm.assign(lane_cells, 0.0);
      mats.bgx.assign(lane_cells, 0.0);
      mats.bgy.assign(lane_cells, 0.0);
    }
  }
  timings_.tasks += active;
  timings_.swept_cells += W * cells;

  if (consume != nullptr) {
    for (std::size_t l = 0; l < active; ++l) {
      pack_task_[l] = task_ids[l];
      pack_mats_[l] = dst[l];
    }
    pack_count_ = active;
    for (std::size_t l = 0; l < active; ++l) (*consume)(task_ids[l]);
    pack_count_ = 0;
  }
}

}  // namespace gnumap::phmm

#include "gnumap/phmm/batched.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <string>

#include "gnumap/obs/trace.hpp"
#include "gnumap/phmm/batched_kernels.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap::phmm {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

detail::KernelBackend backend_for(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return detail::avx2_backend();
    case SimdLevel::kSse2:
      return detail::sse2_backend();
    default:
      return detail::scalar_backend();
  }
}

/// Sizes `v` to exactly `size` elements without clearing existing contents
/// (only a grown tail is value-initialized).  Used where every retained
/// element is overwritten before it is read.
void resize_for_overwrite(std::vector<double>& v, std::size_t size) {
  if (v.size() != size) v.resize(size);
}

/// Parses a GNUMAP_SIMD value; returns kAuto for unknown/empty strings (the
/// documented "ignored" behavior — a typo must not silently de-vectorize).
SimdLevel parse_simd_env(const char* value) {
  if (value == nullptr) return SimdLevel::kAuto;
  std::string lowered(value);
  for (char& ch : lowered) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  if (lowered == "scalar" || lowered == "0") return SimdLevel::kScalar;
  if (lowered == "sse2" || lowered == "1") return SimdLevel::kSse2;
  if (lowered == "avx2" || lowered == "2") return SimdLevel::kAvx2;
  return SimdLevel::kAuto;
}

}  // namespace

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    default:
      return "auto";
  }
}

SimdLevel max_supported_simd_level() {
  if (detail::avx2_backend().width != 0 && detail::cpu_supports_avx2()) {
    return SimdLevel::kAvx2;
  }
  if (detail::sse2_backend().width != 0 && detail::cpu_supports_sse2()) {
    return SimdLevel::kSse2;
  }
  return SimdLevel::kScalar;
}

SimdLevel resolve_simd_level(SimdLevel requested) {
  if (requested == SimdLevel::kAuto) {
    requested = parse_simd_env(std::getenv("GNUMAP_SIMD"));
  }
  const SimdLevel best = max_supported_simd_level();
  if (requested == SimdLevel::kAuto || requested > best) return best;
  return requested;
}

BatchedForward::BatchedForward(const PhmmParams& params, BoundaryMode mode,
                               SimdLevel level) {
  configure(params, mode, level);
}

void BatchedForward::configure(const PhmmParams& params, BoundaryMode mode,
                               SimdLevel level) {
  params.validate();
  params_ = params;
  mode_ = mode;
  level_ = resolve_simd_level(level);
  clear();
}

void BatchedForward::clear() {
  tasks_.clear();
  outcomes_.clear();
  order_.clear();
  timings_ = KernelTimings{};
  // mats_ and the SoA scratch are deliberately kept: they are the capacity
  // cache that makes a long-lived engine allocation-free in steady state.
}

std::size_t BatchedForward::add(const Pwm& pwm,
                                std::span<const std::uint8_t> window,
                                std::uint64_t tag) {
  tasks_.push_back(Task{&pwm, window, tag});
  return tasks_.size() - 1;
}

void BatchedForward::run() { run_impl(nullptr); }

void BatchedForward::run(const TaskConsumer& consume) { run_impl(&consume); }

const AlignmentMatrices& BatchedForward::matrices(std::size_t task) const {
  // Inside a run(consume) callback the task's matrices live in a pool slot;
  // packs are at most kMaxWidth wide, so a linear scan is cheapest.
  for (std::size_t k = 0; k < pack_count_; ++k) {
    if (pack_task_[k] == task) return *pack_mats_[k];
  }
  return mats_[task];
}

void BatchedForward::run_impl(const TaskConsumer* consume) {
  const std::size_t count = tasks_.size();
  obs::TraceSpan span("batched_sweep", "phmm", "tasks",
                      static_cast<double>(count), "width",
                      static_cast<double>(backend_for(level_).width));
  outcomes_.assign(count, BatchOutcome{});
  if (consume != nullptr) {
    if (pool_.size() < kMaxWidth) pool_.resize(kMaxWidth);
  } else if (mats_.size() < count) {
    mats_.resize(count);  // never shrinks: capacity pool
  }

  // Group tasks by identical DP shape: every lane of a pack must share
  // (n, m) or per-row rescaling would mix unrelated problems.
  order_.resize(count);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  auto shape = [this](std::size_t t) {
    return std::pair<std::size_t, std::size_t>(tasks_[t].pwm->length(),
                                               tasks_[t].window.size());
  };
  std::stable_sort(order_.begin(), order_.end(),
                   [&](std::size_t a, std::size_t b) { return shape(a) < shape(b); });

  const std::size_t width = backend_for(level_).width;
  std::size_t begin = 0;
  while (begin < count) {
    const auto [n, m] = shape(order_[begin]);
    std::size_t end = begin + 1;
    while (end < count && shape(order_[end]) == std::pair(n, m)) ++end;

    if (n == 0 || m == 0) {
      // Degenerate tasks mirror a failed PairHmm::align: zeroed matrices of
      // the nominal shape, -inf likelihood, no sweep.
      for (std::size_t k = begin; k < end; ++k) {
        const std::size_t t = order_[k];
        AlignmentMatrices& dst = consume != nullptr ? pool_[0] : mats_[t];
        dst.reset(n, m);
        outcomes_[t] = BatchOutcome{tasks_[t].tag, kNegInf, false};
        ++timings_.tasks;
        if (consume != nullptr) {
          pack_task_[0] = t;
          pack_mats_[0] = &dst;
          pack_count_ = 1;
          (*consume)(t);
          pack_count_ = 0;
        }
      }
    } else {
      for (std::size_t k = begin; k < end; k += width) {
        const std::size_t lanes = std::min(width, end - k);
        run_pack(std::span<const std::size_t>(order_.data() + k, lanes), n, m,
                 consume);
      }
    }
    begin = end;
  }
}

void BatchedForward::run_pack(std::span<const std::size_t> task_ids,
                              std::size_t n, std::size_t m,
                              const TaskConsumer* consume) {
  const detail::KernelBackend backend = backend_for(level_);
  const std::size_t W = backend.width;
  const std::size_t active = task_ids.size();
  const std::size_t stride = m + 1;
  const std::size_t cells = (n + 1) * stride;
  const std::size_t row_w = stride * W;  // lane-interleaved row

  // The kernels keep only two lane-interleaved rows per matrix (ping-pong)
  // and stream each finished row straight into the per-task matrices, so the
  // scratch footprint is one full emission table plus 12 rows.  Padding
  // lanes of a partial pack stage zero emissions (so no stale mass, or NaN
  // from reused scratch, ever enters them) and get a trash matrix to absorb
  // their streamed output.
  resize_for_overwrite(pstar_, n * row_w);
  for (auto* buf : {&fm_, &fgx_, &fgy_, &bm_, &bgx_, &bgy_}) {
    resize_for_overwrite(*buf, 2 * row_w);
  }
  if (active < W) resize_for_overwrite(trash_, cells);

  // p*(i, y_j) per lane, flattened as pstar[((i-1)*(m+1) + j)*W + l] for
  // 1-based i, j — the lane-interleaved twin of the scalar kernel's layout.
  // Per lane: decode the window symbols once and compute the mixed-emission
  // table into reusable scratch; then each DP row is gathered contiguously
  // and interleaved into pstar_ with the backend's vector transpose.  The
  // j == 0 slots of each interleaved row are left untouched — neither sweep
  // reads them (emissions are 1-based in j).
  resize_for_overwrite(row_stage_, W * m);
  if (ycodes_.size() != W * m) ycodes_.resize(W * m);
  std::fill(row_stage_.begin() + active * m, row_stage_.end(), 0.0);
  const double* stage[kMaxWidth];
  for (std::size_t l = 0; l < W; ++l) stage[l] = row_stage_.data() + l * m;
  for (std::size_t l = 0; l < active; ++l) {
    const Task& task = tasks_[task_ids[l]];
    task.pwm->mixed_emissions(params_, mixed_[l]);
    std::uint8_t* codes = ycodes_.data() + l * m;
    for (std::size_t j = 0; j < m; ++j) {
      codes[j] = std::min<std::uint8_t>(task.window[j], 4);
    }
  }
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t l = 0; l < active; ++l) {
      const double* mixed_row = &mixed_[l][(i - 1) * 5];
      const std::uint8_t* codes = ycodes_.data() + l * m;
      double* out = row_stage_.data() + l * m;
      for (std::size_t j = 0; j < m; ++j) out[j] = mixed_row[codes[j]];
    }
    backend.interleave(&pstar_[(i - 1) * row_w + W], stage, m);
  }

  // Size the destination matrices up front: the kernels stream every
  // finished row directly into them (all (n+1)*(m+1) cells of all six
  // matrices are written, boundary zeros included).  Padding lanes point at
  // the shared trash matrix.  In drain mode the destinations are the
  // recycled pool slots — after the first pack of a shape they are L2-hot,
  // which is precisely the point.
  AlignmentMatrices* dst[kMaxWidth];
  std::array<double*, kMaxWidth> out_fm, out_fgx, out_fgy, out_bm, out_bgx,
      out_bgy;
  for (std::size_t l = 0; l < W; ++l) {
    if (l < active) {
      dst[l] = consume != nullptr ? &pool_[l] : &mats_[task_ids[l]];
      AlignmentMatrices& mats = *dst[l];
      mats.n = n;
      mats.m = m;
      for (auto field : {&AlignmentMatrices::fm, &AlignmentMatrices::fgx,
                         &AlignmentMatrices::fgy, &AlignmentMatrices::bm,
                         &AlignmentMatrices::bgx, &AlignmentMatrices::bgy}) {
        resize_for_overwrite(mats.*field, cells);
      }
      out_fm[l] = mats.fm.data();
      out_fgx[l] = mats.fgx.data();
      out_fgy[l] = mats.fgy.data();
      out_bm[l] = mats.bm.data();
      out_bgx[l] = mats.bgx.data();
      out_bgy[l] = mats.bgy.data();
    } else {
      out_fm[l] = out_fgx[l] = out_fgy[l] = trash_.data();
      out_bm[l] = out_bgx[l] = out_bgy[l] = trash_.data();
    }
  }

  const detail::PackConstants constants{
      params_.t_mm(), params_.t_mg(), params_.t_gm(), params_.t_gg(),
      params_.q,      mode_ == BoundaryMode::kSemiGlobal};
  alignas(32) std::array<double, kMaxWidth> log_scale{};
  alignas(32) std::array<double, kMaxWidth> log_likelihood{};
  std::array<std::uint8_t, kMaxWidth> ok{};
  detail::PackState state;
  state.n = n;
  state.m = m;
  state.active = active;
  state.pstar = pstar_.data();
  state.fm = fm_.data();
  state.fgx = fgx_.data();
  state.fgy = fgy_.data();
  state.bm = bm_.data();
  state.bgx = bgx_.data();
  state.bgy = bgy_.data();
  state.out_fm = out_fm.data();
  state.out_fgx = out_fgx.data();
  state.out_fgy = out_fgy.data();
  state.out_bm = out_bm.data();
  state.out_bgx = out_bgx.data();
  state.out_bgy = out_bgy.data();
  state.log_scale = log_scale.data();
  state.log_likelihood = log_likelihood.data();
  state.ok = ok.data();

  Timer forward_timer;
  backend.forward(constants, state);
  timings_.forward_seconds += forward_timer.seconds();
  Timer backward_timer;
  backend.backward(constants, state);
  timings_.backward_seconds += backward_timer.seconds();

  for (std::size_t l = 0; l < active; ++l) {
    const std::size_t t = task_ids[l];
    AlignmentMatrices& mats = *dst[l];
    mats.log_likelihood = log_likelihood[l];
    outcomes_[t] = BatchOutcome{tasks_[t].tag, log_likelihood[l], ok[l] != 0};
    timings_.cells += cells;
    if (ok[l] == 0) {
      // A failed scalar align never runs the backward sweep, leaving those
      // matrices zeroed; discard what the lane computed to match.
      mats.bm.assign(cells, 0.0);
      mats.bgx.assign(cells, 0.0);
      mats.bgy.assign(cells, 0.0);
    }
  }
  timings_.tasks += active;

  if (consume != nullptr) {
    for (std::size_t l = 0; l < active; ++l) {
      pack_task_[l] = task_ids[l];
      pack_mats_[l] = dst[l];
    }
    pack_count_ = active;
    for (std::size_t l = 0; l < active; ++l) (*consume)(task_ids[l]);
    pack_count_ = 0;
  }
}

}  // namespace gnumap::phmm

// Needleman-Wunsch affine-gap alignment.
//
// The paper positions PHMMs as "a common alternative for sequence alignment
// to the standard Needleman-Wunsch Algorithm".  This implementation is the
// substrate for the MAQ-like baseline (which commits to a single best
// alignment) and serves as a comparison point in the ablation benches.
// Scores are additive; a quality-weighted scheme matching the baseline's
// needs is provided alongside the plain match/mismatch one.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gnumap/genome/align_ops.hpp"
#include "gnumap/io/read.hpp"

namespace gnumap {

struct NwParams {
  /// Score for a matching base pair (scaled by base quality if enabled).
  double match = 1.0;
  /// Penalty (negative score) for a mismatching pair.
  double mismatch = -3.0;
  double gap_open = -5.0;
  double gap_extend = -2.0;
  /// If true, match/mismatch scores are scaled by 1 - error(quality), so
  /// low-quality bases neither help nor hurt much — the MAQ-style weighting.
  bool quality_weighted = true;
  /// Semi-global: no penalty for unaligned genome flanks (read is global).
  bool free_genome_flanks = true;
};

struct NwResult {
  double score = 0.0;
  std::vector<AlignOp> ops;
  /// 0-based first/one-past-last aligned window columns.
  std::size_t window_begin = 0;
  std::size_t window_end = 0;
  /// Number of aligned pairs whose bases differ.
  int mismatches = 0;
  /// Sum of Phred qualities at mismatching read bases (MAQ's sum-of-quals).
  int mismatch_quality_sum = 0;
};

/// Aligns `read` against `window`; returns the best-scoring alignment.
NwResult nw_align(const Read& read, std::span<const std::uint8_t> window,
                  const NwParams& params);

}  // namespace gnumap

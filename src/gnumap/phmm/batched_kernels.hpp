// Internal backend interface for the batched Pair-HMM kernels.
//
// A backend is a set of (width, forward, backward) kernel triples operating
// on one SIMD pack: `width` independent alignment problems swept together.
// DP rows are lane-interleaved while being computed (cell j of lane l lives
// at [j * width + l] within the row) and transposed into per-lane row-major
// destination matrices as each row is finished.  Backends are compiled per
// instruction set — the AVX2 one in its own translation unit with -mavx2 —
// and selected at runtime by BatchedForward; a backend whose ISA was not
// compiled in reports width 0.
//
// Each backend exposes four kernel variants per sweep direction:
//   * fp64 uniform  — every lane shares (n, m); the original PR 2 kernels.
//   * fp64 masked   — lanes carry their own (n_l, m_l) <= (n, m); per-lane
//     column masks and staged backward-init rows keep every lane's result
//     bit-identical to a scalar PairHmm::align of that lane alone (the
//     length-binned scheduler's requirement; see docs/KERNELS.md §7).
//   * fp32 uniform / fp32 masked — the same recursions in single precision
//     at twice the lane count, writing widened doubles into the destination
//     matrices (downstream posterior extraction is unchanged).
// See batched_kernels_impl.hpp for the shared templated kernel body and
// docs/KERNELS.md for the math.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gnumap::phmm::detail {

/// Transition/emission constants shared by every lane of a pack.
struct PackConstants {
  double t_mm, t_mg, t_gm, t_gg, q;
  bool semi_global;
};

/// One pack's state, templated over the lane element type (double or float).
///
/// The DP recursions only ever look one row back (forward) or one row ahead
/// (backward), so the kernels keep just two lane-interleaved rows of scratch
/// per matrix and transpose each finished, rescaled row straight into the
/// per-lane destination matrices while it is still hot in L1.  That fused
/// copy-out is what makes batching pay: a separate de-interleave pass over
/// full (n+1)*(m+1)*width buffers used to cost more than the sweeps.
///
/// `fm`..`bgy` therefore point at 2*(m+1)*width elements of ping-pong
/// scratch (row i lives at parity i&1); `pstar` is the full n*(m+1)*width
/// emission table.  `out_*[l]` is the base of lane l's destination matrix —
/// always double, regardless of T (fp32 lanes widen on copy-out).
///
/// Uniform packs: every lane shares (n, m); `out_*[l]` has row stride m+1
/// and the kernels write every one of its (n+1)*(m+1) cells, boundary zeros
/// included.  Padding lanes (l >= active) must point at a caller-owned trash
/// matrix of the same extent, and their pstar lanes must be zero so no
/// probability mass (or stray NaN) ever enters them.
///
/// Masked packs (`colmask != nullptr`): lane l solves its own problem of
/// shape (lane_n[l], lane_m[l]) <= (n, m).  `colmask` is a lane-interleaved
/// (m+1)-cell row holding exactly 1.0 where j <= lane_m[l] for a live lane
/// and exactly 0.0 elsewhere (padding lanes are all-zero); `binit_*` are
/// lane-interleaved backward-initialization rows staged by the caller with
/// the scalar oracle's row-n_l init values.  The kernels write only the
/// (lane_n[l]+1) x (lane_m[l]+1) cells of each live lane's destination
/// (row stride lane_m[l]+1) — padding lanes are never written, so masked
/// packs need no trash matrix.  pstar cells outside a lane's extent must be
/// staged as exact zeros.
template <typename T>
struct PackStateT {
  std::size_t n = 0;       ///< pack read length (max over lanes; >= 1)
  std::size_t m = 0;       ///< pack window length (max over lanes; >= 1)
  std::size_t active = 0;  ///< live lanes, 1 <= active <= width
  const T* pstar = nullptr;  ///< mixed emissions p*(i, y_j)
  T* fm = nullptr;  ///< ping-pong scratch, 2*(m+1)*width elements each
  T* fgx = nullptr;
  T* fgy = nullptr;
  T* bm = nullptr;
  T* bgx = nullptr;
  T* bgy = nullptr;
  double* const* out_fm = nullptr;  ///< [width] per-lane destinations
  double* const* out_fgx = nullptr;
  double* const* out_fgy = nullptr;
  double* const* out_bm = nullptr;
  double* const* out_bgx = nullptr;
  double* const* out_bgy = nullptr;
  double* log_scale = nullptr;       ///< [width] accumulated log row scales
  double* log_likelihood = nullptr;  ///< [width] out: log P(x, y)
  std::uint8_t* ok = nullptr;        ///< [width] out: alignment path exists
  // Masked (mixed-shape) packs only; all null for uniform packs.
  const T* colmask = nullptr;    ///< [(m+1)*width] 1.0 where j <= lane_m[l]
  const T* binit_bm = nullptr;   ///< [(m+1)*width] backward row-n_l init
  const T* binit_bgx = nullptr;
  const T* binit_bgy = nullptr;
  const std::size_t* lane_n = nullptr;  ///< [width] per-lane read length
  const std::size_t* lane_m = nullptr;  ///< [width] per-lane window length
};

using PackState = PackStateT<double>;
using PackStateF = PackStateT<float>;

using PackFn = void (*)(const PackConstants&, const PackState&);
using PackFnF = void (*)(const PackConstants&, const PackStateF&);

/// Interleaves `width` contiguous source rows (`src[l][j]`, `count` cells)
/// into one lane-interleaved row (`dst[j * width + l]`) — the inverse of the
/// kernels' row transpose, used to build the pstar table with vector stores.
using InterleaveFn = void (*)(double* dst, const double* const* src,
                              std::size_t count);
using InterleaveFnF = void (*)(float* dst, const float* const* src,
                               std::size_t count);

struct KernelBackend {
  std::size_t width = 0;  ///< fp64 lanes; 0 = backend not compiled in
  PackFn forward = nullptr;
  PackFn backward = nullptr;
  PackFn forward_masked = nullptr;
  PackFn backward_masked = nullptr;
  InterleaveFn interleave = nullptr;
  std::size_t width_f32 = 0;  ///< fp32 lanes (2x width on SSE2/AVX2)
  PackFnF forward_f32 = nullptr;
  PackFnF backward_f32 = nullptr;
  PackFnF forward_masked_f32 = nullptr;
  PackFnF backward_masked_f32 = nullptr;
  InterleaveFnF interleave_f32 = nullptr;
};

KernelBackend scalar_backend();
KernelBackend sse2_backend();
KernelBackend avx2_backend();

/// Runtime CPUID checks (always false on non-x86 builds).
bool cpu_supports_sse2();
bool cpu_supports_avx2();

}  // namespace gnumap::phmm::detail

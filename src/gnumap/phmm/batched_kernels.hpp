// Internal backend interface for the batched Pair-HMM kernels.
//
// A backend is a (width, forward, backward) triple operating on one SIMD
// pack: `width` independent alignment problems of identical (n, m) shape.
// DP rows are lane-interleaved while being computed (cell j of lane l lives
// at [j * width + l] within the row) and transposed into per-lane row-major
// destination matrices as each row is finished.  Backends are compiled per
// instruction set — the AVX2 one in its own translation unit with -mavx2 —
// and selected at runtime by BatchedForward; a backend whose ISA was not
// compiled in reports width 0.  See batched_kernels_impl.hpp for the shared
// templated kernel body and docs/KERNELS.md for the math.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gnumap::phmm::detail {

/// Transition/emission constants shared by every lane of a pack.
struct PackConstants {
  double t_mm, t_mg, t_gm, t_gg, q;
  bool semi_global;
};

/// One pack's state.
///
/// The DP recursions only ever look one row back (forward) or one row ahead
/// (backward), so the kernels keep just two lane-interleaved rows of scratch
/// per matrix and transpose each finished, rescaled row straight into the
/// per-lane destination matrices while it is still hot in L1.  That fused
/// copy-out is what makes batching pay: a separate de-interleave pass over
/// full (n+1)*(m+1)*width buffers used to cost more than the sweeps.
///
/// `fm`..`bgy` therefore point at 2*(m+1)*width doubles of ping-pong scratch
/// (row i lives at parity i&1); `pstar` is the full n*(m+1)*width emission
/// table.  `out_*[l]` is the base of lane l's destination matrix, row stride
/// (m+1); the kernels write every one of its (n+1)*(m+1) cells, including
/// boundary zeros.  Padding lanes (l >= active) must point at a caller-owned
/// trash matrix of the same extent, and their pstar lanes must be zero so no
/// probability mass (or stray NaN) ever enters them.
struct PackState {
  std::size_t n = 0;       ///< read length (>= 1)
  std::size_t m = 0;       ///< window length (>= 1)
  std::size_t active = 0;  ///< live lanes, 1 <= active <= width
  const double* pstar = nullptr;  ///< mixed emissions p*(i, y_j)
  double* fm = nullptr;   ///< ping-pong scratch, 2*(m+1)*width each
  double* fgx = nullptr;
  double* fgy = nullptr;
  double* bm = nullptr;
  double* bgx = nullptr;
  double* bgy = nullptr;
  double* const* out_fm = nullptr;  ///< [width] per-lane destinations
  double* const* out_fgx = nullptr;
  double* const* out_fgy = nullptr;
  double* const* out_bm = nullptr;
  double* const* out_bgx = nullptr;
  double* const* out_bgy = nullptr;
  double* log_scale = nullptr;       ///< [width] accumulated log row scales
  double* log_likelihood = nullptr;  ///< [width] out: log P(x, y)
  std::uint8_t* ok = nullptr;        ///< [width] out: alignment path exists
};

using PackFn = void (*)(const PackConstants&, const PackState&);

/// Interleaves `width` contiguous source rows (`src[l][j]`, `count` cells)
/// into one lane-interleaved row (`dst[j * width + l]`) — the inverse of the
/// kernels' row transpose, used to build the pstar table with vector stores.
using InterleaveFn = void (*)(double* dst, const double* const* src,
                              std::size_t count);

struct KernelBackend {
  std::size_t width = 0;  ///< lanes; 0 = backend not compiled in
  PackFn forward = nullptr;
  PackFn backward = nullptr;
  InterleaveFn interleave = nullptr;
};

KernelBackend scalar_backend();
KernelBackend sse2_backend();
KernelBackend avx2_backend();

/// Runtime CPUID checks (always false on non-x86 builds).
bool cpu_supports_sse2();
bool cpu_supports_avx2();

}  // namespace gnumap::phmm::detail

// Shared templated body of the batched Pair-HMM forward/backward kernels.
//
// Instantiated once per backend (scalar / SSE2 / AVX2) over a vector-traits
// type V providing `width`, `reg`, load/store/set1/zero/add/mul, and an
// in-register `transpose` of width x width cells.  The per-lane arithmetic
// mirrors the scalar kernel in forward_backward.cpp operation for operation
// — same expression trees, same summation order, no fused multiply-add — so
// every lane's result is bit-identical to a scalar PairHmm::align on the
// same task regardless of the lane width.  Any change here must be mirrored
// there (and in docs/KERNELS.md) to keep the oracle property of the
// equivalence suite meaningful.
//
// Memory layout: the sweeps keep only two lane-interleaved rows per matrix
// (the recursions look exactly one row back/ahead) and stream each finished,
// rescaled row into the per-lane destination matrices via deinterleave_row
// while it is still in L1.  Writing boundary zeros is part of the kernels'
// contract: every destination cell is stored exactly once.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

#include "gnumap/phmm/batched_kernels.hpp"

namespace gnumap::phmm::detail {

/// Transposes one lane-interleaved row (`src[j * width + l]`, `row_len`
/// cells) into `width` per-lane row-major rows `dst[l][j]`.  Pure data
/// movement — stored bits are the loaded bits.
template <class V>
inline void deinterleave_row(const double* src, double* const* dst,
                             std::size_t row_len) {
  constexpr std::size_t W = V::width;
  std::size_t j = 0;
  if constexpr (W > 1) {
    for (; j + W <= row_len; j += W) {
      typename V::reg r[W];
      for (std::size_t k = 0; k < W; ++k) r[k] = V::load(src + (j + k) * W);
      V::transpose(r);
      for (std::size_t k = 0; k < W; ++k) V::store(dst[k] + j, r[k]);
    }
  }
  for (; j < row_len; ++j) {
    for (std::size_t k = 0; k < W; ++k) dst[k][j] = src[j * W + k];
  }
}

/// Inverse of deinterleave_row: packs `width` contiguous per-lane rows into
/// one lane-interleaved row.  The same in-register transpose works in both
/// directions (it is an involution on a width x width tile).
template <class V>
inline void interleave_row(double* dst, const double* const* src,
                           std::size_t count) {
  constexpr std::size_t W = V::width;
  std::size_t j = 0;
  if constexpr (W > 1) {
    for (; j + W <= count; j += W) {
      typename V::reg r[W];
      for (std::size_t k = 0; k < W; ++k) r[k] = V::load(src[k] + j);
      V::transpose(r);
      for (std::size_t k = 0; k < W; ++k) V::store(dst + (j + k) * W, r[k]);
    }
  }
  for (; j < count; ++j) {
    for (std::size_t k = 0; k < W; ++k) dst[j * W + k] = src[k][j];
  }
}

/// Per-lane combined sum of three lane-interleaved rows, ascending j with
/// the same per-cell expression tree as scale_row() in forward_backward.cpp
/// ((a + b) + c, accumulated in j order), so the bits match the scalar sum.
template <class V>
inline typename V::reg pack_row_sum(const double* a, const double* b,
                                    const double* c, std::size_t row_len) {
  using reg = typename V::reg;
  constexpr std::size_t W = V::width;
  reg sum = V::zero();
  for (std::size_t j = 0; j < row_len; ++j) {
    sum = V::add(sum, V::add(V::add(V::load(a + j * W), V::load(b + j * W)),
                             V::load(c + j * W)));
  }
  return sum;
}

/// Converts per-lane row sums into rescale factors: 1/sum for lanes with
/// positive mass (logging the removed factor into `log_scale_acc` when
/// non-null), exactly 1.0 otherwise — x * 1.0 is exact, so zero-mass lanes
/// match the scalar kernel's early return.  Also spills the factors to
/// `invs` for the scalar tail of scale_deinterleave_row.
template <class V>
inline typename V::reg row_scale_inverse(typename V::reg sum, double* invs,
                                         double* log_scale_acc) {
  constexpr std::size_t W = V::width;
  alignas(32) double sums[W];
  V::store(sums, sum);
  for (std::size_t l = 0; l < W; ++l) {
    if (sums[l] > 0.0) {
      invs[l] = 1.0 / sums[l];
      if (log_scale_acc != nullptr) log_scale_acc[l] += std::log(sums[l]);
    } else {
      invs[l] = 1.0;
    }
  }
  return V::load(invs);
}

/// Rescale + flush, fused: multiplies a lane-interleaved row by the per-lane
/// factors, stores the scaled row back into `src` (the recursions read it
/// for the adjacent row), and transposes it into the per-lane destination
/// rows — all in one pass over the row.  Each cell is multiplied exactly
/// once, so the stored bits match a separate scale-then-copy.
template <class V>
inline void scale_deinterleave_row(double* src, typename V::reg inv,
                                   const double* invs, double* const* dst,
                                   std::size_t row_len) {
  constexpr std::size_t W = V::width;
  std::size_t j = 0;
  if constexpr (W > 1) {
    for (; j + W <= row_len; j += W) {
      typename V::reg r[W];
      for (std::size_t k = 0; k < W; ++k) {
        r[k] = V::mul(V::load(src + (j + k) * W), inv);
        V::store(src + (j + k) * W, r[k]);
      }
      V::transpose(r);
      for (std::size_t k = 0; k < W; ++k) V::store(dst[k] + j, r[k]);
    }
  }
  for (; j < row_len; ++j) {
    for (std::size_t k = 0; k < W; ++k) {
      const double v = src[j * W + k] * invs[k];
      src[j * W + k] = v;
      dst[k][j] = v;
    }
  }
}

/// Forward sweep + termination.  Streams scaled fm/fgx/fgy rows into the
/// out_* matrices and fills log_scale, log_likelihood, and ok.  Mirrors
/// PairHmm::run_forward + the terminal sum in PairHmm::align.
template <class V>
void forward_pack(const PackConstants& C, const PackState& S) {
  using reg = typename V::reg;
  constexpr std::size_t W = V::width;
  const std::size_t n = S.n;
  const std::size_t m = S.m;
  const std::size_t SW = (m + 1) * W;  // one lane-interleaved row

  const reg t_mm = V::set1(C.t_mm);
  const reg t_mg = V::set1(C.t_mg);
  const reg t_gm = V::set1(C.t_gm);
  const reg t_gg = V::set1(C.t_gg);
  const reg q = V::set1(C.q);
  const reg zero = V::zero();

  // Per-lane destination cursors, advanced one row per sweep step.
  double* dst_fm[W];
  double* dst_fgx[W];
  double* dst_fgy[W];
  for (std::size_t l = 0; l < W; ++l) {
    dst_fm[l] = S.out_fm[l];
    dst_fgx[l] = S.out_fgx[l];
    dst_fgy[l] = S.out_fgy[l];
  }
  const auto advance = [&] {
    for (std::size_t l = 0; l < W; ++l) {
      dst_fm[l] += m + 1;
      dst_fgx[l] += m + 1;
      dst_fgy[l] += m + 1;
    }
  };

  // Row-0 initialization.  Global: only (0, 0) is live.  Semi-global: the
  // read may start after any free genome prefix, so every f_M(0, j) is
  // live.  Padding lanes stay zero so they never acquire probability mass.
  {
    double* fm_row = S.fm;
    double* fgx_row = S.fgx;
    double* fgy_row = S.fgy;
    alignas(32) double init[W];
    for (std::size_t l = 0; l < W; ++l) init[l] = l < S.active ? 1.0 : 0.0;
    const reg one = V::load(init);
    for (std::size_t j = 0; j <= m; ++j) {
      V::store(fm_row + j * W, C.semi_global || j == 0 ? one : zero);
      V::store(fgx_row + j * W, zero);
      V::store(fgy_row + j * W, zero);
    }
    deinterleave_row<V>(fm_row, dst_fm, m + 1);
    deinterleave_row<V>(fgx_row, dst_fgx, m + 1);
    deinterleave_row<V>(fgy_row, dst_fgy, m + 1);
    advance();
  }
  for (std::size_t l = 0; l < W; ++l) S.log_scale[l] = 0.0;

  alignas(32) double invs[W];
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t cur = (i & 1) * SW;
    const std::size_t prev = SW - cur;
    double* fm_row = S.fm + cur;
    double* fgx_row = S.fgx + cur;
    double* fgy_row = S.fgy + cur;
    const double* fm_prev = S.fm + prev;
    const double* fgx_prev = S.fgx + prev;
    const double* fgy_prev = S.fgy + prev;
    const double* p_row = S.pstar + (i - 1) * SW;
    // Column 0 first: fm/fgy are zero (no leading-gap mass in those states;
    // the j = 1 recurrence reads them) and fgx carries leading read gaps in
    // semi-global mode only (see the scalar kernel).
    V::store(fm_row, zero);
    V::store(fgy_row, zero);
    const reg fgx_0 =
        C.semi_global ? V::mul(q, V::add(V::mul(t_mg, V::load(fm_prev)),
                                         V::mul(t_gg, V::load(fgx_prev))))
                      : zero;
    V::store(fgx_row, fgx_0);
    // The row sum for rescaling accumulates in-register as cells are
    // produced, ascending j with the scalar kernel's (fm + fgx) + fgy tree —
    // column 0's fm/fgy terms are exact +0.0 adds, so the bits match a
    // separate ascending sweep over the stored row.  Column j-1 values roll
    // through registers (same bits as a reload, minus the reload — and
    // minus the store-forward stall on the serial within-row fgy chain).
    reg sum = V::add(V::zero(), V::add(V::add(zero, fgx_0), zero));
    reg fm_pm1 = V::load(fm_prev);    // fm_prev[j-1]
    reg fgx_pm1 = V::load(fgx_prev);  // fgx_prev[j-1]
    reg fgy_pm1 = V::load(fgy_prev);  // fgy_prev[j-1]
    reg fm_cm1 = zero;                // fm_row[j-1]
    reg fgy_cm1 = zero;               // fgy_row[j-1]
    for (std::size_t j = 1; j <= m; ++j) {
      const reg fm_pj = V::load(fm_prev + j * W);
      const reg fgx_pj = V::load(fgx_prev + j * W);
      const reg fgy_pj = V::load(fgy_prev + j * W);
      // Durbin et al.: every predecessor of a match sits at (i-1, j-1).
      const reg diag_gaps = V::add(fgx_pm1, fgy_pm1);
      const reg fm_j = V::mul(
          V::load(p_row + j * W),
          V::add(V::mul(t_mm, fm_pm1), V::mul(t_gm, diag_gaps)));
      V::store(fm_row + j * W, fm_j);
      // Read base x_i against a gap: consumes x only.
      const reg fgx_j =
          V::mul(q, V::add(V::mul(t_mg, fm_pj), V::mul(t_gg, fgx_pj)));
      V::store(fgx_row + j * W, fgx_j);
      // Genome base y_j against a gap: consumes y only (within-row).
      const reg fgy_j =
          V::mul(q, V::add(V::mul(t_mg, fm_cm1), V::mul(t_gg, fgy_cm1)));
      V::store(fgy_row + j * W, fgy_j);
      sum = V::add(sum, V::add(V::add(fm_j, fgx_j), fgy_j));
      fm_pm1 = fm_pj;
      fgx_pm1 = fgx_pj;
      fgy_pm1 = fgy_pj;
      fm_cm1 = fm_j;
      fgy_cm1 = fgy_j;
    }
    const reg inv = row_scale_inverse<V>(sum, invs, S.log_scale);
    scale_deinterleave_row<V>(fm_row, inv, invs, dst_fm, m + 1);
    scale_deinterleave_row<V>(fgx_row, inv, invs, dst_fgx, m + 1);
    scale_deinterleave_row<V>(fgy_row, inv, invs, dst_fgy, m + 1);
    advance();
  }

  // Termination: global ends at (N, M); semi-global sums every genome end
  // column (free suffix) in ascending-j order like the scalar kernel.
  alignas(32) double term[W];
  const double* fm_last = S.fm + (n & 1) * SW;
  const double* fgx_last = S.fgx + (n & 1) * SW;
  const double* fgy_last = S.fgy + (n & 1) * SW;
  if (C.semi_global) {
    reg t = V::zero();
    for (std::size_t j = 0; j <= m; ++j) {
      t = V::add(t, V::add(V::load(fm_last + j * W), V::load(fgx_last + j * W)));
    }
    V::store(term, t);
  } else {
    V::store(term, V::add(V::add(V::load(fm_last + m * W),
                                 V::load(fgx_last + m * W)),
                          V::load(fgy_last + m * W)));
  }
  for (std::size_t l = 0; l < W; ++l) {
    if (l < S.active && term[l] > 0.0) {
      S.ok[l] = 1;
      S.log_likelihood[l] = std::log(term[l]) + S.log_scale[l];
    } else {
      S.ok[l] = 0;
      S.log_likelihood[l] = -std::numeric_limits<double>::infinity();
    }
  }
}

/// Backward sweep.  Streams scaled bm/bgx/bgy rows into the out_* matrices
/// from row n down to row 0.  Mirrors PairHmm::run_backward; lanes whose
/// forward pass failed still compute (the caller re-zeroes their backward
/// matrices afterwards, matching the scalar kernel's zeroed backward state
/// for failed alignments).
template <class V>
void backward_pack(const PackConstants& C, const PackState& S) {
  using reg = typename V::reg;
  constexpr std::size_t W = V::width;
  const std::size_t n = S.n;
  const std::size_t m = S.m;
  const std::size_t SW = (m + 1) * W;

  const reg t_mm = V::set1(C.t_mm);
  const reg t_mg = V::set1(C.t_mg);
  const reg t_gm = V::set1(C.t_gm);
  const reg t_gg = V::set1(C.t_gg);
  const reg q = V::set1(C.q);
  const reg zero = V::zero();

  double* dst_bm[W];
  double* dst_bgx[W];
  double* dst_bgy[W];
  for (std::size_t l = 0; l < W; ++l) {
    dst_bm[l] = S.out_bm[l] + n * (m + 1);
    dst_bgx[l] = S.out_bgx[l] + n * (m + 1);
    dst_bgy[l] = S.out_bgy[l] + n * (m + 1);
  }
  // The backward recursion runs j descending while the scalar row sum is
  // accumulated ascending, so the sum stays a separate (read-only) pass; the
  // rescale multiply is still fused into the transpose flush.
  alignas(32) double invs[W];
  const auto scale_flush_row = [&](double* bm_row, double* bgx_row,
                                   double* bgy_row) {
    const reg inv = row_scale_inverse<V>(
        pack_row_sum<V>(bm_row, bgx_row, bgy_row, m + 1), invs, nullptr);
    scale_deinterleave_row<V>(bm_row, inv, invs, dst_bm, m + 1);
    scale_deinterleave_row<V>(bgx_row, inv, invs, dst_bgx, m + 1);
    scale_deinterleave_row<V>(bgy_row, inv, invs, dst_bgy, m + 1);
    for (std::size_t l = 0; l < W; ++l) {
      dst_bm[l] -= m + 1;
      dst_bgx[l] -= m + 1;
      dst_bgy[l] -= m + 1;
    }
  };

  double* bm_last = S.bm + (n & 1) * SW;
  double* bgx_last = S.bgx + (n & 1) * SW;
  double* bgy_last = S.bgy + (n & 1) * SW;
  {
    alignas(32) double init[W];
    for (std::size_t l = 0; l < W; ++l) init[l] = l < S.active ? 1.0 : 0.0;
    const reg one = V::load(init);
    if (C.semi_global) {
      // Free genome suffix: finishing anywhere in row N costs nothing; a
      // path may not *end* in G_Y (the suffix is unaligned, not gapped).
      for (std::size_t j = 0; j <= m; ++j) {
        V::store(bm_last + j * W, one);
        V::store(bgx_last + j * W, one);
        V::store(bgy_last + j * W, zero);
      }
    } else {
      V::store(bm_last + m * W, one);
      V::store(bgx_last + m * W, one);
      V::store(bgy_last + m * W, one);
      // Within row N, paths may still consume trailing genome gaps (G_Y).
      const reg q_t_mg = V::mul(q, t_mg);
      const reg q_t_gg = V::mul(q, t_gg);
      for (std::size_t j = m; j-- > 0;) {
        const reg gy_next = V::load(bgy_last + (j + 1) * W);
        V::store(bm_last + j * W, V::mul(q_t_mg, gy_next));
        V::store(bgy_last + j * W, V::mul(q_t_gg, gy_next));
        // bgx stays 0: a G_X state would need another read base.
        V::store(bgx_last + j * W, zero);
      }
    }
  }
  scale_flush_row(bm_last, bgx_last, bgy_last);

  for (std::size_t i = n; i-- > 0;) {
    const std::size_t cur = (i & 1) * SW;
    const std::size_t next = SW - cur;
    double* bm_row = S.bm + cur;
    double* bgx_row = S.bgx + cur;
    double* bgy_row = S.bgy + cur;
    const double* bm_next = S.bm + next;
    const double* bgx_next = S.bgx + next;
    const double* p_next = S.pstar + i * SW;  // p*(i+1, .)
    // Column j+1 values roll through registers between the descending
    // iterations (same bits as a reload): the next row's p* and bm for the
    // match term, and the current row's just-computed bgy (the serial
    // within-row chain, spared its store-forward stall).
    reg p_jp1 = zero;     // p_next[j+1]; unused at j = m
    reg bm_n_jp1 = zero;  // bm_next[j+1]; unused at j = m
    reg bgy_jp1 = zero;   // bgy_row[j+1]; unused at j = m
    for (std::size_t j = m + 1; j-- > 0;) {
      const reg match_next = j < m ? V::mul(p_jp1, bm_n_jp1) : V::zero();
      const reg gx_next = V::mul(q, V::load(bgx_next + j * W));
      const reg gy_next = j < m ? V::mul(q, bgy_jp1) : V::zero();
      V::store(bm_row + j * W, V::add(V::mul(t_mm, match_next),
                                      V::mul(t_mg, V::add(gx_next, gy_next))));
      V::store(bgx_row + j * W,
               V::add(V::mul(t_gm, match_next), V::mul(t_gg, gx_next)));
      const reg bgy_j =
          V::add(V::mul(t_gm, match_next), V::mul(t_gg, gy_next));
      V::store(bgy_row + j * W, bgy_j);
      if (j > 0) {
        p_jp1 = V::load(p_next + j * W);
        bm_n_jp1 = V::load(bm_next + j * W);
      }
      bgy_jp1 = bgy_j;
    }
    scale_flush_row(bm_row, bgx_row, bgy_row);
  }
}

}  // namespace gnumap::phmm::detail

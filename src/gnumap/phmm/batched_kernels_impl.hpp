// Shared templated body of the batched Pair-HMM forward/backward kernels.
//
// Instantiated once per backend (scalar / SSE2 / AVX2) and element type
// (double / float) over a vector-traits type V providing `elem`, `width`,
// `reg`, load/store/set1/zero/add/mul, an in-register `transpose` of
// width x width cells, and `store_wide` (store one reg of `elem` lanes as
// doubles — identity for double traits, a widening convert for float).  The
// per-lane arithmetic mirrors the scalar kernel in forward_backward.cpp
// operation for operation — same expression trees, same summation order, no
// fused multiply-add — so every double-precision lane's result is
// bit-identical to a scalar PairHmm::align on the same task regardless of
// the lane width.  Any change here must be mirrored there (and in
// docs/KERNELS.md) to keep the oracle property of the equivalence suite
// meaningful.  Float lanes execute the identical operation sequence in
// single precision; their accuracy model is docs/KERNELS.md §8.
//
// Each kernel comes in a uniform and a masked flavor (the `Masked` template
// parameter).  Uniform packs share one (n, m) across lanes.  Masked packs
// carry per-lane shapes (lane_n, lane_m) <= (n, m): per-cell multiplication
// by a per-lane column mask (exactly 1.0 inside a lane's extent, exactly
// 0.0 outside) and a per-row lane mask keep all out-of-extent cells at
// exact +0.0.  Because x * 1.0 and x + 0.0 are bit-exact for the
// non-negative finite values these recursions produce, and 0.0 * x is
// exactly +0.0, a masked lane's cells, row sums, rescale factors, and
// termination are bit-identical to the scalar oracle — the property that
// lets the length-binned scheduler mix nearby shapes in one pack without
// perturbing the default path (docs/KERNELS.md §7).
//
// Memory layout: the sweeps keep only two lane-interleaved rows per matrix
// (the recursions look exactly one row back/ahead) and stream each finished,
// rescaled row into the per-lane destination matrices while it is still in
// L1 — via the fused transpose of deinterleave_row for uniform packs, or a
// per-lane bounded copy for masked packs (lanes differ in row stride, so a
// tile transpose would write past short lanes' rows).  Uniform kernels write
// every destination cell exactly once, boundary zeros included; masked
// kernels write exactly the cells of each live lane's own matrix.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

#include "gnumap/phmm/batched_kernels.hpp"

namespace gnumap::phmm::detail {

/// Transposes one lane-interleaved row (`src[j * width + l]`, `row_len`
/// cells) into `width` per-lane row-major double rows `dst[l][j]`.  For
/// double traits this is pure data movement (stored bits are the loaded
/// bits); float traits widen each value to double on the way out.
template <class V>
inline void deinterleave_row(const typename V::elem* src, double* const* dst,
                             std::size_t row_len) {
  constexpr std::size_t W = V::width;
  std::size_t j = 0;
  if constexpr (W > 1) {
    for (; j + W <= row_len; j += W) {
      typename V::reg r[W];
      for (std::size_t k = 0; k < W; ++k) r[k] = V::load(src + (j + k) * W);
      V::transpose(r);
      for (std::size_t k = 0; k < W; ++k) V::store_wide(dst[k] + j, r[k]);
    }
  }
  for (; j < row_len; ++j) {
    for (std::size_t k = 0; k < W; ++k) {
      dst[k][j] = static_cast<double>(src[j * W + k]);
    }
  }
}

/// Inverse of deinterleave_row (same element type on both sides): packs
/// `width` contiguous per-lane rows into one lane-interleaved row.  The same
/// in-register transpose works in both directions (it is an involution on a
/// width x width tile).
template <class V>
inline void interleave_row(typename V::elem* dst,
                           const typename V::elem* const* src,
                           std::size_t count) {
  constexpr std::size_t W = V::width;
  std::size_t j = 0;
  if constexpr (W > 1) {
    for (; j + W <= count; j += W) {
      typename V::reg r[W];
      for (std::size_t k = 0; k < W; ++k) r[k] = V::load(src[k] + j);
      V::transpose(r);
      for (std::size_t k = 0; k < W; ++k) V::store(dst + (j + k) * W, r[k]);
    }
  }
  for (; j < count; ++j) {
    for (std::size_t k = 0; k < W; ++k) dst[j * W + k] = src[k][j];
  }
}

/// Per-lane combined sum of three lane-interleaved rows, ascending j with
/// the same per-cell expression tree as scale_row() in forward_backward.cpp
/// ((a + b) + c, accumulated in j order), so the bits match the scalar sum.
template <class V>
inline typename V::reg pack_row_sum(const typename V::elem* a,
                                    const typename V::elem* b,
                                    const typename V::elem* c,
                                    std::size_t row_len) {
  using reg = typename V::reg;
  constexpr std::size_t W = V::width;
  reg sum = V::zero();
  for (std::size_t j = 0; j < row_len; ++j) {
    sum = V::add(sum, V::add(V::add(V::load(a + j * W), V::load(b + j * W)),
                             V::load(c + j * W)));
  }
  return sum;
}

/// Converts per-lane row sums into rescale factors: 1/sum for lanes with
/// positive mass (logging the removed factor into `log_scale_acc` when
/// non-null), exactly 1.0 otherwise — x * 1.0 is exact, so zero-mass lanes
/// match the scalar kernel's early return.  Also spills the factors to
/// `invs` for the scalar tail of scale_deinterleave_row.
template <class V>
inline typename V::reg row_scale_inverse(typename V::reg sum,
                                         typename V::elem* invs,
                                         double* log_scale_acc) {
  using T = typename V::elem;
  constexpr std::size_t W = V::width;
  alignas(64) T sums[W];
  V::store(sums, sum);
  for (std::size_t l = 0; l < W; ++l) {
    if (sums[l] > T(0)) {
      invs[l] = T(1) / sums[l];
      if (log_scale_acc != nullptr) {
        log_scale_acc[l] += std::log(static_cast<double>(sums[l]));
      }
    } else {
      invs[l] = T(1);
    }
  }
  return V::load(invs);
}

/// Rescale + flush, fused (uniform packs): multiplies a lane-interleaved row
/// by the per-lane factors, stores the scaled row back into `src` (the
/// recursions read it for the adjacent row), and transposes it into the
/// per-lane destination rows — all in one pass over the row.  Each cell is
/// multiplied exactly once, so the stored bits match a separate
/// scale-then-copy; float lanes widen to double on the destination store.
template <class V>
inline void scale_deinterleave_row(typename V::elem* src, typename V::reg inv,
                                   const typename V::elem* invs,
                                   double* const* dst, std::size_t row_len) {
  constexpr std::size_t W = V::width;
  std::size_t j = 0;
  if constexpr (W > 1) {
    for (; j + W <= row_len; j += W) {
      typename V::reg r[W];
      for (std::size_t k = 0; k < W; ++k) {
        r[k] = V::mul(V::load(src + (j + k) * W), inv);
        V::store(src + (j + k) * W, r[k]);
      }
      V::transpose(r);
      for (std::size_t k = 0; k < W; ++k) V::store_wide(dst[k] + j, r[k]);
    }
  }
  for (; j < row_len; ++j) {
    for (std::size_t k = 0; k < W; ++k) {
      const typename V::elem v = src[j * W + k] * invs[k];
      src[j * W + k] = v;
      dst[k][j] = static_cast<double>(v);
    }
  }
}

/// In-place per-lane rescale of one lane-interleaved row (masked packs: the
/// scaling half of scale_deinterleave_row without the transpose).  Each cell
/// is one full vector, so there is no scalar tail.
template <class V>
inline void scale_row_inplace(typename V::elem* src, typename V::reg inv,
                              std::size_t row_len) {
  constexpr std::size_t W = V::width;
  for (std::size_t j = 0; j < row_len; ++j) {
    V::store(src + j * W, V::mul(V::load(src + j * W), inv));
  }
}

/// Masked-pack flush: copies the valid prefix of one (already scaled)
/// lane-interleaved row into each live lane's destination row at that lane's
/// own stride (lane_m[l] + 1).  Rows past lane_n[l] and padding lanes are
/// skipped, so a short lane's matrix is never written out of bounds — the
/// reason masked packs use per-lane copies instead of the tile transpose.
template <class V>
inline void flush_masked_row(const typename V::elem* src, double* const* out,
                             std::size_t i, const std::size_t* lane_n,
                             const std::size_t* lane_m, std::size_t active) {
  constexpr std::size_t W = V::width;
  for (std::size_t l = 0; l < active; ++l) {
    if (i > lane_n[l]) continue;
    double* dst = out[l] + i * (lane_m[l] + 1);
    for (std::size_t j = 0; j <= lane_m[l]; ++j) {
      dst[j] = static_cast<double>(src[j * W + l]);
    }
  }
}

/// Forward sweep + termination.  Streams scaled fm/fgx/fgy rows into the
/// out_* matrices and fills log_scale, log_likelihood, and ok.  Mirrors
/// PairHmm::run_forward + the terminal sum in PairHmm::align.
template <class V, bool Masked>
void forward_pack(const PackConstants& C,
                  const PackStateT<typename V::elem>& S) {
  using reg = typename V::reg;
  using T = typename V::elem;
  constexpr std::size_t W = V::width;
  const std::size_t n = S.n;
  const std::size_t m = S.m;
  const std::size_t SW = (m + 1) * W;  // one lane-interleaved row

  const reg t_mm = V::set1(C.t_mm);
  const reg t_mg = V::set1(C.t_mg);
  const reg t_gm = V::set1(C.t_gm);
  const reg t_gg = V::set1(C.t_gg);
  const reg q = V::set1(C.q);
  const reg zero = V::zero();

  // Per-lane destination cursors (uniform packs only; masked packs compute
  // per-lane offsets in flush_masked_row), advanced one row per sweep step.
  double* dst_fm[W];
  double* dst_fgx[W];
  double* dst_fgy[W];
  if constexpr (!Masked) {
    for (std::size_t l = 0; l < W; ++l) {
      dst_fm[l] = S.out_fm[l];
      dst_fgx[l] = S.out_fgx[l];
      dst_fgy[l] = S.out_fgy[l];
    }
  }
  const auto advance = [&] {
    for (std::size_t l = 0; l < W; ++l) {
      dst_fm[l] += m + 1;
      dst_fgx[l] += m + 1;
      dst_fgy[l] += m + 1;
    }
  };

  // Row-0 initialization.  Global: only (0, 0) is live.  Semi-global: the
  // read may start after any free genome prefix, so every f_M(0, j) is
  // live.  Uniform packs gate padding lanes with an active-lane vector;
  // masked packs load the column mask instead, which is zero both outside a
  // lane's extent and on padding lanes.
  {
    T* fm_row = S.fm;
    T* fgx_row = S.fgx;
    T* fgy_row = S.fgy;
    if constexpr (Masked) {
      for (std::size_t j = 0; j <= m; ++j) {
        const reg live = V::load(S.colmask + j * W);
        V::store(fm_row + j * W, C.semi_global || j == 0 ? live : zero);
        V::store(fgx_row + j * W, zero);
        V::store(fgy_row + j * W, zero);
      }
      flush_masked_row<V>(fm_row, S.out_fm, 0, S.lane_n, S.lane_m, S.active);
      flush_masked_row<V>(fgx_row, S.out_fgx, 0, S.lane_n, S.lane_m, S.active);
      flush_masked_row<V>(fgy_row, S.out_fgy, 0, S.lane_n, S.lane_m, S.active);
    } else {
      alignas(64) T init[W];
      for (std::size_t l = 0; l < W; ++l) init[l] = l < S.active ? T(1) : T(0);
      const reg one = V::load(init);
      for (std::size_t j = 0; j <= m; ++j) {
        V::store(fm_row + j * W, C.semi_global || j == 0 ? one : zero);
        V::store(fgx_row + j * W, zero);
        V::store(fgy_row + j * W, zero);
      }
      deinterleave_row<V>(fm_row, dst_fm, m + 1);
      deinterleave_row<V>(fgx_row, dst_fgx, m + 1);
      deinterleave_row<V>(fgy_row, dst_fgy, m + 1);
      advance();
    }
  }
  for (std::size_t l = 0; l < W; ++l) S.log_scale[l] = 0.0;

  alignas(64) T invs[W];
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t cur = (i & 1) * SW;
    const std::size_t prev = SW - cur;
    T* fm_row = S.fm + cur;
    T* fgx_row = S.fgx + cur;
    T* fgy_row = S.fgy + cur;
    const T* fm_prev = S.fm + prev;
    const T* fgx_prev = S.fgx + prev;
    const T* fgy_prev = S.fgy + prev;
    const T* p_row = S.pstar + (i - 1) * SW;
    // Per-row lane mask (masked packs): 1.0 while the row is inside the
    // lane's extent, 0.0 past it.  Multiplying by 1.0 is bit-exact, and one
    // zeroed row cuts every later row off inductively, so a short lane's
    // trailing rows carry no mass, contribute nothing to the per-lane row
    // sums, and add nothing to its log_scale.
    reg rmask = zero;
    if constexpr (Masked) {
      alignas(64) T rm[W];
      for (std::size_t l = 0; l < W; ++l) {
        rm[l] = (l < S.active && i <= S.lane_n[l]) ? T(1) : T(0);
      }
      rmask = V::load(rm);
    }
    // Column 0 first: fm/fgy are zero (no leading-gap mass in those states;
    // the j = 1 recurrence reads them) and fgx carries leading read gaps in
    // semi-global mode only (see the scalar kernel).
    V::store(fm_row, zero);
    V::store(fgy_row, zero);
    reg fgx_0 =
        C.semi_global ? V::mul(q, V::add(V::mul(t_mg, V::load(fm_prev)),
                                         V::mul(t_gg, V::load(fgx_prev))))
                      : zero;
    if constexpr (Masked) fgx_0 = V::mul(fgx_0, rmask);
    V::store(fgx_row, fgx_0);
    // The row sum for rescaling accumulates in-register as cells are
    // produced, ascending j with the scalar kernel's (fm + fgx) + fgy tree —
    // column 0's fm/fgy terms are exact +0.0 adds, so the bits match a
    // separate ascending sweep over the stored row.  Column j-1 values roll
    // through registers (same bits as a reload, minus the reload — and
    // minus the store-forward stall on the serial within-row fgy chain).
    reg sum = V::add(V::zero(), V::add(V::add(zero, fgx_0), zero));
    reg fm_pm1 = V::load(fm_prev);    // fm_prev[j-1]
    reg fgx_pm1 = V::load(fgx_prev);  // fgx_prev[j-1]
    reg fgy_pm1 = V::load(fgy_prev);  // fgy_prev[j-1]
    reg fm_cm1 = zero;                // fm_row[j-1]
    reg fgy_cm1 = zero;               // fgy_row[j-1]
    for (std::size_t j = 1; j <= m; ++j) {
      const reg fm_pj = V::load(fm_prev + j * W);
      const reg fgx_pj = V::load(fgx_prev + j * W);
      const reg fgy_pj = V::load(fgy_prev + j * W);
      // Durbin et al.: every predecessor of a match sits at (i-1, j-1).
      const reg diag_gaps = V::add(fgx_pm1, fgy_pm1);
      const reg fm_j = V::mul(
          V::load(p_row + j * W),
          V::add(V::mul(t_mm, fm_pm1), V::mul(t_gm, diag_gaps)));
      V::store(fm_row + j * W, fm_j);
      // Read base x_i against a gap: consumes x only.
      reg fgx_j =
          V::mul(q, V::add(V::mul(t_mg, fm_pj), V::mul(t_gg, fgx_pj)));
      // Genome base y_j against a gap: consumes y only (within-row).
      reg fgy_j =
          V::mul(q, V::add(V::mul(t_mg, fm_cm1), V::mul(t_gg, fgy_cm1)));
      if constexpr (Masked) {
        // fm needs no mask: out-of-extent emissions are staged as exact
        // zeros.  fgx would leak below a short lane's last row (its inputs
        // are live row-n_l cells) and fgy would leak one column past a
        // short lane's last column (its input is the live cell at m_l), so
        // both are cut by colmask * rmask — an exact 1.0 inside the extent.
        const reg mask = V::mul(V::load(S.colmask + j * W), rmask);
        fgx_j = V::mul(fgx_j, mask);
        fgy_j = V::mul(fgy_j, mask);
      }
      V::store(fgx_row + j * W, fgx_j);
      V::store(fgy_row + j * W, fgy_j);
      sum = V::add(sum, V::add(V::add(fm_j, fgx_j), fgy_j));
      fm_pm1 = fm_pj;
      fgx_pm1 = fgx_pj;
      fgy_pm1 = fgy_pj;
      fm_cm1 = fm_j;
      fgy_cm1 = fgy_j;
    }
    const reg inv = row_scale_inverse<V>(sum, invs, S.log_scale);
    if constexpr (Masked) {
      scale_row_inplace<V>(fm_row, inv, m + 1);
      scale_row_inplace<V>(fgx_row, inv, m + 1);
      scale_row_inplace<V>(fgy_row, inv, m + 1);
      flush_masked_row<V>(fm_row, S.out_fm, i, S.lane_n, S.lane_m, S.active);
      flush_masked_row<V>(fgx_row, S.out_fgx, i, S.lane_n, S.lane_m, S.active);
      flush_masked_row<V>(fgy_row, S.out_fgy, i, S.lane_n, S.lane_m, S.active);
    } else {
      scale_deinterleave_row<V>(fm_row, inv, invs, dst_fm, m + 1);
      scale_deinterleave_row<V>(fgx_row, inv, invs, dst_fgx, m + 1);
      scale_deinterleave_row<V>(fgy_row, inv, invs, dst_fgy, m + 1);
      advance();
    }
  }

  // Termination: global ends at (N, M); semi-global sums every genome end
  // column (free suffix) in ascending-j order like the scalar kernel.
  if constexpr (Masked) {
    // A short lane's last row has already left the ping-pong scratch, but
    // every live lane's scaled rows are in its destination matrix — read
    // the terminal row back from there, per lane, with the scalar kernel's
    // exact summation order.
    for (std::size_t l = 0; l < W; ++l) {
      if (l >= S.active) {
        S.ok[l] = 0;
        S.log_likelihood[l] = -std::numeric_limits<double>::infinity();
        continue;
      }
      const std::size_t nl = S.lane_n[l];
      const std::size_t ml = S.lane_m[l];
      const std::size_t last = nl * (ml + 1);
      // Accumulate in T with the uniform kernel's expression tree: the
      // destination holds exactly-widened lane values, so narrowing them
      // back is exact and an fp32 lane terminates with the same float
      // rounding whether it ran in a masked or a uniform pack — which is
      // what keeps fp32 results bit-identical across dispatch widths.
      // For T = double the casts are no-ops and this is the oracle's sum.
      T terminal = T(0);
      if (C.semi_global) {
        const double* fm_l = S.out_fm[l] + last;
        const double* fgx_l = S.out_fgx[l] + last;
        for (std::size_t j = 0; j <= ml; ++j) {
          terminal += static_cast<T>(fm_l[j]) + static_cast<T>(fgx_l[j]);
        }
      } else {
        terminal = static_cast<T>(S.out_fm[l][last + ml]) +
                   static_cast<T>(S.out_fgx[l][last + ml]) +
                   static_cast<T>(S.out_fgy[l][last + ml]);
      }
      if (terminal > T(0)) {
        S.ok[l] = 1;
        S.log_likelihood[l] =
            std::log(static_cast<double>(terminal)) + S.log_scale[l];
      } else {
        S.ok[l] = 0;
        S.log_likelihood[l] = -std::numeric_limits<double>::infinity();
      }
    }
  } else {
    alignas(64) T term[W];
    const T* fm_last = S.fm + (n & 1) * SW;
    const T* fgx_last = S.fgx + (n & 1) * SW;
    const T* fgy_last = S.fgy + (n & 1) * SW;
    if (C.semi_global) {
      reg t = V::zero();
      for (std::size_t j = 0; j <= m; ++j) {
        t = V::add(t,
                   V::add(V::load(fm_last + j * W), V::load(fgx_last + j * W)));
      }
      V::store(term, t);
    } else {
      V::store(term, V::add(V::add(V::load(fm_last + m * W),
                                   V::load(fgx_last + m * W)),
                            V::load(fgy_last + m * W)));
    }
    for (std::size_t l = 0; l < W; ++l) {
      if (l < S.active && term[l] > T(0)) {
        S.ok[l] = 1;
        S.log_likelihood[l] =
            std::log(static_cast<double>(term[l])) + S.log_scale[l];
      } else {
        S.ok[l] = 0;
        S.log_likelihood[l] = -std::numeric_limits<double>::infinity();
      }
    }
  }
}

/// Backward sweep.  Streams scaled bm/bgx/bgy rows into the out_* matrices
/// from row n down to row 0.  Mirrors PairHmm::run_backward; lanes whose
/// forward pass failed still compute (the caller re-zeroes their backward
/// matrices afterwards, matching the scalar kernel's zeroed backward state
/// for failed alignments).
///
/// Masked packs: lane l's sweep starts at its own row lane_n[l] with the
/// caller-staged oracle init row (binit_*).  Rows above it select exact
/// zeros, the init row selects binit, and rows below select the recursion —
/// `cell = raw * rec_sel + binit * init_sel` with {0.0, 1.0} selectors,
/// which is bit-exact because every operand is finite and non-negative.
template <class V, bool Masked>
void backward_pack(const PackConstants& C,
                   const PackStateT<typename V::elem>& S) {
  using reg = typename V::reg;
  using T = typename V::elem;
  constexpr std::size_t W = V::width;
  const std::size_t n = S.n;
  const std::size_t m = S.m;
  const std::size_t SW = (m + 1) * W;

  const reg t_mm = V::set1(C.t_mm);
  const reg t_mg = V::set1(C.t_mg);
  const reg t_gm = V::set1(C.t_gm);
  const reg t_gg = V::set1(C.t_gg);
  const reg q = V::set1(C.q);
  const reg zero = V::zero();

  double* dst_bm[W];
  double* dst_bgx[W];
  double* dst_bgy[W];
  if constexpr (!Masked) {
    for (std::size_t l = 0; l < W; ++l) {
      dst_bm[l] = S.out_bm[l] + n * (m + 1);
      dst_bgx[l] = S.out_bgx[l] + n * (m + 1);
      dst_bgy[l] = S.out_bgy[l] + n * (m + 1);
    }
  }
  // The backward recursion runs j descending while the scalar row sum is
  // accumulated ascending, so the sum stays a separate (read-only) pass; the
  // rescale multiply is still fused into the transpose flush (uniform) or
  // applied in place before the per-lane copy (masked).
  alignas(64) T invs[W];
  const auto scale_flush_row = [&](T* bm_row, T* bgx_row, T* bgy_row,
                                   std::size_t i) {
    const reg inv = row_scale_inverse<V>(
        pack_row_sum<V>(bm_row, bgx_row, bgy_row, m + 1), invs, nullptr);
    if constexpr (Masked) {
      scale_row_inplace<V>(bm_row, inv, m + 1);
      scale_row_inplace<V>(bgx_row, inv, m + 1);
      scale_row_inplace<V>(bgy_row, inv, m + 1);
      flush_masked_row<V>(bm_row, S.out_bm, i, S.lane_n, S.lane_m, S.active);
      flush_masked_row<V>(bgx_row, S.out_bgx, i, S.lane_n, S.lane_m, S.active);
      flush_masked_row<V>(bgy_row, S.out_bgy, i, S.lane_n, S.lane_m, S.active);
    } else {
      (void)i;
      scale_deinterleave_row<V>(bm_row, inv, invs, dst_bm, m + 1);
      scale_deinterleave_row<V>(bgx_row, inv, invs, dst_bgx, m + 1);
      scale_deinterleave_row<V>(bgy_row, inv, invs, dst_bgy, m + 1);
      for (std::size_t l = 0; l < W; ++l) {
        dst_bm[l] -= m + 1;
        dst_bgx[l] -= m + 1;
        dst_bgy[l] -= m + 1;
      }
    }
  };

  T* bm_last = S.bm + (n & 1) * SW;
  T* bgx_last = S.bgx + (n & 1) * SW;
  T* bgy_last = S.bgy + (n & 1) * SW;
  if constexpr (Masked) {
    // Row n of the pack: only lanes whose own length is the pack length
    // start here; everyone else's cells stay exact zeros until the sweep
    // descends to their init row.
    alignas(64) T isel[W];
    for (std::size_t l = 0; l < W; ++l) {
      isel[l] = (l < S.active && S.lane_n[l] == n) ? T(1) : T(0);
    }
    const reg init_sel = V::load(isel);
    for (std::size_t j = 0; j <= m; ++j) {
      V::store(bm_last + j * W, V::mul(V::load(S.binit_bm + j * W), init_sel));
      V::store(bgx_last + j * W,
               V::mul(V::load(S.binit_bgx + j * W), init_sel));
      V::store(bgy_last + j * W,
               V::mul(V::load(S.binit_bgy + j * W), init_sel));
    }
  } else {
    alignas(64) T init[W];
    for (std::size_t l = 0; l < W; ++l) init[l] = l < S.active ? T(1) : T(0);
    const reg one = V::load(init);
    if (C.semi_global) {
      // Free genome suffix: finishing anywhere in row N costs nothing; a
      // path may not *end* in G_Y (the suffix is unaligned, not gapped).
      for (std::size_t j = 0; j <= m; ++j) {
        V::store(bm_last + j * W, one);
        V::store(bgx_last + j * W, one);
        V::store(bgy_last + j * W, zero);
      }
    } else {
      V::store(bm_last + m * W, one);
      V::store(bgx_last + m * W, one);
      V::store(bgy_last + m * W, one);
      // Within row N, paths may still consume trailing genome gaps (G_Y).
      const reg q_t_mg = V::mul(q, t_mg);
      const reg q_t_gg = V::mul(q, t_gg);
      for (std::size_t j = m; j-- > 0;) {
        const reg gy_next = V::load(bgy_last + (j + 1) * W);
        V::store(bm_last + j * W, V::mul(q_t_mg, gy_next));
        V::store(bgy_last + j * W, V::mul(q_t_gg, gy_next));
        // bgx stays 0: a G_X state would need another read base.
        V::store(bgx_last + j * W, zero);
      }
    }
  }
  scale_flush_row(bm_last, bgx_last, bgy_last, n);

  for (std::size_t i = n; i-- > 0;) {
    const std::size_t cur = (i & 1) * SW;
    const std::size_t next = SW - cur;
    T* bm_row = S.bm + cur;
    T* bgx_row = S.bgx + cur;
    T* bgy_row = S.bgy + cur;
    const T* bm_next = S.bm + next;
    const T* bgx_next = S.bgx + next;
    const T* p_next = S.pstar + i * SW;  // p*(i+1, .)
    // Row selectors (masked packs): recursion below a lane's init row, the
    // staged init at it, exact zero above it.
    reg rec_sel = zero;
    reg init_sel = zero;
    if constexpr (Masked) {
      alignas(64) T rs[W];
      alignas(64) T is[W];
      for (std::size_t l = 0; l < W; ++l) {
        const bool live = l < S.active;
        rs[l] = (live && i < S.lane_n[l]) ? T(1) : T(0);
        is[l] = (live && i == S.lane_n[l]) ? T(1) : T(0);
      }
      rec_sel = V::load(rs);
      init_sel = V::load(is);
    }
    // Column j+1 values roll through registers between the descending
    // iterations (same bits as a reload): the next row's p* and bm for the
    // match term, and the current row's just-computed bgy (the serial
    // within-row chain, spared its store-forward stall).
    reg p_jp1 = zero;     // p_next[j+1]; unused at j = m
    reg bm_n_jp1 = zero;  // bm_next[j+1]; unused at j = m
    reg bgy_jp1 = zero;   // bgy_row[j+1]; unused at j = m
    for (std::size_t j = m + 1; j-- > 0;) {
      const reg match_next = j < m ? V::mul(p_jp1, bm_n_jp1) : V::zero();
      const reg gx_next = V::mul(q, V::load(bgx_next + j * W));
      const reg gy_next = j < m ? V::mul(q, bgy_jp1) : V::zero();
      reg bm_j = V::add(V::mul(t_mm, match_next),
                        V::mul(t_mg, V::add(gx_next, gy_next)));
      reg bgx_j = V::add(V::mul(t_gm, match_next), V::mul(t_gg, gx_next));
      reg bgy_j = V::add(V::mul(t_gm, match_next), V::mul(t_gg, gy_next));
      if constexpr (Masked) {
        bm_j = V::add(V::mul(bm_j, rec_sel),
                      V::mul(V::load(S.binit_bm + j * W), init_sel));
        bgx_j = V::add(V::mul(bgx_j, rec_sel),
                       V::mul(V::load(S.binit_bgx + j * W), init_sel));
        bgy_j = V::add(V::mul(bgy_j, rec_sel),
                       V::mul(V::load(S.binit_bgy + j * W), init_sel));
      }
      V::store(bm_row + j * W, bm_j);
      V::store(bgx_row + j * W, bgx_j);
      V::store(bgy_row + j * W, bgy_j);
      if (j > 0) {
        p_jp1 = V::load(p_next + j * W);
        bm_n_jp1 = V::load(bm_next + j * W);
      }
      bgy_jp1 = bgy_j;
    }
    scale_flush_row(bm_row, bgx_row, bgy_row, i);
  }
}

}  // namespace gnumap::phmm::detail

// Position-weight matrix built from a read's quality scores.
//
// "the probability from each nucleotide obtained from base quality scores is
//  used to create a position-weight matrix (PWM) for each read" (paper,
//  Step 2).  Row i holds r_iA..r_iT: the probability that the true template
//  base at read position i is A/C/G/T, given the called base and its Phred
//  score.  The PHMM consumes these through the paper's mixed emission
//    p*(i, y) = sum_k r_ik * p_{k,y}.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gnumap/io/read.hpp"
#include "gnumap/phmm/params.hpp"

namespace gnumap {

class Pwm {
 public:
  Pwm() = default;

  /// Builds from called bases + qualities (1-e for the call, e/3 elsewhere).
  static Pwm from_read(const Read& read);

  /// Builds for the reverse-complement orientation of the same read.
  static Pwm from_read_reverse(const Read& read);

  /// Builds from explicit rows (rows need not be normalized; they are not
  /// renormalized here — callers own the semantics).
  static Pwm from_rows(std::vector<std::array<float, 4>> rows);

  std::size_t length() const { return rows_.size(); }
  const std::array<float, 4>& row(std::size_t i) const { return rows_[i]; }

  /// Most probable base at position i (ties break to the lower code).
  std::uint8_t called_base(std::size_t i) const;

  /// Precomputes the mixed emissions p*(i, y) for all 5 genome symbols
  /// (A, C, G, T, N) under `params`.  Result is length() x 5, row-major.
  std::vector<double> mixed_emissions(const PhmmParams& params) const;

  /// Allocation-free variant: writes the same table into `out` (resized to
  /// length() x 5).  Hot-path engines keep `out` as reusable scratch.
  void mixed_emissions(const PhmmParams& params,
                       std::vector<double>& out) const;

 private:
  std::vector<std::array<float, 4>> rows_;
};

}  // namespace gnumap

#include "gnumap/phmm/marginal.hpp"

namespace gnumap {

ColumnContributions condense_marginals(const PairHmm& hmm, const Pwm& pwm,
                                       const AlignmentMatrices& mats,
                                       const MarginalOptions& options) {
  const std::size_t n = mats.n;
  const std::size_t m = mats.m;
  const std::size_t stride = m + 1;

  ColumnContributions out;
  out.tracks.assign(m, {});
  out.column_mass.assign(m, 0.0f);
  if (n == 0 || m == 0) return out;

  const std::vector<double> masses = hmm.row_masses(mats);

  // Accumulate raw posterior mass per column.
  for (std::size_t i = 1; i <= n; ++i) {
    const double c = masses[i];
    if (!(c > 0.0)) continue;
    const double inv_c = 1.0 / c;
    const std::size_t row = i * stride;
    const auto& weights = pwm.row(i - 1);
    const std::uint8_t called = pwm.called_base(i - 1);
    for (std::size_t j = 1; j <= m; ++j) {
      const double post_match =
          mats.fm[row + j] * mats.bm[row + j] * inv_c;
      const double post_ygap =
          mats.fgy[row + j] * mats.bgy[row + j] * inv_c;
      if (post_match > 0.0) {
        auto& t = out.tracks[j - 1];
        if (options.prob_mode == ProbMode::kPwmWeighted) {
          for (int k = 0; k < kNumBases; ++k) {
            t[static_cast<std::size_t>(k)] +=
                static_cast<float>(post_match) * weights[static_cast<std::size_t>(k)];
          }
        } else {
          t[called] += static_cast<float>(post_match);
        }
      }
      if (post_ygap > 0.0) {
        out.tracks[j - 1][kGapTrack] += static_cast<float>(post_ygap);
      }
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    float mass = 0.0f;
    for (int k = 0; k < kNumTracks; ++k) {
      mass += out.tracks[j][static_cast<std::size_t>(k)];
    }
    out.column_mass[j] = mass;
  }

  if (options.normalization == Normalization::kColumn) {
    for (std::size_t j = 0; j < m; ++j) {
      const float mass = out.column_mass[j];
      if (mass < options.min_column_mass || !(mass > 0.0f)) {
        out.tracks[j] = {};
        out.column_mass[j] = 0.0f;
        continue;
      }
      const float inv = 1.0f / mass;
      for (int k = 0; k < kNumTracks; ++k) {
        out.tracks[j][static_cast<std::size_t>(k)] *= inv;
      }
      out.column_mass[j] = 1.0f;
    }
  }
  return out;
}

}  // namespace gnumap

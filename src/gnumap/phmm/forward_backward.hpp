// Pair-HMM forward/backward algorithm (the paper's Step 2).
//
// Implements the recursions of Section VI Step 2 with two deviations,
// both documented in DESIGN.md:
//  * The printed forward recursion feeds the match state from f_GX(i-1, j)
//    and f_GY(i, j-1); that is dimensionally inconsistent with the paper's
//    own backward recursion (each match consumes one x and one y symbol).
//    We use the standard formulation from Durbin et al. — the reference the
//    paper itself cites for its notation — where all three predecessors of
//    f_M(i,j) sit at (i-1, j-1).
//  * Rows are rescaled to sum to one as they are produced (the classic
//    HMM scaling trick); raw probabilities for 100 bp reads underflow
//    doubles in the worst case.  Scaling factors are identical across the
//    three matrices within a row, so posterior ratios are exact.
//
// Boundary modes:
//  * kGlobal — exactly the paper's initialization: the alignment starts at
//    (0,0) and ends at (N,M).
//  * kSemiGlobal — the mode the mapper uses: the read is globally aligned
//    but the genome window has free (unscored) flanks, so the read may start
//    and end anywhere inside the candidate window.
//
// This scalar implementation is the reference oracle for the batched SIMD
// engine (phmm/batched.hpp), which must remain bit-identical to it at every
// dispatch level.  The full kernel-math spec — recursions, deviations,
// scaling invariant, and the batched layout — is docs/KERNELS.md; changes
// to the math must land here, there, and in batched_kernels_impl.hpp
// together.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gnumap/phmm/params.hpp"
#include "gnumap/phmm/pwm.hpp"

namespace gnumap {

enum class BoundaryMode { kGlobal, kSemiGlobal };

/// DP state for one (read, window) alignment.  Matrices are (n+1) x (m+1),
/// row-major, holding *scaled* probabilities (each row of the forward and
/// backward triples sums to one; see the scaling note above).
///
/// Reuse contract: instances are designed to be long-lived — one per worker
/// workspace — and recycled across alignments of varying shape.  reset()
/// (called by PairHmm::align and the batched engine) tracks the logical
/// (n, m) dimensions while retaining each vector's capacity, so after the
/// largest problem shape has been seen once, re-aligning allocates nothing.
/// Only the first (n+1)*(m+1) elements of each matrix are meaningful.
struct AlignmentMatrices {
  std::size_t n = 0;  ///< read length (logical; vectors may hold more)
  std::size_t m = 0;  ///< window length (logical; vectors may hold more)
  std::vector<double> fm, fgx, fgy;  ///< scaled forward matrices
  std::vector<double> bm, bgx, bgy;  ///< scaled backward matrices
  /// log of the total alignment likelihood P(x, y); -inf when no path.
  double log_likelihood = 0.0;

  /// Re-dimensions to (n+1) x (m+1), zero-fills the logical extent of all
  /// six matrices, and sets log_likelihood to -inf ("no path yet").
  /// Capacity is kept (and grown geometrically when it must grow) so a
  /// recycled instance stops touching the allocator in steady state.
  void reset(std::size_t read_len, std::size_t window_len);

  std::size_t stride() const { return m + 1; }
  double& at(std::vector<double>& mat, std::size_t i, std::size_t j) {
    return mat[i * stride() + j];
  }
  double at(const std::vector<double>& mat, std::size_t i,
            std::size_t j) const {
    return mat[i * stride() + j];
  }
};

class PairHmm {
 public:
  explicit PairHmm(const PhmmParams& params,
                   BoundaryMode mode = BoundaryMode::kSemiGlobal);

  const PhmmParams& params() const { return params_; }
  BoundaryMode mode() const { return mode_; }

  /// Runs forward + backward for `pwm` against `window`.
  /// Returns false (and sets log_likelihood to -inf) if no alignment path
  /// has nonzero probability; `mats` is then unusable for posteriors.
  bool align(const Pwm& pwm, std::span<const std::uint8_t> window,
             AlignmentMatrices& mats) const;

  /// Posterior P(x_i diamond y_j | x, y) for 1-based i, j.  Valid after a
  /// successful align().  `row_mass` must be row_masses()[i].
  /// Row masses: c_i = sum_j (fm*bm + fgx*bgx)(i, j).  Dividing the scaled
  /// products by c_i yields exact posteriors (see scaling note above).
  std::vector<double> row_masses(const AlignmentMatrices& mats) const;

 private:
  void run_forward(const std::vector<double>& pstar,
                   AlignmentMatrices& mats, double& log_scale) const;
  void run_backward(const std::vector<double>& pstar,
                    AlignmentMatrices& mats) const;

  PhmmParams params_;
  BoundaryMode mode_;
};

}  // namespace gnumap

// Pair-HMM forward/backward algorithm (the paper's Step 2).
//
// Implements the recursions of Section VI Step 2 with two deviations,
// both documented in DESIGN.md:
//  * The printed forward recursion feeds the match state from f_GX(i-1, j)
//    and f_GY(i, j-1); that is dimensionally inconsistent with the paper's
//    own backward recursion (each match consumes one x and one y symbol).
//    We use the standard formulation from Durbin et al. — the reference the
//    paper itself cites for its notation — where all three predecessors of
//    f_M(i,j) sit at (i-1, j-1).
//  * Rows are rescaled to sum to one as they are produced (the classic
//    HMM scaling trick); raw probabilities for 100 bp reads underflow
//    doubles in the worst case.  Scaling factors are identical across the
//    three matrices within a row, so posterior ratios are exact.
//
// Boundary modes:
//  * kGlobal — exactly the paper's initialization: the alignment starts at
//    (0,0) and ends at (N,M).
//  * kSemiGlobal — the mode the mapper uses: the read is globally aligned
//    but the genome window has free (unscored) flanks, so the read may start
//    and end anywhere inside the candidate window.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gnumap/phmm/params.hpp"
#include "gnumap/phmm/pwm.hpp"

namespace gnumap {

enum class BoundaryMode { kGlobal, kSemiGlobal };

/// DP state for one (read, window) alignment.  Reusable across calls to
/// avoid reallocation; matrices are (n+1) x (m+1), row-major.
struct AlignmentMatrices {
  std::size_t n = 0;  ///< read length
  std::size_t m = 0;  ///< window length
  std::vector<double> fm, fgx, fgy;  ///< scaled forward matrices
  std::vector<double> bm, bgx, bgy;  ///< scaled backward matrices
  /// log of the total alignment likelihood P(x, y); -inf when no path.
  double log_likelihood = 0.0;

  std::size_t stride() const { return m + 1; }
  double& at(std::vector<double>& mat, std::size_t i, std::size_t j) {
    return mat[i * stride() + j];
  }
  double at(const std::vector<double>& mat, std::size_t i,
            std::size_t j) const {
    return mat[i * stride() + j];
  }
};

class PairHmm {
 public:
  explicit PairHmm(const PhmmParams& params,
                   BoundaryMode mode = BoundaryMode::kSemiGlobal);

  const PhmmParams& params() const { return params_; }
  BoundaryMode mode() const { return mode_; }

  /// Runs forward + backward for `pwm` against `window`.
  /// Returns false (and sets log_likelihood to -inf) if no alignment path
  /// has nonzero probability; `mats` is then unusable for posteriors.
  bool align(const Pwm& pwm, std::span<const std::uint8_t> window,
             AlignmentMatrices& mats) const;

  /// Posterior P(x_i diamond y_j | x, y) for 1-based i, j.  Valid after a
  /// successful align().  `row_mass` must be row_masses()[i].
  /// Row masses: c_i = sum_j (fm*bm + fgx*bgx)(i, j).  Dividing the scaled
  /// products by c_i yields exact posteriors (see scaling note above).
  std::vector<double> row_masses(const AlignmentMatrices& mats) const;

 private:
  void run_forward(const std::vector<double>& pstar,
                   AlignmentMatrices& mats, double& log_scale) const;
  void run_backward(const std::vector<double>& pstar,
                    AlignmentMatrices& mats) const;

  PhmmParams params_;
  BoundaryMode mode_;
};

}  // namespace gnumap

// Viterbi decoding of the Pair-HMM: the single most probable alignment.
//
// Not used by the probabilistic caller (which marginalizes over alignments),
// but needed as a reference point: the paper's critique of existing methods
// is precisely that they commit to this one path.  Tests also use the
// invariant  viterbi log-prob <= forward log-likelihood.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gnumap/genome/align_ops.hpp"
#include "gnumap/phmm/forward_backward.hpp"

namespace gnumap {

struct ViterbiResult {
  /// log probability of the best state path; -inf if none exists.
  double log_prob = 0.0;
  /// Operations from the start of the alignment.  kReadGap: a read base
  /// aligned against a gap (G_X); kGenomeGap: a genome base against a gap.
  std::vector<AlignOp> ops;
  /// For semi-global mode: 0-based window column where the alignment begins.
  std::size_t window_begin = 0;
  /// One-past the last aligned window column.
  std::size_t window_end = 0;
};

/// Runs Viterbi with the same parameters/boundary semantics as `hmm`.
ViterbiResult viterbi_align(const PairHmm& hmm, const Pwm& pwm,
                            std::span<const std::uint8_t> window);

}  // namespace gnumap

#include "gnumap/phmm/pwm.hpp"

#include <algorithm>

#include "gnumap/io/quality.hpp"

namespace gnumap {

Pwm Pwm::from_read(const Read& read) {
  Pwm pwm;
  pwm.rows_.resize(read.length());
  for (std::size_t i = 0; i < read.length(); ++i) {
    const std::uint8_t qual = i < read.quals.size() ? read.quals[i] : 0;
    pwm.rows_[i] = base_weights(read.bases[i], qual);
  }
  return pwm;
}

Pwm Pwm::from_read_reverse(const Read& read) {
  Pwm pwm;
  const std::size_t n = read.length();
  pwm.rows_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Position i of the reverse-complement read corresponds to position
    // n-1-i of the original; weights permute through the complement map.
    const std::size_t src = n - 1 - i;
    const std::uint8_t qual = src < read.quals.size() ? read.quals[src] : 0;
    const auto fwd = base_weights(read.bases[src], qual);
    for (int b = 0; b < kNumBases; ++b) {
      pwm.rows_[i][static_cast<std::size_t>(complement(
          static_cast<std::uint8_t>(b)))] = fwd[static_cast<std::size_t>(b)];
    }
  }
  return pwm;
}

Pwm Pwm::from_rows(std::vector<std::array<float, 4>> rows) {
  Pwm pwm;
  pwm.rows_ = std::move(rows);
  return pwm;
}

std::uint8_t Pwm::called_base(std::size_t i) const {
  const auto& row = rows_[i];
  return static_cast<std::uint8_t>(
      std::max_element(row.begin(), row.end()) - row.begin());
}

std::vector<double> Pwm::mixed_emissions(const PhmmParams& params) const {
  std::vector<double> table;
  mixed_emissions(params, table);
  return table;
}

void Pwm::mixed_emissions(const PhmmParams& params,
                          std::vector<double>& out) const {
  out.resize(rows_.size() * 5);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    for (std::uint8_t y = 0; y < 5; ++y) {
      double p = 0.0;
      for (std::uint8_t k = 0; k < 4; ++k) {
        p += static_cast<double>(rows_[i][k]) * params.emission(k, y);
      }
      out[i * 5 + y] = p;
    }
  }
}

}  // namespace gnumap

// Condensing alignment posteriors into per-genome-position nucleotide
// contributions — the z_k vectors of the paper's Step 2/3 boundary.
//
// For a fixed genome column j the paper defines
//   z_kA = sum_{i: x_i = A} P(x_i <> y_j) / denom(j)
// and analogously for C/G/T/gap.  Two generalizations, both configurable:
//
//  * Base identity.  The paper's own PWM extension replaces the indicator
//    {x_i = A} with the quality-derived weight r_iA; that is the default
//    (ProbMode::kPwmWeighted).  ProbMode::kCalledBase reproduces the printed
//    indicator form.
//  * Normalization.  The printed denominator mixes match posteriors with
//    x-gap posteriors, which does not measure "what aligns to column j".
//    The column-exact denominator (match + genome-gap posteriors for column
//    j; every path contributes exactly once per consumed genome base) is
//    available as Normalization::kColumn.  The default, kRawMass, skips the
//    division entirely: contributions are raw posterior mass, so a window
//    column the read barely overlaps contributes almost nothing instead of a
//    full unit vote, and for well-covered columns (denominator ~= 1) the
//    result coincides with the paper's normalized form.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/phmm/forward_backward.hpp"

namespace gnumap {

enum class ProbMode : std::uint8_t { kPwmWeighted, kCalledBase };
enum class Normalization : std::uint8_t { kRawMass, kColumn };

struct MarginalOptions {
  ProbMode prob_mode = ProbMode::kPwmWeighted;
  Normalization normalization = Normalization::kRawMass;
  /// kColumn only: columns with less aligned mass than this are dropped
  /// rather than inflated to a unit vote.
  double min_column_mass = 0.2;
};

/// Per-window-column track contributions from one (read, window) alignment.
struct ColumnContributions {
  /// tracks[j][k]: mass for track k (A,C,G,T,gap) at window column j
  /// (0-based; column j corresponds to DP column j+1).
  std::vector<std::array<float, kNumTracks>> tracks;
  /// Total aligned mass per column (the column denominator), for diagnostics.
  std::vector<float> column_mass;
};

/// Computes the z contributions from a completed forward/backward run.
/// `pwm` and `mats` must come from the same PairHmm::align call (or an
/// ok batched task — BatchedForward produces bit-identical matrices).
/// Correctness leans on the shared row-scaling invariant (docs/KERNELS.md
/// §3): forward and backward rows carry the same unknown scale factors, so
/// the posterior ratios formed here are exact.
ColumnContributions condense_marginals(const PairHmm& hmm, const Pwm& pwm,
                                       const AlignmentMatrices& mats,
                                       const MarginalOptions& options);

}  // namespace gnumap

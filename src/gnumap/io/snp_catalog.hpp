// SNP catalog: the dbSNP-style list of known/planted variant sites.
//
// The paper drew 14,501 evenly-spaced SNPs from dbSNP build 37 to create its
// simulated individual.  Our catalog file is a TSV with one site per line:
//   contig <tab> position(0-based) <tab> ref_allele <tab> alt_allele [<tab> zygosity]
// zygosity is "hom" or "het" (diploid simulation); absent means hom.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gnumap {

enum class Zygosity : std::uint8_t { kHom = 0, kHet = 1 };

struct CatalogEntry {
  std::string contig;
  std::uint64_t position = 0;  ///< 0-based offset within the contig
  std::uint8_t ref = 0;        ///< base code
  std::uint8_t alt = 0;        ///< base code
  Zygosity zygosity = Zygosity::kHom;
};

using SnpCatalog = std::vector<CatalogEntry>;

/// Parses a catalog; throws ParseError on malformed lines.
SnpCatalog read_catalog(std::istream& in);
SnpCatalog read_catalog_file(const std::string& path);

void write_catalog(std::ostream& out, const SnpCatalog& catalog);
void write_catalog_file(const std::string& path, const SnpCatalog& catalog);

}  // namespace gnumap

// A sequencing read: coded bases plus per-base Phred qualities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gnumap {

struct Read {
  std::string name;
  std::vector<std::uint8_t> bases;   ///< base codes (see sequence.hpp)
  std::vector<std::uint8_t> quals;   ///< Phred scores (not ASCII-offset)

  std::size_t length() const { return bases.size(); }
};

}  // namespace gnumap

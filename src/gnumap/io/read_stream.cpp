#include "gnumap/io/read_stream.hpp"

#include <algorithm>
#include <utility>

#include "gnumap/util/error.hpp"

namespace gnumap {

ReadStream::ReadStream(std::size_t batch_size) : batch_size_(batch_size) {
  require(batch_size > 0, "ReadStream: batch_size must be positive");
}

// ---------------------------------------------------------------------------
// VectorReadStream

VectorReadStream::VectorReadStream(const std::vector<Read>& reads,
                                   std::size_t batch_size)
    : ReadStream(batch_size), reads_(reads) {}

bool VectorReadStream::next(ReadBatch& batch) {
  batch.first_index = cursor_;
  batch.reads.clear();
  if (cursor_ >= reads_.size()) return false;
  const std::size_t end =
      std::min(reads_.size(), static_cast<std::size_t>(cursor_) + batch_size_);
  batch.reads.assign(reads_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                     reads_.begin() + static_cast<std::ptrdiff_t>(end));
  cursor_ = end;
  return true;
}

bool VectorReadStream::reset() {
  cursor_ = 0;
  return true;
}

std::uint64_t VectorReadStream::skip(std::uint64_t n) {
  const std::uint64_t skipped =
      std::min<std::uint64_t>(n, reads_.size() - cursor_);
  cursor_ += skipped;
  return skipped;
}

std::optional<std::uint64_t> VectorReadStream::size_hint() const {
  return reads_.size();
}

// ---------------------------------------------------------------------------
// FastqReadStream

FastqReadStream::FastqReadStream(const std::string& path,
                                 std::size_t batch_size, int phred_offset)
    : ReadStream(batch_size),
      owned_(std::make_unique<std::ifstream>(path)),
      in_(owned_.get()),
      phred_offset_(phred_offset),
      source_(path) {
  if (!*owned_) throw ParseError("cannot open FASTQ file: " + path);
  reader_.emplace(*in_, phred_offset_, source_);
}

FastqReadStream::FastqReadStream(std::istream& in, std::size_t batch_size,
                                 int phred_offset, std::string source)
    : ReadStream(batch_size),
      in_(&in),
      phred_offset_(phred_offset),
      source_(std::move(source)) {
  reader_.emplace(*in_, phred_offset_, source_);
}

bool FastqReadStream::next(ReadBatch& batch) {
  batch.first_index = cursor_;
  batch.reads.clear();
  Read read;
  while (batch.reads.size() < batch_size_ && reader_->next(read)) {
    bytes_decoded_ += read.name.size() + read.bases.size() + read.quals.size();
    batch.reads.push_back(std::move(read));
  }
  cursor_ += batch.reads.size();
  return !batch.reads.empty();
}

bool FastqReadStream::reset() {
  // clear() before seekg: a stream that has hit EOF refuses to seek until
  // its state flags are reset.
  in_->clear();
  in_->seekg(0);
  if (!*in_) return false;
  reader_.emplace(*in_, phred_offset_, source_);
  cursor_ = 0;
  return true;
}

std::uint64_t FastqReadStream::skip(std::uint64_t n) {
  // Skipped records still run through the parser: the cursor semantics
  // ("read k of this file") must not depend on whether a record was skipped
  // or delivered, and damaged records are rejected either way.
  Read read;
  std::uint64_t skipped = 0;
  while (skipped < n && reader_->next(read)) ++skipped;
  cursor_ += skipped;
  return skipped;
}

}  // namespace gnumap

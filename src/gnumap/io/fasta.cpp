#include "gnumap/io/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "gnumap/util/error.hpp"
#include "gnumap/util/string_util.hpp"

namespace gnumap {

std::vector<FastaRecord> read_fasta(std::istream& in) {
  std::vector<FastaRecord> records;
  std::string line;
  bool first_line = true;
  while (std::getline(in, line)) {
    if (first_line) {
      strip_bom(line);
      first_line = false;
    }
    const auto text = strip(line);
    if (text.empty()) continue;
    if (text[0] == '>') {
      // Name is the first whitespace-delimited token after '>'.
      auto header = text.substr(1);
      const auto space = header.find_first_of(" \t");
      auto name = std::string(
          space == std::string_view::npos ? header : header.substr(0, space));
      if (name.empty()) throw ParseError("FASTA header with empty name");
      records.emplace_back(std::move(name), std::string());
    } else {
      if (records.empty()) {
        throw ParseError("FASTA sequence data before any '>' header");
      }
      records.back().second.append(text);
    }
  }
  return records;
}

std::vector<FastaRecord> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open FASTA file: " + path);
  return read_fasta(in);
}

Genome genome_from_fasta(std::istream& in) {
  Genome genome;
  for (auto& [name, seq] : read_fasta(in)) {
    genome.add_contig(std::move(name), std::string_view(seq));
  }
  return genome;
}

Genome genome_from_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open FASTA file: " + path);
  return genome_from_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t line_width) {
  if (line_width == 0) line_width = 70;
  for (const auto& [name, seq] : records) {
    out << '>' << name << '\n';
    for (std::size_t pos = 0; pos < seq.size(); pos += line_width) {
      out << std::string_view(seq).substr(pos, line_width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t line_width) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open FASTA file for writing: " + path);
  write_fasta(out, records, line_width);
}

}  // namespace gnumap

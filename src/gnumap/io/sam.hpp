// Minimal SAM (Sequence Alignment/Map) output.
//
// GNUMAP emits its read placements alongside the SNP calls; this writer
// produces the subset of SAM 1.6 the mapper can populate: header with @HD
// and @SQ lines, then one alignment line per placed read with POS, MAPQ,
// CIGAR, SEQ and QUAL.  Multi-mapped reads under the probabilistic model
// are emitted as one record per retained site, with the posterior weight in
// the ZW:f tag and secondary-alignment flag on all but the strongest site.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gnumap/genome/align_ops.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/io/read.hpp"

namespace gnumap {

/// One alignment record ready for SAM serialization.
struct SamRecord {
  std::string qname;
  std::uint16_t flags = 0;          ///< 0x4 unmapped, 0x10 reverse, 0x100 secondary
  std::uint32_t contig_id = 0;      ///< index into the genome's contigs
  std::uint64_t position = 0;       ///< 0-based leftmost aligned base
  std::uint8_t mapq = 0;
  std::vector<AlignOp> cigar;       ///< empty for unmapped
  std::vector<std::uint8_t> bases;  ///< in alignment orientation
  std::vector<std::uint8_t> quals;
  double weight = 1.0;              ///< posterior site weight (ZW:f tag)

  static constexpr std::uint16_t kUnmapped = 0x4;
  static constexpr std::uint16_t kReverse = 0x10;
  static constexpr std::uint16_t kSecondary = 0x100;
};

/// Appends the @HD/@SQ/@PG header for `genome` to a byte buffer.  The
/// append_* family is the hot path: locale-independent std::to_chars
/// rendering (util/render.hpp) with no ostream in sight, so mapper workers
/// can format whole batches into io::OutputChunk buffers.
void append_sam_header(std::string& out, const Genome& genome,
                       const std::string& program = "gnumap-snp");

/// Appends one record.  Unmapped records emit `*` placeholders.
void append_sam_record(std::string& out, const Genome& genome,
                       const SamRecord& record);

/// Writes the @HD/@SQ/@PG header for `genome`.  The ostream writers are
/// thin wrappers over the append_* family (render, then one write()), so
/// both spellings produce identical bytes under any locale.
void write_sam_header(std::ostream& out, const Genome& genome,
                      const std::string& program = "gnumap-snp");

/// Writes one record.  Unmapped records emit `*` placeholders.
void write_sam_record(std::ostream& out, const Genome& genome,
                      const SamRecord& record);

/// Convenience: header + all records.
void write_sam(std::ostream& out, const Genome& genome,
               const std::vector<SamRecord>& records,
               const std::string& program = "gnumap-snp");

}  // namespace gnumap

// Per-batch preformatted output and the order-splicing drain.
//
// The streaming pipeline's drain used to format every SAM/TSV byte and
// apply every accumulator update itself, which made it the serial section
// that capped scaling (DESIGN.md §12).  This header moves the expensive
// half of that work to the mapper workers: each worker renders its batch
// into an OutputChunk — flat byte buffers per sink plus a pre-scaled
// accumulator delta list — and the drain becomes a ChunkSplicer that
// stitches chunks back into input order and write()s them.
//
// Ordering invariant: a chunk's bytes and deltas are produced in input
// order within the batch, and the splicer releases chunks in batch
// sequence order, so the concatenated output and the sequence of
// Accumulator::add calls are exactly those of the serial path — output
// stays byte-identical (and accumulation bit-identical, float addition
// being order-sensitive) for any worker count.
//
// Memory invariant: the splicer bounds both the number of parked chunks
// (the PR 4 admission window) and their summed rendered bytes
// (--output-buffer-bytes), with the in-order chunk exempt from both limits
// so the window can never deadlock (see util/batch_queue.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/util/batch_queue.hpp"

namespace gnumap {
namespace io {

/// One pre-scaled accumulator contribution: `counts` is a site's track
/// vector already multiplied by the site's posterior weight.  Replaying
/// deltas with Accumulator::add in list order reproduces the serial
/// accumulation bit-for-bit — the multiply is per-entry and thus
/// order-free, only the adds are order-sensitive, and the list preserves
/// their serial order.
struct AccumDelta {
  std::uint64_t pos = 0;
  TrackVector counts{};
};

/// Everything one batch contributes to the output, rendered by the worker
/// that mapped it.  Segments are per sink; unused segments stay empty
/// (the shared-memory pipeline fills sam + accum, the distributed root
/// splices tsv bodies, the serve layer frames sam and tsv).
struct OutputChunk {
  std::string sam;                ///< SAM records, input order, no header
  std::string tsv;                ///< TSV rows, no header line
  std::vector<AccumDelta> accum;  ///< pre-scaled adds, serial order

  /// Buffered footprint counted against the splicer's byte budget.
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(sam.size()) +
           static_cast<std::uint64_t>(tsv.size()) +
           static_cast<std::uint64_t>(accum.size()) * sizeof(AccumDelta);
  }

  bool empty() const { return sam.empty() && tsv.empty() && accum.empty(); }

  void clear() {
    sam.clear();
    tsv.clear();
    accum.clear();
  }
};

/// Replays a chunk's accumulator deltas in order.  Positions outside the
/// accumulator's range are ignored by Accumulator::add itself (the
/// genome-partition mode relies on that clipping).
void apply_accum_deltas(Accumulator& accum,
                        const std::vector<AccumDelta>& deltas);

/// The order-splicing drain: a ReorderBuffer of rendered chunks whose
/// admission window counts buffered output bytes as well as parked chunks.
/// Workers push(seq, chunk); the single drain thread pop_next()s chunks in
/// input order and write()s their segments.  `Chunk` must expose
/// `std::uint64_t bytes() const`; the pipeline instantiates this with a
/// wrapper that carries an OutputChunk plus per-batch stats.
///
/// Thread contract: push from any number of threads, pop_next/counters
/// from the single drain thread (counters are safe to read from other
/// threads once the drain has finished).
template <typename Chunk = OutputChunk>
class ChunkSplicer {
 public:
  /// `window` chunks and `max_buffered_bytes` rendered bytes (0 = no byte
  /// limit) may be parked waiting for the in-order chunk; that chunk itself
  /// is always admitted, so each limit can be exceeded by at most one
  /// chunk.
  ChunkSplicer(std::size_t window, std::uint64_t max_buffered_bytes)
      : reorder_(window, max_buffered_bytes) {}

  /// Parks `chunk` as batch sequence `seq`; blocks while the window or the
  /// byte budget is full (unless seq is the in-order chunk).  Returns false
  /// if the splicer was closed first.
  bool push(std::uint64_t seq, Chunk chunk) {
    const std::uint64_t weight = chunk.bytes();
    return reorder_.push(seq, std::move(chunk), weight);
  }

  /// Returns chunks in exactly push-sequence order; blocks until the next
  /// one arrives.  Returns nullopt once closed with no in-order chunk
  /// parked.
  std::optional<Chunk> pop_next() {
    auto chunk = reorder_.pop_next();
    if (chunk.has_value()) {
      ++chunks_spliced_;
      spliced_bytes_ += chunk->bytes();
    }
    return chunk;
  }

  /// Unblocks every waiter; parked out-of-order chunks are discarded.
  void close() { reorder_.close(); }

  /// Chunks / rendered bytes released through pop_next so far.
  std::uint64_t chunks_spliced() const { return chunks_spliced_; }
  std::uint64_t spliced_bytes() const { return spliced_bytes_; }
  /// High-water marks of the parked window (count and bytes).
  std::size_t peak_pending() const { return reorder_.peak_pending(); }
  std::uint64_t peak_pending_bytes() const {
    return reorder_.peak_weight_pending();
  }

 private:
  ReorderBuffer<Chunk> reorder_;
  std::uint64_t chunks_spliced_ = 0;
  std::uint64_t spliced_bytes_ = 0;
};

}  // namespace io
}  // namespace gnumap

#include "gnumap/io/fastq.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/string_util.hpp"

namespace gnumap {

FastqReader::FastqReader(std::istream& in, int phred_offset,
                         std::string source)
    : in_(in), offset_(phred_offset), source_(std::move(source)) {}

std::string FastqReader::where() const {
  const std::string record = "FASTQ record " + std::to_string(count_ + 1);
  return source_.empty() ? record : source_ + ": " + record;
}

bool FastqReader::next(Read& read) {
  std::string header, seq, plus, qual;
  // Skip blank lines between records (some tools emit them).
  do {
    if (!std::getline(in_, header)) return false;
    if (count_ == 0) strip_bom(header);
  } while (strip(header).empty());
  // Strip before the structural checks so CRLF line endings and stray
  // surrounding whitespace never masquerade as malformed records.
  const auto header_text = strip(header);
  if (header_text[0] != '@') {
    throw ParseError(where() + ": header does not start with '@'");
  }
  if (!std::getline(in_, seq) || !std::getline(in_, plus) ||
      !std::getline(in_, qual)) {
    throw ParseError(where() + ": truncated record");
  }
  const auto plus_text = strip(plus);
  if (plus_text.empty() || plus_text[0] != '+') {
    throw ParseError(where() + ": separator line does not start with '+'");
  }
  const auto seq_text = strip(seq);
  const auto qual_text = strip(qual);
  if (seq_text.size() != qual_text.size()) {
    // A mismatch means the record (or the file past it) is damaged; never
    // hand the caller a Read whose qualities do not cover its bases.
    throw ParseError(where() + ": sequence/quality length mismatch (" +
                     std::to_string(seq_text.size()) + " bases, " +
                     std::to_string(qual_text.size()) + " quality values)");
  }
  auto name_field = header_text.substr(1);
  const auto space = name_field.find_first_of(" \t");
  read.name = std::string(space == std::string_view::npos
                              ? name_field
                              : name_field.substr(0, space));
  read.bases = encode_sequence(seq_text);
  read.quals = decode_quals(qual_text, offset_);
  ++count_;
  return true;
}

std::vector<Read> read_fastq(std::istream& in, int phred_offset,
                             const std::string& source) {
  FastqReader reader(in, phred_offset, source);
  std::vector<Read> reads;
  Read read;
  while (reader.next(read)) reads.push_back(read);
  return reads;
}

std::vector<Read> read_fastq_file(const std::string& path, int phred_offset) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open FASTQ file: " + path);
  return read_fastq(in, phred_offset, path);
}

void write_fastq(std::ostream& out, const std::vector<Read>& reads,
                 int phred_offset) {
  for (const auto& read : reads) {
    out << '@' << read.name << '\n'
        << decode_sequence(read.bases) << "\n+\n"
        << encode_quals(read.quals, phred_offset) << '\n';
  }
}

void write_fastq_file(const std::string& path, const std::vector<Read>& reads,
                      int phred_offset) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open FASTQ file for writing: " + path);
  write_fastq(out, reads, phred_offset);
}

}  // namespace gnumap

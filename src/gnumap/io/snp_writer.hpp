// Output of called SNPs.
//
// Step (D) of the paper's workflow: "If the p-value passes a specified
// cutoff, ... print this location to a file."  Two formats are provided: a
// native TSV mirroring the information the caller computed, and a minimal
// VCF 4.2 body for interoperability.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gnumap {

/// One called variant site.
struct SnpCall {
  std::string contig;
  std::uint64_t position = 0;   ///< 0-based
  std::uint8_t ref = 0;         ///< reference base code
  std::uint8_t allele1 = 0;     ///< called allele (code)
  std::uint8_t allele2 = 0;     ///< second allele; == allele1 when homozygous
  double coverage = 0.0;        ///< n = sum of the z vector at this site
  double lrt_stat = 0.0;        ///< -2 log lambda
  double p_value = 1.0;         ///< multiple-testing-adjusted p-value
};

/// The append_* family renders into a byte buffer with locale-independent
/// std::to_chars (util/render.hpp) — the hot path used by per-worker and
/// per-rank output formatting.  The split header/row/body entry points let
/// the distributed root splice rank-local bodies under one header.
void append_snps_tsv_header(std::string& out);
void append_snps_tsv_row(std::string& out, const SnpCall& call);
void append_snps_tsv_body(std::string& out, const std::vector<SnpCall>& calls);
void append_snps_tsv(std::string& out, const std::vector<SnpCall>& calls);
void append_snps_vcf(std::string& out, const std::vector<SnpCall>& calls,
                     const std::string& sample_name = "sample");

/// Writes the native TSV format (one header line, then one site per line).
/// The ostream writers are thin wrappers over the append_* family, so both
/// spellings produce identical bytes under any locale.
void write_snps_tsv(std::ostream& out, const std::vector<SnpCall>& calls);
void write_snps_tsv_file(const std::string& path,
                         const std::vector<SnpCall>& calls);

/// Writes a minimal VCF body (no contig headers beyond the mandatory lines).
void write_snps_vcf(std::ostream& out, const std::vector<SnpCall>& calls,
                    const std::string& sample_name = "sample");

}  // namespace gnumap

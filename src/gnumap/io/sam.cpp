#include "gnumap/io/sam.hpp"

#include <cstdio>
#include <ostream>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {

void write_sam_header(std::ostream& out, const Genome& genome,
                      const std::string& program) {
  out << "@HD\tVN:1.6\tSO:unknown\n";
  for (std::uint32_t c = 0; c < genome.num_contigs(); ++c) {
    out << "@SQ\tSN:" << genome.contig_name(c) << "\tLN:"
        << genome.contig_size(c) << '\n';
  }
  out << "@PG\tID:" << program << "\tPN:" << program << '\n';
}

void write_sam_record(std::ostream& out, const Genome& genome,
                      const SamRecord& record) {
  const bool unmapped = (record.flags & SamRecord::kUnmapped) != 0;
  out << (record.qname.empty() ? "*" : record.qname.c_str()) << '\t'
      << record.flags << '\t';
  if (unmapped) {
    out << "*\t0\t0\t*\t";
  } else {
    require(record.contig_id < genome.num_contigs(),
            "write_sam_record: contig id out of range");
    out << genome.contig_name(record.contig_id) << '\t'
        << record.position + 1 << '\t'  // SAM POS is 1-based
        << static_cast<int>(record.mapq) << '\t';
    if (record.cigar.empty()) {
      out << "*\t";
    } else {
      out << ops_to_cigar(record.cigar) << '\t';
    }
  }
  out << "*\t0\t0\t";  // RNEXT/PNEXT/TLEN: unpaired
  if (record.bases.empty()) {
    out << "*\t*";
  } else {
    out << decode_sequence(record.bases) << '\t';
    if (record.quals.size() == record.bases.size()) {
      out << encode_quals(record.quals);
    } else {
      out << '*';
    }
  }
  char tag[32];
  std::snprintf(tag, sizeof(tag), "\tZW:f:%.6g", record.weight);
  out << tag << '\n';
}

void write_sam(std::ostream& out, const Genome& genome,
               const std::vector<SamRecord>& records,
               const std::string& program) {
  write_sam_header(out, genome, program);
  for (const auto& record : records) {
    write_sam_record(out, genome, record);
  }
}

}  // namespace gnumap

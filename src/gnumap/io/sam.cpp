#include "gnumap/io/sam.hpp"

#include <ostream>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/render.hpp"

namespace gnumap {

void append_sam_header(std::string& out, const Genome& genome,
                       const std::string& program) {
  out += "@HD\tVN:1.6\tSO:unknown\n";
  for (std::uint32_t c = 0; c < genome.num_contigs(); ++c) {
    out += "@SQ\tSN:";
    out += genome.contig_name(c);
    out += "\tLN:";
    append_int(out, genome.contig_size(c));
    out += '\n';
  }
  out += "@PG\tID:";
  out += program;
  out += "\tPN:";
  out += program;
  out += '\n';
}

void append_sam_record(std::string& out, const Genome& genome,
                       const SamRecord& record) {
  const bool unmapped = (record.flags & SamRecord::kUnmapped) != 0;
  if (record.qname.empty()) {
    out += '*';
  } else {
    out += record.qname;
  }
  out += '\t';
  append_int(out, record.flags);
  out += '\t';
  if (unmapped) {
    out += "*\t0\t0\t*\t";
  } else {
    require(record.contig_id < genome.num_contigs(),
            "append_sam_record: contig id out of range");
    out += genome.contig_name(record.contig_id);
    out += '\t';
    append_int(out, record.position + 1);  // SAM POS is 1-based
    out += '\t';
    append_int(out, static_cast<int>(record.mapq));
    out += '\t';
    if (record.cigar.empty()) {
      out += "*\t";
    } else {
      out += ops_to_cigar(record.cigar);
      out += '\t';
    }
  }
  out += "*\t0\t0\t";  // RNEXT/PNEXT/TLEN: unpaired
  if (record.bases.empty()) {
    out += "*\t*";
  } else {
    out += decode_sequence(record.bases);
    out += '\t';
    if (record.quals.size() == record.bases.size()) {
      out += encode_quals(record.quals);
    } else {
      out += '*';
    }
  }
  out += "\tZW:f:";
  append_general(out, record.weight, 6);
  out += '\n';
}

void write_sam_header(std::ostream& out, const Genome& genome,
                      const std::string& program) {
  std::string buf;
  append_sam_header(buf, genome, program);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void write_sam_record(std::ostream& out, const Genome& genome,
                      const SamRecord& record) {
  std::string buf;
  append_sam_record(buf, genome, record);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void write_sam(std::ostream& out, const Genome& genome,
               const std::vector<SamRecord>& records,
               const std::string& program) {
  std::string buf;
  append_sam_header(buf, genome, program);
  for (const auto& record : records) {
    append_sam_record(buf, genome, record);
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

}  // namespace gnumap

// FASTA reading and writing.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "gnumap/genome/genome.hpp"

namespace gnumap {

/// One FASTA record: (name up to first whitespace, raw sequence).
using FastaRecord = std::pair<std::string, std::string>;

/// Parses all records from a stream; throws ParseError on malformed input.
std::vector<FastaRecord> read_fasta(std::istream& in);

/// Parses a file by path.
std::vector<FastaRecord> read_fasta_file(const std::string& path);

/// Builds a Genome directly from FASTA input.
Genome genome_from_fasta(std::istream& in);
Genome genome_from_fasta_file(const std::string& path);

/// Writes records with fixed line width.
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t line_width = 70);
void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t line_width = 70);

}  // namespace gnumap

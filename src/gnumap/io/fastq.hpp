// FASTQ reading and writing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "gnumap/io/read.hpp"

namespace gnumap {

/// Streaming FASTQ parser.  Throws ParseError on structural damage
/// (truncated records, length mismatch between sequence and quality lines).
/// Every error names the source (`source`, e.g. the file path) and the
/// 1-based index of the offending record.
class FastqReader {
 public:
  explicit FastqReader(std::istream& in, int phred_offset = 33,
                       std::string source = "");

  /// Reads the next record into `read`; returns false at clean EOF.
  bool next(Read& read);

  std::size_t records_read() const { return count_; }

 private:
  /// "reads.fastq: FASTQ record 7" (or just "FASTQ record 7" source-less).
  std::string where() const;

  std::istream& in_;
  int offset_;
  std::size_t count_ = 0;
  std::string source_;
};

/// Reads every record from a stream or file.
std::vector<Read> read_fastq(std::istream& in, int phred_offset = 33,
                             const std::string& source = "");
std::vector<Read> read_fastq_file(const std::string& path,
                                  int phred_offset = 33);

/// Writes records in 4-line FASTQ form.
void write_fastq(std::ostream& out, const std::vector<Read>& reads,
                 int phred_offset = 33);
void write_fastq_file(const std::string& path, const std::vector<Read>& reads,
                      int phred_offset = 33);

}  // namespace gnumap

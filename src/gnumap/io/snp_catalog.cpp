#include "gnumap/io/snp_catalog.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/string_util.hpp"

namespace gnumap {

SnpCatalog read_catalog(std::istream& in) {
  SnpCatalog catalog;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1) strip_bom(line);
    const auto text = strip(line);
    if (text.empty() || text[0] == '#') continue;
    const auto fields = split(text, '\t');
    if (fields.size() < 4) {
      throw ParseError("catalog line " + std::to_string(line_no) +
                       ": expected >=4 tab-separated fields");
    }
    CatalogEntry entry;
    entry.contig = std::string(fields[0]);
    entry.position = parse_u64(fields[1]);
    if (fields[2].size() != 1 || fields[3].size() != 1) {
      throw ParseError("catalog line " + std::to_string(line_no) +
                       ": alleles must be single characters");
    }
    entry.ref = encode_base(fields[2][0]);
    entry.alt = encode_base(fields[3][0]);
    if (entry.ref > 3 || entry.alt > 3) {
      throw ParseError("catalog line " + std::to_string(line_no) +
                       ": alleles must be A/C/G/T");
    }
    if (fields.size() >= 5) {
      const auto z = strip(fields[4]);
      if (z == "het") {
        entry.zygosity = Zygosity::kHet;
      } else if (z == "hom") {
        entry.zygosity = Zygosity::kHom;
      } else {
        throw ParseError("catalog line " + std::to_string(line_no) +
                         ": zygosity must be 'hom' or 'het'");
      }
    }
    catalog.push_back(std::move(entry));
  }
  return catalog;
}

SnpCatalog read_catalog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open catalog file: " + path);
  return read_catalog(in);
}

void write_catalog(std::ostream& out, const SnpCatalog& catalog) {
  out << "# contig\tposition\tref\talt\tzygosity\n";
  for (const auto& entry : catalog) {
    out << entry.contig << '\t' << entry.position << '\t'
        << decode_base(entry.ref) << '\t' << decode_base(entry.alt) << '\t'
        << (entry.zygosity == Zygosity::kHet ? "het" : "hom") << '\n';
  }
}

void write_catalog_file(const std::string& path, const SnpCatalog& catalog) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open catalog file for writing: " + path);
  write_catalog(out, catalog);
}

}  // namespace gnumap

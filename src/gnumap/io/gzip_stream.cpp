#include "gnumap/io/gzip_stream.hpp"

#include <cstring>
#include <fstream>
#include <utility>

#include "gnumap/util/error.hpp"

#ifdef GNUMAP_HAVE_ZLIB
#include <zlib.h>
#endif

namespace gnumap {

bool looks_gzip(std::istream& in) {
  const int c0 = in.peek();
  if (c0 != 0x1f) return false;
  // Need the second byte; get() + unget() keeps the stream position.
  in.get();
  const int c1 = in.peek();
  in.unget();
  return c1 == 0x8b;
}

#ifdef GNUMAP_HAVE_ZLIB

bool gzip_available() { return true; }

std::string gzip_compress(const std::string& data) {
  z_stream strm{};
  // windowBits 15 + 16 selects a gzip (not zlib) wrapper.
  if (deflateInit2(&strm, Z_DEFAULT_COMPRESSION, Z_DEFLATED, 15 + 16, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    throw ConfigError("gzip_compress: deflateInit2 failed");
  }
  std::string out;
  out.resize(deflateBound(&strm, static_cast<uLong>(data.size())));
  strm.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(data.data()));
  strm.avail_in = static_cast<uInt>(data.size());
  strm.next_out = reinterpret_cast<Bytef*>(out.data());
  strm.avail_out = static_cast<uInt>(out.size());
  const int rc = deflate(&strm, Z_FINISH);
  deflateEnd(&strm);
  if (rc != Z_STREAM_END) {
    throw ConfigError("gzip_compress: deflate failed");
  }
  out.resize(out.size() - strm.avail_out);
  return out;
}

struct GzipInflateBuf::Impl {
  std::istream& in;
  std::string source;
  z_stream strm{};
  bool stream_open = false;
  bool finished = false;
  char in_buf[1 << 16];
  char out_buf[1 << 16];

  Impl(std::istream& in, std::string source)
      : in(in), source(std::move(source)) {
    open();
  }

  ~Impl() {
    if (stream_open) inflateEnd(&strm);
  }

  void open() {
    std::memset(&strm, 0, sizeof strm);
    // windowBits 15 + 32: auto-detect gzip or zlib wrapper.
    if (inflateInit2(&strm, 15 + 32) != Z_OK) {
      throw ConfigError(source + ": inflateInit2 failed");
    }
    stream_open = true;
  }

  /// Inflates into out_buf; returns the byte count (0 = end of data).
  std::size_t fill() {
    if (finished) return 0;
    strm.next_out = reinterpret_cast<Bytef*>(out_buf);
    strm.avail_out = sizeof out_buf;
    while (strm.avail_out == sizeof out_buf) {
      if (strm.avail_in == 0) {
        in.read(in_buf, sizeof in_buf);
        strm.next_in = reinterpret_cast<Bytef*>(in_buf);
        strm.avail_in = static_cast<uInt>(in.gcount());
        if (strm.avail_in == 0) {
          if (strm.total_in == 0 && strm.total_out == 0) {
            finished = true;  // empty input: zero decompressed bytes
            break;
          }
          throw ParseError(source + ": truncated gzip stream");
        }
      }
      const int rc = inflate(&strm, Z_NO_FLUSH);
      if (rc == Z_STREAM_END) {
        // Possible multi-member file (`cat a.gz b.gz`): more compressed
        // bytes follow, so restart the inflater on the next member.
        if (strm.avail_in > 0 || (in.peek(), !in.eof())) {
          if (inflateReset2(&strm, 15 + 32) != Z_OK) {
            throw ParseError(source + ": inflateReset2 failed");
          }
          continue;
        }
        finished = true;
        break;
      }
      if (rc != Z_OK) {
        throw ParseError(source + ": corrupt gzip stream (" +
                         (strm.msg != nullptr ? strm.msg : "zlib error") +
                         ")");
      }
    }
    return sizeof out_buf - strm.avail_out;
  }
};

GzipInflateBuf::GzipInflateBuf(std::istream& in, std::string source)
    : impl_(std::make_unique<Impl>(in, std::move(source))) {}

GzipInflateBuf::~GzipInflateBuf() = default;

GzipInflateBuf::int_type GzipInflateBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  const std::size_t n = impl_->fill();
  if (n == 0) return traits_type::eof();
  setg(impl_->out_buf, impl_->out_buf, impl_->out_buf + n);
  return traits_type::to_int_type(*gptr());
}

#else  // !GNUMAP_HAVE_ZLIB

bool gzip_available() { return false; }

namespace {
[[noreturn]] void no_zlib(const std::string& what) {
  throw ConfigError(what +
                    ": gzip support not compiled in (zlib was not found at "
                    "configure time)");
}
}  // namespace

std::string gzip_compress(const std::string&) { no_zlib("gzip_compress"); }

struct GzipInflateBuf::Impl {};

GzipInflateBuf::GzipInflateBuf(std::istream&, std::string source) {
  no_zlib(source);
}

GzipInflateBuf::~GzipInflateBuf() = default;

GzipInflateBuf::int_type GzipInflateBuf::underflow() {
  return traits_type::eof();
}

#endif  // GNUMAP_HAVE_ZLIB

GzipFastqReadStream::GzipFastqReadStream(const std::string& path,
                                         std::size_t batch_size,
                                         int phred_offset)
    : ReadStream(batch_size), path_(path), phred_offset_(phred_offset) {
  if (!gzip_available()) {
    throw ConfigError(path +
                      ": gzip support not compiled in (zlib was not found "
                      "at configure time)");
  }
  reopen();
}

void GzipFastqReadStream::reopen() {
  file_ = std::make_unique<std::ifstream>(path_, std::ios::binary);
  if (!*file_) throw ParseError("cannot open FASTQ file: " + path_);
  inflate_ = std::make_unique<GzipInflateBuf>(*file_, path_);
  text_ = std::make_unique<std::istream>(inflate_.get());
  // istream operations swallow streambuf exceptions into badbit; with
  // badbit in the exception mask the original ParseError (truncated or
  // corrupt gzip) is rethrown instead of masquerading as a clean EOF.
  text_->exceptions(std::ios::badbit);
  inner_ = std::make_unique<FastqReadStream>(*text_, batch_size_,
                                             phred_offset_, path_);
}

bool GzipFastqReadStream::next(ReadBatch& batch) {
  const bool ok = inner_->next(batch);
  cursor_ = inner_->cursor();
  return ok;
}

bool GzipFastqReadStream::reset() {
  // The inflate stage cannot seek, so a reset is a full reopen of the
  // underlying file plus a fresh decompressor.
  reopen();
  cursor_ = 0;
  return true;
}

std::uint64_t GzipFastqReadStream::skip(std::uint64_t n) {
  const std::uint64_t skipped = inner_->skip(n);
  cursor_ = inner_->cursor();
  return skipped;
}

std::unique_ptr<ReadStream> open_fastq_read_stream(const std::string& path,
                                                   std::size_t batch_size,
                                                   int phred_offset) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) throw ParseError("cannot open FASTQ file: " + path);
  const bool gz = looks_gzip(probe);
  probe.close();
  if (gz) {
    return std::make_unique<GzipFastqReadStream>(path, batch_size,
                                                 phred_offset);
  }
  return std::make_unique<FastqReadStream>(path, batch_size, phred_offset);
}

}  // namespace gnumap

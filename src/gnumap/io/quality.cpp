#include "gnumap/io/quality.hpp"

#include <algorithm>
#include <cmath>

#include "gnumap/util/error.hpp"

namespace gnumap {

double phred_to_error(std::uint8_t q) {
  return std::pow(10.0, -static_cast<double>(q) / 10.0);
}

std::uint8_t error_to_phred(double error) {
  if (!(error > 0.0)) return kMaxPhred;
  const double q = -10.0 * std::log10(error);
  return static_cast<std::uint8_t>(
      std::clamp(q + 0.5, 0.0, static_cast<double>(kMaxPhred)));
}

std::vector<std::uint8_t> decode_quals(std::string_view ascii, int offset) {
  std::vector<std::uint8_t> quals(ascii.size());
  for (std::size_t i = 0; i < ascii.size(); ++i) {
    const int q = static_cast<unsigned char>(ascii[i]) - offset;
    if (q < 0 || q > 93) {
      throw ParseError("quality character out of range: '" +
                       std::string(1, ascii[i]) + "'");
    }
    quals[i] = static_cast<std::uint8_t>(std::min<int>(q, kMaxPhred));
  }
  return quals;
}

std::string encode_quals(const std::vector<std::uint8_t>& quals, int offset) {
  std::string ascii(quals.size(), '!');
  for (std::size_t i = 0; i < quals.size(); ++i) {
    ascii[i] = static_cast<char>(offset + std::min(quals[i], kMaxPhred));
  }
  return ascii;
}

std::array<float, 4> base_weights(std::uint8_t base, std::uint8_t qual) {
  if (base >= 4) return {0.25f, 0.25f, 0.25f, 0.25f};
  const auto error = static_cast<float>(phred_to_error(qual));
  std::array<float, 4> w;
  w.fill(error / 3.0f);
  w[base] = 1.0f - error;
  return w;
}

}  // namespace gnumap

#include "gnumap/io/snp_writer.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/render.hpp"

namespace gnumap {

void append_snps_tsv_header(std::string& out) {
  out +=
      "# contig\tposition\tref\tallele1\tallele2\tcoverage\tlrt\tp_value\n";
}

void append_snps_tsv_row(std::string& out, const SnpCall& call) {
  out += call.contig;
  out += '\t';
  append_int(out, call.position);
  out += '\t';
  out += decode_base(call.ref);
  out += '\t';
  out += decode_base(call.allele1);
  out += '\t';
  out += decode_base(call.allele2);
  out += '\t';
  append_fixed(out, call.coverage, 2);
  out += '\t';
  append_fixed(out, call.lrt_stat, 4);
  out += '\t';
  append_scientific(out, call.p_value, 3);
  out += '\n';
}

void append_snps_tsv_body(std::string& out,
                          const std::vector<SnpCall>& calls) {
  for (const auto& call : calls) append_snps_tsv_row(out, call);
}

void append_snps_tsv(std::string& out, const std::vector<SnpCall>& calls) {
  append_snps_tsv_header(out);
  append_snps_tsv_body(out, calls);
}

void write_snps_tsv(std::ostream& out, const std::vector<SnpCall>& calls) {
  std::string buf;
  append_snps_tsv(buf, calls);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void write_snps_tsv_file(const std::string& path,
                         const std::vector<SnpCall>& calls) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open SNP file for writing: " + path);
  write_snps_tsv(out, calls);
}

void append_snps_vcf(std::string& out, const std::vector<SnpCall>& calls,
                     const std::string& sample_name) {
  out +=
      "##fileformat=VCFv4.2\n"
      "##source=gnumap-snp\n"
      "##INFO=<ID=DP,Number=1,Type=Float,Description=\"Read depth\">\n"
      "##INFO=<ID=LRT,Number=1,Type=Float,Description=\"-2 log lambda\">\n"
      "##FORMAT=<ID=GT,Number=1,Type=String,Description=\"Genotype\">\n"
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\t";
  out += sample_name;
  out += '\n';
  for (const auto& call : calls) {
    // ALT lists the non-reference alleles; genotype indexes REF=0, ALTs=1..
    std::string alt;
    int gt1 = 0, gt2 = 0;
    auto alt_index = [&](std::uint8_t allele) {
      if (allele == call.ref) return 0;
      const std::string letter(1, decode_base(allele));
      const auto pos = alt.find(letter);
      if (pos != std::string::npos) return static_cast<int>(pos / 2) + 1;
      if (!alt.empty()) alt += ',';
      alt += letter;
      return static_cast<int>((alt.size() + 1) / 2);
    };
    gt1 = alt_index(call.allele1);
    gt2 = alt_index(call.allele2);
    if (alt.empty()) alt.push_back('.');
    out += call.contig;
    out += '\t';
    // VCF positions are 1-based.
    append_int(out, call.position + 1);
    out += "\t.\t";
    out += decode_base(call.ref);
    out += '\t';
    out += alt;
    out += '\t';
    append_int(out, static_cast<int>(std::min(999.0, call.lrt_stat)));
    out += "\tPASS\tDP=";
    append_fixed(out, call.coverage, 1);
    out += ";LRT=";
    append_fixed(out, call.lrt_stat, 3);
    out += "\tGT\t";
    append_int(out, gt1);
    out += '/';
    append_int(out, gt2);
    out += '\n';
  }
}

void write_snps_vcf(std::ostream& out, const std::vector<SnpCall>& calls,
                    const std::string& sample_name) {
  std::string buf;
  append_snps_vcf(buf, calls, sample_name);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

}  // namespace gnumap

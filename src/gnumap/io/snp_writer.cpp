#include "gnumap/io/snp_writer.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {

void write_snps_tsv(std::ostream& out, const std::vector<SnpCall>& calls) {
  out << "# contig\tposition\tref\tallele1\tallele2\tcoverage\tlrt\tp_value\n";
  char buffer[64];
  for (const auto& call : calls) {
    out << call.contig << '\t' << call.position << '\t'
        << decode_base(call.ref) << '\t' << decode_base(call.allele1) << '\t'
        << decode_base(call.allele2) << '\t';
    std::snprintf(buffer, sizeof(buffer), "%.2f\t%.4f\t%.3e", call.coverage,
                  call.lrt_stat, call.p_value);
    out << buffer << '\n';
  }
}

void write_snps_tsv_file(const std::string& path,
                         const std::vector<SnpCall>& calls) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open SNP file for writing: " + path);
  write_snps_tsv(out, calls);
}

void write_snps_vcf(std::ostream& out, const std::vector<SnpCall>& calls,
                    const std::string& sample_name) {
  out << "##fileformat=VCFv4.2\n"
      << "##source=gnumap-snp\n"
      << "##INFO=<ID=DP,Number=1,Type=Float,Description=\"Read depth\">\n"
      << "##INFO=<ID=LRT,Number=1,Type=Float,Description=\"-2 log lambda\">\n"
      << "##FORMAT=<ID=GT,Number=1,Type=String,Description=\"Genotype\">\n"
      << "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\t"
      << sample_name << '\n';
  char buffer[96];
  for (const auto& call : calls) {
    // ALT lists the non-reference alleles; genotype indexes REF=0, ALTs=1..
    std::string alt;
    int gt1 = 0, gt2 = 0;
    auto alt_index = [&](std::uint8_t allele) {
      if (allele == call.ref) return 0;
      const std::string letter(1, decode_base(allele));
      const auto pos = alt.find(letter);
      if (pos != std::string::npos) return static_cast<int>(pos / 2) + 1;
      if (!alt.empty()) alt += ',';
      alt += letter;
      return static_cast<int>((alt.size() + 1) / 2);
    };
    gt1 = alt_index(call.allele1);
    gt2 = alt_index(call.allele2);
    if (alt.empty()) alt.push_back('.');
    // VCF positions are 1-based.
    std::snprintf(buffer, sizeof(buffer), "DP=%.1f;LRT=%.3f", call.coverage,
                  call.lrt_stat);
    out << call.contig << '\t' << call.position + 1 << "\t.\t"
        << decode_base(call.ref) << '\t' << alt << '\t'
        << static_cast<int>(std::min(999.0, call.lrt_stat)) << "\tPASS\t"
        << buffer << "\tGT\t" << gt1 << '/' << gt2 << '\n';
  }
}

}  // namespace gnumap

// Phred quality score conversions.
//
// A Phred score Q encodes an error probability e = 10^(-Q/10).  The PHMM's
// position-weight matrix is built from these probabilities: the called base
// gets weight 1-e and each alternative gets e/3 (uniform error model), which
// is the continuous emission vector the paper's PWM extension consumes.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gnumap {

/// Standard Sanger/Illumina-1.8 ASCII offset.
inline constexpr int kPhred33 = 33;
/// Legacy Illumina-1.3 offset.
inline constexpr int kPhred64 = 64;
/// Highest Phred score we store.
inline constexpr std::uint8_t kMaxPhred = 60;

/// Error probability for a Phred score.
double phred_to_error(std::uint8_t q);

/// Phred score for an error probability (clamped to [0, kMaxPhred]).
std::uint8_t error_to_phred(double error);

/// Decodes an ASCII quality string; throws ParseError on out-of-range chars.
std::vector<std::uint8_t> decode_quals(std::string_view ascii,
                                       int offset = kPhred33);

/// Encodes Phred scores into an ASCII quality string.
std::string encode_quals(const std::vector<std::uint8_t>& quals,
                         int offset = kPhred33);

/// Per-base emission weights for one read base: called base gets 1-e, the
/// other three get e/3 each.  N bases get a uniform 0.25 vector.
std::array<float, 4> base_weights(std::uint8_t base, std::uint8_t qual);

}  // namespace gnumap

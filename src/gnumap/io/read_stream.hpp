// Pull-based sources of fixed-size read batches: the input side of the
// streaming pipeline.
//
// A ReadStream replaces the monolithic "load every read into one
// std::vector<Read>" phase: consumers pull one ReadBatch at a time, so peak
// input memory is O(batch_size) per holder regardless of dataset size, and
// decoding can overlap mapping.  Two concrete sources:
//
//  * FastqReadStream — FASTQ file or istream, decoded incrementally with
//    the same structural validation (and error messages) as read_fastq.
//  * VectorReadStream — adapter over an in-memory std::vector<Read>, used
//    by the compatibility overloads, the simulator-fed tests, and anywhere
//    the reads already exist in memory.
//
// Cursor support: reads are numbered globally from 0 in delivery order
// (ReadBatch::first_index).  skip() fast-forwards past already-processed
// reads and reset() rewinds to the start — together these are what the
// distributed checkpoint/restart path records and replays.  Streams are not
// thread-safe; wrap access in a lock (or a BatchQueue) to share one.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gnumap/io/fastq.hpp"
#include "gnumap/io/read.hpp"

namespace gnumap {

/// One contiguous slice of the read stream.
struct ReadBatch {
  /// Global index (0-based, in stream order) of reads.front().
  std::uint64_t first_index = 0;
  std::vector<Read> reads;

  std::size_t size() const { return reads.size(); }
  bool empty() const { return reads.empty(); }
  /// Decoded heap footprint: name + bases + quals bytes of every read.
  std::uint64_t bytes() const {
    std::uint64_t total = 0;
    for (const auto& read : reads) {
      total += read.name.size() + read.bases.size() + read.quals.size();
    }
    return total;
  }
};

class ReadStream {
 public:
  virtual ~ReadStream() = default;

  /// Fills `batch` with the next <= batch_size() reads (first_index set).
  /// Returns false — leaving `batch` empty — at end of stream.
  virtual bool next(ReadBatch& batch) = 0;

  /// Rewinds to the first read.  Returns false when the source cannot seek
  /// (e.g. an istream-backed stream on a pipe); the stream is unchanged.
  virtual bool reset() = 0;

  /// Discards the next `n` reads (cheaper than decoding them into batches
  /// where the source allows).  Returns the number actually skipped — less
  /// than `n` only when the stream ends first.
  virtual std::uint64_t skip(std::uint64_t n) = 0;

  /// Total reads in the stream when known up front (in-memory sources);
  /// nullopt for sources that only learn the count at EOF.
  virtual std::optional<std::uint64_t> size_hint() const {
    return std::nullopt;
  }

  /// Global index of the next read next() would deliver.
  std::uint64_t cursor() const { return cursor_; }

  std::size_t batch_size() const { return batch_size_; }

 protected:
  explicit ReadStream(std::size_t batch_size);

  std::uint64_t cursor_ = 0;
  std::size_t batch_size_;
};

/// Default number of reads per batch where the caller does not choose one.
inline constexpr std::size_t kDefaultReadBatch = 256;

/// In-memory adapter: batches are copied slices of `reads` (the vector must
/// outlive the stream).  Sized, resettable, O(1) skip.
class VectorReadStream final : public ReadStream {
 public:
  VectorReadStream(const std::vector<Read>& reads,
                   std::size_t batch_size = kDefaultReadBatch);

  bool next(ReadBatch& batch) override;
  bool reset() override;
  std::uint64_t skip(std::uint64_t n) override;
  std::optional<std::uint64_t> size_hint() const override;

 private:
  const std::vector<Read>& reads_;
};

/// FASTQ-backed stream.  Parse errors carry the source label and the
/// 1-based record index (see FastqReader).  The file-path form owns its
/// stream and supports reset()/re-parse; the istream form resets only when
/// the underlying stream can seek.
class FastqReadStream final : public ReadStream {
 public:
  /// Opens `path`; throws ParseError if it cannot be opened.
  explicit FastqReadStream(const std::string& path,
                           std::size_t batch_size = kDefaultReadBatch,
                           int phred_offset = 33);
  /// Wraps a caller-owned istream (must outlive the stream).  `source` is
  /// the label used in error messages.
  FastqReadStream(std::istream& in, std::size_t batch_size = kDefaultReadBatch,
                  int phred_offset = 33, std::string source = "<stream>");

  bool next(ReadBatch& batch) override;
  bool reset() override;
  std::uint64_t skip(std::uint64_t n) override;

  /// Total decoded bytes (name + bases + quals) delivered so far; feeds the
  /// gnumap_stream_bytes_decoded_total counter.
  std::uint64_t bytes_decoded() const { return bytes_decoded_; }

 private:
  std::unique_ptr<std::ifstream> owned_;  ///< set for the file-path form
  std::istream* in_;
  int phred_offset_;
  std::string source_;
  std::optional<FastqReader> reader_;  ///< re-emplaced by reset()
  std::uint64_t bytes_decoded_ = 0;
};

}  // namespace gnumap

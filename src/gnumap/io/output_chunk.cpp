#include "gnumap/io/output_chunk.hpp"

namespace gnumap {
namespace io {

void apply_accum_deltas(Accumulator& accum,
                        const std::vector<AccumDelta>& deltas) {
  for (const auto& delta : deltas) accum.add(delta.pos, delta.counts);
}

}  // namespace io
}  // namespace gnumap

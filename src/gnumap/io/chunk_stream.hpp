// A std::streambuf over a pull-based chunk source, the seam that lets any
// chunked byte transport (wire-protocol frames, decompressors, test
// fixtures) feed the existing istream-based parsers.
//
// The service front-end is the motivating user: gnumapd wraps "read the
// next READS_CHUNK frame off the socket" in a ChunkSourceBuf, hands the
// resulting istream to FastqReadStream, and the whole staged pipeline pulls
// reads straight off the wire with its usual backpressure — the decoder
// only fetches another frame when the BatchQueue has room.
#pragma once

#include <functional>
#include <streambuf>
#include <string>

namespace gnumap {

class ChunkSourceBuf final : public std::streambuf {
 public:
  /// `next_chunk` fills its argument with the next chunk of bytes and
  /// returns true, or returns false at end of stream (the argument is then
  /// ignored).  Empty chunks are allowed and skipped.  The callable may
  /// throw; the exception propagates out of the istream operation that
  /// triggered the refill (callers should enable istream exceptions or use
  /// parsers that call underflow via sgetc/sbumpc directly, as
  /// FastqReader's line reader does).
  using ChunkFn = std::function<bool(std::string&)>;

  explicit ChunkSourceBuf(ChunkFn next_chunk)
      : next_chunk_(std::move(next_chunk)) {}

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    if (!next_chunk_) return traits_type::eof();
    chunk_.clear();
    while (chunk_.empty()) {
      if (!next_chunk_(chunk_)) {
        next_chunk_ = nullptr;
        return traits_type::eof();
      }
    }
    setg(chunk_.data(), chunk_.data(), chunk_.data() + chunk_.size());
    return traits_type::to_int_type(*gptr());
  }

 private:
  ChunkFn next_chunk_;
  std::string chunk_;
};

}  // namespace gnumap

// gzip support for the read path: a decompressing streambuf, a gzip-aware
// FASTQ ReadStream, and the open_fastq_read_stream factory the CLIs and
// the mapping service use to accept `.fastq` and `.fastq.gz` uniformly.
//
// zlib is an optional dependency, resolved at configure time
// (find_package(ZLIB) -> GNUMAP_HAVE_ZLIB).  Without it everything here
// still compiles and links; gzip_available() returns false and the
// gzip-requiring entry points throw ConfigError with a clear message, so
// callers can gate features at runtime instead of sprouting #ifdefs.
//
// Compressed files are detected by content (the 0x1f 0x8b magic), not file
// extension, so renamed files and process-substitution paths behave.
// Multi-member gzip files — the output of `cat a.gz b.gz`, which the gzip
// CLI tools treat as one stream — decompress as their concatenation.
#pragma once

#include <istream>
#include <memory>
#include <optional>
#include <streambuf>
#include <string>

#include "gnumap/io/read_stream.hpp"

namespace gnumap {

/// True when zlib was linked in and gzip inputs can be decompressed.
bool gzip_available();

/// True when `in` starts with the gzip magic bytes.  Peeks without
/// consuming; the stream must support seeking back (files do).
bool looks_gzip(std::istream& in);

/// gzip-compresses `data` (one member, default level).  Test and tooling
/// helper — the library itself only inflates.  Throws ConfigError when
/// zlib is unavailable.
std::string gzip_compress(const std::string& data);

/// Decompressing streambuf over a caller-owned source stream positioned at
/// the start of a gzip member.  read-only, unseekable.
class GzipInflateBuf final : public std::streambuf {
 public:
  /// Throws ConfigError when zlib is unavailable.  `source` is the label
  /// used in error messages.
  explicit GzipInflateBuf(std::istream& in, std::string source = "<gzip>");
  ~GzipInflateBuf() override;

  GzipInflateBuf(const GzipInflateBuf&) = delete;
  GzipInflateBuf& operator=(const GzipInflateBuf&) = delete;

 protected:
  int_type underflow() override;

 private:
  struct Impl;  ///< hides z_stream so zlib stays a .cpp-only dependency
  std::unique_ptr<Impl> impl_;
};

/// FASTQ stream over a gzip-compressed file: FastqReadStream behaviour
/// (batching, cursor, parse errors naming the file and record) with a
/// zlib inflate stage in front.  reset() reopens from the start of the
/// file; skip() decodes and discards like the plain stream.
class GzipFastqReadStream final : public ReadStream {
 public:
  /// Throws ConfigError when zlib is unavailable and ParseError when the
  /// file cannot be opened.
  explicit GzipFastqReadStream(const std::string& path,
                               std::size_t batch_size = kDefaultReadBatch,
                               int phred_offset = 33);

  bool next(ReadBatch& batch) override;
  bool reset() override;
  std::uint64_t skip(std::uint64_t n) override;

 private:
  void reopen();

  std::string path_;
  int phred_offset_;
  std::unique_ptr<std::ifstream> file_;
  std::unique_ptr<GzipInflateBuf> inflate_;
  std::unique_ptr<std::istream> text_;
  std::unique_ptr<FastqReadStream> inner_;
};

/// Opens `path` as a FASTQ read stream, transparently decompressing when
/// the content is gzip.  This is the front door the CLIs and gnumapd use;
/// throws ConfigError for a gzip file without zlib support compiled in.
std::unique_ptr<ReadStream> open_fastq_read_stream(
    const std::string& path, std::size_t batch_size = kDefaultReadBatch,
    int phred_offset = 33);

}  // namespace gnumap

#include "gnumap/fleet/registry.hpp"

#include <algorithm>
#include <utility>

#include "gnumap/genome/partition.hpp"
#include "gnumap/io/fasta.hpp"
#include "gnumap/obs/metrics.hpp"
#include "gnumap/util/log.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap::fleet {

namespace {

struct RegistryMetrics {
  obs::Gauge& resident = obs::registry().gauge(
      "gnumap_registry_resident", "Genomes currently resident in the registry");
  obs::Gauge& bytes = obs::registry().gauge(
      "gnumap_registry_bytes",
      "Resident bytes (genome + index arrays) across registry genomes");
  obs::Counter& evictions = obs::registry().counter(
      "gnumap_registry_evictions_total",
      "Genomes evicted from the registry to stay under the memory budget");
  obs::Gauge& load_seconds = obs::registry().gauge(
      "gnumap_index_load_seconds",
      "Wall-clock seconds the most recent index load/build took");
};

RegistryMetrics& metrics() {
  static RegistryMetrics m;
  return m;
}

std::uint64_t index_bytes(const HashIndex& index) {
  return index.offsets_span().size() * sizeof(std::uint64_t) +
         index.positions_span().size() * sizeof(GenomePos) +
         index.mask_span().size();
}

}  // namespace

std::uint64_t shard_margin(const PipelineConfig& config,
                           std::uint32_t shard_max_read_len) {
  return static_cast<std::uint64_t>(shard_max_read_len) +
         static_cast<std::uint64_t>(config.window_pad) +
         static_cast<std::uint64_t>(config.seeder.band_width);
}

GenomeRegistry::GenomeRegistry(std::vector<GenomeSpec> specs,
                               const PipelineConfig& config,
                               RegistryOptions options)
    : config_(config), options_(options) {
  require(!specs.empty(), "GenomeRegistry: at least one genome spec required");
  entries_.reserve(specs.size());
  for (auto& spec : specs) {
    require(!spec.id.empty(), "GenomeRegistry: genome id must be non-empty");
    require(find(spec.id) == nullptr,
            "GenomeRegistry: duplicate genome id \"" + spec.id + "\"");
    Entry e;
    e.spec = std::move(spec);
    entries_.push_back(std::move(e));
  }
  if (options_.shard_index >= 0) {
    require(options_.shard_count > options_.shard_index,
            "GenomeRegistry: shard_index must be < shard_count");
  }
}

GenomeRegistry::GenomeRegistry(const Genome& genome,
                               const PipelineConfig& config,
                               RegistryOptions options, const std::string& id)
    : config_(config), options_(options) {
  require(!id.empty(), "GenomeRegistry: genome id must be non-empty");
  if (options_.shard_index >= 0) {
    require(options_.shard_count > options_.shard_index,
            "GenomeRegistry: shard_index must be < shard_count");
  }
  auto res = std::make_shared<ResidentGenome>();
  res->id = id;
  res->pinned = true;
  if (options_.shard_index >= 0) {
    const auto segments = partition_genome(
        genome, options_.shard_count,
        shard_margin(config_, options_.shard_max_read_len));
    const GenomeSegment& seg =
        segments[static_cast<std::size_t>(options_.shard_index)];
    Timer timer;
    HashIndex index = HashIndex::build_shard(genome, config_.index,
                                             seg.store_begin, seg.store_end);
    res->session = std::make_unique<MappingSession>(
        genome, config_, std::move(index), timer.seconds());
    res->core_begin = seg.core_begin;
    res->core_end = seg.core_end;
  } else {
    res->session = std::make_unique<MappingSession>(genome, config_);
  }
  res->index_load_seconds = res->session->index_seconds();
  res->resident_bytes =
      genome.padded_size() + index_bytes(res->session->index());
  res->admission = std::make_unique<serve::AdmissionController>(
      options_.admission_reads, options_.per_connection_reads);
  Entry e;
  e.spec.id = id;
  e.state = Entry::State::kResident;
  e.resident = std::move(res);
  e.last_used = ++clock_;
  resident_bytes_ = e.resident->resident_bytes;
  entries_.push_back(std::move(e));
  metrics().load_seconds.set(entries_[0].resident->index_load_seconds);
  publish_metrics();
}

const std::string& GenomeRegistry::default_id() const {
  return entries_.front().spec.id;
}

GenomeRegistry::Entry* GenomeRegistry::find(const std::string& id) {
  for (auto& e : entries_) {
    if (e.spec.id == id) return &e;
  }
  return nullptr;
}

GenomeLease GenomeRegistry::acquire(const std::string& id) {
  std::unique_lock<std::mutex> lock(mu_);
  Entry* e = find(id.empty() ? entries_.front().spec.id : id);
  if (e == nullptr) {
    throw UnknownGenomeError("unknown genome id \"" + id +
                             "\" (this daemon serves " +
                             std::to_string(entries_.size()) + " genome(s))");
  }
  for (;;) {
    if (e->state == Entry::State::kResident) {
      e->last_used = ++clock_;
      return e->resident;
    }
    if (e->state == Entry::State::kLoading) {
      cv_.wait(lock);
      continue;
    }
    // Cold: this thread loads it, without the lock — an index build can
    // take seconds and other genomes' requests must not stall behind it.
    e->state = Entry::State::kLoading;
    lock.unlock();
    GenomeLease res;
    try {
      res = load_resident(e->spec);
    } catch (...) {
      lock.lock();
      e->state = Entry::State::kCold;
      cv_.notify_all();
      throw;
    }
    lock.lock();
    if (!evict_to_fit(res->resident_bytes, e)) {
      e->state = Entry::State::kCold;
      cv_.notify_all();
      throw EvictedError(
          "genome \"" + e->spec.id + "\" (" +
              std::to_string(res->resident_bytes) +
              " bytes) cannot be made resident under the " +
              std::to_string(options_.memory_budget_bytes) +
              "-byte budget: every idle genome is already evicted; "
              "retry_after_ms=" +
              std::to_string(options_.evicted_retry_ms),
          options_.evicted_retry_ms);
    }
    e->resident = std::move(res);
    e->state = Entry::State::kResident;
    e->last_used = ++clock_;
    resident_bytes_ += e->resident->resident_bytes;
    metrics().load_seconds.set(e->resident->index_load_seconds);
    publish_metrics();
    GNUMAP_LOG(kInfo) << "registry: genome \"" << e->spec.id << "\" resident ("
                      << e->resident->resident_bytes << " bytes, "
                      << (e->resident->from_index_file ? "index file"
                                                       : "fasta build")
                      << ", " << e->resident->index_load_seconds << "s load)";
    cv_.notify_all();
    return e->resident;
  }
}

GenomeLease GenomeRegistry::load_resident(const GenomeSpec& spec) const {
  auto res = std::make_shared<ResidentGenome>();
  res->id = spec.id;
  if (spec.is_index_file) {
    res->from_index_file = true;
    res->loaded = std::make_unique<LoadedIndex>(load_index_file(spec.path));
    LoadedIndex& li = *res->loaded;
    require(li.info.k == config_.index.k,
            "fleet index " + spec.path + ": built with k=" +
                std::to_string(li.info.k) + " but the daemon runs k=" +
                std::to_string(config_.index.k));
    if (options_.shard_index >= 0) {
      const auto segments = partition_genome(
          li.genome, options_.shard_count,
          shard_margin(config_, options_.shard_max_read_len));
      const GenomeSegment& seg =
          segments[static_cast<std::size_t>(options_.shard_index)];
      require(li.info.build_begin == seg.store_begin &&
                  li.info.build_end == seg.store_end,
              "fleet index " + spec.path + ": built over [" +
                  std::to_string(li.info.build_begin) + ", " +
                  std::to_string(li.info.build_end) +
                  ") but shard " + std::to_string(options_.shard_index) +
                  "/" + std::to_string(options_.shard_count) +
                  " stores [" + std::to_string(seg.store_begin) + ", " +
                  std::to_string(seg.store_end) + ")");
      res->core_begin = seg.core_begin;
      res->core_end = seg.core_end;
    } else {
      require(li.info.build_begin == 0 && li.info.build_end == 0,
              "fleet index " + spec.path +
                  ": is a shard index (build range [" +
                  std::to_string(li.info.build_begin) + ", " +
                  std::to_string(li.info.build_end) +
                  ")) but this daemon is not in shard mode");
    }
    res->index_load_seconds = li.load_seconds;
    // The session adopts the HashIndex by move; its spans keep viewing the
    // mmap inside res->loaded->file, which res keeps alive.
    res->session = std::make_unique<MappingSession>(
        li.genome, config_, std::move(li.index), li.load_seconds);
    res->resident_bytes = li.info.file_bytes;
  } else {
    res->owned_genome =
        std::make_unique<Genome>(genome_from_fasta_file(spec.path));
    const Genome& genome = *res->owned_genome;
    if (options_.shard_index >= 0) {
      const auto segments = partition_genome(
          genome, options_.shard_count,
          shard_margin(config_, options_.shard_max_read_len));
      const GenomeSegment& seg =
          segments[static_cast<std::size_t>(options_.shard_index)];
      Timer timer;
      HashIndex index = HashIndex::build_shard(genome, config_.index,
                                               seg.store_begin, seg.store_end);
      res->session = std::make_unique<MappingSession>(
          genome, config_, std::move(index), timer.seconds());
      res->core_begin = seg.core_begin;
      res->core_end = seg.core_end;
    } else {
      res->session = std::make_unique<MappingSession>(genome, config_);
    }
    res->index_load_seconds = res->session->index_seconds();
    res->resident_bytes =
        genome.padded_size() + index_bytes(res->session->index());
  }
  res->admission = std::make_unique<serve::AdmissionController>(
      options_.admission_reads, options_.per_connection_reads);
  return res;
}

bool GenomeRegistry::evict_to_fit(std::uint64_t incoming_bytes,
                                  const Entry* keep) {
  if (options_.memory_budget_bytes == 0) return true;
  // A genome larger than the whole budget is admitted alone: the budget
  // bounds the fleet, not one genome.
  const std::uint64_t budget =
      std::max(options_.memory_budget_bytes, incoming_bytes);
  while (resident_bytes_ + incoming_bytes > budget) {
    Entry* victim = nullptr;
    for (auto& e : entries_) {
      if (&e == keep || e.state != Entry::State::kResident) continue;
      if (e.resident->pinned) continue;
      if (e.resident.use_count() != 1) continue;  // leased: busy, skip
      if (victim == nullptr || e.last_used < victim->last_used) victim = &e;
    }
    if (victim == nullptr) return false;
    GNUMAP_LOG(kInfo) << "registry: evicting genome \"" << victim->spec.id
                      << "\" (" << victim->resident->resident_bytes
                      << " bytes, idle) to fit " << incoming_bytes
                      << " incoming bytes under the "
                      << options_.memory_budget_bytes << "-byte budget";
    resident_bytes_ -= victim->resident->resident_bytes;
    victim->resident.reset();
    victim->state = Entry::State::kCold;
    ++victim->evictions;
    ++evictions_;
    metrics().evictions.inc();
  }
  publish_metrics();
  return true;
}

void GenomeRegistry::publish_metrics() const {
  std::size_t resident = 0;
  for (const auto& e : entries_) {
    if (e.state == Entry::State::kResident) ++resident;
  }
  metrics().resident.set(static_cast<double>(resident));
  metrics().bytes.set(static_cast<double>(resident_bytes_));
}

std::vector<RegistryRow> GenomeRegistry::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RegistryRow> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    RegistryRow row;
    row.id = e.spec.id;
    row.path = e.spec.path;
    row.resident = e.state == Entry::State::kResident;
    row.last_used = e.last_used;
    row.evictions = e.evictions;
    if (row.resident) {
      row.from_index_file = e.resident->from_index_file;
      row.pinned = e.resident->pinned;
      row.bytes = e.resident->resident_bytes;
      row.load_seconds = e.resident->index_load_seconds;
      row.active_leases =
          static_cast<std::uint64_t>(std::max<long>(0, e.resident.use_count() - 1));
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::uint64_t GenomeRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

std::uint64_t GenomeRegistry::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace gnumap::fleet

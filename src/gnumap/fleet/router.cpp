#include "gnumap/fleet/router.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <optional>
#include <streambuf>
#include <string>
#include <utility>

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/core/read_mapper.hpp"
#include "gnumap/core/sam_export.hpp"
#include "gnumap/core/snp_caller.hpp"
#include "gnumap/fleet/partials.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/io/read_stream.hpp"
#include "gnumap/io/sam.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/serve/client.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/log.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap::fleet {

using serve::decode_busy;
using serve::decode_error;
using serve::decode_hello;
using serve::encode_busy;
using serve::encode_error;
using serve::encode_hello;
using serve::encode_map_begin;
using serve::Frame;
using serve::FrameType;
using serve::kChunkBytes;
using serve::kFlagPhred64;
using serve::kFlagShardPartials;
using serve::kFlagWantSam;
using serve::kMinProtocolVersion;
using serve::kProtocolVersion;
using serve::MapBeginInfo;
using serve::read_frame;
using serve::Socket;
using serve::WireError;
using serve::WireErrorCode;
using serve::write_frame;

namespace {

std::string u64_kv(const char* key, std::uint64_t value) {
  return std::string(key) + "=" + std::to_string(value) + "\n";
}

std::string dbl_kv(const char* key, double value) {
  return std::string(key) + "=" + std::to_string(value) + "\n";
}

/// One live backend connection for the duration of a MAP request.
struct ShardConn {
  ShardBackend backend;
  Socket sock;
  std::string label;  ///< "host:port" for error messages
};

/// istream adapter over the client's READS_CHUNK frames, mirroring the
/// single daemon's pull model: a chunk is read off the socket only when
/// the FASTQ decoder wants more bytes, so backpressure reaches the client.
class ChunkSourceBuf final : public std::streambuf {
 public:
  ChunkSourceBuf(Socket& sock, const RouterOptions& options, bool& saw_end,
                 std::uint64_t& upload_bytes)
      : sock_(sock),
        options_(options),
        saw_end_(saw_end),
        upload_bytes_(upload_bytes) {}

 protected:
  int_type underflow() override {
    if (saw_end_) return traits_type::eof();
    std::optional<Frame> frame = read_frame(
        sock_, options_.max_frame_bytes, options_.io_timeout_ms);
    if (!frame.has_value()) {
      throw WireError(WireErrorCode::kClosed,
                      "client disconnected mid-request");
    }
    if (frame->type == FrameType::kMapEnd) {
      saw_end_ = true;
      return traits_type::eof();
    }
    if (frame->type != FrameType::kReadsChunk) {
      throw WireError(WireErrorCode::kProtocol,
                      "expected READS_CHUNK or MAP_END, got type " +
                          std::to_string(static_cast<int>(frame->type)));
    }
    upload_bytes_ += frame->payload.size();
    chunk_ = std::move(frame->payload);
    if (chunk_.empty()) return underflow();
    setg(chunk_.data(), chunk_.data(), chunk_.data() + chunk_.size());
    return traits_type::to_int_type(chunk_.front());
  }

 private:
  Socket& sock_;
  const RouterOptions& options_;
  bool& saw_end_;
  std::uint64_t& upload_bytes_;
  std::string chunk_;
};

/// Merges the per-shard candidate lists of one read, truncates to
/// max_candidates in seeder order, and returns the surviving ScoredSites.
/// This reproduces exactly what a single daemon's Seeder::candidates()
/// would have produced: shard core ranges partition the genome, so each
/// (diagonal, reverse) band lives in exactly one shard's list, the seeder
/// comparator (votes desc, diagonal asc, reverse asc — seeder.cpp) is a
/// strict total order over the merged list, and a global top-K candidate's
/// shard-local rank never exceeds its global rank, so every global top-K
/// entry is present in some shard's (already truncated) list.  Filtered
/// and failed-alignment candidates keep their slots through truncation,
/// exactly as they do in a single-daemon run, and are dropped only after.
std::vector<ScoredSite> merge_read_candidates(
    const PipelineConfig& config, std::vector<RawCandidate>&& merged) {
  std::sort(merged.begin(), merged.end(),
            [](const RawCandidate& a, const RawCandidate& b) {
              if (a.votes != b.votes) return a.votes > b.votes;
              if (a.diagonal != b.diagonal) return a.diagonal < b.diagonal;
              return a.reverse < b.reverse;
            });
  if (static_cast<int>(merged.size()) > config.seeder.max_candidates) {
    merged.resize(static_cast<std::size_t>(config.seeder.max_candidates));
  }
  std::vector<ScoredSite> sites;
  for (RawCandidate& cand : merged) {
    if (cand.ok) sites.push_back(std::move(cand.site));
  }
  return sites;
}

}  // namespace

RouterServer::RouterServer(const Genome& genome, const PipelineConfig& config,
                           const RouterOptions& options)
    : genome_(genome),
      config_(config),
      options_(options),
      listener_(std::make_unique<serve::Listener>(options.port,
                                                  options.bind_any)) {
  require(!options_.backends.empty(), "router needs at least one backend");
  GNUMAP_LOG(kInfo) << "gnumapd-router: " << options_.backends.size()
                    << " shard backend(s), genome " << genome_.num_bases()
                    << " bases, listening on port " << listener_->port();
}

RouterServer::~RouterServer() {
  request_stop();
  wait();
}

std::uint16_t RouterServer::port() const { return listener_->port(); }

void RouterServer::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void RouterServer::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

void RouterServer::run() {
  start();
  wait();
}

void RouterServer::request_stop() {
  stopping_.store(true, std::memory_order_relaxed);
}

void RouterServer::accept_loop() {
  while (!stopping()) {
    std::optional<Socket> sock = listener_->accept(200, &stopping_);
    if (!sock.has_value()) continue;
    const int conn_id =
        next_conn_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> lock(threads_mutex_);
    conn_threads_.emplace_back(
        [this, s = std::move(*sock), conn_id]() mutable {
          handle_connection(std::move(s), conn_id);
        });
  }
}

void RouterServer::send_error(Socket& sock, WireErrorCode code,
                              const std::string& msg) {
  try {
    write_frame(sock, FrameType::kError, encode_error(code, msg),
                options_.io_timeout_ms);
  } catch (const WireError&) {
    // Best effort: the peer may already be gone.
  }
}

void RouterServer::handle_connection(Socket sock, int conn_id) {
  try {
    std::optional<Frame> hello =
        read_frame(sock, options_.max_frame_bytes, options_.io_timeout_ms);
    if (!hello.has_value() || hello->type != FrameType::kHello) {
      return;
    }
    const auto [version, client_name] = decode_hello(hello->payload);
    if (version < kMinProtocolVersion) {
      send_error(sock, WireErrorCode::kBadVersion,
                 "unsupported protocol version " + std::to_string(version));
      return;
    }
    const std::uint16_t agreed =
        std::min<std::uint16_t>(version, kProtocolVersion);
    write_frame(sock, FrameType::kHelloOk,
                encode_hello(agreed,
                             "gnumapd-router shards=" +
                                 std::to_string(options_.backends.size()) +
                                 " genome_bases=" +
                                 std::to_string(genome_.num_bases())),
                options_.io_timeout_ms);
    GNUMAP_LOG(kDebug) << "router: conn " << conn_id << " handshake ok ("
                       << client_name << ", v" << agreed << ")";

    for (;;) {
      std::optional<Frame> frame;
      try {
        frame = read_frame(sock, options_.max_frame_bytes, /*timeout_ms=*/0,
                           &stopping_);
      } catch (const WireError& e) {
        if (e.code() == WireErrorCode::kShuttingDown) {
          send_error(sock, e.code(), "router is draining");
        } else if (e.code() != WireErrorCode::kClosed) {
          send_error(sock, e.code(), e.what());
        }
        return;
      }
      if (!frame.has_value()) return;  // clean disconnect

      switch (frame->type) {
        case FrameType::kMapBegin: {
          const MapBeginInfo begin = serve::decode_map_begin(frame->payload);
          const std::uint64_t req_id =
              next_req_id_.fetch_add(1, std::memory_order_relaxed) + 1;
          if (!handle_map(sock, begin, conn_id, req_id)) return;
          break;
        }
        case FrameType::kStats: {
          std::string text;
          text += u64_kv("protocol_version", kProtocolVersion);
          text += u64_kv("router_shards", options_.backends.size());
          text += u64_kv("genome_bases", genome_.num_bases());
          write_frame(sock, FrameType::kStatsOk, text,
                      options_.io_timeout_ms);
          break;
        }
        case FrameType::kHealth: {
          std::string text;
          text += std::string("ready=") + (stopping() ? "0" : "1") + "\n";
          text += u64_kv("router_shards", options_.backends.size());
          write_frame(sock, FrameType::kHealthOk, text,
                      options_.io_timeout_ms);
          break;
        }
        case FrameType::kShutdown:
          write_frame(sock, FrameType::kShutdownOk, "",
                      options_.io_timeout_ms);
          request_stop();
          return;
        default:
          send_error(sock, WireErrorCode::kProtocol,
                     "unexpected frame type " +
                         std::to_string(static_cast<int>(frame->type)));
          return;
      }
    }
  } catch (const std::exception& e) {
    GNUMAP_LOG(kWarn) << "router: conn " << conn_id
                      << " terminated: " << e.what();
  }
}

bool RouterServer::handle_map(Socket& sock, const MapBeginInfo& begin,
                              int conn_id, std::uint64_t req_id) {
  const std::string who = "[router conn " + std::to_string(conn_id) +
                          " req " + std::to_string(req_id) + "] ";
  const bool want_sam = (begin.flags & kFlagWantSam) != 0;
  const int phred_offset =
      (begin.flags & kFlagPhred64) != 0 ? kPhred64 : kPhred33;
  if ((begin.flags & kFlagShardPartials) != 0) {
    send_error(sock, WireErrorCode::kProtocol,
               who + "a router cannot serve shard partials itself");
    return false;
  }
  const std::string genome_id =
      begin.genome_id.empty() ? options_.genome_id : begin.genome_id;

  Timer request_timer;

  // Scatter setup: connect, handshake, and MAP_BEGIN every shard before
  // anything is promised to the client.  A BUSY from any shard aborts the
  // whole fan-out (largest retry hint wins) with the connection left open;
  // nothing has been uploaded yet, so the client's retry is free.
  std::vector<ShardConn> shards;
  shards.reserve(options_.backends.size());
  try {
    for (const ShardBackend& backend : options_.backends) {
      ShardConn conn;
      conn.backend = backend;
      conn.label = backend.host + ":" + std::to_string(backend.port);
      conn.sock = serve::connect_tcp(backend.host, backend.port,
                                     options_.io_timeout_ms);
      write_frame(conn.sock, FrameType::kHello,
                  encode_hello(kProtocolVersion, "gnumapd-router"),
                  options_.io_timeout_ms);
      std::optional<Frame> reply = read_frame(
          conn.sock, options_.max_frame_bytes, options_.io_timeout_ms);
      if (!reply.has_value()) {
        throw WireError(WireErrorCode::kClosed,
                        "shard " + conn.label + " closed during handshake");
      }
      if (reply->type == FrameType::kBusy) {
        const auto [retry_ms, msg] = decode_busy(reply->payload);
        write_frame(sock, FrameType::kBusy,
                    encode_busy(retry_ms, "shard " + conn.label + ": " + msg),
                    options_.io_timeout_ms);
        return true;
      }
      if (reply->type != FrameType::kHelloOk) {
        throw WireError(WireErrorCode::kProtocol,
                        "shard " + conn.label + " answered frame type " +
                            std::to_string(static_cast<int>(reply->type)) +
                            " to HELLO");
      }
      const auto [shard_version, banner] = decode_hello(reply->payload);
      if (shard_version < 4) {
        throw WireError(WireErrorCode::kBadVersion,
                        "shard " + conn.label + " negotiated v" +
                            std::to_string(shard_version) +
                            "; shard partials need v4");
      }
      shards.push_back(std::move(conn));
    }

    // MAP_BEGIN to every shard, then collect every MAP_GO before sending
    // the client its own MAP_GO.
    std::uint32_t busy_hint = 0;
    std::string busy_msg;
    for (ShardConn& shard : shards) {
      MapBeginInfo info;
      info.flags = kFlagShardPartials;
      info.deadline_ms = begin.deadline_ms;
      info.trace_id = begin.trace_id;
      info.parent_span_id = begin.parent_span_id;
      info.genome_id = genome_id;
      write_frame(shard.sock, FrameType::kMapBegin,
                  encode_map_begin(info, /*version=*/4),
                  options_.io_timeout_ms);
    }
    for (ShardConn& shard : shards) {
      std::optional<Frame> reply = read_frame(
          shard.sock, options_.max_frame_bytes, options_.io_timeout_ms);
      if (!reply.has_value()) {
        throw WireError(WireErrorCode::kClosed,
                        "shard " + shard.label + " closed after MAP_BEGIN");
      }
      if (reply->type == FrameType::kBusy) {
        const auto [retry_ms, msg] = decode_busy(reply->payload);
        if (retry_ms >= busy_hint) {
          busy_hint = retry_ms;
          busy_msg = "shard " + shard.label + ": " + msg;
        }
        continue;
      }
      if (reply->type == FrameType::kError) {
        const auto [code, msg] = decode_error(reply->payload);
        throw WireError(code, "shard " + shard.label + ": " + msg);
      }
      if (reply->type != FrameType::kMapGo) {
        throw WireError(WireErrorCode::kProtocol,
                        "shard " + shard.label + " answered frame type " +
                            std::to_string(static_cast<int>(reply->type)) +
                            " to MAP_BEGIN");
      }
    }
    if (!busy_msg.empty()) {
      write_frame(sock, FrameType::kBusy, encode_busy(busy_hint, busy_msg),
                  options_.io_timeout_ms);
      return true;
    }
  } catch (const WireError& e) {
    send_error(sock, e.code(), who + e.what());
    return false;
  }

  try {
    write_frame(sock, FrameType::kMapGo, "", options_.io_timeout_ms);

    // The same epilogue a single daemon runs (session.cpp): accumulator,
    // SAM header first, per-read accumulate + SAM records in input order,
    // call_snps over the finished accumulator, TSV last.
    auto accum = make_accumulator(config_.accum_kind, 0,
                                  genome_.padded_size(),
                                  config_.centdisc_quantize);
    std::string sam_text;
    if (want_sam) append_sam_header(sam_text, genome_);

    MapStats stats;
    std::uint64_t upload_bytes = 0;
    std::uint64_t result_bytes = 0;
    std::uint64_t batches = 0;
    bool saw_end = false;
    ChunkSourceBuf chunk_buf(sock, options_, saw_end, upload_bytes);
    std::istream fastq_text(&chunk_buf);
    fastq_text.exceptions(std::ios::badbit);
    FastqReadStream reads(fastq_text, config_.stream_batch, phred_offset,
                          "<wire>");

    const auto send_result = [&](FrameType type, const std::string& text) {
      for (std::size_t off = 0; off < text.size(); off += kChunkBytes) {
        const std::size_t n = std::min(kChunkBytes, text.size() - off);
        write_frame(sock, type, std::string_view(text).substr(off, n),
                    options_.io_timeout_ms);
        result_bytes += n;
      }
    };

    ReadBatch batch;
    while (reads.next(batch)) {
      ++batches;
      stats.reads_total += batch.reads.size();
      const std::string payload = serialize_reads(batch.reads);
      for (ShardConn& shard : shards) {
        write_frame(shard.sock, FrameType::kShardReads, payload,
                    options_.io_timeout_ms);
      }
      // One RESULT_PARTIAL per shard, gathered in backend order; the merge
      // is order-independent (the sort below re-establishes seeder order).
      std::vector<std::vector<RawCandidate>> merged(batch.reads.size());
      for (ShardConn& shard : shards) {
        std::optional<Frame> reply = read_frame(
            shard.sock, options_.max_frame_bytes, options_.shard_timeout_ms);
        if (!reply.has_value()) {
          throw WireError(WireErrorCode::kClosed,
                          "shard " + shard.label + " closed mid-batch");
        }
        if (reply->type == FrameType::kError) {
          const auto [code, msg] = decode_error(reply->payload);
          throw WireError(code, "shard " + shard.label + ": " + msg);
        }
        if (reply->type != FrameType::kResultPartial) {
          throw WireError(WireErrorCode::kProtocol,
                          "shard " + shard.label + " sent frame type " +
                              std::to_string(static_cast<int>(reply->type)) +
                              " instead of RESULT_PARTIAL");
        }
        auto partials = deserialize_partials(reply->payload);
        if (partials.size() != batch.reads.size()) {
          throw WireError(WireErrorCode::kProtocol,
                          "shard " + shard.label + " answered " +
                              std::to_string(partials.size()) +
                              " reads for a batch of " +
                              std::to_string(batch.reads.size()));
        }
        for (std::size_t r = 0; r < partials.size(); ++r) {
          auto& dst = merged[r];
          auto& src = partials[r];
          dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                     std::make_move_iterator(src.end()));
        }
      }
      for (std::size_t r = 0; r < batch.reads.size(); ++r) {
        std::vector<ScoredSite> sites =
            merge_read_candidates(config_, std::move(merged[r]));
        finalize_scored_sites(config_, batch.reads[r], sites, stats);
        ReadMapper::accumulate(sites, *accum);
        if (want_sam) {
          for (const auto& record :
               to_sam_records(genome_, batch.reads[r], sites, config_)) {
            append_sam_record(sam_text, genome_, record);
          }
        }
      }
    }

    // Release the shards and aggregate their MAP_DONE accounting.
    std::uint64_t shard_candidates = 0;
    std::uint64_t shard_cells = 0;
    for (ShardConn& shard : shards) {
      write_frame(shard.sock, FrameType::kMapEnd, "", options_.io_timeout_ms);
    }
    for (ShardConn& shard : shards) {
      std::optional<Frame> reply = read_frame(
          shard.sock, options_.max_frame_bytes, options_.shard_timeout_ms);
      if (!reply.has_value()) {
        throw WireError(WireErrorCode::kClosed,
                        "shard " + shard.label + " closed before MAP_DONE");
      }
      if (reply->type == FrameType::kError) {
        const auto [code, msg] = decode_error(reply->payload);
        throw WireError(code, "shard " + shard.label + ": " + msg);
      }
      if (reply->type != FrameType::kMapDone) {
        throw WireError(WireErrorCode::kProtocol,
                        "shard " + shard.label + " sent frame type " +
                            std::to_string(static_cast<int>(reply->type)) +
                            " instead of MAP_DONE");
      }
      const auto kv = serve::parse_kv_lines(reply->payload);
      const auto cand = kv.find("candidates_evaluated");
      if (cand != kv.end()) {
        shard_candidates += std::stoull(cand->second);
      }
      const auto cells = kv.find("phmm_cells");
      if (cells != kv.end()) shard_cells += std::stoull(cells->second);
    }

    if (want_sam) send_result(FrameType::kResultSam, sam_text);

    const std::vector<SnpCall> calls = call_snps(genome_, *accum, config_);
    std::string tsv_text;
    append_snps_tsv(tsv_text, calls);
    send_result(FrameType::kResultTsv, tsv_text);

    std::string done;
    done += u64_kv("reads_total", stats.reads_total);
    done += u64_kv("reads_mapped", stats.reads_mapped);
    done += u64_kv("calls", calls.size());
    done += u64_kv("batches", batches);
    done += u64_kv("router_shards", shards.size());
    done += u64_kv("candidates_evaluated", shard_candidates);
    done += u64_kv("phmm_cells", shard_cells);
    done += u64_kv("upload_bytes", upload_bytes);
    done += u64_kv("result_bytes", result_bytes);
    done += "genome_id=" + genome_id + "\n";
    done += dbl_kv("total_seconds", request_timer.seconds());
    if (begin.trace_id != 0) {
      done += "trace_id=" + serve::trace_id_hex(begin.trace_id) + "\n";
      done += "parent_span_id=" +
              serve::trace_id_hex(begin.parent_span_id) + "\n";
    }
    write_frame(sock, FrameType::kMapDone, done, options_.io_timeout_ms);
    GNUMAP_LOG(kInfo) << "router: " << who << stats.reads_mapped << "/"
                      << stats.reads_total << " reads mapped across "
                      << shards.size() << " shard(s), " << calls.size()
                      << " calls in " << request_timer.seconds() << " s";
    return true;
  } catch (const WireError& e) {
    send_error(sock, e.code(), who + e.what());
    return false;
  } catch (const ParseError& e) {
    send_error(sock, WireErrorCode::kParse, who + e.what());
    return false;
  } catch (const std::exception& e) {
    send_error(sock, WireErrorCode::kInternal, who + e.what());
    return false;
  }
}

}  // namespace gnumap::fleet

#include "gnumap/fleet/partials.hpp"

#include <cstring>

#include "gnumap/serve/wire.hpp"

namespace gnumap::fleet {

namespace {

using serve::get_u16;
using serve::get_u32;
using serve::get_u64;
using serve::put_u16;
using serve::put_u32;
using serve::put_u64;
using serve::WireError;
using serve::WireErrorCode;

// Candidate state byte.
constexpr std::uint8_t kStateFiltered = 0x01;
constexpr std::uint8_t kStateOk = 0x02;
constexpr std::uint8_t kStateReverse = 0x04;

void put_f32(std::string& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u32(out, bits);
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

float get_f32(std::string_view payload, std::size_t offset) {
  const std::uint32_t bits = get_u32(payload, offset);
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

double get_f64(std::string_view payload, std::size_t offset) {
  const std::uint64_t bits = get_u64(payload, offset);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void expect(std::string_view payload, std::size_t offset, std::size_t need,
            const char* what) {
  if (payload.size() - offset < need) {
    throw WireError(WireErrorCode::kBadFrame,
                    std::string("fleet partial payload truncated in ") + what);
  }
}

}  // namespace

std::string serialize_reads(std::span<const Read> reads) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(reads.size()));
  for (const Read& read : reads) {
    if (read.name.size() > 0xFFFF) {
      throw WireError(WireErrorCode::kBadFrame,
                      "read name exceeds 65535 bytes");
    }
    put_u16(out, static_cast<std::uint16_t>(read.name.size()));
    out.append(read.name);
    put_u32(out, static_cast<std::uint32_t>(read.bases.size()));
    out.append(reinterpret_cast<const char*>(read.bases.data()),
               read.bases.size());
    out.append(reinterpret_cast<const char*>(read.quals.data()),
               read.quals.size());
  }
  return out;
}

std::vector<Read> deserialize_reads(std::string_view payload) {
  std::size_t off = 0;
  const std::uint32_t count = get_u32(payload, off);
  off += 4;
  std::vector<Read> reads;
  reads.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Read read;
    const std::uint16_t name_len = get_u16(payload, off);
    off += 2;
    expect(payload, off, name_len, "read name");
    read.name.assign(payload.substr(off, name_len));
    off += name_len;
    const std::uint32_t len = get_u32(payload, off);
    off += 4;
    expect(payload, off, 2 * static_cast<std::size_t>(len), "read bases");
    const auto* bytes =
        reinterpret_cast<const std::uint8_t*>(payload.data()) + off;
    read.bases.assign(bytes, bytes + len);
    read.quals.assign(bytes + len, bytes + 2 * static_cast<std::size_t>(len));
    off += 2 * static_cast<std::size_t>(len);
    reads.push_back(std::move(read));
  }
  if (off != payload.size()) {
    throw WireError(WireErrorCode::kBadFrame,
                    "fleet read batch has trailing bytes");
  }
  return reads;
}

std::string serialize_partials(
    const std::vector<std::vector<RawCandidate>>& per_read) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(per_read.size()));
  for (const auto& cands : per_read) {
    if (cands.size() > 0xFFFF) {
      throw WireError(WireErrorCode::kBadFrame,
                      "candidate list exceeds 65535 entries");
    }
    put_u16(out, static_cast<std::uint16_t>(cands.size()));
    for (const RawCandidate& cand : cands) {
      std::uint8_t state = 0;
      if (cand.filtered) state |= kStateFiltered;
      if (cand.ok) state |= kStateOk;
      if (cand.reverse) state |= kStateReverse;
      out.push_back(static_cast<char>(state));
      put_u32(out, static_cast<std::uint32_t>(cand.votes));
      put_u64(out, cand.diagonal);
      if (!cand.ok) continue;
      put_u64(out, cand.site.window_begin);
      put_f64(out, cand.site.log_likelihood);
      const auto& tracks = cand.site.contributions.tracks;
      put_u32(out, static_cast<std::uint32_t>(tracks.size()));
      for (const auto& col : tracks) {
        for (float v : col) put_f32(out, v);
      }
    }
  }
  return out;
}

std::vector<std::vector<RawCandidate>> deserialize_partials(
    std::string_view payload) {
  std::size_t off = 0;
  const std::uint32_t nreads = get_u32(payload, off);
  off += 4;
  std::vector<std::vector<RawCandidate>> per_read;
  per_read.reserve(nreads);
  for (std::uint32_t r = 0; r < nreads; ++r) {
    const std::uint16_t ncand = get_u16(payload, off);
    off += 2;
    std::vector<RawCandidate> cands;
    cands.reserve(ncand);
    for (std::uint16_t c = 0; c < ncand; ++c) {
      expect(payload, off, 1, "candidate state");
      const auto state = static_cast<std::uint8_t>(payload[off]);
      off += 1;
      RawCandidate cand;
      cand.filtered = (state & kStateFiltered) != 0;
      cand.ok = (state & kStateOk) != 0;
      cand.reverse = (state & kStateReverse) != 0;
      cand.votes = static_cast<std::int32_t>(get_u32(payload, off));
      off += 4;
      cand.diagonal = get_u64(payload, off);
      off += 8;
      if (cand.ok) {
        cand.site.window_begin = get_u64(payload, off);
        off += 8;
        cand.site.log_likelihood = get_f64(payload, off);
        off += 8;
        cand.site.reverse = cand.reverse;
        const std::uint32_t ncols = get_u32(payload, off);
        off += 4;
        expect(payload, off, static_cast<std::size_t>(ncols) * 5 * 4,
               "column contributions");
        auto& tracks = cand.site.contributions.tracks;
        tracks.resize(ncols);
        for (std::uint32_t j = 0; j < ncols; ++j) {
          for (std::size_t k = 0; k < 5; ++k) {
            tracks[j][k] = get_f32(payload, off);
            off += 4;
          }
        }
      }
      cands.push_back(std::move(cand));
    }
    per_read.push_back(std::move(cands));
  }
  if (off != payload.size()) {
    throw WireError(WireErrorCode::kBadFrame,
                    "fleet partial payload has trailing bytes");
  }
  return per_read;
}

}  // namespace gnumap::fleet

// Read-only mmap() of a whole file, RAII-owned.
//
// The fleet instant-start path maps a serialized genome+index file and
// serves straight out of the page cache: no byte is copied, no page is
// touched until the mapper actually reads it, and a warm restart finds
// everything already resident.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace gnumap::fleet {

/// Move-only read-only file mapping.  open() throws ParseError when the
/// file is missing, empty, or unmappable.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      unmap();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  static MappedFile open(const std::string& path);

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

 private:
  void unmap();

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace gnumap::fleet

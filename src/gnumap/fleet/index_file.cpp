#include "gnumap/fleet/index_file.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "gnumap/serve/wire.hpp"  // crc32
#include "gnumap/util/error.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap::fleet {

namespace {

constexpr std::uint64_t kMagic = 0x0158444c464e47ull;        // "GNFLDX\x01"
constexpr std::uint64_t kFooterMagic = 0x52544f4f46584c46ull;  // "FLXFOOTR"
constexpr std::size_t kHeaderBytes = 80;
constexpr std::size_t kSectionEntryBytes = 24;
constexpr std::size_t kFooterBytes = 16;
constexpr std::uint32_t kMaxSections = 16;

enum SectionKind : std::uint32_t {
  kSectionContigMeta = 1,
  kSectionGenomeData = 2,
  kSectionIndexOffsets = 3,
  kSectionIndexPositions = 4,
  kSectionIndexMask = 5,
};

void append_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

struct Section {
  std::uint32_t kind = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

[[noreturn]] void damaged(const std::string& path, const std::string& why) {
  throw ParseError("fleet index " + path + ": " + why);
}

}  // namespace

void write_index_file(const std::string& path, const Genome& genome,
                      const HashIndex& index, GenomePos build_begin,
                      GenomePos build_end) {
  require(std::endian::native == std::endian::little,
          "fleet index files are little-endian only");

  // Contig metadata: u16 name length + name, u64 start, u64 end per contig.
  std::string contig_meta;
  for (std::uint32_t id = 0; id < genome.num_contigs(); ++id) {
    const std::string& name = genome.contig_name(id);
    require(name.size() <= 0xffff, "contig name too long for index file");
    contig_meta.push_back(static_cast<char>(name.size() & 0xff));
    contig_meta.push_back(static_cast<char>((name.size() >> 8) & 0xff));
    contig_meta.append(name);
    append_u64(contig_meta, genome.contig_start(id));
    append_u64(contig_meta, genome.contig_start(id) + genome.contig_size(id));
  }

  const auto genome_data = genome.data();
  const auto offsets = index.offsets_span();
  const auto positions = index.positions_span();
  const auto mask = index.mask_span();

  struct Payload {
    std::uint32_t kind;
    const void* data;
    std::uint64_t bytes;
  };
  const Payload payloads[] = {
      {kSectionContigMeta, contig_meta.data(), contig_meta.size()},
      {kSectionGenomeData, genome_data.data(), genome_data.size()},
      {kSectionIndexOffsets, offsets.data(),
       offsets.size() * sizeof(std::uint64_t)},
      {kSectionIndexPositions, positions.data(),
       positions.size() * sizeof(GenomePos)},
      {kSectionIndexMask, mask.data(), mask.size()},
  };
  constexpr std::uint32_t section_count = 5;

  // Lay sections out 8-byte aligned after header + table.
  std::uint64_t cursor = kHeaderBytes + section_count * kSectionEntryBytes;
  std::vector<Section> table;
  for (const Payload& p : payloads) {
    cursor = (cursor + 7) & ~std::uint64_t{7};
    table.push_back({p.kind, cursor, p.bytes});
    cursor += p.bytes;
  }
  const std::uint64_t file_bytes = cursor + kFooterBytes;

  std::string meta;
  meta.reserve(kHeaderBytes + section_count * kSectionEntryBytes);
  append_u64(meta, kMagic);
  append_u32(meta, kIndexFileVersion);
  append_u32(meta, section_count);
  append_u64(meta, file_bytes);
  append_u32(meta, static_cast<std::uint32_t>(index.k()));
  append_u32(meta, index.options().max_positions);
  append_u64(meta, index.num_distinct_kmers());
  append_u64(meta, genome.num_bases());
  append_u64(meta, genome.padded_size());
  append_u32(meta, genome.num_contigs());
  append_u32(meta, 0);  // reserved
  append_u64(meta, build_begin);
  append_u64(meta, build_end);
  for (const Section& s : table) {
    append_u32(meta, s.kind);
    append_u32(meta, 0);  // reserved
    append_u64(meta, s.offset);
    append_u64(meta, s.bytes);
  }
  const std::uint32_t meta_crc = serve::crc32(meta.data(), meta.size());
  std::uint32_t payload_crc = 0;
  for (const Payload& p : payloads) {
    payload_crc = serve::crc32(p.data, p.bytes, payload_crc);
  }

  // Write to a sibling tmp file and rename into place so a crashed build
  // never leaves a half-written file at the published path.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw ParseError("cannot write index file: " + tmp_path);
    out.write(meta.data(), static_cast<std::streamsize>(meta.size()));
    std::uint64_t written = meta.size();
    for (const Payload& p : payloads) {
      const Section& s = table[static_cast<std::size_t>(&p - payloads)];
      while (written < s.offset) {
        out.put('\0');
        ++written;
      }
      out.write(static_cast<const char*>(p.data),
                static_cast<std::streamsize>(p.bytes));
      written += p.bytes;
    }
    std::string footer;
    append_u32(footer, meta_crc);
    append_u32(footer, payload_crc);
    append_u64(footer, kFooterMagic);
    out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
    out.flush();
    if (!out) throw ParseError("short write on index file: " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    throw ParseError("cannot rename " + tmp_path + " into place");
  }
}

LoadedIndex load_index_file(const std::string& path, bool verify_payload) {
  if (std::endian::native != std::endian::little) {
    throw ParseError("fleet index files require a little-endian host");
  }
  const Timer timer;
  LoadedIndex loaded;
  loaded.file = MappedFile::open(path);
  const std::uint8_t* base = loaded.file.data();
  const std::uint64_t size = loaded.file.size();

  if (size < kHeaderBytes + kFooterBytes) {
    damaged(path, "truncated (" + std::to_string(size) +
                      " bytes, header alone needs " +
                      std::to_string(kHeaderBytes + kFooterBytes) + ")");
  }
  if (load_u64(base) != kMagic) {
    damaged(path, "bad magic (not a fleet index file)");
  }
  IndexFileInfo& info = loaded.info;
  info.version = load_u32(base + 8);
  if (info.version != kIndexFileVersion) {
    damaged(path, "unsupported format version " +
                      std::to_string(info.version) + " (this build reads " +
                      std::to_string(kIndexFileVersion) + ")");
  }
  const std::uint32_t section_count = load_u32(base + 12);
  if (section_count == 0 || section_count > kMaxSections) {
    damaged(path, "implausible section count " +
                      std::to_string(section_count));
  }
  info.file_bytes = load_u64(base + 16);
  if (info.file_bytes != size) {
    damaged(path, "size mismatch: header says " +
                      std::to_string(info.file_bytes) + " bytes, file has " +
                      std::to_string(size) + " (truncated or grown)");
  }
  const std::uint64_t table_end =
      kHeaderBytes +
      static_cast<std::uint64_t>(section_count) * kSectionEntryBytes;
  if (table_end + kFooterBytes > size) {
    damaged(path, "truncated inside the section table");
  }

  // Footer first: a meta CRC mismatch means nothing else is trustworthy.
  const std::uint8_t* footer = base + size - kFooterBytes;
  if (load_u64(footer + 8) != kFooterMagic) {
    damaged(path, "missing footer magic (truncated?)");
  }
  const std::uint32_t meta_crc = load_u32(footer);
  const std::uint32_t payload_crc = load_u32(footer + 4);
  if (serve::crc32(base, table_end) != meta_crc) {
    damaged(path, "header/section-table CRC mismatch");
  }

  info.k = static_cast<int>(load_u32(base + 24));
  info.max_positions = load_u32(base + 28);
  info.distinct = load_u64(base + 32);
  info.genome_bases = load_u64(base + 40);
  info.padded_size = load_u64(base + 48);
  info.num_contigs = load_u32(base + 56);
  info.build_begin = load_u64(base + 64);
  info.build_end = load_u64(base + 72);

  Section sections[kMaxSections + 1] = {};  // indexed by kind
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* entry = base + kHeaderBytes + i * kSectionEntryBytes;
    Section s;
    s.kind = load_u32(entry);
    s.offset = load_u64(entry + 8);
    s.bytes = load_u64(entry + 16);
    if (s.offset < table_end || s.bytes > size ||
        s.offset > size - kFooterBytes ||
        s.bytes > size - kFooterBytes - s.offset) {
      damaged(path, "section " + std::to_string(s.kind) +
                        " extends outside the file body");
    }
    if (s.kind >= 1 && s.kind <= kMaxSections) {
      if (sections[s.kind].kind != 0) {
        damaged(path, "duplicate section kind " + std::to_string(s.kind));
      }
      sections[s.kind] = s;
    }
  }
  for (std::uint32_t kind :
       {kSectionContigMeta, kSectionGenomeData, kSectionIndexOffsets,
        kSectionIndexPositions, kSectionIndexMask}) {
    if (sections[kind].kind == 0) {
      damaged(path, "missing section kind " + std::to_string(kind));
    }
  }

  if (verify_payload) {
    std::uint32_t crc = 0;
    for (std::uint32_t kind :
         {kSectionContigMeta, kSectionGenomeData, kSectionIndexOffsets,
          kSectionIndexPositions, kSectionIndexMask}) {
      const Section& s = sections[kind];
      crc = serve::crc32(base + s.offset, s.bytes, crc);
    }
    if (crc != payload_crc) {
      damaged(path, "payload CRC mismatch (bit rot or partial write)");
    }
  } else {
    // The fast path deliberately skips the payload CRC: checksumming the
    // body would fault in every page and erase the instant start.  The
    // structural checks above (plus from_borrowed's shape validation) keep
    // metadata damage typed; payload bit rot is what --verify is for.
  }

  // Contig metadata.
  const Section& meta = sections[kSectionContigMeta];
  std::vector<std::string> names;
  std::vector<std::uint64_t> starts, ends;
  {
    const std::uint8_t* p = base + meta.offset;
    std::uint64_t remaining = meta.bytes;
    for (std::uint32_t c = 0; c < info.num_contigs; ++c) {
      if (remaining < 2) damaged(path, "contig metadata truncated");
      const std::uint16_t name_len =
          static_cast<std::uint16_t>(p[0] | (p[1] << 8));
      p += 2;
      remaining -= 2;
      if (remaining < static_cast<std::uint64_t>(name_len) + 16) {
        damaged(path, "contig metadata truncated");
      }
      names.emplace_back(reinterpret_cast<const char*>(p), name_len);
      p += name_len;
      starts.push_back(load_u64(p));
      ends.push_back(load_u64(p + 8));
      p += 16;
      remaining -= static_cast<std::uint64_t>(name_len) + 16;
    }
    if (remaining != 0) {
      damaged(path, "trailing bytes after contig metadata");
    }
  }

  // Genome array.
  const Section& gdata = sections[kSectionGenomeData];
  if (gdata.bytes != info.padded_size) {
    damaged(path, "genome section size disagrees with the header");
  }

  // Index arrays.  Offsets/positions are reinterpreted in place, so their
  // file offsets must preserve 8-byte alignment on top of the page-aligned
  // mapping.
  if (info.k < 4 || info.k > 13) {
    damaged(path, "index k out of range");
  }
  const std::uint64_t space = kmer_space(info.k);
  const Section& soff = sections[kSectionIndexOffsets];
  const Section& spos = sections[kSectionIndexPositions];
  const Section& smask = sections[kSectionIndexMask];
  if (soff.offset % 8 != 0 || spos.offset % 8 != 0) {
    damaged(path, "index arrays are misaligned");
  }
  if (soff.bytes != (space + 1) * sizeof(std::uint64_t)) {
    damaged(path, "index offsets section size disagrees with k");
  }
  if (spos.bytes % sizeof(GenomePos) != 0) {
    damaged(path, "index positions section is not a whole number of entries");
  }
  if (smask.bytes != (space + 7) / 8) {
    damaged(path, "index mask section size disagrees with k");
  }

  try {
    loaded.genome = Genome::from_borrowed(
        {base + gdata.offset, static_cast<std::size_t>(gdata.bytes)},
        std::move(names), std::move(starts), std::move(ends));
    HashIndexOptions options;
    options.k = info.k;
    options.max_positions = info.max_positions;
    loaded.index = HashIndex::from_borrowed(
        options, info.distinct,
        {reinterpret_cast<const std::uint64_t*>(base + soff.offset),
         static_cast<std::size_t>(space + 1)},
        {reinterpret_cast<const GenomePos*>(base + spos.offset),
         static_cast<std::size_t>(spos.bytes / sizeof(GenomePos))},
        {base + smask.offset, static_cast<std::size_t>(smask.bytes)});
  } catch (const Error& e) {
    // Wrap the component validators' ConfigError/ParseError so every
    // corrupt-file failure surfaces under one typed banner.
    damaged(path, e.what());
  }
  if (loaded.genome.num_bases() != info.genome_bases) {
    damaged(path, "contig metadata disagrees with the header base count");
  }
  if (verify_payload) {
    const GenomePos limit =
        info.build_end == 0 ? info.padded_size : info.build_end;
    for (const GenomePos pos : loaded.index.positions_span()) {
      if (pos >= limit) {
        damaged(path, "index position past the build range");
      }
    }
  }
  loaded.load_seconds = timer.seconds();
  return loaded;
}

}  // namespace gnumap::fleet

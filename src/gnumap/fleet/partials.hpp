// Wire serialization for the fleet's scatter/gather shard protocol: read
// batches (router -> shard, SHARD_READS frames) and pre-epilogue candidate
// partials (shard -> router, RESULT_PARTIAL frames).
//
// Floats travel as raw IEEE-754 bit patterns (little-endian, like every
// other wire integer), so a partial's log-likelihood and column
// contributions arrive on the router bit-identical to what the shard's
// scalar kernel computed — the foundation of the router's byte-identity
// contract.  Candidates are shipped in seeder order including the
// window-filtered and failed-alignment placeholders, because both consume
// a max_candidates slot in a single-daemon run and the router must see
// them to truncate the merged list identically (read_mapper.hpp,
// RawCandidate).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gnumap/core/read_mapper.hpp"
#include "gnumap/io/read.hpp"

namespace gnumap::fleet {

/// SHARD_READS payload: u32 read count, then per read u16 name length +
/// name + u32 base count + coded bases + Phred qualities.
std::string serialize_reads(std::span<const Read> reads);

/// Inverse of serialize_reads; throws WireError(kBadFrame) on any
/// malformed payload (short buffer, trailing bytes).
std::vector<Read> deserialize_reads(std::string_view payload);

/// RESULT_PARTIAL payload: u32 read count, then per read u16 candidate
/// count + per candidate a state byte (filtered/ok/reverse), u32 votes,
/// u64 diagonal, and — for ok candidates only — u64 window begin, the
/// log-likelihood's f64 bits, u32 column count and 5 f32 bit patterns per
/// column (the ColumnContributions tracks; column_mass is diagnostic-only
/// and never shipped).
std::string serialize_partials(
    const std::vector<std::vector<RawCandidate>>& per_read);

/// Inverse of serialize_partials; throws WireError(kBadFrame) on any
/// malformed payload.
std::vector<std::vector<RawCandidate>> deserialize_partials(
    std::string_view payload);

}  // namespace gnumap::fleet

#include "gnumap/fleet/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "gnumap/util/error.hpp"

namespace gnumap::fleet {

MappedFile MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw ParseError("cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw ParseError("cannot stat " + path + ": " + std::strerror(err));
  }
  if (st.st_size <= 0) {
    ::close(fd);
    throw ParseError("refusing to map empty file: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping pins the inode; the descriptor has done its job.
  ::close(fd);
  if (base == MAP_FAILED) {
    throw ParseError("cannot mmap " + path + ": " + std::strerror(errno));
  }
  MappedFile file;
  file.data_ = static_cast<const std::uint8_t*>(base);
  file.size_ = size;
  return file;
}

void MappedFile::unmap() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

MappedFile::~MappedFile() { unmap(); }

}  // namespace gnumap::fleet

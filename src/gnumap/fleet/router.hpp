// The fleet shard router: one genome split across backend gnumapd shards.
//
// The router speaks the ordinary serving protocol to clients (a client
// cannot tell a router from a single daemon) and the v4 shard-partial
// dialect to its backends.  For each MAP request it fans every decoded
// read batch out as SHARD_READS frames, gathers one RESULT_PARTIAL per
// shard, merges the per-read candidate lists in seeder order, truncates
// the merged list to max_candidates exactly as a single daemon's seeder
// would, and only then runs the per-read posterior epilogue
// (finalize_scored_sites) and the shared accumulate/SAM/call_snps tail —
// which is what makes the router's TSV and SAM output byte-identical to a
// single daemon serving the whole genome.
//
// Renormalization rule (DESIGN.md §13): shards ship raw per-candidate
// log-likelihoods, never per-shard posteriors.  The posterior softmax is
// computed once, on the router, over the merged candidate list — so a
// read whose candidates straddle a shard boundary weighs them exactly as
// a single daemon would.  Summing per-shard softmaxes would double-count
// the normalizer; merging logs first is the only order that commutes.
//
// Backend faults surface as typed ERROR frames naming the shard; a BUSY
// from any shard is forwarded to the client (largest retry hint wins) and
// the request aborts before any read is uploaded, so the client's
// ordinary retry/backoff machinery (PR 6) applies unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gnumap/core/config.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/serve/socket.hpp"
#include "gnumap/serve/wire.hpp"

namespace gnumap::fleet {

/// One backend shard daemon.
struct ShardBackend {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct RouterOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (see RouterServer::port())
  bool bind_any = false;
  /// Per-frame socket deadline for handshakes and uploads.
  int io_timeout_ms = 30'000;
  /// Deadline while waiting for a shard's RESULT_PARTIAL (scoring time).
  int shard_timeout_ms = 300'000;
  std::uint32_t max_frame_bytes = serve::kDefaultMaxFrameBytes;
  /// Genome id forwarded to the shards in MAP_BEGIN ("" = their default).
  /// Clients may override per request on a v4 connection.
  std::string genome_id;
  std::vector<ShardBackend> backends;
};

/// Scatter/gather router over `backends`.  The genome reference must
/// outlive the server; it is used only for the SAM header/records and SNP
/// calling — the router never builds a HashIndex.
class RouterServer {
 public:
  RouterServer(const Genome& genome, const PipelineConfig& config,
               const RouterOptions& options);
  ~RouterServer();

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  void start();
  void wait();
  void run();  ///< start() + wait()
  void request_stop();
  bool stopping() const { return stopping_.load(std::memory_order_relaxed); }

  std::uint16_t port() const;

 private:
  void accept_loop();
  void handle_connection(serve::Socket sock, int conn_id);
  /// One MAP transaction; false closes the connection afterwards.
  bool handle_map(serve::Socket& sock, const serve::MapBeginInfo& begin,
                  int conn_id, std::uint64_t req_id);
  void send_error(serve::Socket& sock, serve::WireErrorCode code,
                  const std::string& msg);

  const Genome& genome_;
  PipelineConfig config_;
  RouterOptions options_;
  std::unique_ptr<serve::Listener> listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> next_conn_id_{0};
  std::atomic<std::uint64_t> next_req_id_{0};
  std::thread accept_thread_;
  std::mutex threads_mutex_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace gnumap::fleet

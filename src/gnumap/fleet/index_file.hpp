// Versioned, CRC-footed on-disk format for a byte-encoded genome plus its
// serialized HashIndex — the fleet "instant start" artifact.
//
// A cold (or crash-restarted) gnumapd mmap()s this file and serves in
// milliseconds instead of re-hashing the reference: the genome array and
// the index's three arrays are embedded in their in-memory shapes, 8-byte
// aligned, so the loader wraps them with Genome::from_borrowed /
// HashIndex::from_borrowed without copying a byte.
//
// File layout (all integers little-endian; the loader refuses big-endian
// hosts rather than byte-swap in place):
//
//   fixed header (80 bytes)
//     u64 magic            "GNFLIDX\x01"
//     u32 version          (currently 1)
//     u32 section_count
//     u64 file_bytes       total file size, cross-checked against stat()
//     u32 k                index k-mer length
//     u32 max_positions    index repeat-mask threshold
//     u64 distinct         distinct k-mers in the index
//     u64 genome_num_bases bases across contigs (excludes padding)
//     u64 genome_padded_size
//     u32 num_contigs
//     u32 reserved         (0)
//     u64 build_begin      index build range; 0,0 = whole genome, a shard
//     u64 build_end        file records its store range for validation
//   section table (section_count x 24 bytes)
//     u32 kind, u32 reserved, u64 offset, u64 bytes
//   section payloads (each 8-byte aligned, zero-padded between)
//   footer (last 16 bytes)
//     u32 meta_crc         CRC32 over header + section table
//     u32 payload_crc      CRC32 chained over every section body
//     u64 footer_magic
//
// The meta CRC is always verified on load; the payload CRC only when
// `verify_payload` is set (gnumap_index --verify and tests), because
// checksumming the body would fault in every page and defeat the point of
// the instant start.  Every failure mode — truncation, bad magic, wrong
// version, corrupt metadata, out-of-bounds section — throws a typed
// ParseError, never UB.
#pragma once

#include <cstdint>
#include <string>

#include "gnumap/fleet/mapped_file.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/index/hash_index.hpp"

namespace gnumap::fleet {

constexpr std::uint32_t kIndexFileVersion = 1;

/// Header fields surfaced to callers (STATS, /statusz, gnumap_index).
struct IndexFileInfo {
  std::uint32_t version = 0;
  int k = 0;
  std::uint32_t max_positions = 0;
  std::uint64_t distinct = 0;
  std::uint64_t genome_bases = 0;
  std::uint64_t padded_size = 0;
  std::uint32_t num_contigs = 0;
  GenomePos build_begin = 0;  ///< 0,0 = built over the whole genome
  GenomePos build_end = 0;
  std::uint64_t file_bytes = 0;
};

/// A successfully mapped index file.  `genome` and `index` borrow the mmap
/// in `file`; keep the struct at a stable address (heap) for as long as
/// either is referenced.  Movable: the borrowed spans point into the
/// mapping, not into this struct.
struct LoadedIndex {
  MappedFile file;
  Genome genome;
  HashIndex index;
  IndexFileInfo info;
  double load_seconds = 0.0;
};

/// Serializes `genome` + `index` to `path` (atomically: tmp file + rename).
/// `build_begin/build_end` record a shard index's store range so a daemon
/// can validate the file against its own partition arithmetic; leave 0,0
/// for a whole-genome index.
void write_index_file(const std::string& path, const Genome& genome,
                      const HashIndex& index, GenomePos build_begin = 0,
                      GenomePos build_end = 0);

/// mmap()s and validates an index file written by write_index_file().
/// Throws ParseError on any structural damage; see the format note above
/// for what `verify_payload` adds.
LoadedIndex load_index_file(const std::string& path,
                            bool verify_payload = false);

}  // namespace gnumap::fleet

// The fleet genome registry: several resident MappingSessions in one
// gnumapd, keyed by the genome id a v4 MAP_BEGIN carries.
//
// Each genome is loaded lazily on first use — from a FASTA (index built in
// process) or from a fleet index file (mmap instant start) — and stays
// resident until the global memory budget forces it out.  Eviction is LRU
// over idle genomes only: a genome with an outstanding lease is never
// unloaded under a running request.  When the budget cannot admit the
// requested genome even after evicting every idle one, acquire() throws
// EvictedError and the server answers a typed kEvicted ERROR with a
// retry-after hint; the client treats it like BUSY (nothing was uploaded
// yet) and retries.
//
// Each resident genome also carries its own AdmissionController, so one
// hot genome's request burst cannot starve the others beyond the server's
// global connection admission.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gnumap/core/config.hpp"
#include "gnumap/core/session.hpp"
#include "gnumap/fleet/index_file.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/serve/admission.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap::fleet {

/// One genome the daemon may serve.  `is_index_file` selects the loader:
/// a fleet index file (mmap instant start) vs a FASTA whose index is built
/// in process on first acquire.
struct GenomeSpec {
  std::string id;
  std::string path;
  bool is_index_file = false;
};

/// The requested genome cannot be made resident under the memory budget
/// right now (every idle genome was already evicted and the busy ones
/// cannot be).  Carries the retry hint the server forwards to the client.
class EvictedError : public Error {
 public:
  EvictedError(const std::string& what, std::uint32_t retry_after_ms)
      : Error(what), retry_after_ms_(retry_after_ms) {}
  std::uint32_t retry_after_ms() const { return retry_after_ms_; }

 private:
  std::uint32_t retry_after_ms_;
};

/// The MAP_BEGIN named a genome id the registry has no spec for.  The
/// server answers kProtocol (a client bug, not a capacity problem).
class UnknownGenomeError : public Error {
 public:
  using Error::Error;
};

struct RegistryOptions {
  /// Global ceiling on resident bytes (genome array + index arrays) across
  /// genomes; 0 = unlimited.  A single genome larger than the budget is
  /// still admitted alone — the budget bounds the *fleet*, not one genome.
  std::uint64_t memory_budget_bytes = 0;
  /// Per-genome admission window in reads (the per-genome
  /// AdmissionController's capacity); 0 lets the server derive it the same
  /// way it derives the global window.
  std::uint64_t admission_reads = 0;
  /// Per-connection read cap within one genome's window (0 = no cap).
  std::uint64_t per_connection_reads = 0;
  /// Hint sent with kEvicted ERRORs.
  std::uint32_t evicted_retry_ms = 2'000;
  /// Shard mode: this daemon owns segment `shard_index` of `shard_count`
  /// (shard_index < 0 = whole-genome daemon).  Indexes are built (or
  /// validated, for index files) over the segment's store range and
  /// mapping is restricted to diagonals in the core range.
  int shard_index = -1;
  int shard_count = 0;
  /// Longest read the shard margin must absorb; the margin is
  /// shard_max_read_len + window_pad + seeder band_width, which covers
  /// every window of a core-owned candidate.
  std::uint32_t shard_max_read_len = 512;
};

/// One resident genome: the session plus everything that keeps its borrowed
/// storage alive.  Handed out as a shared_ptr lease; the registry's own
/// reference is the last one (use_count()==1) exactly when the genome is
/// idle and therefore evictable.
struct ResidentGenome {
  std::string id;
  /// Loader provenance: exactly one of these owns the genome bytes (both
  /// null for the pinned external-genome entry).
  std::unique_ptr<Genome> owned_genome;
  std::unique_ptr<LoadedIndex> loaded;  ///< heap-stable: session borrows it
  std::unique_ptr<MappingSession> session;
  std::unique_ptr<serve::AdmissionController> admission;
  /// Shard ownership in global coordinates; [0, 0) = whole genome.
  GenomePos core_begin = 0;
  GenomePos core_end = 0;
  std::uint64_t resident_bytes = 0;
  double index_load_seconds = 0.0;
  bool from_index_file = false;
  bool pinned = false;  ///< externally owned; never evicted
};

using GenomeLease = std::shared_ptr<ResidentGenome>;

/// One /statusz / STATS row describing a registry entry.
struct RegistryRow {
  std::string id;
  std::string path;
  bool resident = false;
  bool from_index_file = false;
  bool pinned = false;
  std::uint64_t bytes = 0;
  double load_seconds = 0.0;
  std::uint64_t active_leases = 0;  ///< outstanding beyond the registry's
  std::uint64_t last_used = 0;      ///< LRU clock tick (0 = never)
  std::uint64_t evictions = 0;      ///< times this entry was evicted
};

class GenomeRegistry {
 public:
  /// Spec-backed registry: genomes load lazily on first acquire().  The
  /// first spec is the default genome (an empty MAP_BEGIN id maps to it).
  /// `config` is copied; throws ConfigError on empty/duplicate ids.
  GenomeRegistry(std::vector<GenomeSpec> specs, const PipelineConfig& config,
                 RegistryOptions options);

  /// Single-genome registry over an externally owned genome — the legacy
  /// gnumapd path.  The entry is pinned (never evicted), built eagerly,
  /// and registered under `id` ("default" by convention).
  GenomeRegistry(const Genome& genome, const PipelineConfig& config,
                 RegistryOptions options, const std::string& id = "default");

  GenomeRegistry(const GenomeRegistry&) = delete;
  GenomeRegistry& operator=(const GenomeRegistry&) = delete;

  /// Resolves `id` ("" = default) to a resident genome, loading it first if
  /// needed.  The lease pins the genome against eviction; hold it for the
  /// duration of the request.  Throws UnknownGenomeError for an unknown id,
  /// EvictedError when the budget cannot admit the genome right now, and
  /// whatever the loader throws (ParseError for a damaged index file).
  GenomeLease acquire(const std::string& id);

  /// Number of specs (resident or not) and the default genome's id.
  std::size_t size() const { return entries_.size(); }
  const std::string& default_id() const;

  /// Snapshot for /statusz and STATS.
  std::vector<RegistryRow> rows() const;

  std::uint64_t resident_bytes() const;
  std::uint64_t evictions() const;

  const RegistryOptions& options() const { return options_; }
  const PipelineConfig& config() const { return config_; }

 private:
  struct Entry {
    GenomeSpec spec;
    enum class State { kCold, kLoading, kResident } state = State::kCold;
    GenomeLease resident;
    std::uint64_t last_used = 0;
    std::uint64_t evictions = 0;
  };

  Entry* find(const std::string& id);
  /// Loads one spec into a ResidentGenome (no registry lock held).
  GenomeLease load_resident(const GenomeSpec& spec) const;
  /// Evicts idle LRU entries (not `keep`) until `incoming_bytes` fits the
  /// budget; returns false when it still does not fit.  Lock held.
  bool evict_to_fit(std::uint64_t incoming_bytes, const Entry* keep);
  void publish_metrics() const;  ///< lock held

  PipelineConfig config_;
  RegistryOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;  ///< stable; [0] is the default genome
  std::uint64_t clock_ = 0;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

/// The shard overlap margin for `config`: the longest read plus window pad
/// plus seeder band slack — every genome window the PHMM would extract for
/// a candidate whose diagonal a shard owns lies within its store range.
std::uint64_t shard_margin(const PipelineConfig& config,
                           std::uint32_t shard_max_read_len);

}  // namespace gnumap::fleet

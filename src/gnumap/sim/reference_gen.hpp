// Synthetic reference genome generation.
//
// The benches cannot ship the 155 Mbp human X chromosome, so they build a
// synthetic reference with the properties the paper's evaluation leans on:
// mostly unique sequence, plus configurable *repeat regions* — the paper
// highlights sensitivity "especially ... in repeat regions" — created by
// copying earlier blocks with light divergence, plus occasional N runs.
#pragma once

#include <cstdint>

#include "gnumap/genome/genome.hpp"
#include "gnumap/util/rng.hpp"

namespace gnumap {

struct ReferenceGenOptions {
  std::uint64_t length = 1'000'000;
  /// Fraction of the genome occupied by repeat copies.
  double repeat_fraction = 0.05;
  /// Length of each repeat block.
  std::uint64_t repeat_block = 2000;
  /// Per-base divergence of a repeat copy from its source block.
  double repeat_divergence = 0.02;
  /// Fraction of the genome covered by N runs (assembly gaps).
  double n_fraction = 0.002;
  std::uint64_t n_run = 100;
  std::uint64_t seed = 41;
  /// GC content (A/T share the rest).
  double gc_content = 0.41;  // human-like
};

/// Generates a single-contig genome named `name`.
Genome generate_reference(const ReferenceGenOptions& options,
                          const std::string& name = "chrSim");

}  // namespace gnumap

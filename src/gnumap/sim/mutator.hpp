// Applying a SNP catalog to a reference: the simulated individual.
//
// Monoploid: one mutated genome (every catalog site gets its alt allele).
// Diploid: two haplotypes; hom sites carry the alt on both, het sites on
// exactly one (chosen deterministically from the seed).
#pragma once

#include <cstdint>
#include <utility>

#include "gnumap/genome/genome.hpp"
#include "gnumap/io/snp_catalog.hpp"

namespace gnumap {

/// Applies every catalog entry to a copy of `reference`.
/// Throws ConfigError if an entry's contig/position/ref does not match.
Genome apply_catalog(const Genome& reference, const SnpCatalog& catalog);

/// Diploid individual: a pair of haplotypes.
struct DiploidGenome {
  Genome hap1;
  Genome hap2;
};

/// Hom sites mutate both haplotypes; het sites mutate hap1 or hap2 with
/// equal probability under `seed`.
DiploidGenome apply_catalog_diploid(const Genome& reference,
                                    const SnpCatalog& catalog,
                                    std::uint64_t seed = 7);

}  // namespace gnumap

#include "gnumap/sim/read_sim.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {

namespace {

/// Per-position true substitution-error probability: linear ramp.
double error_at(const ReadSimOptions& options, std::uint32_t i) {
  const double t = options.read_length > 1
      ? static_cast<double>(i) / static_cast<double>(options.read_length - 1)
      : 0.0;
  return options.error_rate_start +
         t * (options.error_rate_end - options.error_rate_start);
}

/// Simulates one read starting at `origin` on `contig` of `genome`.
/// Returns false if the template window contains an N.
bool simulate_one(const Genome& genome, std::uint32_t contig,
                  std::uint64_t origin, bool reverse,
                  const ReadSimOptions& options, Rng& rng, std::uint64_t serial,
                  SimulatedRead& out) {
  const std::uint64_t contig_size = genome.contig_size(contig);
  // Template may need a few extra bases when deletions occur.
  const std::uint64_t slack = 8;
  if (origin + options.read_length + slack > contig_size) return false;

  // Copy the template (forward orientation).
  std::vector<std::uint8_t> tmpl(options.read_length + slack);
  const auto start = genome.global_pos(contig, origin);
  for (std::uint64_t i = 0; i < tmpl.size(); ++i) {
    tmpl[i] = genome.at(start + i);
    if (tmpl[i] >= 4) return false;
  }

  // Phase 1: consume the forward template with indels only, so the read
  // covers genome span [origin, origin + consumed) on either strand.
  std::vector<std::uint8_t> emitted;
  emitted.reserve(options.read_length);
  std::uint64_t t = 0;
  while (emitted.size() < options.read_length && t < tmpl.size()) {
    if (options.indel_rate > 0.0 && rng.bernoulli(options.indel_rate)) {
      if (rng.bernoulli(0.5)) {
        emitted.push_back(static_cast<std::uint8_t>(rng.next_below(4)));
        continue;  // insertion: emit without consuming
      }
      ++t;  // deletion: consume without emitting
      continue;
    }
    emitted.push_back(tmpl[t++]);
  }
  if (emitted.size() < options.read_length) return false;

  // Phase 2: orient, then apply the substitution-error/quality ramp in
  // *read* coordinates (3' degradation follows the sequencing direction).
  if (reverse) emitted = reverse_complement(emitted);
  Read read;
  read.bases.reserve(options.read_length);
  read.quals.reserve(options.read_length);
  for (std::uint32_t i = 0; i < options.read_length; ++i) {
    const double true_error = error_at(options, i);
    std::uint8_t base = emitted[i];
    if (rng.bernoulli(true_error)) {
      base = static_cast<std::uint8_t>((base + 1 + rng.next_below(3)) % 4);
    }
    // Reported quality: lognormal dispersion around the true error rate.
    const double reported_error = std::min(
        0.75, true_error * std::exp(options.quality_dispersion *
                                    rng.next_gaussian()));
    read.bases.push_back(base);
    read.quals.push_back(error_to_phred(reported_error));
  }

  read.name = genome.contig_name(contig) + ":" + std::to_string(origin) +
              ":" + (reverse ? "-" : "+") + ":" + std::to_string(serial);
  out.read = std::move(read);
  out.contig = contig;
  out.origin = origin;
  out.reverse = reverse;
  return true;
}

std::vector<SimulatedRead> simulate_from(const Genome& genome,
                                         const ReadSimOptions& options,
                                         double coverage, Rng& rng,
                                         std::uint64_t serial_base) {
  std::vector<SimulatedRead> reads;
  const std::uint64_t total_bases = genome.num_bases();
  const auto target = static_cast<std::uint64_t>(
      coverage * static_cast<double>(total_bases) /
      static_cast<double>(options.read_length));
  reads.reserve(target);

  std::uint64_t serial = serial_base;
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = target * 4 + 1000;
  while (reads.size() < target && attempts < max_attempts) {
    ++attempts;
    // Pick a contig proportional to size, then an offset.
    const std::uint64_t global = rng.next_below(total_bases);
    std::uint32_t contig = 0;
    std::uint64_t remaining = global;
    while (contig < genome.num_contigs() &&
           remaining >= genome.contig_size(contig)) {
      remaining -= genome.contig_size(contig);
      ++contig;
    }
    if (contig >= genome.num_contigs()) continue;
    const bool reverse = rng.bernoulli(0.5);
    SimulatedRead sim;
    if (simulate_one(genome, contig, remaining, reverse, options, rng,
                     serial, sim)) {
      ++serial;
      reads.push_back(std::move(sim));
    }
  }
  return reads;
}

}  // namespace

std::vector<SimulatedRead> simulate_reads(const Genome& genome,
                                          const ReadSimOptions& options) {
  require(options.read_length >= 16,
          "simulate_reads: read_length must be >= 16");
  require(options.coverage > 0.0, "simulate_reads: coverage must be > 0");
  Rng rng(options.seed);
  return simulate_from(genome, options, options.coverage, rng, 0);
}

std::vector<SimulatedRead> simulate_reads_diploid(
    const Genome& hap1, const Genome& hap2, const ReadSimOptions& options) {
  require(options.read_length >= 16,
          "simulate_reads_diploid: read_length must be >= 16");
  Rng rng(options.seed);
  auto reads = simulate_from(hap1, options, options.coverage / 2.0, rng, 0);
  auto reads2 = simulate_from(hap2, options, options.coverage / 2.0, rng,
                              reads.size());
  reads.insert(reads.end(), std::make_move_iterator(reads2.begin()),
               std::make_move_iterator(reads2.end()));
  return reads;
}

std::vector<Read> strip_metadata(const std::vector<SimulatedRead>& reads) {
  std::vector<Read> out;
  out.reserve(reads.size());
  for (const auto& sim : reads) out.push_back(sim.read);
  return out;
}

}  // namespace gnumap

#include "gnumap/sim/mutator.hpp"

#include <map>
#include <string>
#include <vector>

#include "gnumap/util/error.hpp"
#include "gnumap/util/rng.hpp"

namespace gnumap {

namespace {

/// Rebuilds a genome applying per-contig substitutions.
/// apply(entry) decides which haplotype(s) receive the alt allele.
Genome rebuild(const Genome& reference, const SnpCatalog& catalog,
               const std::vector<bool>& take) {
  // Group substitutions per contig name.
  std::map<std::string, std::vector<std::pair<std::uint64_t, std::uint8_t>>>
      by_contig;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (!take[i]) continue;
    by_contig[catalog[i].contig].emplace_back(catalog[i].position,
                                              catalog[i].alt);
  }

  Genome out;
  for (std::uint32_t contig = 0; contig < reference.num_contigs(); ++contig) {
    const std::string& name = reference.contig_name(contig);
    const std::uint64_t size = reference.contig_size(contig);
    std::vector<std::uint8_t> codes(size);
    const auto start = reference.contig_start(contig);
    for (std::uint64_t i = 0; i < size; ++i) {
      codes[i] = reference.at(start + i);
    }
    const auto it = by_contig.find(name);
    if (it != by_contig.end()) {
      for (const auto& [pos, alt] : it->second) {
        require(pos < size, "apply_catalog: position past end of contig " +
                                name);
        codes[pos] = alt;
      }
    }
    out.add_contig(name, std::move(codes));
  }
  return out;
}

void check_refs(const Genome& reference, const SnpCatalog& catalog) {
  // Build name -> id map once.
  std::map<std::string, std::uint32_t> ids;
  for (std::uint32_t c = 0; c < reference.num_contigs(); ++c) {
    ids[reference.contig_name(c)] = c;
  }
  for (const auto& entry : catalog) {
    const auto it = ids.find(entry.contig);
    require(it != ids.end(),
            "apply_catalog: unknown contig " + entry.contig);
    require(entry.position < reference.contig_size(it->second),
            "apply_catalog: position out of range in " + entry.contig);
    const std::uint8_t ref =
        reference.at(reference.global_pos(it->second, entry.position));
    require(ref == entry.ref,
            "apply_catalog: catalog ref allele does not match the genome at " +
                entry.contig + ":" + std::to_string(entry.position));
  }
}

}  // namespace

Genome apply_catalog(const Genome& reference, const SnpCatalog& catalog) {
  check_refs(reference, catalog);
  std::vector<bool> all(catalog.size(), true);
  return rebuild(reference, catalog, all);
}

DiploidGenome apply_catalog_diploid(const Genome& reference,
                                    const SnpCatalog& catalog,
                                    std::uint64_t seed) {
  check_refs(reference, catalog);
  Rng rng(seed);
  std::vector<bool> take1(catalog.size(), false);
  std::vector<bool> take2(catalog.size(), false);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].zygosity == Zygosity::kHom) {
      take1[i] = take2[i] = true;
    } else if (rng.bernoulli(0.5)) {
      take1[i] = true;
    } else {
      take2[i] = true;
    }
  }
  return DiploidGenome{rebuild(reference, catalog, take1),
                       rebuild(reference, catalog, take2)};
}

}  // namespace gnumap

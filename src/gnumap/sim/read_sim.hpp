// Illumina-like read simulator (the MetaSim substitute).
//
// The paper used MetaSim to create "31M 62-bp reads with an error profile
// similar to that seen by the Solexa/Illumina platform".  The defining
// properties reproduced here:
//  * substitution error rate ramps up along the read (3' degradation),
//  * reported quality scores track the true error process (with dispersion),
//  * reads sample both strands uniformly,
//  * optional low-rate indels.
// Reads are named "<contig>:<pos>:<strand>:<serial>" so tests can check
// mapping correctness against the simulated origin.
#pragma once

#include <cstdint>
#include <vector>

#include "gnumap/genome/genome.hpp"
#include "gnumap/io/read.hpp"
#include "gnumap/util/rng.hpp"

namespace gnumap {

struct ReadSimOptions {
  std::uint32_t read_length = 62;       ///< paper: 62 bp
  double coverage = 12.0;               ///< paper: ~12x
  double error_rate_start = 0.002;      ///< substitution rate at 5' end
  double error_rate_end = 0.02;         ///< substitution rate at 3' end
  double quality_dispersion = 0.3;      ///< lognormal sd of reported vs true
  double indel_rate = 0.0005;           ///< per-base insertion/deletion rate
  std::uint64_t seed = 97;
};

struct SimulatedRead {
  Read read;
  std::uint32_t contig = 0;
  std::uint64_t origin = 0;  ///< 0-based contig offset of the first base
  bool reverse = false;
};

/// Simulates reads to the requested coverage from (possibly mutated)
/// `genome`.  Reads never start inside the last read_length bases of a
/// contig and skip windows containing N.
std::vector<SimulatedRead> simulate_reads(const Genome& genome,
                                          const ReadSimOptions& options);

/// Simulates from a diploid individual: half the coverage from each
/// haplotype (contig ids refer to the shared contig layout).
std::vector<SimulatedRead> simulate_reads_diploid(
    const Genome& hap1, const Genome& hap2, const ReadSimOptions& options);

/// Strips the simulation metadata, returning plain reads (pipeline input).
std::vector<Read> strip_metadata(const std::vector<SimulatedRead>& reads);

}  // namespace gnumap

#include "gnumap/sim/catalog_gen.hpp"

#include <algorithm>

#include "gnumap/util/error.hpp"

namespace gnumap {

namespace {

/// Picks an alternate allele: a transition with probability
/// `transition_prob`, otherwise one of the two transversions.
std::uint8_t pick_alt(std::uint8_t ref, double transition_prob, Rng& rng) {
  // Transition partner: A<->G, C<->T.
  const std::uint8_t transition = ref < 4
      ? static_cast<std::uint8_t>(ref ^ 2)  // 0<->2, 1<->3
      : std::uint8_t{0};
  if (rng.bernoulli(transition_prob)) return transition;
  // Two transversion partners: the two bases that are neither ref nor its
  // transition partner.
  std::uint8_t options[2];
  int count = 0;
  for (std::uint8_t b = 0; b < 4; ++b) {
    if (b != ref && b != transition) options[count++] = b;
  }
  return options[rng.next_below(2)];
}

}  // namespace

SnpCatalog generate_catalog(const Genome& genome,
                            const CatalogGenOptions& options) {
  require(options.count >= 1, "generate_catalog: count must be >= 1");
  require(options.jitter >= 0.0 && options.jitter < 1.0,
          "generate_catalog: jitter must be in [0, 1)");
  require(genome.num_bases() > 0, "generate_catalog: empty genome");

  Rng rng(options.seed);
  SnpCatalog catalog;
  catalog.reserve(options.count);

  // Distribute sites across contigs proportionally to their size.
  for (std::uint32_t contig = 0; contig < genome.num_contigs(); ++contig) {
    const std::uint64_t contig_size = genome.contig_size(contig);
    const std::uint64_t contig_count = std::max<std::uint64_t>(
        1, options.count * contig_size / genome.num_bases());
    const double spacing = static_cast<double>(contig_size) /
                           static_cast<double>(contig_count);
    if (spacing < 2.0) continue;  // contig too small to place SNPs sensibly

    for (std::uint64_t i = 0; i < contig_count; ++i) {
      const double center = (static_cast<double>(i) + 0.5) * spacing;
      const double offset_jitter =
          (rng.next_double() - 0.5) * options.jitter * spacing;
      const auto offset = static_cast<std::uint64_t>(std::clamp(
          center + offset_jitter, 0.0, static_cast<double>(contig_size - 1)));
      const std::uint8_t ref =
          genome.at(genome.global_pos(contig, offset));
      if (ref >= 4) continue;  // never mutate N positions

      CatalogEntry entry;
      entry.contig = genome.contig_name(contig);
      entry.position = offset;
      entry.ref = ref;
      entry.alt = pick_alt(ref, options.transition_prob, rng);
      entry.zygosity = rng.bernoulli(options.het_fraction) ? Zygosity::kHet
                                                           : Zygosity::kHom;
      catalog.push_back(std::move(entry));
    }
  }
  return catalog;
}

}  // namespace gnumap

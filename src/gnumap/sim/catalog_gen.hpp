// Synthetic SNP catalog generation (the dbSNP substitute).
//
// The paper "randomly selected 14,501 evenly-spaced SNPs from the X
// chromosome".  This generator reproduces that construction on a synthetic
// reference: sites are evenly spaced with jitter, alternate alleles follow
// the empirical transition:transversion ratio of ~2:1, and a configurable
// fraction of sites is heterozygous for diploid experiments.
#pragma once

#include <cstdint>

#include "gnumap/genome/genome.hpp"
#include "gnumap/io/snp_catalog.hpp"
#include "gnumap/util/rng.hpp"

namespace gnumap {

struct CatalogGenOptions {
  /// Number of SNP sites to place.
  std::uint64_t count = 1000;
  /// Fractional jitter around even spacing (0 = perfectly even).
  double jitter = 0.25;
  /// Probability that a SNP is a transition (dbSNP empirical ~ 2/3).
  double transition_prob = 2.0 / 3.0;
  /// Fraction of heterozygous sites (diploid experiments; 0 for monoploid).
  double het_fraction = 0.0;
  std::uint64_t seed = 20120521;  // IPDPS workshop date, arbitrary constant
};

/// Generates a catalog over every contig of `genome`.  Sites always fall on
/// concrete (non-N) reference bases; ref alleles match the genome.
SnpCatalog generate_catalog(const Genome& genome,
                            const CatalogGenOptions& options);

}  // namespace gnumap

#include "gnumap/sim/reference_gen.hpp"

#include <algorithm>

#include "gnumap/util/error.hpp"

namespace gnumap {

Genome generate_reference(const ReferenceGenOptions& options,
                          const std::string& name) {
  require(options.length >= 1000, "generate_reference: length must be >= 1k");
  require(options.repeat_fraction >= 0.0 && options.repeat_fraction < 0.9,
          "generate_reference: repeat_fraction must be in [0, 0.9)");
  require(options.gc_content > 0.0 && options.gc_content < 1.0,
          "generate_reference: gc_content must be in (0, 1)");

  Rng rng(options.seed);
  std::vector<std::uint8_t> codes(options.length);

  // Base composition: GC split between C and G, AT between A and T.
  auto draw_base = [&]() -> std::uint8_t {
    const double u = rng.next_double();
    const double half_gc = options.gc_content / 2.0;
    if (u < half_gc) return 1;               // C
    if (u < options.gc_content) return 2;    // G
    return u < options.gc_content + (1.0 - options.gc_content) / 2.0
               ? std::uint8_t{0}             // A
               : std::uint8_t{3};            // T
  };
  for (auto& code : codes) code = draw_base();

  // Repeat blocks: copy an earlier window with light divergence.
  const auto repeat_bases = static_cast<std::uint64_t>(
      options.repeat_fraction * static_cast<double>(options.length));
  std::uint64_t placed = 0;
  while (placed + options.repeat_block <= repeat_bases &&
         options.repeat_block * 4 < options.length) {
    const std::uint64_t src =
        rng.next_below(options.length - options.repeat_block);
    const std::uint64_t dst =
        rng.next_below(options.length - options.repeat_block);
    for (std::uint64_t i = 0; i < options.repeat_block; ++i) {
      std::uint8_t base = codes[src + i];
      if (rng.bernoulli(options.repeat_divergence)) {
        base = static_cast<std::uint8_t>((base + 1 + rng.next_below(3)) % 4);
      }
      codes[dst + i] = base;
    }
    placed += options.repeat_block;
  }

  // N runs (assembly gaps).
  const auto n_bases = static_cast<std::uint64_t>(
      options.n_fraction * static_cast<double>(options.length));
  for (std::uint64_t placed_n = 0;
       placed_n + options.n_run <= n_bases &&
       options.n_run * 4 < options.length;
       placed_n += options.n_run) {
    const std::uint64_t start = rng.next_below(options.length - options.n_run);
    std::fill(codes.begin() + static_cast<std::ptrdiff_t>(start),
              codes.begin() + static_cast<std::ptrdiff_t>(start + options.n_run),
              kBaseN);
  }

  Genome genome;
  genome.add_contig(name, std::move(codes));
  return genome;
}

}  // namespace gnumap

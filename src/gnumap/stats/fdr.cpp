#include "gnumap/stats/fdr.hpp"

#include <algorithm>
#include <numeric>

#include "gnumap/util/error.hpp"

namespace gnumap {

double benjamini_hochberg_threshold(const std::vector<double>& p_values,
                                    double q) {
  require(q > 0.0 && q < 1.0, "benjamini_hochberg: q must be in (0, 1)");
  const std::size_t m = p_values.size();
  if (m == 0) return 0.0;

  std::vector<double> sorted(p_values);
  std::sort(sorted.begin(), sorted.end());
  double threshold = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double bound =
        q * static_cast<double>(i + 1) / static_cast<double>(m);
    if (sorted[i] <= bound) threshold = sorted[i];
  }
  return threshold;
}

std::vector<bool> benjamini_hochberg(const std::vector<double>& p_values,
                                     double q) {
  const double threshold = benjamini_hochberg_threshold(p_values, q);
  std::vector<bool> rejected(p_values.size(), false);
  if (threshold <= 0.0) return rejected;
  for (std::size_t i = 0; i < p_values.size(); ++i) {
    rejected[i] = p_values[i] <= threshold;
  }
  return rejected;
}

}  // namespace gnumap

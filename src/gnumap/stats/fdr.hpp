// Benjamini-Hochberg false discovery rate control.
//
// The paper offers "a p-value cutoff or a false discovery control" as the
// two SNP-calling decision rules; this implements the latter.
#pragma once

#include <cstddef>
#include <vector>

namespace gnumap {

/// Returns a keep/reject mask (true = rejected null = called significant)
/// controlling FDR at level `q` over `p_values` via Benjamini-Hochberg.
std::vector<bool> benjamini_hochberg(const std::vector<double>& p_values,
                                     double q);

/// The largest p-value threshold selected by BH (0 if nothing is rejected).
double benjamini_hochberg_threshold(const std::vector<double>& p_values,
                                    double q);

}  // namespace gnumap

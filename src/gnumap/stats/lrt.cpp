#include "gnumap/stats/lrt.hpp"

#include <algorithm>
#include <cmath>

#include "gnumap/stats/chi2.hpp"

namespace gnumap {

namespace {

const double kLogFifth = std::log(0.2);

/// x * log(p) with the 0 * log(0) = 0 convention.
double xlogp(double x, double p) {
  if (x <= 0.0) return 0.0;
  return x * std::log(p);
}

/// Indices of tracks sorted by descending count.
std::array<int, 5> order_desc(const TrackCounts& z) {
  std::array<int, 5> order{0, 1, 2, 3, 4};
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return z[static_cast<std::size_t>(a)] > z[static_cast<std::size_t>(b)];
  });
  return order;
}

LrtResult finish(LrtResult result) {
  result.statistic = std::max(0.0, result.statistic);
  result.p_raw = chi2_sf(result.statistic, 1.0);
  result.p_adjusted = std::min(1.0, 5.0 * result.p_raw);
  return result;
}

}  // namespace

LrtResult lrt_monoploid(const TrackCounts& z) {
  LrtResult result;
  double n = 0.0;
  for (const double v : z) n += std::max(0.0, v);
  result.n = n;
  if (!(n > 0.0)) return result;

  const auto order = order_desc(z);
  const double z5 = std::max(0.0, z[static_cast<std::size_t>(order[0])]);
  result.allele1 = static_cast<std::uint8_t>(order[0]);
  result.allele2 = result.allele1;

  // log lambda = n log(0.2) - [z5 log(p5) + (n - z5) log(p4)]
  // with p5 = z5/n and p4 = (n - z5) / (4n).
  const double p5 = z5 / n;
  const double p4 = (n - z5) / (4.0 * n);
  const double loglik_alt = xlogp(z5, p5) + xlogp(n - z5, p4);
  result.statistic = 2.0 * (loglik_alt - n * kLogFifth);
  return finish(result);
}

LrtResult lrt_diploid(const TrackCounts& z) {
  LrtResult result;
  double n = 0.0;
  for (const double v : z) n += std::max(0.0, v);
  result.n = n;
  if (!(n > 0.0)) return result;

  const auto order = order_desc(z);
  const double z5 = std::max(0.0, z[static_cast<std::size_t>(order[0])]);
  const double z4 = std::max(0.0, z[static_cast<std::size_t>(order[1])]);

  // Homozygous alternative: as the monoploid test.
  const double hom_loglik =
      xlogp(z5, z5 / n) + xlogp(n - z5, (n - z5) / (4.0 * n));
  // Heterozygous alternative.  The paper's H1 second branch constrains the
  // top two proportions to be EQUAL (p(5) = p(4) > rest), so the maximum
  // likelihood estimate shares their mass: p(5) = p(4) = (z(5)+z(4)) / 2n.
  // (The paper's printed MLE leaves p(4) free, which contradicts its own
  // hypothesis and would make the het branch win on any z(4) > 0; see
  // DESIGN.md.)
  const double top2 = z5 + z4;
  const double het_loglik = xlogp(top2, top2 / (2.0 * n)) +
                            xlogp(n - top2, (n - top2) / (3.0 * n));

  // Heterozygosity gate: a true het site has ~50% minor-allele mass
  // (binomial sd ~ 0.5/sqrt(n)); concentrated sequencing-error mass sits
  // far below.  Without the gate, a position like (10 A, 2.5 G) — 20%
  // error mass in one track — fits the equal-top-two model better than the
  // homozygous model and would be called a significant het SNP.
  constexpr double kMinHetFraction = 0.25;
  const bool het_plausible = z4 >= kMinHetFraction * n;

  result.allele1 = static_cast<std::uint8_t>(order[0]);
  if (het_plausible && het_loglik > hom_loglik) {
    result.heterozygous = true;
    result.allele2 = static_cast<std::uint8_t>(order[1]);
    result.statistic = 2.0 * (het_loglik - n * kLogFifth);
  } else {
    result.allele2 = result.allele1;
    result.statistic = 2.0 * (hom_loglik - n * kLogFifth);
  }
  return finish(result);
}

LrtResult lrt_test(const TrackCounts& z, Ploidy ploidy) {
  return ploidy == Ploidy::kMonoploid ? lrt_monoploid(z) : lrt_diploid(z);
}

double lrt_threshold(double alpha) {
  return chi2_quantile(1.0 - alpha / 5.0, 1.0);
}

}  // namespace gnumap

// Chi-square distribution via the regularized incomplete gamma function.
//
// The paper's significance machinery rests on  -2 log(lambda) -> chi^2_1;
// SNP calls compare the statistic with the (1 - alpha/5) quantile.  The
// implementation is self-contained (series + Lentz continued fraction,
// Numerical Recipes style) and exact enough for p-values down to ~1e-300.
#pragma once

namespace gnumap {

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Chi-square CDF with `dof` degrees of freedom.
double chi2_cdf(double x, double dof);

/// Survival function 1 - CDF, computed directly (no cancellation for large x).
double chi2_sf(double x, double dof);

/// Quantile: smallest x with CDF(x) >= p.  p in [0, 1); dof > 0.
double chi2_quantile(double p, double dof);

}  // namespace gnumap

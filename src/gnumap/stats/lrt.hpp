// Likelihood ratio tests for base calling (paper, Step 3).
//
// z = (z_A, z_C, z_G, z_T, z_gap) is modeled as a continuous negative
// multinomial with proportions p_A..p_gap.  The monoploid test asks whether
// the largest proportion rises above a uniform background; the diploid test
// adds a heterozygous alternative where the top *two* proportions rise.
// The statistic -2 log(lambda) is referred to chi^2_1, with the paper's
// alpha/5 multiple-testing adjustment (one test per track).
#pragma once

#include <array>
#include <cstdint>

namespace gnumap {

enum class Ploidy : std::uint8_t { kMonoploid = 1, kDiploid = 2 };

/// Accumulated track masses at one genome position, as doubles.
using TrackCounts = std::array<double, 5>;

struct LrtResult {
  /// -2 log(lambda); 0 when there is no information (n == 0).
  double statistic = 0.0;
  /// Unadjusted chi^2_1 upper-tail probability of `statistic`.
  double p_raw = 1.0;
  /// Bonferroni-adjusted p-value: min(1, 5 * p_raw) — the paper's "test each
  /// base vs background (5 tests)" correction.
  double p_adjusted = 1.0;
  /// Winning alternative's alleles as track indices (0..3 = base, 4 = gap).
  /// For a homozygous/monoploid call allele2 == allele1.
  std::uint8_t allele1 = 0;
  std::uint8_t allele2 = 0;
  /// Diploid only: true when the heterozygous alternative won.
  bool heterozygous = false;
  /// Total mass n.
  double n = 0.0;
};

/// Monoploid LRT (paper Eq. for lambda(z)).
LrtResult lrt_monoploid(const TrackCounts& z);

/// Diploid LRT: max over the homozygous and heterozygous alternatives.
LrtResult lrt_diploid(const TrackCounts& z);

/// Dispatch on ploidy.
LrtResult lrt_test(const TrackCounts& z, Ploidy ploidy);

/// The decision threshold the paper prescribes: the (1 - alpha/5) quantile
/// of chi^2_1.  A site is significant when statistic > threshold, which is
/// equivalent to p_adjusted < alpha.
double lrt_threshold(double alpha);

}  // namespace gnumap

#include "gnumap/stats/chi2.hpp"

#include <cmath>
#include <limits>

#include "gnumap/util/error.hpp"

namespace gnumap {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

/// glibc's lgamma writes the global `signgam`, a data race when SNP calling
/// runs on several rank-threads at once; use the reentrant form where the
/// platform provides one.
double lgamma_threadsafe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

/// Series expansion of P(a, x); converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - lgamma_threadsafe(a));
}

/// Modified Lentz continued fraction for Q(a, x); converges for x >= a + 1.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - lgamma_threadsafe(a));
}

}  // namespace

double gamma_p(double a, double x) {
  require(a > 0.0, "gamma_p: a must be positive");
  require(x >= 0.0, "gamma_p: x must be nonnegative");
  if (x == 0.0) return 0.0;
  return x < a + 1.0 ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  require(a > 0.0, "gamma_q: a must be positive");
  require(x >= 0.0, "gamma_q: x must be nonnegative");
  if (x == 0.0) return 1.0;
  return x < a + 1.0 ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double chi2_cdf(double x, double dof) {
  require(dof > 0.0, "chi2_cdf: dof must be positive");
  if (x <= 0.0) return 0.0;
  return gamma_p(dof / 2.0, x / 2.0);
}

double chi2_sf(double x, double dof) {
  require(dof > 0.0, "chi2_sf: dof must be positive");
  if (x <= 0.0) return 1.0;
  return gamma_q(dof / 2.0, x / 2.0);
}

double chi2_quantile(double p, double dof) {
  require(p >= 0.0 && p < 1.0, "chi2_quantile: p must be in [0, 1)");
  require(dof > 0.0, "chi2_quantile: dof must be positive");
  if (p == 0.0) return 0.0;

  // Bracket, then bisect.  The CDF is monotone; 128 halvings are plenty for
  // full double precision.
  double lo = 0.0;
  double hi = dof + 10.0;
  while (chi2_cdf(hi, dof) < p) {
    hi *= 2.0;
    if (hi > 1e6) break;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (chi2_cdf(mid, dof) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace gnumap

// Seed-and-vote candidate region identification.
//
// For each read, k-mers sampled every `step` bases are looked up in the
// genomic hash table on both strands.  Hits vote for the *diagonal*
// (genome position minus read offset); diagonals gathering at least
// `min_votes` votes become candidate windows handed to the PHMM.  Nearby
// diagonals are merged (indels shift the diagonal by the indel length), so a
// single window covers alignments with small gaps.
#pragma once

#include <cstdint>
#include <vector>

#include "gnumap/index/hash_index.hpp"
#include "gnumap/io/read.hpp"

namespace gnumap {

struct SeederOptions {
  /// Sample a k-mer starting at every `step`-th read offset.
  int step = 2;
  /// Minimum k-mer votes a diagonal band must gather.
  int min_votes = 2;
  /// Diagonals within this distance merge into one candidate (indel slack).
  int band_width = 6;
  /// Upper bound on candidates returned per read (strongest first).
  int max_candidates = 64;
};

/// One candidate mapping region.
struct Candidate {
  /// Genome position the read's first base would map to (may be adjusted by
  /// band_width by the aligner when extracting the window).
  GenomePos diagonal = 0;
  /// Number of supporting k-mer votes.
  int votes = 0;
  /// True if the read maps in reverse-complement orientation.
  bool reverse = false;
};

class Seeder {
 public:
  Seeder(const HashIndex& index, const SeederOptions& options);

  /// Candidate regions for a read, both orientations, strongest first.
  /// The returned vector is deduplicated by (diagonal band, strand).
  std::vector<Candidate> candidates(const Read& read) const;

  /// As above but restricted to one precomputed coded sequence (no reverse
  /// strand handling); used internally and by tests.
  std::vector<Candidate> candidates_for_sequence(
      const std::vector<std::uint8_t>& bases, bool reverse) const;

 private:
  const HashIndex& index_;
  SeederOptions options_;
};

}  // namespace gnumap

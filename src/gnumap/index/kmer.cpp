#include "gnumap/index/kmer.hpp"

namespace gnumap {

std::optional<Kmer> pack_kmer(std::span<const std::uint8_t> bases, int k) {
  if (static_cast<int>(bases.size()) < k) return std::nullopt;
  Kmer kmer = 0;
  for (int i = 0; i < k; ++i) {
    if (bases[i] >= 4) return std::nullopt;
    kmer = (kmer << 2) | bases[i];
  }
  return kmer;
}

void unpack_kmer(Kmer kmer, int k, std::uint8_t* out) {
  for (int i = k - 1; i >= 0; --i) {
    out[i] = static_cast<std::uint8_t>(kmer & 3);
    kmer >>= 2;
  }
}

Kmer revcomp_kmer(Kmer kmer, int k) {
  Kmer out = 0;
  for (int i = 0; i < k; ++i) {
    out = (out << 2) | (3 - (kmer & 3));
    kmer >>= 2;
  }
  return out;
}

}  // namespace gnumap

// 2-bit k-mer packing.
//
// The genomic hash table keys on k-mers packed two bits per base (A=0..T=3).
// K-mers containing N are not indexable.  Default k matches the paper's
// "mer-size of 10".
#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace gnumap {

using Kmer = std::uint64_t;

/// Default mer size (paper: "default k=10").
inline constexpr int kDefaultK = 10;
/// Largest k that fits a 64-bit packed word.
inline constexpr int kMaxK = 31;

/// Packs `k` base codes starting at `bases[0]`; nullopt if any base is N.
std::optional<Kmer> pack_kmer(std::span<const std::uint8_t> bases, int k);

/// Unpacks into `out[0..k)`.
void unpack_kmer(Kmer kmer, int k, std::uint8_t* out);

/// Rolls one base onto the right end of a packed k-mer, dropping the left.
constexpr Kmer roll_kmer(Kmer kmer, std::uint8_t base, int k) {
  const Kmer mask = (k >= 32) ? ~Kmer{0} : ((Kmer{1} << (2 * k)) - 1);
  return ((kmer << 2) | base) & mask;
}

/// Packed reverse complement of a k-mer.
Kmer revcomp_kmer(Kmer kmer, int k);

/// Number of distinct k-mers (4^k).
constexpr std::uint64_t kmer_space(int k) { return std::uint64_t{1} << (2 * k); }

}  // namespace gnumap

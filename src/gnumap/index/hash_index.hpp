// Genomic hash table: k-mer -> sorted list of genome positions.
//
// Step 1 of the paper's approach: "create a genomic hash table of k-mers
// (default k=10), and then reference k-mers in the reads into this hash for
// efficient identification of putative mapping regions."
//
// Layout is CSR (one offsets array over a dense 4^k key space for k <= 13,
// or an open-addressing table for larger k): cache-friendly, built in two
// passes, and trivially serializable for the genome-partition MPI mode.
// K-mers occurring more often than `max_positions` (repeats) keep an empty
// list but are flagged, so the seeder can distinguish "repeat" from "absent".
//
// The three arrays (offsets, positions, packed mask bits) can either be
// owned or borrowed: the fleet instant-start path mmap()s a serialized
// index and wraps the file bytes via from_borrowed() without copying.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <utility>
#include <vector>

#include "gnumap/genome/genome.hpp"
#include "gnumap/index/kmer.hpp"

namespace gnumap {

struct HashIndexOptions {
  int k = kDefaultK;
  /// K-mers with more genomic occurrences than this are masked as repeats.
  std::uint32_t max_positions = 1024;
};

class HashIndex {
 public:
  /// An empty index: every lookup misses.  Placeholder state for containers
  /// (e.g. fleet::LoadedIndex) that move a real index in later.
  HashIndex() = default;

  /// Builds over every indexable position of [begin, end) in the genome.
  /// The default range covers the whole padded array (padding k-mers contain
  /// N and index nothing).
  HashIndex(const Genome& genome, const HashIndexOptions& options,
            GenomePos begin = 0, GenomePos end = 0);

  /// Builds a shard-segment index over [store_begin, store_end) whose
  /// repeat mask is decided by *whole-genome* occurrence counts, so a
  /// shard's seeding decisions agree bit-for-bit with a full-genome index:
  /// a k-mer that is a repeat globally is masked on every shard even when
  /// the shard's own segment holds only a few of its copies.
  static HashIndex build_shard(const Genome& genome,
                               const HashIndexOptions& options,
                               GenomePos store_begin, GenomePos store_end);

  /// Wraps externally owned arrays (the mmap'ed fleet index file) without
  /// copying.  `offsets` must have 4^k + 1 entries, `mask_bytes` must pack
  /// 4^k bits; all three spans must outlive the HashIndex.  Throws
  /// ParseError when the shapes disagree.
  static HashIndex from_borrowed(const HashIndexOptions& options,
                                 std::uint64_t distinct,
                                 std::span<const std::uint64_t> offsets,
                                 std::span<const GenomePos> positions,
                                 std::span<const std::uint8_t> mask_bytes);

  // Spans into owned vectors must follow the vectors on move; the default
  // member-wise move would leave them pointing into the moved-from object.
  HashIndex(HashIndex&& other) noexcept { *this = std::move(other); }
  HashIndex& operator=(HashIndex&& other) noexcept;
  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  int k() const { return options_.k; }
  const HashIndexOptions& options() const { return options_; }

  /// Positions where this k-mer occurs (empty if absent or repeat-masked).
  std::span<const GenomePos> lookup(Kmer kmer) const;

  /// True if the k-mer was masked for exceeding max_positions.
  bool is_repeat_masked(Kmer kmer) const;

  /// Number of indexed (k-mer, position) pairs.
  std::uint64_t num_entries() const { return positions_.size(); }
  /// Number of distinct k-mers present (including masked ones).
  std::uint64_t num_distinct_kmers() const { return distinct_; }
  /// Approximate memory footprint in bytes (borrowed spans count too: the
  /// mmap'ed pages are resident once touched).
  std::uint64_t memory_bytes() const;

  /// Raw array views, in the exact shapes save() serializes — the fleet
  /// index-file writer embeds them verbatim.
  std::span<const std::uint64_t> offsets_span() const { return offsets_; }
  std::span<const GenomePos> positions_span() const { return positions_; }
  /// Packed repeat-mask bits, LSB-first within each byte.
  std::span<const std::uint8_t> mask_span() const { return mask_; }

  /// Serializes the index (binary, versioned).  Building the hash table for
  /// a large genome dominates startup, so GNUMAP persists it between runs.
  void save(std::ostream& out) const;
  /// Loads an index previously written by save(); throws ParseError on a
  /// damaged or incompatible stream.
  static HashIndex load(std::istream& in);

 private:
  HashIndex(const Genome& genome, const HashIndexOptions& options,
            GenomePos begin, GenomePos end, bool global_mask);

  bool mask_bit(std::uint64_t key) const {
    return (mask_[key / 8] >> (key % 8)) & 1u;
  }

  HashIndexOptions options_;
  std::uint64_t distinct_ = 0;
  std::uint64_t mask_bits_ = 0;  // number of mask bits = 4^k
  // Owned storage (empty when the index borrows an mmap'ed file).
  std::vector<std::uint64_t> offsets_own_;   // size 4^k + 1
  std::vector<GenomePos> positions_own_;
  std::vector<std::uint8_t> mask_own_;       // packed bits
  // Active views: point into the *_own_ vectors or into borrowed memory.
  std::span<const std::uint64_t> offsets_;
  std::span<const GenomePos> positions_;
  std::span<const std::uint8_t> mask_;
};

}  // namespace gnumap

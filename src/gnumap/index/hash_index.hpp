// Genomic hash table: k-mer -> sorted list of genome positions.
//
// Step 1 of the paper's approach: "create a genomic hash table of k-mers
// (default k=10), and then reference k-mers in the reads into this hash for
// efficient identification of putative mapping regions."
//
// Layout is CSR (one offsets array over a dense 4^k key space for k <= 13,
// or an open-addressing table for larger k): cache-friendly, built in two
// passes, and trivially serializable for the genome-partition MPI mode.
// K-mers occurring more often than `max_positions` (repeats) keep an empty
// list but are flagged, so the seeder can distinguish "repeat" from "absent".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "gnumap/genome/genome.hpp"
#include "gnumap/index/kmer.hpp"

namespace gnumap {

struct HashIndexOptions {
  int k = kDefaultK;
  /// K-mers with more genomic occurrences than this are masked as repeats.
  std::uint32_t max_positions = 1024;
};

class HashIndex {
 public:
  /// Builds over every indexable position of [begin, end) in the genome.
  /// The default range covers the whole padded array (padding k-mers contain
  /// N and index nothing).
  HashIndex(const Genome& genome, const HashIndexOptions& options,
            GenomePos begin = 0, GenomePos end = 0);

  int k() const { return options_.k; }
  const HashIndexOptions& options() const { return options_; }

  /// Positions where this k-mer occurs (empty if absent or repeat-masked).
  std::span<const GenomePos> lookup(Kmer kmer) const;

  /// True if the k-mer was masked for exceeding max_positions.
  bool is_repeat_masked(Kmer kmer) const;

  /// Number of indexed (k-mer, position) pairs.
  std::uint64_t num_entries() const { return positions_.size(); }
  /// Number of distinct k-mers present (including masked ones).
  std::uint64_t num_distinct_kmers() const { return distinct_; }
  /// Approximate memory footprint in bytes.
  std::uint64_t memory_bytes() const;

  /// Serializes the index (binary, versioned).  Building the hash table for
  /// a large genome dominates startup, so GNUMAP persists it between runs.
  void save(std::ostream& out) const;
  /// Loads an index previously written by save(); throws ParseError on a
  /// damaged or incompatible stream.
  static HashIndex load(std::istream& in);

 private:
  HashIndex() = default;  // for load()

  HashIndexOptions options_;
  // Dense CSR over the 4^k key space (k <= 13 keeps the offsets array within
  // a few hundred MB for the genome sizes we target; larger k is rejected).
  std::vector<std::uint64_t> offsets_;  // size 4^k + 1
  std::vector<GenomePos> positions_;
  std::vector<bool> masked_;
  std::uint64_t distinct_ = 0;
};

}  // namespace gnumap

#include "gnumap/index/hash_index.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "gnumap/util/error.hpp"

namespace gnumap {

HashIndex::HashIndex(const Genome& genome, const HashIndexOptions& options,
                     GenomePos begin, GenomePos end)
    : options_(options) {
  require(options.k >= 4 && options.k <= 13,
          "HashIndex: k must be in [4, 13] for the dense CSR layout");
  require(options.max_positions >= 1, "HashIndex: max_positions must be >= 1");
  if (end == 0) end = genome.padded_size();
  require(begin <= end && end <= genome.padded_size(),
          "HashIndex: invalid build range");

  const auto data = genome.data();
  const int k = options.k;
  const std::uint64_t space = kmer_space(k);
  offsets_.assign(space + 1, 0);
  masked_.assign(space, false);

  if (end - begin < static_cast<std::uint64_t>(k)) {
    return;  // nothing indexable
  }
  const GenomePos last = end - static_cast<std::uint64_t>(k);

  // Pass 1: count occurrences per k-mer with a rolling pack.  `valid` tracks
  // how many of the trailing bases are concrete (non-N).
  std::vector<std::uint32_t> counts(space, 0);
  Kmer kmer = 0;
  int valid = 0;
  for (GenomePos pos = begin; pos <= last + k - 1 && pos < end; ++pos) {
    const std::uint8_t base = data[pos];
    if (base >= 4) {
      valid = 0;
      kmer = 0;
      continue;
    }
    kmer = roll_kmer(kmer, base, k);
    if (++valid >= k) {
      ++counts[kmer];
    }
  }

  // Mask repeats and compute prefix offsets.
  std::uint64_t total = 0;
  for (std::uint64_t key = 0; key < space; ++key) {
    if (counts[key] > 0) ++distinct_;
    if (counts[key] > options.max_positions) {
      masked_[key] = true;
      counts[key] = 0;
    }
    offsets_[key] = total;
    total += counts[key];
  }
  offsets_[space] = total;

  // Pass 2: fill positions.  Fill cursors reuse the counts array.
  positions_.resize(total);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  kmer = 0;
  valid = 0;
  for (GenomePos pos = begin; pos <= last + k - 1 && pos < end; ++pos) {
    const std::uint8_t base = data[pos];
    if (base >= 4) {
      valid = 0;
      kmer = 0;
      continue;
    }
    kmer = roll_kmer(kmer, base, k);
    if (++valid >= k && !masked_[kmer]) {
      // The k-mer ends at `pos`; its start is pos - k + 1.
      positions_[cursor[kmer]++] = pos - static_cast<GenomePos>(k) + 1;
    }
  }
}

std::span<const GenomePos> HashIndex::lookup(Kmer kmer) const {
  if (kmer >= masked_.size()) return {};
  const std::uint64_t begin = offsets_[kmer];
  const std::uint64_t end = offsets_[kmer + 1];
  return {positions_.data() + begin, static_cast<std::size_t>(end - begin)};
}

bool HashIndex::is_repeat_masked(Kmer kmer) const {
  return kmer < masked_.size() && masked_[kmer];
}

std::uint64_t HashIndex::memory_bytes() const {
  return offsets_.size() * sizeof(std::uint64_t) +
         positions_.size() * sizeof(GenomePos) + masked_.size() / 8;
}

namespace {
constexpr std::uint64_t kIndexMagic = 0x474e55494458'01ull;  // "GNUIDX" v1

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw ParseError("HashIndex::load: truncated stream");
  return value;
}
}  // namespace

void HashIndex::save(std::ostream& out) const {
  write_pod(out, kIndexMagic);
  write_pod(out, static_cast<std::uint32_t>(options_.k));
  write_pod(out, options_.max_positions);
  write_pod(out, distinct_);
  write_pod(out, static_cast<std::uint64_t>(offsets_.size()));
  out.write(reinterpret_cast<const char*>(offsets_.data()),
            static_cast<std::streamsize>(offsets_.size() * sizeof(std::uint64_t)));
  write_pod(out, static_cast<std::uint64_t>(positions_.size()));
  out.write(reinterpret_cast<const char*>(positions_.data()),
            static_cast<std::streamsize>(positions_.size() * sizeof(GenomePos)));
  // vector<bool> has no contiguous storage; pack manually.
  write_pod(out, static_cast<std::uint64_t>(masked_.size()));
  std::vector<std::uint8_t> packed((masked_.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < masked_.size(); ++i) {
    if (masked_[i]) packed[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  out.write(reinterpret_cast<const char*>(packed.data()),
            static_cast<std::streamsize>(packed.size()));
}

HashIndex HashIndex::load(std::istream& in) {
  if (read_pod<std::uint64_t>(in) != kIndexMagic) {
    throw ParseError("HashIndex::load: bad magic (not an index file?)");
  }
  HashIndex index;
  index.options_.k = static_cast<int>(read_pod<std::uint32_t>(in));
  index.options_.max_positions = read_pod<std::uint32_t>(in);
  require(index.options_.k >= 4 && index.options_.k <= 13,
          "HashIndex::load: k out of range");
  index.distinct_ = read_pod<std::uint64_t>(in);

  const auto offsets_size = read_pod<std::uint64_t>(in);
  require(offsets_size == kmer_space(index.options_.k) + 1,
          "HashIndex::load: offsets array size mismatch");
  index.offsets_.resize(offsets_size);
  in.read(reinterpret_cast<char*>(index.offsets_.data()),
          static_cast<std::streamsize>(offsets_size * sizeof(std::uint64_t)));

  const auto positions_size = read_pod<std::uint64_t>(in);
  index.positions_.resize(positions_size);
  in.read(reinterpret_cast<char*>(index.positions_.data()),
          static_cast<std::streamsize>(positions_size * sizeof(GenomePos)));

  const auto masked_size = read_pod<std::uint64_t>(in);
  require(masked_size == kmer_space(index.options_.k),
          "HashIndex::load: mask size mismatch");
  std::vector<std::uint8_t> packed((masked_size + 7) / 8, 0);
  in.read(reinterpret_cast<char*>(packed.data()),
          static_cast<std::streamsize>(packed.size()));
  if (!in) throw ParseError("HashIndex::load: truncated stream");
  index.masked_.assign(masked_size, false);
  for (std::uint64_t i = 0; i < masked_size; ++i) {
    index.masked_[i] = (packed[i / 8] >> (i % 8)) & 1u;
  }
  return index;
}

}  // namespace gnumap

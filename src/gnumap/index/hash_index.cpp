#include "gnumap/index/hash_index.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "gnumap/util/error.hpp"

namespace gnumap {

namespace {

/// One rolling pass over [begin, end): counts[kmer] += 1 for every concrete
/// (N-free) k-mer window.
void count_kmers(std::span<const std::uint8_t> data, int k, GenomePos begin,
                 GenomePos end, std::vector<std::uint32_t>& counts) {
  Kmer kmer = 0;
  int valid = 0;
  for (GenomePos pos = begin; pos < end; ++pos) {
    const std::uint8_t base = data[pos];
    if (base >= 4) {
      valid = 0;
      kmer = 0;
      continue;
    }
    kmer = roll_kmer(kmer, base, k);
    if (++valid >= k) {
      ++counts[kmer];
    }
  }
}

}  // namespace

HashIndex::HashIndex(const Genome& genome, const HashIndexOptions& options,
                     GenomePos begin, GenomePos end)
    : HashIndex(genome, options, begin, end, /*global_mask=*/false) {}

HashIndex HashIndex::build_shard(const Genome& genome,
                                 const HashIndexOptions& options,
                                 GenomePos store_begin, GenomePos store_end) {
  return HashIndex(genome, options, store_begin, store_end,
                   /*global_mask=*/true);
}

HashIndex::HashIndex(const Genome& genome, const HashIndexOptions& options,
                     GenomePos begin, GenomePos end, bool global_mask)
    : options_(options) {
  require(options.k >= 4 && options.k <= 13,
          "HashIndex: k must be in [4, 13] for the dense CSR layout");
  require(options.max_positions >= 1, "HashIndex: max_positions must be >= 1");
  if (end == 0) end = genome.padded_size();
  require(begin <= end && end <= genome.padded_size(),
          "HashIndex: invalid build range");

  const auto data = genome.data();
  const int k = options.k;
  const std::uint64_t space = kmer_space(k);
  offsets_own_.assign(space + 1, 0);
  mask_bits_ = space;
  mask_own_.assign((space + 7) / 8, 0);

  const auto publish = [&] {
    offsets_ = offsets_own_;
    positions_ = positions_own_;
    mask_ = mask_own_;
  };

  if (end - begin < static_cast<std::uint64_t>(k)) {
    publish();
    return;  // nothing indexable
  }

  std::vector<std::uint32_t> counts(space, 0);

  // Shard builds decide masking from whole-genome counts so every shard
  // masks exactly the k-mers a full-genome index would mask; positions are
  // still filled only from the shard's own store range.
  if (global_mask) {
    count_kmers(data, k, 0, genome.padded_size(), counts);
    for (std::uint64_t key = 0; key < space; ++key) {
      if (counts[key] > options.max_positions) {
        mask_own_[key / 8] |= static_cast<std::uint8_t>(1u << (key % 8));
      }
    }
    std::fill(counts.begin(), counts.end(), 0);
  }

  // Pass 1: count occurrences per k-mer within the build range.
  count_kmers(data, k, begin, end, counts);

  // Mask repeats and compute prefix offsets.
  std::uint64_t total = 0;
  for (std::uint64_t key = 0; key < space; ++key) {
    if (counts[key] > 0) ++distinct_;
    if (counts[key] > options.max_positions) {
      mask_own_[key / 8] |= static_cast<std::uint8_t>(1u << (key % 8));
    }
    if ((mask_own_[key / 8] >> (key % 8)) & 1u) {
      counts[key] = 0;
    }
    offsets_own_[key] = total;
    total += counts[key];
  }
  offsets_own_[space] = total;

  // Pass 2: fill positions.  Fill cursors reuse the counts array.
  positions_own_.resize(total);
  std::vector<std::uint64_t> cursor(offsets_own_.begin(),
                                    offsets_own_.end() - 1);
  Kmer kmer = 0;
  int valid = 0;
  for (GenomePos pos = begin; pos < end; ++pos) {
    const std::uint8_t base = data[pos];
    if (base >= 4) {
      valid = 0;
      kmer = 0;
      continue;
    }
    kmer = roll_kmer(kmer, base, k);
    if (++valid >= k && !((mask_own_[kmer / 8] >> (kmer % 8)) & 1u)) {
      // The k-mer ends at `pos`; its start is pos - k + 1.
      if (cursor[kmer] < offsets_own_[kmer + 1]) {
        positions_own_[cursor[kmer]++] = pos - static_cast<GenomePos>(k) + 1;
      }
    }
  }
  publish();
}

HashIndex HashIndex::from_borrowed(const HashIndexOptions& options,
                                   std::uint64_t distinct,
                                   std::span<const std::uint64_t> offsets,
                                   std::span<const GenomePos> positions,
                                   std::span<const std::uint8_t> mask_bytes) {
  if (options.k < 4 || options.k > 13) {
    throw ParseError("HashIndex::from_borrowed: k out of range");
  }
  const std::uint64_t space = kmer_space(options.k);
  if (offsets.size() != space + 1) {
    throw ParseError("HashIndex::from_borrowed: offsets array size mismatch");
  }
  if (mask_bytes.size() != (space + 7) / 8) {
    throw ParseError("HashIndex::from_borrowed: mask size mismatch");
  }
  if (offsets[space] != positions.size()) {
    throw ParseError(
        "HashIndex::from_borrowed: offsets do not sum to the positions "
        "array size");
  }
  HashIndex index;
  index.options_ = options;
  index.distinct_ = distinct;
  index.mask_bits_ = space;
  index.offsets_ = offsets;
  index.positions_ = positions;
  index.mask_ = mask_bytes;
  return index;
}

HashIndex& HashIndex::operator=(HashIndex&& other) noexcept {
  if (this == &other) return *this;
  const bool owned = other.offsets_.data() == other.offsets_own_.data() &&
                     !other.offsets_own_.empty();
  options_ = other.options_;
  distinct_ = other.distinct_;
  mask_bits_ = other.mask_bits_;
  offsets_own_ = std::move(other.offsets_own_);
  positions_own_ = std::move(other.positions_own_);
  mask_own_ = std::move(other.mask_own_);
  if (owned) {
    offsets_ = offsets_own_;
    positions_ = positions_own_;
    mask_ = mask_own_;
  } else {
    offsets_ = other.offsets_;
    positions_ = other.positions_;
    mask_ = other.mask_;
  }
  other.offsets_ = {};
  other.positions_ = {};
  other.mask_ = {};
  other.mask_bits_ = 0;
  other.distinct_ = 0;
  return *this;
}

std::span<const GenomePos> HashIndex::lookup(Kmer kmer) const {
  if (kmer >= mask_bits_) return {};
  const std::uint64_t begin = offsets_[kmer];
  const std::uint64_t end = offsets_[kmer + 1];
  return {positions_.data() + begin, static_cast<std::size_t>(end - begin)};
}

bool HashIndex::is_repeat_masked(Kmer kmer) const {
  return kmer < mask_bits_ && mask_bit(kmer);
}

std::uint64_t HashIndex::memory_bytes() const {
  return offsets_.size() * sizeof(std::uint64_t) +
         positions_.size() * sizeof(GenomePos) + mask_.size();
}

namespace {
constexpr std::uint64_t kIndexMagic = 0x474e55494458'01ull;  // "GNUIDX" v1

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw ParseError("HashIndex::load: truncated stream");
  return value;
}
}  // namespace

void HashIndex::save(std::ostream& out) const {
  write_pod(out, kIndexMagic);
  write_pod(out, static_cast<std::uint32_t>(options_.k));
  write_pod(out, options_.max_positions);
  write_pod(out, distinct_);
  write_pod(out, static_cast<std::uint64_t>(offsets_.size()));
  out.write(reinterpret_cast<const char*>(offsets_.data()),
            static_cast<std::streamsize>(offsets_.size() * sizeof(std::uint64_t)));
  write_pod(out, static_cast<std::uint64_t>(positions_.size()));
  out.write(reinterpret_cast<const char*>(positions_.data()),
            static_cast<std::streamsize>(positions_.size() * sizeof(GenomePos)));
  // The mask is stored packed (LSB-first), exactly as held in memory.
  write_pod(out, mask_bits_);
  out.write(reinterpret_cast<const char*>(mask_.data()),
            static_cast<std::streamsize>(mask_.size()));
}

HashIndex HashIndex::load(std::istream& in) {
  if (read_pod<std::uint64_t>(in) != kIndexMagic) {
    throw ParseError("HashIndex::load: bad magic (not an index file?)");
  }
  HashIndex index;
  index.options_.k = static_cast<int>(read_pod<std::uint32_t>(in));
  index.options_.max_positions = read_pod<std::uint32_t>(in);
  require(index.options_.k >= 4 && index.options_.k <= 13,
          "HashIndex::load: k out of range");
  index.distinct_ = read_pod<std::uint64_t>(in);

  const auto offsets_size = read_pod<std::uint64_t>(in);
  require(offsets_size == kmer_space(index.options_.k) + 1,
          "HashIndex::load: offsets array size mismatch");
  index.offsets_own_.resize(offsets_size);
  in.read(reinterpret_cast<char*>(index.offsets_own_.data()),
          static_cast<std::streamsize>(offsets_size * sizeof(std::uint64_t)));

  const auto positions_size = read_pod<std::uint64_t>(in);
  index.positions_own_.resize(positions_size);
  in.read(reinterpret_cast<char*>(index.positions_own_.data()),
          static_cast<std::streamsize>(positions_size * sizeof(GenomePos)));

  const auto mask_size = read_pod<std::uint64_t>(in);
  require(mask_size == kmer_space(index.options_.k),
          "HashIndex::load: mask size mismatch");
  index.mask_bits_ = mask_size;
  index.mask_own_.assign((mask_size + 7) / 8, 0);
  in.read(reinterpret_cast<char*>(index.mask_own_.data()),
          static_cast<std::streamsize>(index.mask_own_.size()));
  if (!in) throw ParseError("HashIndex::load: truncated stream");
  index.offsets_ = index.offsets_own_;
  index.positions_ = index.positions_own_;
  index.mask_ = index.mask_own_;
  return index;
}

}  // namespace gnumap

#include "gnumap/index/seeder.hpp"

#include <algorithm>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {

Seeder::Seeder(const HashIndex& index, const SeederOptions& options)
    : index_(index), options_(options) {
  require(options.step >= 1, "Seeder: step must be >= 1");
  require(options.min_votes >= 1, "Seeder: min_votes must be >= 1");
  require(options.band_width >= 0, "Seeder: band_width must be >= 0");
  require(options.max_candidates >= 1, "Seeder: max_candidates must be >= 1");
}

std::vector<Candidate> Seeder::candidates_for_sequence(
    const std::vector<std::uint8_t>& bases, bool reverse) const {
  const int k = index_.k();
  std::vector<Candidate> out;
  if (static_cast<int>(bases.size()) < k) return out;

  // Collect raw diagonal votes.  A hit of the k-mer starting at read offset
  // `i` at genome position `p` implies the read start maps near `p - i`.
  std::vector<GenomePos> diagonals;
  const std::span<const std::uint8_t> view(bases.data(), bases.size());
  for (std::size_t i = 0; i + k <= bases.size();
       i += static_cast<std::size_t>(options_.step)) {
    const auto packed = pack_kmer(view.subspan(i), k);
    if (!packed) continue;
    for (const GenomePos pos : index_.lookup(*packed)) {
      if (pos >= i) diagonals.push_back(pos - i);
    }
  }
  if (diagonals.empty()) return out;

  // Bin sorted diagonals into bands of width band_width.
  std::sort(diagonals.begin(), diagonals.end());
  const auto band = static_cast<GenomePos>(options_.band_width);
  std::size_t run_start = 0;
  for (std::size_t i = 1; i <= diagonals.size(); ++i) {
    if (i == diagonals.size() || diagonals[i] - diagonals[i - 1] > band) {
      Candidate c;
      // Representative diagonal: the smallest in the band, so the window
      // extraction margin covers the whole band.
      c.diagonal = diagonals[run_start];
      c.votes = static_cast<int>(i - run_start);
      c.reverse = reverse;
      if (c.votes >= options_.min_votes) out.push_back(c);
      run_start = i;
    }
  }
  return out;
}

std::vector<Candidate> Seeder::candidates(const Read& read) const {
  auto fwd = candidates_for_sequence(read.bases, /*reverse=*/false);
  const auto rc = reverse_complement(read.bases);
  auto rev = candidates_for_sequence(rc, /*reverse=*/true);
  fwd.insert(fwd.end(), rev.begin(), rev.end());

  std::sort(fwd.begin(), fwd.end(), [](const Candidate& a, const Candidate& b) {
    if (a.votes != b.votes) return a.votes > b.votes;
    if (a.diagonal != b.diagonal) return a.diagonal < b.diagonal;
    return a.reverse < b.reverse;
  });
  if (static_cast<int>(fwd.size()) > options_.max_candidates) {
    fwd.resize(static_cast<std::size_t>(options_.max_candidates));
  }
  return fwd;
}

}  // namespace gnumap

#include "gnumap/obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <map>
#include <mutex>
#include <ostream>
#include <string_view>

#include "gnumap/obs/build_info.hpp"
#include "gnumap/obs/json_util.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/log.hpp"

namespace gnumap::obs {

namespace {

using detail::json_number;
using detail::json_string;

constexpr int kCounter = 0;
constexpr int kGauge = 1;
constexpr int kHistogram = 2;

const char* kind_name(int kind) {
  switch (kind) {
    case kCounter: return "counter";
    case kGauge: return "gauge";
    default: return "histogram";
  }
}

/// Splits 'base{label="v"}' into base and label text ("" when unlabeled),
/// so histogram bucket lines can merge their le label in.
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const auto brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') return {name, ""};
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

std::string prometheus_bound(double bound) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", bound);
  return buf;
}

/// ISO-8601 wall-clock date for the export context (matches the "date"
/// field of the committed bench JSONs).
std::string export_date() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[40];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S+00:00", &tm);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  require(!bounds_.empty(), "Histogram: bucket bounds must be non-empty");
  require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
              std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
          "Histogram: bucket bounds must be strictly ascending");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double value) {
  // First bucket whose upper bound is >= value; past-the-end is +Inf.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<double> default_time_buckets() {
  return {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3,
          2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,
          5.0,  10.0, 20.0, 50.0, 100.0};
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Entry {
  int kind;
  std::string help;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map: exports iterate in deterministic (sorted) name order.
  std::map<std::string, std::unique_ptr<Entry>> entries;
};

Registry::Impl& Registry::impl() const {
  static Impl* instance = new Impl();  // leaked: metric handles never dangle
  return *instance;
}

Registry::Entry& Registry::find_or_create(const std::string& name, int kind,
                                          const std::string& help) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto it = i.entries.find(name);
  if (it == i.entries.end()) {
    auto entry = std::make_unique<Entry>();
    entry->kind = kind;
    entry->help = help;
    it = i.entries.emplace(name, std::move(entry)).first;
  } else {
    require(it->second->kind == kind,
            "metrics: '" + name + "' re-registered as a different kind (" +
                kind_name(it->second->kind) + " vs " + kind_name(kind) + ")");
  }
  return *it->second;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  return find_or_create(name, kCounter, help).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  return find_or_create(name, kGauge, help).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const std::string& help) {
  Entry& entry = find_or_create(name, kHistogram, help);
  {
    std::lock_guard<std::mutex> lock(impl().mutex);
    if (entry.histogram == nullptr) {
      require(!bounds.empty(),
              "metrics: first registration of histogram '" + name +
                  "' must supply bucket bounds");
      entry.histogram.reset(new Histogram(std::move(bounds)));
    }
  }
  return *entry.histogram;
}

void Registry::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (auto& [name, entry] : i.entries) {
    entry->counter.value_.store(0);
    entry->gauge.value_.store(0.0);
    if (entry->histogram != nullptr) {
      Histogram& h = *entry->histogram;
      for (std::size_t b = 0; b <= h.bounds_.size(); ++b) {
        h.counts_[b].store(0);
      }
      h.count_.store(0);
      h.sum_.store(0.0);
    }
  }
}

void Registry::write_json(std::ostream& out) const {
  const BuildInfo& info = build_info();
  std::string text;
  text += "{\n\"context\": {\n";
  text += "\"date\": " + json_string(export_date()) + ",\n";
  text += "\"host_name\": " + json_string(host_name()) + ",\n";
  text += "\"num_cpus\": " + std::to_string(num_cpus()) + ",\n";
  text += "\"git_sha\": " + json_string(info.git_sha) + ",\n";
  text += "\"library_build_type\": " + json_string(info.build_type) + ",\n";
  text += "\"compiler\": " + json_string(info.compiler);
  for (const auto& [key, value] : obs::detail::metadata_snapshot()) {
    text += ",\n" + json_string(key) + ": " + json_string(value);
  }
  text += "\n},\n\"metrics\": {";

  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  bool first = true;
  for (const auto& [name, entry] : i.entries) {
    if (!first) text += ",";
    first = false;
    text += "\n" + json_string(name) + ": {\"type\": \"";
    text += kind_name(entry->kind);
    text += "\"";
    if (!entry->help.empty()) {
      text += ", \"help\": " + json_string(entry->help);
    }
    switch (entry->kind) {
      case kCounter:
        text += ", \"value\": " + std::to_string(entry->counter.value());
        break;
      case kGauge:
        text += ", \"value\": " + json_number(entry->gauge.value());
        break;
      default: {
        const Histogram& h = *entry->histogram;
        text += ", \"count\": " + std::to_string(h.count());
        text += ", \"sum\": " + json_number(h.sum());
        text += ", \"buckets\": [";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b <= h.bounds().size(); ++b) {
          cumulative += h.bucket_count(b);
          if (b > 0) text += ", ";
          text += "{\"le\": ";
          text += b < h.bounds().size()
                      ? json_number(h.bounds()[b])
                      : std::string("\"+Inf\"");
          text += ", \"count\": " + std::to_string(cumulative) + "}";
        }
        text += "]";
      }
    }
    text += "}";
  }
  text += "\n}\n}\n";
  out << text;
}

void Registry::write_prometheus(std::ostream& out) const {
  std::string text;
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (const auto& [name, entry] : i.entries) {
    const auto [base, labels] = split_labels(name);
    if (!entry->help.empty()) {
      text += "# HELP " + base + " " + entry->help + "\n";
    }
    text += "# TYPE " + base + " " + kind_name(entry->kind) + "\n";
    switch (entry->kind) {
      case kCounter:
        text += name + " " + std::to_string(entry->counter.value()) + "\n";
        break;
      case kGauge:
        text += name + " " + json_number(entry->gauge.value()) + "\n";
        break;
      default: {
        const Histogram& h = *entry->histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b <= h.bounds().size(); ++b) {
          cumulative += h.bucket_count(b);
          const std::string le =
              b < h.bounds().size() ? prometheus_bound(h.bounds()[b]) : "+Inf";
          text += base + "_bucket{";
          if (!labels.empty()) text += labels + ",";
          text += "le=\"" + le + "\"} " + std::to_string(cumulative) + "\n";
        }
        const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
        text += base + "_sum" + suffix + " " + json_number(h.sum()) + "\n";
        text += base + "_count" + suffix + " " + std::to_string(h.count()) +
                "\n";
      }
    }
  }
  out << text;
}

Registry& registry() {
  static Registry* instance = new Registry();
  return *instance;
}

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    GNUMAP_LOG(kWarn) << "metrics export: cannot open " << path;
    return false;
  }
  const std::string_view view(path);
  const bool prometheus = view.ends_with(".prom") || view.ends_with(".txt");
  if (prometheus) {
    registry().write_prometheus(out);
  } else {
    registry().write_json(out);
  }
  out.flush();
  if (!out) {
    GNUMAP_LOG(kWarn) << "metrics export: write failed for " << path;
    return false;
  }
  GNUMAP_LOG(kInfo) << "metrics written to " << path;
  return true;
}

std::string prometheus_text() {
  std::ostringstream out;
  registry().write_prometheus(out);
  return out.str();
}

std::string metrics_json_text() {
  std::ostringstream out;
  registry().write_json(out);
  return out.str();
}

}  // namespace gnumap::obs

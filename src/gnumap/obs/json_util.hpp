// Internal JSON string/number formatting shared by the obs exporters.
// Emission-side only: recording paths never format.
#pragma once

#include <cstdio>
#include <string>

namespace gnumap::obs::detail {

inline void append_json_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

inline std::string json_string(const std::string& text) {
  std::string out = "\"";
  append_json_escaped(out, text);
  out += "\"";
  return out;
}

/// %.17g round-trips doubles exactly.
inline std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace gnumap::obs::detail

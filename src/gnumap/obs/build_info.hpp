// Build and host identity embedded in every trace and metrics export, so a
// saved artifact is attributable to the exact binary and machine that
// produced it (the same fields google-benchmark puts in its JSON context).
#pragma once

#include <string>

namespace gnumap::obs {

struct BuildInfo {
  const char* git_sha;     ///< short commit hash at configure time
  const char* build_type;  ///< CMAKE_BUILD_TYPE ("Release", ...)
  const char* compiler;    ///< compiler id + version
};

/// Static build facts baked in by CMake (see src/CMakeLists.txt).
const BuildInfo& build_info();

/// This machine's hostname ("unknown" if unavailable).
std::string host_name();

/// Hardware threads visible to this process.
int num_cpus();

}  // namespace gnumap::obs

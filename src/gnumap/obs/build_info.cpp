#include "gnumap/obs/build_info.hpp"

#include <thread>

#include <unistd.h>

#ifndef GNUMAP_GIT_SHA
#define GNUMAP_GIT_SHA "unknown"
#endif
#ifndef GNUMAP_BUILD_TYPE
#define GNUMAP_BUILD_TYPE "unknown"
#endif

namespace gnumap::obs {

namespace {

const char* compiler_id() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{GNUMAP_GIT_SHA, GNUMAP_BUILD_TYPE,
                              compiler_id()};
  return info;
}

std::string host_name() {
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf[0] != '\0' ? std::string(buf) : std::string("unknown");
}

int num_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace gnumap::obs

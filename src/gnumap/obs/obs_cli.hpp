// Shared --trace-out / --metrics-out handling for the CLIs, examples, and
// bench tools, so every binary exposes the same observability flags with
// one call at the top of main().
#pragma once

#include <string>

namespace gnumap::obs {

/// Scans argv for
///   --trace-out FILE     enable tracing; write Chrome trace JSON to FILE
///   --metrics-out FILE   write the metrics registry to FILE at exit
///                        (JSON, or Prometheus text for .prom/.txt)
/// removes both (flag and value) from argv in place, updates argc, and
/// names the calling thread's trace track "main".  The files are written by
/// flush_cli_outputs(), which is also registered via std::atexit so plain
/// `return`/`exit()` paths export without further wiring.  Call before any
/// other argument parsing.
void strip_cli_flags(int& argc, char** argv);

/// Writes any outputs requested via strip_cli_flags; idempotent (a second
/// call — e.g. the atexit handler after an explicit call — re-exports,
/// which is harmless).  Returns false if any export failed.
bool flush_cli_outputs();

/// The paths captured by strip_cli_flags ("" when the flag was absent).
const std::string& cli_trace_path();
const std::string& cli_metrics_path();

/// Installs SIGINT/SIGTERM handlers that write the --trace-out /
/// --metrics-out files before re-raising the signal with its default
/// disposition, so an interrupted run still leaves its observability
/// artifacts behind.  For batch CLIs only — a server that owns its
/// shutdown (gnumapd) should install a request-stop handler instead and
/// let the atexit flush run on the normal exit path.
void install_signal_flush();

}  // namespace gnumap::obs

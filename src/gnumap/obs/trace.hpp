// Low-overhead tracing: spans and instant events on per-thread ring buffers,
// exported as Chrome trace-event JSON (chrome://tracing / Perfetto).
//
// The recorder is compiled in always and enabled at runtime; when disabled
// (the default) a span costs one relaxed atomic load and a branch — cheap
// enough to leave GNUMAP_TRACE_SPAN in every hot path (the disabled-mode
// bound is asserted in tests/test_obs.cpp).  When enabled, each recording
// thread appends completed spans to its own fixed-capacity ring buffer
// (oldest events are overwritten, never blocking the recording thread on a
// full buffer), and the exporter later merges every thread's ring into one
// timeline.
//
// Tracks: every thread records onto a numbered track that becomes one named
// row in the trace UI.  mpsim rank threads call set_thread_track(rank,
// "rank N") (run_world_collect does this), the driving thread is named
// "main" by the CLI helpers, and threads that never claim a track get an
// auto-assigned "thread-K" row.  Buffers outlive their threads, so a
// distributed run's rank tracks survive the world join and show up in the
// export.
//
// Typical use:
//   obs::set_trace_enabled(true);
//   { GNUMAP_TRACE_SPAN("map_reads", "pipeline"); ... }   // RAII complete-event
//   obs::TraceSpan span("send", "comm"); span.arg("bytes", n);  // with args
//   obs::record_instant("injected_crash", "fault");
//   obs::write_chrome_trace_file("run.trace.json");
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace gnumap::obs {

// ---------------------------------------------------------------------------
// Global switches and per-thread track naming.

namespace detail {
extern std::atomic<bool> g_trace_enabled;
/// Snapshot of the set_trace_metadata map; the metrics exporter includes it
/// in its context block so both artifacts carry the same run facts.
std::map<std::string, std::string> metadata_snapshot();
}  // namespace detail

/// True when spans and events are being recorded.  The fast path every
/// disabled span takes: one relaxed load.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Turns recording on/off process-wide.  Enabling does not clear previously
/// recorded events; call reset_trace() for a fresh timeline.
void set_trace_enabled(bool enabled);

/// Drops every recorded event and the trace metadata (the clock epoch and
/// thread tracks persist).  Tests and multi-run tools call this between runs.
void reset_trace();

/// Claims a track for the calling thread: `track` is the Chrome-trace tid
/// (one row in the UI) and `name` its displayed label.  Names are
/// process-global per track id and the most recent claim wins, so when
/// successive worlds re-claim the same rank tracks the export carries one
/// name per row.  mpsim names rank threads "rank N" with track == rank; the
/// CLI helpers name the driving thread "main".  Cheap; callable whether or
/// not tracing is enabled.
void set_thread_track(int track, const std::string& name);

/// Key/value attached to the export's otherData block (build info is always
/// included; callers add run facts: rank count, DistMode, workload).
/// Overwrites an existing key.
void set_trace_metadata(const std::string& key, const std::string& value);

/// Microseconds since the process-wide trace epoch (steady clock).
double trace_now_us();

// ---------------------------------------------------------------------------
// Recording.

/// Records a completed span [ts_us, ts_us + dur_us) on the calling thread's
/// track.  `name`/`category`/arg names must be string literals (or otherwise
/// outlive the trace); values are stored, not formatted, so recording never
/// allocates.  No-op when tracing is disabled.  A non-zero `trace_id` tags
/// the span with a 64-bit correlation id, exported as a "trace_id" hex
/// string in the event's args — the hook cross-process span linking
/// (serve_request / map_request, scripts/merge_traces.py) hangs off.
void record_complete(const char* name, const char* category, double ts_us,
                     double dur_us, const char* arg1_name = nullptr,
                     double arg1_value = 0.0, const char* arg2_name = nullptr,
                     double arg2_value = 0.0, std::uint64_t trace_id = 0);

/// Records a zero-duration instant event (rendered as a marker).
void record_instant(const char* name, const char* category,
                    const char* arg1_name = nullptr, double arg1_value = 0.0);

/// RAII span: construction stamps the start, destruction records one
/// complete event covering the scope.  When tracing is disabled at
/// construction the destructor does nothing (a span is never half-recorded).
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category)
      : name_(name), category_(category), active_(trace_enabled()) {
    if (active_) start_us_ = trace_now_us();
  }

  /// Convenience: span with one or two args attached up front.  Arg values
  /// are evaluated by the caller either way; the span itself stays free when
  /// tracing is disabled.
  TraceSpan(const char* name, const char* category, const char* arg1_name,
            double arg1_value)
      : TraceSpan(name, category) {
    arg(arg1_name, arg1_value);
  }
  TraceSpan(const char* name, const char* category, const char* arg1_name,
            double arg1_value, const char* arg2_name, double arg2_value)
      : TraceSpan(name, category) {
    arg(arg1_name, arg1_value);
    arg(arg2_name, arg2_value);
  }

  ~TraceSpan() {
    if (active_) {
      record_complete(name_, category_, start_us_, trace_now_us() - start_us_,
                      arg1_name_, arg1_value_, arg2_name_, arg2_value_,
                      trace_id_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches up to two numeric args ({"bytes": 4096}) to the span; extra
  /// calls beyond two are ignored.  `name` must be a string literal.
  void arg(const char* name, double value) {
    if (!active_) return;
    if (arg1_name_ == nullptr) {
      arg1_name_ = name;
      arg1_value_ = value;
    } else if (arg2_name_ == nullptr) {
      arg2_name_ = name;
      arg2_value_ = value;
    }
  }

  /// Tags the span with a 64-bit correlation id (0 = untagged), exported
  /// as args.trace_id.  Free when tracing is disabled — same one-branch
  /// cost contract as arg() (asserted in tests/test_obs.cpp).
  void set_id(std::uint64_t trace_id) {
    if (active_) trace_id_ = trace_id;
  }

 private:
  const char* name_;
  const char* category_;
  const char* arg1_name_ = nullptr;
  const char* arg2_name_ = nullptr;
  double arg1_value_ = 0.0;
  double arg2_value_ = 0.0;
  std::uint64_t trace_id_ = 0;
  double start_us_ = 0.0;
  bool active_;
};

// ---------------------------------------------------------------------------
// Export.

/// Writes the merged timeline as Chrome trace-event JSON: one "X" event per
/// span, "i" per instant, thread_name metadata per named track, and an
/// otherData block carrying build info plus set_trace_metadata entries.
/// Loadable by chrome://tracing and Perfetto.
void write_chrome_trace(std::ostream& out);

/// write_chrome_trace to `path`; returns false (and logs) on I/O failure.
bool write_chrome_trace_file(const std::string& path);

}  // namespace gnumap::obs

#define GNUMAP_OBS_CONCAT2(a, b) a##b
#define GNUMAP_OBS_CONCAT(a, b) GNUMAP_OBS_CONCAT2(a, b)

/// Scoped span covering the rest of the enclosing block.
#define GNUMAP_TRACE_SPAN(name, category)                 \
  ::gnumap::obs::TraceSpan GNUMAP_OBS_CONCAT(             \
      gnumap_obs_span_, __LINE__)((name), (category))

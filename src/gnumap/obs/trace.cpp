#include "gnumap/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "gnumap/obs/build_info.hpp"
#include "gnumap/obs/json_util.hpp"
#include "gnumap/util/log.hpp"

namespace gnumap::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

/// Ring capacity per recording thread.  A 4-rank distributed run with
/// per-message spans lands in the low thousands of events per rank; 64K
/// leaves two orders of magnitude of headroom before anything is dropped
/// (drops are counted and reported in the export's otherData).
constexpr std::size_t kRingCapacity = 1 << 16;

struct TraceEvent {
  const char* name;
  const char* category;
  double ts_us;
  double dur_us;  ///< < 0 marks an instant event
  const char* arg1_name;
  const char* arg2_name;
  double arg1_value;
  double arg2_value;
  std::uint64_t trace_id;  ///< 0 = untagged; exported as args.trace_id hex
};

/// One thread's recording state.  Owned jointly by the recording thread
/// (thread_local handle) and the global registry, so events survive thread
/// exit — rank threads are joined before the trace is exported.
struct ThreadBuffer {
  std::mutex mutex;  ///< recording thread vs. exporter/reset
  std::vector<TraceEvent> events;  ///< ring once size == kRingCapacity
  std::size_t next = 0;            ///< ring write cursor
  std::uint64_t dropped = 0;       ///< events overwritten after wrap
  int track = -1;                  ///< Chrome tid; -1 until claimed/assigned
};

struct TraceState {
  std::mutex mutex;  ///< guards buffers + metadata + track names
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  /// Track id -> displayed row label.  Process-global, last claim wins: a
  /// track id is one row in the UI, so when successive worlds re-claim the
  /// same rank tracks the export must carry exactly one name per row (dead
  /// threads' buffers outlive them and must not resurrect stale labels).
  std::map<int, std::string> track_names;
  std::map<std::string, std::string> metadata;
  std::atomic<int> next_auto_track{1000};
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: outlives exiting threads
  return *s;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// The calling thread's buffer, registered globally on first use.  A thread
/// that never claims a track gets an auto-assigned "thread-K" row.  On
/// thread exit an untouched buffer deregisters itself so short-lived worker
/// threads (every mpsim world spawns a fresh set) do not pile up.
struct ThreadHandle {
  std::shared_ptr<ThreadBuffer> buffer;

  ThreadHandle() : buffer(std::make_shared<ThreadBuffer>()) {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.buffers.push_back(buffer);
  }

  ~ThreadHandle() {
    bool empty;
    {
      std::lock_guard<std::mutex> lock(buffer->mutex);
      empty = buffer->events.empty() && buffer->track < 0;
    }
    if (!empty) return;
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::erase(s.buffers, buffer);
  }
};

ThreadBuffer& thread_buffer() {
  thread_local ThreadHandle handle;
  return *handle.buffer;
}

void push_event(ThreadBuffer& buffer, const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() < kRingCapacity) {
    buffer.events.push_back(event);
    return;
  }
  buffer.events[buffer.next] = event;
  buffer.next = (buffer.next + 1) % kRingCapacity;
  ++buffer.dropped;
}

using detail::json_number;
using detail::json_string;

struct ExportRow {
  TraceEvent event;
  int track;
};

}  // namespace

void set_trace_enabled(bool enabled) {
  if (enabled) trace_epoch();  // pin the epoch before the first span
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void reset_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& buffer : s.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->next = 0;
    buffer->dropped = 0;
  }
  s.metadata.clear();
}

void set_thread_track(int track, const std::string& name) {
  ThreadBuffer& buffer = thread_buffer();
  {
    // Scoped: the exporter locks state -> buffer, so never hold the buffer
    // lock while taking the state lock below.
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.track = track;
  }
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.track_names[track] = name;
}

void set_trace_metadata(const std::string& key, const std::string& value) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.metadata[key] = value;
}

namespace detail {
std::map<std::string, std::string> metadata_snapshot() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.metadata;
}
}  // namespace detail

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

void record_complete(const char* name, const char* category, double ts_us,
                     double dur_us, const char* arg1_name, double arg1_value,
                     const char* arg2_name, double arg2_value,
                     std::uint64_t trace_id) {
  if (!trace_enabled()) return;
  push_event(thread_buffer(),
             TraceEvent{name, category, ts_us, dur_us, arg1_name, arg2_name,
                        arg1_value, arg2_value, trace_id});
}

void record_instant(const char* name, const char* category,
                    const char* arg1_name, double arg1_value) {
  if (!trace_enabled()) return;
  push_event(thread_buffer(),
             TraceEvent{name, category, trace_now_us(), -1.0, arg1_name,
                        nullptr, arg1_value, 0.0, 0});
}

void write_chrome_trace(std::ostream& out) {
  // Snapshot every buffer under its own lock, assigning auto tracks to
  // threads that never claimed one; then emit a single sorted timeline.
  TraceState& s = state();
  std::vector<ExportRow> rows;
  std::map<int, std::string> tracks;  ///< one name per active track id
  std::uint64_t dropped_total = 0;
  std::map<std::string, std::string> metadata;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    metadata = s.metadata;
    for (const auto& buffer : s.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      if (buffer->events.empty() && buffer->track < 0) continue;
      if (buffer->track < 0) {
        buffer->track = s.next_auto_track.fetch_add(1);
        s.track_names[buffer->track] =
            "thread-" + std::to_string(buffer->track - 1000);
      }
      tracks[buffer->track] = s.track_names[buffer->track];
      dropped_total += buffer->dropped;
      // Ring order: [next, end) is oldest once wrapped.
      for (std::size_t i = 0; i < buffer->events.size(); ++i) {
        const std::size_t at = (buffer->next + i) % buffer->events.size();
        rows.push_back(ExportRow{buffer->events[at], buffer->track});
      }
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const ExportRow& a, const ExportRow& b) {
              if (a.event.ts_us != b.event.ts_us)
                return a.event.ts_us < b.event.ts_us;
              return a.track < b.track;
            });

  const BuildInfo& info = build_info();
  metadata.emplace("git_sha", info.git_sha);
  metadata.emplace("build_type", info.build_type);
  metadata.emplace("host", host_name());
  if (dropped_total > 0) {
    metadata["dropped_events"] = std::to_string(dropped_total);
  }

  std::string text;
  text.reserve(rows.size() * 96 + 4096);
  text += "{\n\"traceEvents\": [\n";
  text += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
          "\"args\":{\"name\":\"gnumap\"}}";
  for (const auto& [track, name] : tracks) {
    text += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    text += std::to_string(track);
    text += ",\"args\":{\"name\":";
    text += json_string(name);
    text += "}}";
  }
  // Rank tracks (small tids) sort above the auto tracks in the UI.
  for (const auto& [track, name] : tracks) {
    text += ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
            "\"tid\":";
    text += std::to_string(track);
    text += ",\"args\":{\"sort_index\":";
    text += std::to_string(track);
    text += "}}";
  }
  for (const ExportRow& row : rows) {
    const TraceEvent& e = row.event;
    text += ",\n{\"name\":";
    text += json_string(e.name);
    text += ",\"cat\":";
    text += json_string(e.category);
    if (e.dur_us < 0.0) {
      text += ",\"ph\":\"i\",\"s\":\"t\"";
    } else {
      text += ",\"ph\":\"X\",\"dur\":";
      text += json_number(e.dur_us);
    }
    text += ",\"pid\":1,\"tid\":";
    text += std::to_string(row.track);
    text += ",\"ts\":";
    text += json_number(e.ts_us);
    if (e.arg1_name != nullptr || e.trace_id != 0) {
      text += ",\"args\":{";
      bool first_arg = true;
      if (e.arg1_name != nullptr) {
        text += json_string(e.arg1_name);
        text += ":";
        text += json_number(e.arg1_value);
        first_arg = false;
        if (e.arg2_name != nullptr) {
          text += ",";
          text += json_string(e.arg2_name);
          text += ":";
          text += json_number(e.arg2_value);
        }
      }
      if (e.trace_id != 0) {
        // Hex, not a JSON number: a u64 does not round-trip a double, and
        // the hex form is what log prefixes and MAP_DONE summaries carry.
        if (!first_arg) text += ",";
        char hex[17];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(e.trace_id));
        text += "\"trace_id\":\"";
        text += hex;
        text += "\"";
      }
      text += "}";
    }
    text += "}";
  }
  text += "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {";
  bool first = true;
  for (const auto& [key, value] : metadata) {
    if (!first) text += ",";
    first = false;
    text += "\n";
    text += json_string(key);
    text += ": ";
    text += json_string(value);
  }
  text += "\n}\n}\n";
  out << text;
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    GNUMAP_LOG(kWarn) << "trace export: cannot open " << path;
    return false;
  }
  write_chrome_trace(out);
  out.flush();
  if (!out) {
    GNUMAP_LOG(kWarn) << "trace export: write failed for " << path;
    return false;
  }
  GNUMAP_LOG(kInfo) << "trace written to " << path;
  return true;
}

}  // namespace gnumap::obs

#include "gnumap/obs/obs_cli.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gnumap/obs/metrics.hpp"
#include "gnumap/obs/trace.hpp"

namespace gnumap::obs {

namespace {

std::string& trace_path() {
  static std::string path;
  return path;
}

std::string& metrics_path() {
  static std::string path;
  return path;
}

void atexit_flush() { flush_cli_outputs(); }

void signal_flush_handler(int sig) {
  // Not strictly async-signal-safe (it allocates and takes the registry
  // lock), but the alternative on an interrupted batch run is losing the
  // trace and metrics entirely; the worst case is the process dying here,
  // which it was about to do anyway.
  flush_cli_outputs();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void strip_cli_flags(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const bool is_trace = std::strcmp(argv[i], "--trace-out") == 0;
    const bool is_metrics = std::strcmp(argv[i], "--metrics-out") == 0;
    if (!is_trace && !is_metrics) {
      argv[out++] = argv[i];
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs a file argument\n", argv[0],
                   argv[i]);
      std::exit(2);
    }
    (is_trace ? trace_path() : metrics_path()) = argv[++i];
  }
  argv[out] = nullptr;
  argc = out;

  if (!trace_path().empty() || !metrics_path().empty()) {
    set_thread_track(900, "main");
    std::atexit(atexit_flush);
  }
  if (!trace_path().empty()) set_trace_enabled(true);
}

bool flush_cli_outputs() {
  bool ok = true;
  if (!trace_path().empty()) ok &= write_chrome_trace_file(trace_path());
  if (!metrics_path().empty()) ok &= write_metrics_file(metrics_path());
  return ok;
}

const std::string& cli_trace_path() { return trace_path(); }
const std::string& cli_metrics_path() { return metrics_path(); }

void install_signal_flush() {
  std::signal(SIGINT, signal_flush_handler);
  std::signal(SIGTERM, signal_flush_handler);
}

}  // namespace gnumap::obs

// Named metrics: counters, gauges, and latency histograms in one
// process-wide registry, exported as JSON (sharing its context schema with
// the committed bench JSONs) or Prometheus text exposition.
//
// Handles returned by the registry are stable for the process lifetime;
// callers on hot paths resolve a metric once (by name) and then update it
// with plain atomics — updates never take the registry lock and never
// allocate.  MapStats / CommStats remain the value types the pipeline
// aggregates with; core/obs_bridge.hpp mirrors them into registry entries
// (gnumap_reads_total, gnumap_rank_messages_sent_total{rank="0"}, ...) so
// one exporter covers both.
//
// Naming scheme (docs/OBSERVABILITY.md): prometheus-style snake_case with
// a gnumap_ prefix, _total suffix for monotone counters, _seconds/_bytes
// unit suffixes, and an optional {label="value"} suffix baked into the
// registered name for per-rank series.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace gnumap::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins floating-point metric, with an accumulate form for
/// time totals.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram with Prometheus bucket semantics: an
/// observation lands in every bucket whose upper bound is >= the value
/// when exported cumulatively; internally each bucket stores its own count
/// (value <= bounds[i], first match) plus the implicit +Inf overflow.
class Histogram {
 public:
  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count for bucket `i`; i == bounds().size() is +Inf.
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;  ///< ascending upper bounds, +Inf implicit
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets: 1 µs .. ~100 s, quasi-logarithmic (1-2-5).
std::vector<double> default_time_buckets();

/// Process-wide metric registry.  Lookup is mutex-protected; returned
/// references stay valid forever (metrics are never removed, only reset).
class Registry {
 public:
  /// Finds or creates the metric `name`.  A name may carry a baked-in
  /// Prometheus label suffix ('gnumap_rank_bytes_sent_total{rank="3"}').
  /// `help` is kept from the first registration.  Re-registering an
  /// existing name with a different metric kind throws ConfigError.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// `bounds` must be non-empty and strictly ascending; it is fixed by the
  /// first registration (later calls may pass an empty vector).
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Zeroes every registered metric (counts, sums, gauge values); the set
  /// of registered names survives.  Tests and multi-run tools use this.
  void reset();

  /// JSON export: {"context": {...build/host fields...}, "metrics": {...}}.
  /// The context block carries the same identity fields as the committed
  /// bench JSONs (host_name, num_cpus, build type, git SHA, SIMD level).
  void write_json(std::ostream& out) const;
  /// Prometheus text exposition (histograms with cumulative le buckets).
  void write_prometheus(std::ostream& out) const;

 private:
  struct Entry;
  Entry& find_or_create(const std::string& name, int kind,
                        const std::string& help);

  struct Impl;
  Impl& impl() const;
};

/// The process-wide registry.
Registry& registry();

/// Writes registry().write_json / write_prometheus to `path`; the
/// Prometheus form is chosen when `path` ends in ".prom" or ".txt".
/// Returns false (and logs) on I/O failure.
bool write_metrics_file(const std::string& path);

/// Live snapshots of the process registry, rendered in place — what the
/// admin endpoint serves at /metrics.  Callable at any time; the exporters
/// only read relaxed atomics, so scraping a busy server is safe.
std::string prometheus_text();
std::string metrics_json_text();

}  // namespace gnumap::obs

#include "gnumap/serve/admin_http.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string_view>
#include <utility>

#include "gnumap/obs/json_util.hpp"
#include "gnumap/obs/metrics.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/serve/server.hpp"
#include "gnumap/serve/wire.hpp"
#include "gnumap/util/log.hpp"

namespace gnumap::serve {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;
constexpr int kIoTimeoutMs = 5'000;
constexpr std::uint32_t kMaxTracezMs = 60'000;
constexpr std::size_t kTracezTableRows = 32;

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void send_response(Socket& sock, const HttpResponse& resp) {
  std::string out = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                    status_reason(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  sock.send_all(out.data(), out.size(), kIoTimeoutMs);
}

/// Reads until the end of the request headers (we never need a body) or
/// the size/deadline bound, returning the raw request text.
std::string read_request(Socket& sock) {
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const std::size_t n = sock.recv_some(buf, sizeof buf, kIoTimeoutMs);
    if (n == 0) break;
    request.append(buf, n);
  }
  return request;
}

/// Splits "GET /tracez?duration_ms=50 HTTP/1.0" into {"/tracez",
/// "duration_ms=50"}; returns false unless the request is a GET.
bool parse_get(const std::string& request, std::string& path,
               std::string& query) {
  const std::size_t line_end = request.find("\r\n");
  const std::string_view line(request.data(), line_end == std::string::npos
                                                  ? request.size()
                                                  : line_end);
  if (line.substr(0, 4) != "GET ") return false;
  const std::size_t target_end = line.find(' ', 4);
  if (target_end == std::string_view::npos) return false;
  const std::string_view target = line.substr(4, target_end - 4);
  const std::size_t qmark = target.find('?');
  path = std::string(target.substr(0, qmark));
  query = qmark == std::string_view::npos
              ? std::string()
              : std::string(target.substr(qmark + 1));
  return true;
}

/// The one query parameter the admin surface understands.
bool query_u32(const std::string& query, const std::string& key,
               std::uint32_t& value) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string_view pair =
        std::string_view(query).substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      std::uint64_t v = 0;
      for (const char c : pair.substr(eq + 1)) {
        if (c < '0' || c > '9') return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
        if (v > 0xFFFF'FFFFull) return false;
      }
      value = static_cast<std::uint32_t>(v);
      return true;
    }
    pos = amp + 1;
  }
  return false;
}

std::string digest_table_json(const MappingServer& server) {
  using obs::detail::json_number;
  using obs::detail::json_string;
  const auto slowest = server.digests().slowest(kTracezTableRows);
  std::string out = "{\n  \"digests_recorded\": " +
                    std::to_string(server.digests().total_recorded()) +
                    ",\n  \"ring_capacity\": " +
                    std::to_string(server.digests().capacity()) +
                    ",\n  \"slowest_recent_requests\": [";
  for (std::size_t i = 0; i < slowest.size(); ++i) {
    const RequestDigest& d = slowest[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"request_id\": " + std::to_string(d.request_id) +
           ", \"conn_id\": " + std::to_string(d.conn_id) + ", \"trace_id\": " +
           json_string(d.trace_id != 0 ? trace_id_hex(d.trace_id) : "") +
           ", \"error_code\": " + std::to_string(d.error_code) +
           ", \"total_seconds\": " + json_number(d.total_seconds) +
           ", \"admission_wait_seconds\": " +
           json_number(d.admission_wait_seconds) +
           ", \"upload_wait_seconds\": " + json_number(d.upload_wait_seconds) +
           ", \"decode_seconds\": " + json_number(d.decode_seconds) +
           ", \"map_stage_seconds\": " + json_number(d.map_stage_seconds) +
           ", \"drain_seconds\": " + json_number(d.drain_seconds()) +
           ", \"format_seconds\": " + json_number(d.format_seconds) +
           ", \"splice_seconds\": " + json_number(d.splice_seconds) +
           ", \"call_seconds\": " + json_number(d.call_seconds) +
           ", \"upload_bytes\": " + std::to_string(d.upload_bytes) +
           ", \"result_bytes\": " + std::to_string(d.result_bytes) +
           ", \"reads_total\": " + std::to_string(d.reads_total) +
           ", \"reads_mapped\": " + std::to_string(d.reads_mapped) +
           ", \"calls\": " + std::to_string(d.calls) +
           ", \"phmm_cells\": " + std::to_string(d.phmm_cells) +
           ", \"gcups\": " + json_number(d.gcups) +
           ", \"fp32_recomputed\": " + std::to_string(d.fp32_recomputed) + "}";
  }
  out += slowest.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace

AdminHttpServer::AdminHttpServer(MappingServer& server, int port,
                                 bool bind_any)
    : server_(server),
      listener_(std::make_unique<Listener>(static_cast<std::uint16_t>(port),
                                           bind_any)) {}

AdminHttpServer::~AdminHttpServer() { stop(); }

int AdminHttpServer::port() const { return listener_->port(); }

void AdminHttpServer::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { serve_loop(); });
}

void AdminHttpServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  listener_->close();
}

void AdminHttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto sock = listener_->accept(200, &stop_);
    if (!sock.has_value()) continue;
    try {
      handle(std::move(*sock));
    } catch (const std::exception& e) {
      // A misbehaving scraper must not take the admin surface down.
      GNUMAP_LOG(kDebug) << "admin: request failed: " << e.what();
    }
  }
}

void AdminHttpServer::handle(Socket sock) {
  const std::string request = read_request(sock);
  std::string path;
  std::string query;
  HttpResponse resp;
  if (!parse_get(request, path, query)) {
    resp.status = request.empty() ? 400 : 405;
    resp.body = "admin endpoint speaks GET only\n";
    send_response(sock, resp);
    return;
  }

  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = obs::prometheus_text();
  } else if (path == "/healthz") {
    resp.body = server_.health_text();
    // Mirror the wire HEALTH verdict in the status code so probes need no
    // body parsing: ready=1 is always the first line.
    if (resp.body.rfind("ready=1", 0) != 0) resp.status = 503;
  } else if (path == "/statusz") {
    resp.content_type = "application/json";
    resp.body = server_.statusz_json();
  } else if (path == "/tracez") {
    std::uint32_t duration_ms = 0;
    if (query_u32(query, "duration_ms", duration_ms) && duration_ms > 0) {
      duration_ms = std::min(duration_ms, kMaxTracezMs);
      // A capture window: start a fresh timeline unless a capture is
      // already running (then just observe it — don't clear or stop it).
      const bool was_enabled = obs::trace_enabled();
      if (!was_enabled) {
        obs::reset_trace();
        obs::set_trace_enabled(true);
      }
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(duration_ms);
      while (std::chrono::steady_clock::now() < deadline &&
             !stop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      if (!was_enabled) obs::set_trace_enabled(false);
      std::ostringstream trace;
      obs::write_chrome_trace(trace);
      resp.content_type = "application/json";
      resp.body = trace.str();
    } else {
      resp.content_type = "application/json";
      resp.body = digest_table_json(server_);
    }
  } else if (path == "/") {
    resp.body =
        "gnumapd admin endpoint\n"
        "  /metrics               Prometheus text exposition (live)\n"
        "  /healthz               wire HEALTH payload; 503 when not ready\n"
        "  /statusz               server status JSON\n"
        "  /tracez                slowest recent requests (JSON)\n"
        "  /tracez?duration_ms=N  capture a Chrome trace for N ms\n";
  } else {
    resp.status = 404;
    resp.body = "no route " + path + " (try /)\n";
  }
  send_response(sock, resp);
}

}  // namespace gnumap::serve

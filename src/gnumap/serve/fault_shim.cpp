#include "gnumap/serve/fault_shim.hpp"

#include <algorithm>
#include <random>
#include <sstream>

#include "gnumap/util/error.hpp"

namespace gnumap::serve {

const char* wire_fault_kind_name(WireFaultKind kind) {
  switch (kind) {
    case WireFaultKind::kDisconnect: return "disconnect";
    case WireFaultKind::kTruncate: return "truncate";
    case WireFaultKind::kCorrupt: return "corrupt";
    case WireFaultKind::kStall: return "stall";
    case WireFaultKind::kShortWrites: return "short";
    case WireFaultKind::kDelayAccept: return "accept-delay";
  }
  return "unknown";
}

WireFaultPlan& WireFaultPlan::disconnect_at(std::uint64_t tx_offset) {
  events_.push_back({WireFaultKind::kDisconnect, tx_offset, 0, 0.0});
  return *this;
}

WireFaultPlan& WireFaultPlan::truncate_at(std::uint64_t tx_offset,
                                          std::uint64_t drop) {
  require(drop > 0, "WireFaultPlan::truncate_at: drop must be >= 1");
  events_.push_back({WireFaultKind::kTruncate, tx_offset, drop, 0.0});
  return *this;
}

WireFaultPlan& WireFaultPlan::corrupt_at(std::uint64_t tx_offset,
                                         std::uint8_t xor_mask) {
  require(xor_mask != 0, "WireFaultPlan::corrupt_at: mask must be nonzero");
  events_.push_back({WireFaultKind::kCorrupt, tx_offset, xor_mask, 0.0});
  return *this;
}

WireFaultPlan& WireFaultPlan::stall_at(std::uint64_t tx_offset,
                                       double seconds) {
  require(seconds >= 0.0, "WireFaultPlan::stall_at: seconds must be >= 0");
  events_.push_back({WireFaultKind::kStall, tx_offset, 0, seconds});
  return *this;
}

WireFaultPlan& WireFaultPlan::short_writes(std::uint64_t from_tx_offset,
                                           std::uint64_t chunk_bytes,
                                           double pause_seconds) {
  require(chunk_bytes > 0, "WireFaultPlan::short_writes: chunk must be >= 1");
  require(pause_seconds >= 0.0,
          "WireFaultPlan::short_writes: pause must be >= 0");
  events_.push_back({WireFaultKind::kShortWrites, from_tx_offset, chunk_bytes,
                     pause_seconds});
  return *this;
}

WireFaultPlan& WireFaultPlan::delay_accept(double seconds) {
  require(seconds >= 0.0, "WireFaultPlan::delay_accept: seconds must be >= 0");
  events_.push_back({WireFaultKind::kDelayAccept, 0, 0, seconds});
  return *this;
}

namespace {

[[noreturn]] void bad_spec(const std::string& token, const std::string& why) {
  throw ConfigError("wire fault spec: bad token '" + token + "': " + why);
}

std::uint64_t spec_u64(const std::string& token, const std::string& text) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(text, &used, 0);  // base 0: 0x ok
    if (used != text.size()) bad_spec(token, "trailing junk in '" + text + "'");
    return v;
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
    bad_spec(token, "not a number: '" + text + "'");
  }
}

/// Splits "kind@at:a:b" into kind, optional @at, and ':'-separated args.
struct SpecToken {
  std::string kind;
  bool has_at = false;
  std::uint64_t at = 0;
  std::vector<std::string> args;
};

SpecToken split_token(const std::string& token) {
  SpecToken out;
  std::string head = token;
  // Peel ':'-separated args off the tail first; '@' binds tighter.
  const std::size_t at_pos = token.find('@');
  std::size_t colon_from = at_pos == std::string::npos ? 0 : at_pos;
  std::size_t colon = token.find(':', colon_from);
  if (colon != std::string::npos) {
    head = token.substr(0, colon);
    std::size_t start = colon + 1;
    while (start <= token.size()) {
      std::size_t end = token.find(':', start);
      if (end == std::string::npos) end = token.size();
      out.args.push_back(token.substr(start, end - start));
      start = end + 1;
    }
  }
  const std::size_t at_in_head = head.find('@');
  if (at_in_head != std::string::npos) {
    out.has_at = true;
    out.at = spec_u64(token, head.substr(at_in_head + 1));
    head = head.substr(0, at_in_head);
  }
  out.kind = head;
  return out;
}

}  // namespace

WireFaultPlan WireFaultPlan::parse(const std::string& spec) {
  WireFaultPlan plan;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(start, end - start);
    start = end + 1;
    if (token.empty()) continue;
    const SpecToken t = split_token(token);

    if (t.kind == "disconnect") {
      if (!t.has_at || !t.args.empty()) bad_spec(token, "want disconnect@N");
      plan.disconnect_at(t.at);
    } else if (t.kind == "truncate") {
      if (!t.has_at || t.args.size() != 1) bad_spec(token, "want truncate@N:D");
      plan.truncate_at(t.at, spec_u64(token, t.args[0]));
    } else if (t.kind == "corrupt") {
      if (!t.has_at || t.args.size() > 1) {
        bad_spec(token, "want corrupt@N[:MASK]");
      }
      const std::uint64_t mask =
          t.args.empty() ? 0xFF : spec_u64(token, t.args[0]);
      if (mask == 0 || mask > 0xFF) bad_spec(token, "mask must be in [1,255]");
      plan.corrupt_at(t.at, static_cast<std::uint8_t>(mask));
    } else if (t.kind == "stall") {
      if (!t.has_at || t.args.size() != 1) bad_spec(token, "want stall@N:MS");
      plan.stall_at(t.at, static_cast<double>(spec_u64(token, t.args[0])) /
                              1000.0);
    } else if (t.kind == "short") {
      if (!t.has_at || t.args.empty() || t.args.size() > 2) {
        bad_spec(token, "want short@N:CHUNK[:MS]");
      }
      const double pause =
          t.args.size() == 2
              ? static_cast<double>(spec_u64(token, t.args[1])) / 1000.0
              : 0.0;
      plan.short_writes(t.at, spec_u64(token, t.args[0]), pause);
    } else if (t.kind == "accept-delay") {
      if (t.has_at || t.args.size() != 1) {
        bad_spec(token, "want accept-delay:MS");
      }
      plan.delay_accept(static_cast<double>(spec_u64(token, t.args[0])) /
                        1000.0);
    } else if (t.kind == "random") {
      if (t.has_at || t.args.size() != 1) bad_spec(token, "want random:SEED");
      const WireFaultPlan r = random(spec_u64(token, t.args[0]));
      for (const WireFaultEvent& e : r.events()) plan.events_.push_back(e);
    } else {
      bad_spec(token, "unknown fault kind");
    }
  }
  return plan;
}

WireFaultPlan WireFaultPlan::random(std::uint64_t seed,
                                    const RandomWireFaultOptions& options) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> offset_dist(
      0, options.max_offset > 0 ? options.max_offset - 1 : 0);
  std::uniform_real_distribution<double> stall_dist(
      0.0, options.max_stall_seconds);
  std::uniform_int_distribution<int> mask_dist(1, 255);

  WireFaultPlan plan;
  for (int i = 0; i < options.corruptions; ++i) {
    plan.corrupt_at(offset_dist(rng), static_cast<std::uint8_t>(mask_dist(rng)));
  }
  for (int i = 0; i < options.stalls; ++i) {
    plan.stall_at(offset_dist(rng), stall_dist(rng));
  }
  for (int i = 0; i < options.truncates; ++i) {
    plan.truncate_at(offset_dist(rng), 1 + offset_dist(rng) % 64);
  }
  for (int i = 0; i < options.disconnects; ++i) {
    plan.disconnect_at(offset_dist(rng));
  }
  return plan;
}

std::string WireFaultPlan::describe() const {
  std::ostringstream out;
  bool first = true;
  for (const WireFaultEvent& e : events_) {
    if (!first) out << ",";
    first = false;
    out << wire_fault_kind_name(e.kind);
    if (e.kind != WireFaultKind::kDelayAccept) out << "@" << e.at;
    switch (e.kind) {
      case WireFaultKind::kTruncate: out << ":" << e.arg; break;
      case WireFaultKind::kCorrupt: out << ":0x" << std::hex << e.arg
                                        << std::dec; break;
      case WireFaultKind::kStall:
      case WireFaultKind::kDelayAccept:
        out << ":" << static_cast<std::uint64_t>(e.seconds * 1000.0);
        break;
      case WireFaultKind::kShortWrites:
        out << ":" << e.arg << ":"
            << static_cast<std::uint64_t>(e.seconds * 1000.0);
        break;
      default: break;
    }
  }
  return first ? "none" : out.str();
}

WireFaultInjector::WireFaultInjector(WireFaultPlan plan)
    : events_(plan.events()),
      pending_(events_.size(), 0),
      fired_(events_.size(), 0) {}

WireFaultInjector::TxAction WireFaultInjector::next_tx(std::size_t remaining) {
  std::lock_guard<std::mutex> lock(mutex_);
  TxAction action;

  // A truncate event still swallowing bytes takes priority.
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (pending_[i] > 0) {
      action.drop = std::min<std::uint64_t>(pending_[i], remaining);
      return action;
    }
  }

  // Fire every armed event whose offset has been reached, in plan order:
  // stalls accumulate, the first hard event (disconnect/truncate/corrupt)
  // decides the slice.
  std::uint64_t next_boundary = UINT64_MAX;
  std::size_t short_chunk = remaining;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const WireFaultEvent& e = events_[i];
    if (e.kind == WireFaultKind::kDelayAccept) continue;
    if (e.kind == WireFaultKind::kShortWrites) {
      if (e.at <= tx_) {
        short_chunk = std::min<std::size_t>(short_chunk, e.arg);
        action.stall_seconds += e.seconds;
      } else {
        next_boundary = std::min(next_boundary, e.at);
      }
      continue;
    }
    if (fired_[i]) continue;
    if (e.at > tx_) {
      next_boundary = std::min(next_boundary, e.at);
      continue;
    }
    // Armed one-shot event at (or before) the current offset.
    switch (e.kind) {
      case WireFaultKind::kStall:
        fired_[i] = 1;
        action.stall_seconds += e.seconds;
        break;
      case WireFaultKind::kDisconnect:
        fired_[i] = 1;
        action.close = true;
        return action;
      case WireFaultKind::kTruncate:
        fired_[i] = 1;
        pending_[i] = e.arg;
        action.drop = std::min<std::uint64_t>(e.arg, remaining);
        return action;
      case WireFaultKind::kCorrupt:
        fired_[i] = 1;
        action.corrupt_first = true;
        action.xor_mask = static_cast<std::uint8_t>(e.arg);
        action.allow = 1;
        return action;
      default:
        break;
    }
  }

  std::size_t allow = remaining;
  if (next_boundary != UINT64_MAX && next_boundary > tx_) {
    allow = std::min<std::size_t>(allow, next_boundary - tx_);
  }
  action.allow = std::max<std::size_t>(1, std::min(allow, short_chunk));
  return action;
}

void WireFaultInjector::commit_tx(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t left = n;
  for (std::size_t i = 0; i < events_.size() && left > 0; ++i) {
    if (pending_[i] > 0) {
      const std::uint64_t take = std::min(pending_[i], left);
      pending_[i] -= take;
      left -= take;
    }
  }
  tx_ += n;
}

double WireFaultInjector::accept_delay() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double seconds = 0.0;
  for (const WireFaultEvent& e : events_) {
    if (e.kind == WireFaultKind::kDelayAccept) seconds += e.seconds;
  }
  return seconds;
}

std::uint64_t WireFaultInjector::fired_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const char f : fired_) n += f != 0;
  return n;
}

std::uint64_t WireFaultInjector::tx_offset() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tx_;
}

std::shared_ptr<WireFaultInjector> make_injector(const WireFaultPlan& plan) {
  if (plan.empty()) return nullptr;
  return std::make_shared<WireFaultInjector>(plan);
}

}  // namespace gnumap::serve

// The gnumapd wire protocol: length-prefixed, CRC-checked binary frames
// over TCP.
//
// Frame layout since protocol version 2 (all integers little-endian):
//
//   u32 payload_length | u8 frame_type | u32 crc32 | payload bytes
//
// The CRC32 (IEEE/zlib polynomial) covers the first five header bytes
// (length + type) and the payload, with the crc field itself excluded, so
// a flipped bit anywhere in the frame — header or body — surfaces as a
// typed kCorrupt ERROR instead of a garbage parse or a silently wrong
// length.  v1 (no CRC field) is no longer spoken: the framing change is
// not wire-compatible, and the HELLO version field now guards payload
// semantics among CRC-framed versions (the server negotiates down to
// min(client, server) and answers HELLO_OK with the agreed version).
//
// A session is a version handshake followed by any number of requests:
//
//   client                          server
//   ------                          ------
//   HELLO {u16 version, name}  ->
//                              <-   HELLO_OK {u16 version, banner}
//   MAP_BEGIN {u8 flags,       ->
//              u32 deadline_ms,
//              [v3: u64 trace_id,
//               u64 parent_span_id]}
//                              <-   MAP_GO | BUSY {u32 retry_ms, msg}
//   READS_CHUNK {fastq bytes}  ->   (repeated; server pulls with
//   ...                              backpressure — frames are only read
//   MAP_END                          as the pipeline consumes them)
//                              <-   RESULT_SAM {sam bytes}   (if requested)
//                              <-   RESULT_TSV {tsv bytes}   (repeated)
//                              <-   MAP_DONE {key=value stats lines}
//   STATS                      ->
//                              <-   STATS_OK {key=value lines}
//   HEALTH                     ->   (also allowed before HELLO, so fleet
//                              <-   HEALTH_OK {key=value lines} probes
//                                   need no handshake)
//   SHUTDOWN                   ->
//                              <-   SHUTDOWN_OK   (server then drains+exits)
//
// MAP_BEGIN's deadline_ms (0 = none) is the client's overall request
// deadline; the server propagates it into the pipeline and abandons work
// nobody is waiting for (typed kTimeout, deadline-abandoned counter).
//
// Since protocol v3 MAP_BEGIN optionally carries two trailing u64 fields:
// a client-generated trace id (0 = request not traced) and the client's
// parent span id.  The server tags its serve_request spans and request log
// lines with the trace id and echoes both ids — plus a per-stage timing
// summary — in MAP_DONE, so scripts/merge_traces.py can splice the client
// and server trace files into one timeline.  The fields ride the existing
// HELLO version negotiation: a v2 peer sends/accepts the 5-byte payload
// and everything else is unchanged, so v2 interop needs no special cases
// beyond decode_map_begin's length tolerance.
//
// Since protocol v4 MAP_BEGIN additionally carries a genome id (u16 length
// + bytes) selecting one of the daemon's resident genomes; an empty id —
// and every pre-v4 payload — means the daemon's default genome.  Unknown
// ids are answered with a kProtocol ERROR; a genome the registry evicted
// to stay under its memory budget is answered with a kEvicted ERROR whose
// message carries "retry_after_ms=N" (the connection stays open, and the
// client retries MAP_BEGIN like a BUSY since no reads were uploaded yet).
// v4 also adds the fleet shard frames: a router MAP_BEGINs with the
// kFlagShardPartials flag, streams SHARD_READS frames (each a serialized
// read batch), and receives one RESULT_PARTIAL per batch carrying the
// shard's pre-epilogue candidate scores for merging (fleet/partials.hpp).
//
// Any violation — unknown type, oversized frame, CRC mismatch, FASTQ parse
// failure, timeout — is answered with ERROR {u16 code, msg} and the
// connection is closed; the server itself always survives.  RESULT_SAM
// frames can arrive while the client is still sending READS_CHUNK frames
// (the pipeline drains as it maps), so clients must read and write
// concurrently.
//
// Byte-identity contract: the RESULT_TSV payloads concatenated equal the
// offline CLI's --out file for the same reads and pipeline config, and the
// RESULT_SAM payloads concatenated equal its --sam file.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "gnumap/serve/socket.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap::serve {

/// v4: MAP_BEGIN genome id (multi-genome registry) + fleet shard frames
/// (SHARD_READS / RESULT_PARTIAL).  (v3 added MAP_BEGIN trace ids + the
/// MAP_DONE timing summary; v2 introduced CRC32 frame integrity, the
/// MAP_BEGIN deadline, and HEALTH probes.)
inline constexpr std::uint16_t kProtocolVersion = 4;
/// Oldest version this build still speaks (v1 framing had no CRC field
/// and cannot be parsed by a CRC-framed endpoint).  v2 peers negotiate
/// down via HELLO and simply omit the v3 trace fields.
inline constexpr std::uint16_t kMinProtocolVersion = 2;

/// Frame header bytes on the wire: u32 length + u8 type + u32 crc32.
inline constexpr std::size_t kFrameHeaderBytes = 9;

/// Hard ceiling on a frame payload; larger frames are a protocol error.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 8u << 20;

/// Preferred payload size when chunking bulk data (FASTQ, SAM, TSV).
inline constexpr std::size_t kChunkBytes = 64u << 10;

enum class FrameType : std::uint8_t {
  kHello = 0x01,
  kHelloOk = 0x02,
  kMapBegin = 0x10,   ///< payload: u8 flags + u32 client deadline_ms
                      ///< (+ u64 trace_id + u64 parent_span_id since v3;
                      ///< + u16 genome id length + bytes since v4)
  kReadsChunk = 0x11, ///< payload: raw FASTQ text
  kMapEnd = 0x12,
  kMapGo = 0x13,      ///< admission granted; send READS_CHUNK frames
  kShardReads = 0x14, ///< payload: serialized read batch (fleet router ->
                      ///< shard; requires kFlagShardPartials, v4)
  kResultTsv = 0x20,  ///< payload: SNP TSV bytes (chunked)
  kResultSam = 0x21,  ///< payload: SAM bytes (chunked)
  kMapDone = 0x22,    ///< payload: key=value lines (reads_total, ...)
  kResultPartial = 0x24, ///< payload: serialized per-read candidate
                         ///< partials for one SHARD_READS batch (v4)
  kStats = 0x30,
  kStatsOk = 0x31,    ///< payload: key=value lines
  kHealth = 0x32,     ///< readiness probe; allowed even before HELLO
  kHealthOk = 0x33,   ///< payload: key=value lines (ready, draining, ...)
  kShutdown = 0x40,
  kShutdownOk = 0x41,
  kBusy = 0x50,       ///< payload: u32 retry_after_ms + message
  kError = 0x51,      ///< payload: u16 WireErrorCode + message
};

/// MAP_BEGIN flag bits.
inline constexpr std::uint8_t kFlagWantSam = 0x01;
inline constexpr std::uint8_t kFlagPhred64 = 0x02;
/// Shard-partial mode (v4): the peer is a fleet router; reads arrive as
/// SHARD_READS frames and results leave as RESULT_PARTIAL frames instead
/// of TSV/SAM.  Mutually exclusive with kFlagWantSam.
inline constexpr std::uint8_t kFlagShardPartials = 0x04;

enum class WireErrorCode : std::uint16_t {
  kBadFrame = 1,      ///< malformed frame or unknown frame type
  kBadVersion = 2,    ///< HELLO version mismatch
  kProtocol = 3,      ///< well-formed frame at the wrong point
  kTooLarge = 4,      ///< frame exceeds the negotiated maximum
  kParse = 5,         ///< FASTQ payload failed to parse
  kTimeout = 6,       ///< peer idle past the per-request deadline
  kShuttingDown = 7,  ///< server is draining; retry elsewhere/later
  kInternal = 8,      ///< unexpected server-side failure
  kClosed = 9,        ///< peer closed mid-frame / mid-request
  kCorrupt = 10,      ///< frame CRC mismatch: bytes damaged in flight
  kEvicted = 11,      ///< server evicted the connection (watchdog/budget)
};

const char* wire_error_code_name(WireErrorCode code);

/// Transport- or protocol-level failure; `code` is what goes on the wire
/// when the failure is reportable to the peer.
class WireError : public Error {
 public:
  WireError(WireErrorCode code, const std::string& what)
      : Error(what), code_(code) {}
  WireErrorCode code() const { return code_; }

 private:
  WireErrorCode code_;
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// CRC32 (IEEE 802.3 / zlib polynomial, bit-reflected).  `seed` chains
/// incremental computation: crc32(b, crc32(a)) == crc32(a+b).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Writes one frame.  Throws WireError on timeout or a closed peer.
void write_frame(Socket& sock, FrameType type, std::string_view payload,
                 int timeout_ms, const std::atomic<bool>* cancel = nullptr);

/// Reads one frame and verifies its CRC.  Returns nullopt on orderly peer
/// close at a frame boundary; throws WireError for truncation, oversized
/// payloads (kTooLarge), CRC mismatches (kCorrupt), timeouts, or
/// cancellation.
std::optional<Frame> read_frame(Socket& sock, std::uint32_t max_payload,
                                int timeout_ms,
                                const std::atomic<bool>* cancel = nullptr);

// --- payload pack/unpack helpers -----------------------------------------

void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
/// Read little-endian integers at `offset`; throw WireError(kBadFrame) on
/// short payloads.
std::uint16_t get_u16(std::string_view payload, std::size_t offset);
std::uint32_t get_u32(std::string_view payload, std::size_t offset);
std::uint64_t get_u64(std::string_view payload, std::size_t offset);

/// 16-digit lowercase hex rendering of a trace/span id — the one form used
/// in log prefixes, MAP_DONE summaries, and trace-span args, so the ids
/// can be grepped across client and server artifacts byte-exactly.
std::string trace_id_hex(std::uint64_t id);

/// HELLO / HELLO_OK: u16 version + free-form text.
std::string encode_hello(std::uint16_t version, std::string_view text);
std::pair<std::uint16_t, std::string> decode_hello(std::string_view payload);

/// Decoded MAP_BEGIN payload.  The trace fields are zero when the peer
/// sent a pre-v3 payload (or chose not to trace the request).
struct MapBeginInfo {
  std::uint8_t flags = 0;
  std::uint32_t deadline_ms = 0;    ///< 0 = no client deadline
  std::uint64_t trace_id = 0;       ///< 0 = request not traced
  std::uint64_t parent_span_id = 0; ///< client's enclosing span (v3)
  std::string genome_id;            ///< v4; empty = the default genome
};

/// MAP_BEGIN, v2 form: u8 flags + u32 deadline_ms (0 = no client deadline).
std::string encode_map_begin(std::uint8_t flags, std::uint32_t deadline_ms);
/// MAP_BEGIN, versioned form: encodes the fields the negotiated `version`
/// carries — flags+deadline always, the trace ids at v3+, the genome id
/// (u16 length + bytes) at v4+.  Throws WireError(kBadVersion) if
/// `info.genome_id` is non-empty but `version` < 4: silently dropping the
/// id would map against the wrong genome.
std::string encode_map_begin(const MapBeginInfo& info,
                             std::uint16_t version = kProtocolVersion);
/// Accepts every historical form: 1-byte flags-only (hand-rolled peers),
/// the 5-byte v2 payload, the 21-byte v3 payload, and the 23+-byte v4
/// payload; absent fields decode to zero / empty.
MapBeginInfo decode_map_begin(std::string_view payload);

/// BUSY: u32 retry_after_ms + message.
std::string encode_busy(std::uint32_t retry_after_ms, std::string_view msg);
std::pair<std::uint32_t, std::string> decode_busy(std::string_view payload);

/// ERROR: u16 code + message.
std::string encode_error(WireErrorCode code, std::string_view msg);
std::pair<WireErrorCode, std::string> decode_error(std::string_view payload);

}  // namespace gnumap::serve

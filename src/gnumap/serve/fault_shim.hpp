// Deterministic wire-level fault injection for the serving stack.
//
// This is the socket-layer twin of the mpsim chaos model (gnumap/fault):
// a seeded, scriptable plan of one-shot events, consumed by a shared
// thread-safe state object, so the same plan always damages the same
// bytes.  Faults are injected on the *sending* side of whichever endpoint
// owns the injector — tests attach one to a client to batter the server,
// and `gnumapd --fault-plan` (or GNUMAP_WIRE_FAULT_PLAN) attaches one to
// every accepted connection for live fleet drills.
//
// Event kinds, all triggered by the cumulative transmitted-byte offset of
// the connection (so a plan is meaningful independent of frame sizes):
//
//  * disconnect@N        — deliver exactly N bytes, then hard-close: a
//                          mid-frame disconnect when N lands inside a frame;
//  * truncate@N:D        — silently swallow D bytes at offset N (the peer
//                          sees a hole: CRC mismatch or a recv timeout);
//  * corrupt@N[:MASK]    — XOR the byte at offset N with MASK (default
//                          0xFF): CRC framing must catch it;
//  * stall@N:MS          — sleep MS milliseconds before sending the byte at
//                          offset N (slow-loris when repeated);
//  * short@N:CHUNK[:MS]  — from offset N on, fragment every send into
//                          CHUNK-byte writes with an MS-millisecond pause
//                          between them (persistent, not one-shot);
//  * accept-delay:MS     — the listener sleeps MS before completing every
//                          accept (connection storms meet a slow server).
//
// Plans parse from a comma-separated spec string (`parse`), build
// programmatically, or derive deterministically from a seed (`random`).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gnumap::serve {

enum class WireFaultKind : std::uint8_t {
  kDisconnect,
  kTruncate,
  kCorrupt,
  kStall,
  kShortWrites,
  kDelayAccept,
};

const char* wire_fault_kind_name(WireFaultKind kind);

struct WireFaultEvent {
  WireFaultKind kind = WireFaultKind::kDisconnect;
  std::uint64_t at = 0;    ///< cumulative tx byte offset that arms the event
  std::uint64_t arg = 0;   ///< truncate: bytes dropped; corrupt: XOR mask;
                           ///< short: chunk bytes
  double seconds = 0.0;    ///< stall / accept-delay / short inter-chunk pause
};

/// Options for WireFaultPlan::random.
struct RandomWireFaultOptions {
  int disconnects = 0;
  int truncates = 0;
  int corruptions = 1;
  int stalls = 1;
  std::uint64_t max_offset = 48u << 10;  ///< offsets drawn from [0, max)
  double max_stall_seconds = 0.2;
};

/// An ordered list of wire fault events; immutable once handed to an
/// injector.  Same builder/seeded-plan shape as gnumap::FaultPlan.
class WireFaultPlan {
 public:
  WireFaultPlan() = default;

  WireFaultPlan& disconnect_at(std::uint64_t tx_offset);
  WireFaultPlan& truncate_at(std::uint64_t tx_offset, std::uint64_t drop);
  WireFaultPlan& corrupt_at(std::uint64_t tx_offset,
                            std::uint8_t xor_mask = 0xFF);
  WireFaultPlan& stall_at(std::uint64_t tx_offset, double seconds);
  WireFaultPlan& short_writes(std::uint64_t from_tx_offset,
                              std::uint64_t chunk_bytes,
                              double pause_seconds = 0.0);
  WireFaultPlan& delay_accept(double seconds);

  /// Parses a comma-separated spec, e.g.
  /// "corrupt@4096,stall@0:250,disconnect@65536,accept-delay:100".
  /// Throws ConfigError on a malformed spec.
  static WireFaultPlan parse(const std::string& spec);

  /// Deterministic chaos plan: same (seed, options) => same events.
  static WireFaultPlan random(std::uint64_t seed,
                              const RandomWireFaultOptions& options = {});

  /// Human-readable one-line summary for logs.
  std::string describe() const;

  const std::vector<WireFaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<WireFaultEvent> events_;
};

/// Runtime state of a plan for one connection: tracks the cumulative tx
/// offset and consumes one-shot events.  Thread-safe (a client's sender
/// thread and request thread share one socket).  Sockets consult it from
/// send_all; listeners from accept.
class WireFaultInjector {
 public:
  explicit WireFaultInjector(WireFaultPlan plan);

  /// What send_all should do with the next `remaining` bytes.  Exactly one
  /// of the fields applies, checked in order: close, drop, then send
  /// `allow` bytes (after `stall_seconds`, XORing the first byte with
  /// `xor_mask` when `corrupt_first` is set).
  struct TxAction {
    bool close = false;
    std::uint64_t drop = 0;
    std::size_t allow = 0;
    double stall_seconds = 0.0;
    bool corrupt_first = false;
    std::uint8_t xor_mask = 0;
  };

  /// Plans the next slice of an n-byte send at the current tx offset.
  TxAction next_tx(std::size_t remaining);

  /// Advances the tx offset after `n` bytes were sent (or dropped).
  void commit_tx(std::size_t n);

  /// Seconds the listener should sleep before completing an accept.
  double accept_delay() const;

  /// One-shot events consumed so far (persistent kinds never count).
  std::uint64_t fired_count() const;

  std::uint64_t tx_offset() const;

 private:
  mutable std::mutex mutex_;
  std::vector<WireFaultEvent> events_;
  std::vector<std::uint64_t> pending_;  ///< truncate: bytes left to drop
  std::vector<char> fired_;
  std::uint64_t tx_ = 0;
};

/// Convenience: nullptr when the plan is empty, else a fresh injector.
std::shared_ptr<WireFaultInjector> make_injector(const WireFaultPlan& plan);

}  // namespace gnumap::serve

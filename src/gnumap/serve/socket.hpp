// Minimal POSIX TCP wrappers for the mapping service: an RAII connected
// socket with deadline-bounded send/recv and a listener with cancellable
// accept.  Loopback-only by default; no external dependencies.
//
// Timeout policy: every blocking operation takes an explicit timeout in
// milliseconds (<= 0 means wait forever) and polls in short slices so an
// optional cancel flag — the server's shutdown signal — is honoured within
// ~100 ms even on an idle connection.  Timeouts and peer resets surface as
// WireError (wire.hpp) so the connection handler can map them to typed
// protocol errors.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace gnumap::serve {

class WireFaultInjector;

class Socket {
 public:
  Socket() = default;
  /// Takes ownership of a connected fd.
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends all `n` bytes or throws WireError (timeout, closed peer).
  void send_all(const void* data, std::size_t n, int timeout_ms,
                const std::atomic<bool>* cancel = nullptr);

  /// Receives up to `n` bytes.  Returns 0 on orderly peer shutdown.
  /// Throws WireError on timeout or cancellation.
  std::size_t recv_some(void* data, std::size_t n, int timeout_ms,
                        const std::atomic<bool>* cancel = nullptr);

  /// Receives exactly `n` bytes; throws WireError if the peer closes or
  /// the deadline passes first.
  void recv_exact(void* data, std::size_t n, int timeout_ms,
                  const std::atomic<bool>* cancel = nullptr);

  /// Half-closes the write side (signals end of requests to the peer).
  void shutdown_write();

  void close();

  /// Attaches a deterministic fault injector (fault_shim.hpp): subsequent
  /// send_all calls route through it and may stall, fragment, corrupt,
  /// drop, or cut the connection as the plan dictates.  nullptr detaches.
  void set_fault_injector(std::shared_ptr<WireFaultInjector> injector) {
    fault_ = std::move(injector);
  }
  const std::shared_ptr<WireFaultInjector>& fault_injector() const {
    return fault_;
  }

  /// "ip:port" of the connected peer ("?" when unavailable) — stamped into
  /// typed errors and logs so chaos-run failures are attributable.
  std::string peer_address() const;

 private:
  /// The untampered send loop (poll + EAGAIN under the deadline).
  void send_plain(const void* data, std::size_t n, int timeout_ms,
                  const std::atomic<bool>* cancel);

  int fd_ = -1;
  std::shared_ptr<WireFaultInjector> fault_;
};

/// Connects to `host`:`port`; throws WireError on failure or timeout.
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms);

class Listener {
 public:
  /// Binds and listens.  `port` 0 picks an ephemeral port (see port()).
  /// `bind_any` false binds 127.0.0.1 only.  Throws WireError on failure.
  explicit Listener(std::uint16_t port, bool bind_any = false,
                    int backlog = 16);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The bound port (the chosen one when constructed with port 0).
  std::uint16_t port() const { return port_; }

  /// Waits up to `timeout_ms` for a connection.  Returns nullopt on
  /// timeout or cancellation — never throws for those, so an accept loop
  /// can simply re-check its own state and continue.
  std::optional<Socket> accept(int timeout_ms,
                               const std::atomic<bool>* cancel = nullptr);

  /// Injector consulted for accept-delay faults (slow-accept drills).
  void set_fault_injector(std::shared_ptr<WireFaultInjector> injector) {
    fault_ = std::move(injector);
  }

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::shared_ptr<WireFaultInjector> fault_;
};

}  // namespace gnumap::serve

#include "gnumap/serve/wire.hpp"

#include <array>
#include <cstdio>
#include <cstring>

namespace gnumap::serve {

const char* wire_error_code_name(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kBadFrame: return "bad_frame";
    case WireErrorCode::kBadVersion: return "bad_version";
    case WireErrorCode::kProtocol: return "protocol";
    case WireErrorCode::kTooLarge: return "too_large";
    case WireErrorCode::kParse: return "parse";
    case WireErrorCode::kTimeout: return "timeout";
    case WireErrorCode::kShuttingDown: return "shutting_down";
    case WireErrorCode::kInternal: return "internal";
    case WireErrorCode::kClosed: return "closed";
    case WireErrorCode::kCorrupt: return "corrupt";
    case WireErrorCode::kEvicted: return "evicted";
  }
  return "unknown";
}

namespace {

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

std::uint16_t get_u16(std::string_view payload, std::size_t offset) {
  if (payload.size() < offset + 2) {
    throw WireError(WireErrorCode::kBadFrame, "payload too short for u16");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  return static_cast<std::uint16_t>(p[offset] | (p[offset + 1] << 8));
}

std::uint32_t get_u32(std::string_view payload, std::size_t offset) {
  if (payload.size() < offset + 4) {
    throw WireError(WireErrorCode::kBadFrame, "payload too short for u32");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  return static_cast<std::uint32_t>(p[offset]) |
         (static_cast<std::uint32_t>(p[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(p[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(p[offset + 3]) << 24);
}

std::uint64_t get_u64(std::string_view payload, std::size_t offset) {
  if (payload.size() < offset + 8) {
    throw WireError(WireErrorCode::kBadFrame, "payload too short for u64");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[offset + static_cast<std::size_t>(i)];
  }
  return v;
}

std::string trace_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

void write_frame(Socket& sock, FrameType type, std::string_view payload,
                 int timeout_ms, const std::atomic<bool>* cancel) {
  // One contiguous buffer per frame: header + payload in a single send so
  // small frames never straddle two TCP pushes.  The CRC covers the
  // length+type prefix and the payload (the crc field itself is excluded).
  std::string buf;
  buf.reserve(kFrameHeaderBytes + payload.size());
  put_u32(buf, static_cast<std::uint32_t>(payload.size()));
  buf.push_back(static_cast<char>(type));
  const std::uint32_t crc =
      crc32(payload.data(), payload.size(), crc32(buf.data(), 5));
  put_u32(buf, crc);
  buf.append(payload);
  sock.send_all(buf.data(), buf.size(), timeout_ms, cancel);
}

std::optional<Frame> read_frame(Socket& sock, std::uint32_t max_payload,
                                int timeout_ms,
                                const std::atomic<bool>* cancel) {
  unsigned char header[kFrameHeaderBytes];
  // The first byte distinguishes "peer hung up between frames" (fine)
  // from "peer hung up mid-frame" (an error recv_exact raises).
  const std::size_t got = sock.recv_some(header, 1, timeout_ms, cancel);
  if (got == 0) return std::nullopt;
  sock.recv_exact(header + 1, sizeof header - 1, timeout_ms, cancel);

  const std::uint32_t length = static_cast<std::uint32_t>(header[0]) |
                               (static_cast<std::uint32_t>(header[1]) << 8) |
                               (static_cast<std::uint32_t>(header[2]) << 16) |
                               (static_cast<std::uint32_t>(header[3]) << 24);
  if (length > max_payload) {
    throw WireError(WireErrorCode::kTooLarge,
                    "frame payload of " + std::to_string(length) +
                        " bytes exceeds the " + std::to_string(max_payload) +
                        "-byte limit");
  }
  const std::uint32_t wire_crc =
      static_cast<std::uint32_t>(header[5]) |
      (static_cast<std::uint32_t>(header[6]) << 8) |
      (static_cast<std::uint32_t>(header[7]) << 16) |
      (static_cast<std::uint32_t>(header[8]) << 24);
  Frame frame;
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.resize(length);
  if (length > 0) {
    sock.recv_exact(frame.payload.data(), length, timeout_ms, cancel);
  }
  const std::uint32_t computed =
      crc32(frame.payload.data(), frame.payload.size(), crc32(header, 5));
  if (computed != wire_crc) {
    throw WireError(WireErrorCode::kCorrupt,
                    "frame CRC mismatch (type " +
                        std::to_string(static_cast<int>(frame.type)) + ", " +
                        std::to_string(length) + " payload bytes): bytes "
                        "damaged in flight");
  }
  return frame;
}

std::string encode_hello(std::uint16_t version, std::string_view text) {
  std::string payload;
  put_u16(payload, version);
  payload.append(text);
  return payload;
}

std::pair<std::uint16_t, std::string> decode_hello(std::string_view payload) {
  const std::uint16_t version = get_u16(payload, 0);
  return {version, std::string(payload.substr(2))};
}

std::string encode_map_begin(std::uint8_t flags, std::uint32_t deadline_ms) {
  std::string payload(1, static_cast<char>(flags));
  put_u32(payload, deadline_ms);
  return payload;
}

std::string encode_map_begin(const MapBeginInfo& info, std::uint16_t version) {
  if (!info.genome_id.empty() && version < 4) {
    throw WireError(WireErrorCode::kBadVersion,
                    "genome id \"" + info.genome_id +
                        "\" requires protocol v4, but the peer negotiated v" +
                        std::to_string(version) +
                        ": refusing to map against its default genome");
  }
  std::string payload = encode_map_begin(info.flags, info.deadline_ms);
  if (version >= 3) {
    put_u64(payload, info.trace_id);
    put_u64(payload, info.parent_span_id);
  }
  if (version >= 4) {
    if (info.genome_id.size() > 0xFFFF) {
      throw WireError(WireErrorCode::kBadFrame, "genome id exceeds 65535 bytes");
    }
    put_u16(payload, static_cast<std::uint16_t>(info.genome_id.size()));
    payload.append(info.genome_id);
  }
  return payload;
}

MapBeginInfo decode_map_begin(std::string_view payload) {
  if (payload.empty()) {
    throw WireError(WireErrorCode::kBadFrame,
                    "MAP_BEGIN payload must carry a flags byte");
  }
  MapBeginInfo info;
  info.flags = static_cast<std::uint8_t>(payload[0]);
  if (payload.size() >= 5) info.deadline_ms = get_u32(payload, 1);
  if (payload.size() >= 21) {
    info.trace_id = get_u64(payload, 5);
    info.parent_span_id = get_u64(payload, 13);
  }
  if (payload.size() > 21) {
    // v4 trailer: u16 id length + bytes (get_u16 rejects a lone 22nd byte).
    const std::size_t id_len = get_u16(payload, 21);
    if (23 + id_len != payload.size()) {
      throw WireError(WireErrorCode::kBadFrame,
                      "MAP_BEGIN genome id length " + std::to_string(id_len) +
                          " does not match the remaining " +
                          std::to_string(payload.size() - 23) + " bytes");
    }
    info.genome_id.assign(payload.substr(23, id_len));
  }
  return info;
}

std::string encode_busy(std::uint32_t retry_after_ms, std::string_view msg) {
  std::string payload;
  put_u32(payload, retry_after_ms);
  payload.append(msg);
  return payload;
}

std::pair<std::uint32_t, std::string> decode_busy(std::string_view payload) {
  const std::uint32_t retry = get_u32(payload, 0);
  return {retry, std::string(payload.substr(4))};
}

std::string encode_error(WireErrorCode code, std::string_view msg) {
  std::string payload;
  put_u16(payload, static_cast<std::uint16_t>(code));
  payload.append(msg);
  return payload;
}

std::pair<WireErrorCode, std::string> decode_error(std::string_view payload) {
  const auto code = static_cast<WireErrorCode>(get_u16(payload, 0));
  return {code, std::string(payload.substr(2))};
}

}  // namespace gnumap::serve

#include "gnumap/serve/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "gnumap/serve/fault_shim.hpp"
#include "gnumap/serve/wire.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap::serve {

namespace {

/// Poll slice: the longest a blocked operation goes without re-checking
/// its cancel flag.
constexpr int kPollSliceMs = 100;

[[noreturn]] void throw_errno(const std::string& what) {
  throw WireError(WireErrorCode::kInternal,
                  what + ": " + std::strerror(errno));
}

/// Waits for `events` on `fd` within the remaining deadline.  Returns true
/// when ready; false on timeout.  Throws WireError(kShuttingDown) when the
/// cancel flag trips.
bool wait_ready(int fd, short events, int timeout_ms,
                const std::atomic<bool>* cancel) {
  Timer elapsed;
  for (;;) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw WireError(WireErrorCode::kShuttingDown, "operation cancelled");
    }
    int slice = kPollSliceMs;
    if (timeout_ms > 0) {
      const int remaining =
          timeout_ms - static_cast<int>(elapsed.seconds() * 1000.0);
      if (remaining <= 0) return false;
      slice = std::min(slice, remaining);
    }
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, slice);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (rc > 0) return true;
  }
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), fault_(std::move(other.fault_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    fault_ = std::move(other.fault_);
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

std::string Socket::peer_address() const {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (fd_ < 0 ||
      ::getpeername(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET) {
    return "?";
  }
  char ip[INET_ADDRSTRLEN] = {0};
  if (::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip) == nullptr) {
    return "?";
  }
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

void Socket::send_all(const void* data, std::size_t n, int timeout_ms,
                      const std::atomic<bool>* cancel) {
  if (!fault_) {
    send_plain(data, n, timeout_ms, cancel);
    return;
  }
  // Fault-injected path: the shim decides, slice by slice, whether bytes
  // pass, stall, fragment, flip, vanish (truncation — the peer sees a
  // hole), or whether the connection dies mid-frame.
  const char* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < n) {
    const WireFaultInjector::TxAction action = fault_->next_tx(n - done);
    if (action.stall_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(action.stall_seconds));
    }
    if (action.close) {
      const std::uint64_t at = fault_->tx_offset();
      // shutdown, not close(): a reader thread may be blocked in poll on
      // this fd, and close() would free the descriptor number for reuse by
      // a concurrent connection.  Shutting down both directions wakes the
      // reader with an orderly EOF while ownership stays with the Socket.
      if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
      throw WireError(WireErrorCode::kClosed,
                      "fault injection: disconnected after " +
                          std::to_string(at) + " tx bytes");
    }
    if (action.drop > 0) {
      const std::size_t k =
          static_cast<std::size_t>(std::min<std::uint64_t>(action.drop,
                                                           n - done));
      fault_->commit_tx(k);  // counted as sent, never delivered
      done += k;
      continue;
    }
    std::size_t k = std::min(action.allow, n - done);
    if (k == 0) k = n - done;
    if (action.corrupt_first) {
      const char flipped =
          static_cast<char>(p[done] ^ static_cast<char>(action.xor_mask));
      send_plain(&flipped, 1, timeout_ms, cancel);
      fault_->commit_tx(1);
      done += 1;
      continue;
    }
    send_plain(p + done, k, timeout_ms, cancel);
    fault_->commit_tx(k);
    done += k;
  }
}

void Socket::send_plain(const void* data, std::size_t n, int timeout_ms,
                        const std::atomic<bool>* cancel) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    if (!wait_ready(fd_, POLLOUT, timeout_ms, cancel)) {
      throw WireError(WireErrorCode::kTimeout, "send timed out");
    }
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        throw WireError(WireErrorCode::kClosed, "peer closed connection");
      }
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(rc);
  }
}

std::size_t Socket::recv_some(void* data, std::size_t n, int timeout_ms,
                              const std::atomic<bool>* cancel) {
  for (;;) {
    if (!wait_ready(fd_, POLLIN, timeout_ms, cancel)) {
      throw WireError(WireErrorCode::kTimeout, "recv timed out");
    }
    const ssize_t rc = ::recv(fd_, data, n, 0);
    if (rc < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == ECONNRESET) {
        throw WireError(WireErrorCode::kClosed, "peer reset connection");
      }
      throw_errno("recv");
    }
    return static_cast<std::size_t>(rc);
  }
}

void Socket::recv_exact(void* data, std::size_t n, int timeout_ms,
                        const std::atomic<bool>* cancel) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const std::size_t rc = recv_some(p + got, n - got, timeout_ms, cancel);
    if (rc == 0) {
      throw WireError(WireErrorCode::kClosed,
                      "peer closed mid-message (" + std::to_string(got) +
                          "/" + std::to_string(n) + " bytes)");
    }
    got += rc;
  }
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw WireError(WireErrorCode::kInternal,
                    "connect: not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);

  // Non-blocking from the start and forever after: poll+EAGAIN loops in
  // send_all/recv_some do the waiting, so io_timeout_ms and cancel flags
  // actually bound every operation.  A blocking ::send of a large frame
  // could otherwise stall indefinitely once the peer's window fills,
  // even after POLLOUT reported some space.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    throw WireError(WireErrorCode::kClosed,
                    "connect to " + host + ":" + std::to_string(port) +
                        " failed: " + std::strerror(errno));
  }
  if (rc != 0) {
    if (!wait_ready(fd, POLLOUT, timeout_ms, nullptr)) {
      throw WireError(WireErrorCode::kTimeout,
                      "connect to " + host + ":" + std::to_string(port) +
                          " timed out");
    }
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      throw WireError(WireErrorCode::kClosed,
                      "connect to " + host + ":" + std::to_string(port) +
                          " failed: " + std::strerror(err));
    }
  }

  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

Listener::Listener(std::uint16_t port, bool bind_any, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string what =
        "bind to port " + std::to_string(port) + ": " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw WireError(WireErrorCode::kInternal, what);
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, backlog) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("listen");
  }
  // Nonblocking listener: a connection that resets between poll and accept
  // must yield EAGAIN, not block the accept loop.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Socket> Listener::accept(int timeout_ms,
                                       const std::atomic<bool>* cancel) {
  try {
    if (!wait_ready(fd_, POLLIN, timeout_ms, cancel)) return std::nullopt;
  } catch (const WireError&) {
    return std::nullopt;  // cancelled: the accept loop re-checks its state
  }
  if (fault_) {
    // Delayed-accept drill: the connection sits in the backlog while a
    // "slow" server gets around to it.
    const double delay = fault_->accept_delay();
    if (delay > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  // Accepted fds don't inherit O_NONBLOCK from the listener; set it so the
  // poll+EAGAIN loops in send_all/recv_some bound every operation (a
  // blocking ::send could otherwise pin a handler thread forever when a
  // client stops reading, hanging the graceful drain).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

}  // namespace gnumap::serve

// Embedded admin HTTP endpoint for gnumapd: live fleet introspection over
// plain HTTP/1.0, with zero dependencies beyond the serve layer's own
// socket wrappers.  Off by default; ServeOptions::admin_port opens it on a
// separate listener (loopback unless bind_any), so the mapping wire port
// carries only framed protocol traffic.
//
// Routes (docs/OBSERVABILITY.md "Live introspection"):
//   /metrics   Prometheus text exposition of the live obs registry.
//   /healthz   The wire HEALTH payload verbatim; HTTP 200 when ready=1,
//              503 otherwise, so load balancers need no body parsing.
//   /statusz   JSON: build identity, genome/session facts, admission
//              occupancy, rolled-up counters, and the connection table.
//   /tracez    Without a query: JSON "slowest recent requests" table from
//              the per-request digest ring.  With ?duration_ms=N (clamped
//              to 1..60000): enables tracing for N ms, then streams the
//              captured Chrome-trace JSON.  When tracing was already on,
//              the window is observed without toggling or clearing it.
//   /          Plain-text index of the routes above.
//
// Deliberately small: one accept/serve thread handles requests
// sequentially (an admin surface sees humans and scrapers, not fleets), so
// a /tracez capture blocks other admin requests for its window — never the
// mapping data path.  Requests are read with a bounded buffer and a short
// deadline; anything that is not a well-formed GET gets a 4xx and a closed
// connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "gnumap/serve/socket.hpp"

namespace gnumap::serve {

class MappingServer;

class AdminHttpServer {
 public:
  /// Binds the admin listener (port 0 picks an ephemeral port); throws
  /// WireError on bind failure.  `server` must outlive this object.
  AdminHttpServer(MappingServer& server, int port, bool bind_any);
  ~AdminHttpServer();

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  /// The bound port (useful with port 0).
  int port() const;

  /// Starts the serve thread; idempotent.
  void start();

  /// Stops accepting, joins the serve thread, closes the listener.  Safe
  /// to call without start() and more than once.
  void stop();

 private:
  void serve_loop();
  void handle(Socket sock);

  MappingServer& server_;
  std::unique_ptr<Listener> listener_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
};

}  // namespace gnumap::serve

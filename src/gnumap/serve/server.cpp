#include "gnumap/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <istream>
#include <sstream>
#include <thread>
#include <utility>

#include "gnumap/fleet/partials.hpp"
#include "gnumap/io/chunk_stream.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/io/read_stream.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/obs/build_info.hpp"
#include "gnumap/obs/json_util.hpp"
#include "gnumap/obs/metrics.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/serve/admin_http.hpp"
#include "gnumap/util/log.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap::serve {

namespace {

/// Serve-side metric handles, resolved once (registry lookups are
/// mutex-protected; updates are plain atomics).
struct ServeMetrics {
  obs::Histogram& request_seconds;
  obs::Gauge& queue_depth;
  obs::Gauge& admitted_peak;
  obs::Counter& requests_total;
  obs::Counter& rejected_total;
  obs::Counter& errors_total;
  obs::Counter& bytes_rx;
  obs::Counter& bytes_tx;
  obs::Counter& connections_total;
  obs::Gauge& active_connections;
  obs::Counter& evictions_total;
  obs::Counter& corrupt_frames_total;
  obs::Counter& deadline_abandoned_total;
};

ServeMetrics& serve_metrics() {
  static ServeMetrics metrics{
      obs::registry().histogram(
          "gnumap_serve_request_seconds", obs::default_time_buckets(),
          "Wall-clock latency of MAP requests (MAP_BEGIN to MAP_DONE)"),
      obs::registry().gauge(
          "gnumap_serve_queue_depth",
          "Reads currently admitted into the serving window"),
      obs::registry().gauge(
          "gnumap_serve_admitted_reads_peak",
          "High-water mark of reads admitted into the serving window"),
      obs::registry().counter("gnumap_serve_requests_total",
                              "MAP requests accepted for processing"),
      obs::registry().counter(
          "gnumap_serve_rejected_total",
          "MAP requests refused with BUSY by admission control"),
      obs::registry().counter(
          "gnumap_serve_errors_total",
          "Requests or connections terminated with a typed ERROR frame"),
      obs::registry().counter("gnumap_serve_bytes_rx_total",
                              "Frame payload bytes received from clients"),
      obs::registry().counter("gnumap_serve_bytes_tx_total",
                              "Frame payload bytes sent to clients"),
      obs::registry().counter("gnumap_serve_connections_total",
                              "Client connections accepted"),
      obs::registry().gauge("gnumap_serve_active_connections",
                            "Currently open client connections"),
      obs::registry().counter(
          "gnumap_serve_evictions_total",
          "Connections evicted by the watchdog or a budget"),
      obs::registry().counter(
          "gnumap_serve_corrupt_frames_total",
          "Frames rejected for a CRC mismatch"),
      obs::registry().counter(
          "gnumap_serve_deadline_abandoned_total",
          "Requests abandoned because their deadline expired"),
  };
  return metrics;
}

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// streambuf that flushes its buffer to the peer as frames of `type`
/// whenever it passes kChunkBytes (and on sync()).  Send failures are
/// latched instead of thrown: ostream formatting must not unwind through
/// the pipeline's drain loop, and the failure still surfaces — the read
/// side of a dead socket raises in the decoder, and handle_map rethrows
/// the latched error after run() returns.
class FrameSinkBuf final : public std::streambuf {
 public:
  FrameSinkBuf(Socket& sock, FrameType type, int timeout_ms,
               std::atomic<std::uint64_t>& bytes_sent,
               std::uint64_t* request_bytes = nullptr,
               const std::atomic<bool>* cancel = nullptr)
      : sock_(sock),
        type_(type),
        timeout_ms_(timeout_ms),
        bytes_sent_(bytes_sent),
        request_bytes_(request_bytes),
        cancel_(cancel) {}

  /// Sends any buffered bytes as a final (possibly short) frame.
  void flush_frames() {
    if (error_) {
      buf_.clear();  // the peer is gone; don't buffer without bound
      return;
    }
    if (buf_.empty()) return;
    try {
      write_frame(sock_, type_, buf_, timeout_ms_, cancel_);
      bytes_sent_.fetch_add(buf_.size(), std::memory_order_relaxed);
      serve_metrics().bytes_tx.inc(buf_.size());
      if (request_bytes_ != nullptr) *request_bytes_ += buf_.size();
    } catch (...) {
      error_ = std::current_exception();
    }
    buf_.clear();
  }

  void rethrow_if_failed() const {
    if (error_) std::rethrow_exception(error_);
  }

 protected:
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      buf_.push_back(traits_type::to_char_type(ch));
      if (buf_.size() >= kChunkBytes) flush_frames();
    }
    return error_ ? traits_type::eof() : ch;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    buf_.append(s, static_cast<std::size_t>(n));
    if (buf_.size() >= kChunkBytes) flush_frames();
    return n;
  }

  int sync() override {
    flush_frames();
    return error_ ? -1 : 0;
  }

 private:
  Socket& sock_;
  FrameType type_;
  int timeout_ms_;
  std::atomic<std::uint64_t>& bytes_sent_;
  std::uint64_t* request_bytes_;  ///< per-request digest counter (optional)
  const std::atomic<bool>* cancel_;
  std::string buf_;
  std::exception_ptr error_;
};

std::string u64_kv(const std::string& key, std::uint64_t value) {
  return key + "=" + std::to_string(value) + "\n";
}

std::string dbl_kv(const std::string& key, double value) {
  return key + "=" + std::to_string(value) + "\n";
}

/// Closing a socket with unread bytes pending makes the kernel send RST,
/// which can destroy a just-queued ERROR frame before the peer reads it.
/// Half-close instead and drain what the peer already sent (bounded), so
/// the typed error is actually deliverable.
void linger_close(Socket& sock) {
  try {
    sock.shutdown_write();
    char discard[4096];
    Timer elapsed;
    while (elapsed.seconds() < 2.0) {
      if (sock.recv_some(discard, sizeof discard, 500) == 0) break;
    }
  } catch (const WireError&) {
    // Timeout or reset: the peer had its chance.
  }
  sock.close();
}

}  // namespace

struct MappingServer::ConnectionSlot {
  int conn_id = -1;
  std::string peer = "?";
  std::thread thread;
  std::atomic<bool> done{false};
  /// Cancels every socket operation on this connection (threaded into the
  /// send/recv poll loops); set by the watchdog for drain and evictions.
  std::atomic<bool> cancel{false};
  /// Why cancel tripped: 0 while only draining, else a WireErrorCode
  /// (kEvicted for budget evictions, kTimeout for abandoned deadlines).
  std::atomic<int> evict_code{0};
  /// True while a MAP request is in flight: a drain must let it finish.
  std::atomic<bool> in_request{false};
  /// Steady-clock ms when the in-flight request must be done (0 = none);
  /// the watchdog evicts past it even when the handler is wedged in send.
  std::atomic<std::int64_t> deadline_at_ms{0};
  /// Frame payload bytes received on this connection (budget accounting).
  std::atomic<std::uint64_t> rx_bytes{0};
  /// Connection lifetime (budget accounting); started at accept.
  Timer age;
};

namespace {

fleet::RegistryOptions registry_options(const ServeOptions& options) {
  fleet::RegistryOptions r;
  r.memory_budget_bytes = options.registry_memory_budget_bytes;
  r.admission_reads = options.per_genome_admission_reads != 0
                          ? options.per_genome_admission_reads
                          : options.admission_reads;
  r.per_connection_reads = options.per_connection_reads;
  r.evicted_retry_ms = options.evicted_retry_ms;
  r.shard_index = options.shard_index;
  r.shard_count = options.shard_count;
  r.shard_max_read_len = options.shard_max_read_len;
  return r;
}

}  // namespace

MappingServer::MappingServer(const Genome& genome,
                             const PipelineConfig& config,
                             const ServeOptions& options)
    : options_(options),
      registry_(std::make_unique<fleet::GenomeRegistry>(
          genome, config, registry_options(options))),
      listener_(std::make_unique<Listener>(options.port, options.bind_any)),
      admission_(options.admission_reads, options.per_connection_reads),
      digests_(options.digest_ring_capacity) {
  serve_metrics();  // register the gnumap_serve_* series up front
  {
    // Load the default genome once so the daemon greets its first client
    // warm, then drop the lease so it stays evictable under a budget.
    const fleet::GenomeLease lease = registry_->acquire("");
    default_genome_bases_ = lease->session->genome().num_bases();
    default_index_entries_ = lease->session->index().num_entries();
    default_index_load_seconds_ = lease->index_load_seconds;
  }
  if (!options_.fault_plan.empty()) {
    listener_->set_fault_injector(make_injector(options_.fault_plan));
    GNUMAP_LOG(kWarn) << "gnumapd: wire fault plan active: "
                      << options_.fault_plan.describe();
  }
  if (options_.admin_port >= 0) {
    admin_ = std::make_unique<AdminHttpServer>(*this, options_.admin_port,
                                               options_.bind_any);
    GNUMAP_LOG(kInfo) << "gnumapd: admin endpoint on port " << admin_->port();
  }
  GNUMAP_LOG(kInfo) << "gnumapd: index resident ("
                    << default_index_entries() << " entries over "
                    << default_genome_bases()
                    << " bases), listening on port " << listener_->port();
}

MappingServer::MappingServer(std::vector<fleet::GenomeSpec> genomes,
                             const PipelineConfig& config,
                             const ServeOptions& options)
    : options_(options),
      registry_(std::make_unique<fleet::GenomeRegistry>(
          std::move(genomes), config, registry_options(options))),
      listener_(std::make_unique<Listener>(options.port, options.bind_any)),
      admission_(options.admission_reads, options.per_connection_reads),
      digests_(options.digest_ring_capacity) {
  serve_metrics();
  {
    const fleet::GenomeLease lease = registry_->acquire("");
    default_genome_bases_ = lease->session->genome().num_bases();
    default_index_entries_ = lease->session->index().num_entries();
    default_index_load_seconds_ = lease->index_load_seconds;
  }
  if (!options_.fault_plan.empty()) {
    listener_->set_fault_injector(make_injector(options_.fault_plan));
    GNUMAP_LOG(kWarn) << "gnumapd: wire fault plan active: "
                      << options_.fault_plan.describe();
  }
  if (options_.admin_port >= 0) {
    admin_ = std::make_unique<AdminHttpServer>(*this, options_.admin_port,
                                               options_.bind_any);
    GNUMAP_LOG(kInfo) << "gnumapd: admin endpoint on port " << admin_->port();
  }
  GNUMAP_LOG(kInfo) << "gnumapd: registry of " << registry_->size()
                    << " genome(s), default \"" << registry_->default_id()
                    << "\" resident (" << default_index_entries()
                    << " entries over " << default_genome_bases()
                    << " bases), listening on port " << listener_->port();
}

MappingServer::~MappingServer() {
  request_stop();
  wait();
}

std::uint16_t MappingServer::port() const { return listener_->port(); }

int MappingServer::admin_port() const {
  return admin_ ? admin_->port() : -1;
}

std::uint64_t MappingServer::request_window_reads() const {
  const auto& config = registry_->config();
  const std::uint64_t threads =
      static_cast<std::uint64_t>(std::max(1, config.threads));
  const std::uint64_t queue_depth =
      std::max<std::uint64_t>(1, config.queue_depth);
  const std::uint64_t batch = std::max<std::uint32_t>(1, config.stream_batch);
  // The staged pipeline's documented in-flight peak bound (pipeline.hpp).
  return (2 * (queue_depth + threads) + 1) * batch;
}

std::uint32_t MappingServer::busy_retry_hint() const {
  const std::uint64_t window = std::max<std::uint64_t>(
      1, request_window_reads());
  // One window ≈ one queued request: the deeper the queue, the longer the
  // suggested backoff, so a saturated server spreads retries out instead
  // of synchronizing a thundering herd.
  const std::uint64_t depth = admission_.admitted() / window;
  const std::uint64_t hint = options_.busy_retry_ms * (depth + 1);
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(
      hint, std::max(options_.busy_retry_ms, options_.busy_retry_max_ms)));
}

void MappingServer::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
  watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  if (admin_) admin_->start();
}

void MappingServer::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited; no new slots can appear.  Handler threads
  // finish their in-flight request (or are cancelled by the watchdog once
  // idle) and the watchdog reaps them; wait for the roster to empty.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      if (conns_.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  watchdog_stop_.store(true, std::memory_order_relaxed);
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  // The admin endpoint answers until the drain completes, so an operator
  // can watch /statusz while connections finish; stop it last.
  if (admin_) admin_->stop();
}

void MappingServer::run() {
  start();
  wait();
}

void MappingServer::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
}

ServerStats MappingServer::stats() const {
  ServerStats s;
  s.connections_total = connections_total_.load(std::memory_order_relaxed);
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  s.requests_rejected = requests_rejected_.load(std::memory_order_relaxed);
  s.requests_failed = requests_failed_.load(std::memory_order_relaxed);
  s.reads_mapped_total = reads_mapped_total_.load(std::memory_order_relaxed);
  s.reads_total = reads_total_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.evictions_total = evictions_total_.load(std::memory_order_relaxed);
  s.corrupt_frames_total =
      corrupt_frames_total_.load(std::memory_order_relaxed);
  s.deadline_abandoned_total =
      deadline_abandoned_total_.load(std::memory_order_relaxed);
  return s;
}

std::string MappingServer::stats_text() const {
  const ServerStats s = stats();
  std::string text;
  text += u64_kv("protocol_version", kProtocolVersion);
  text += u64_kv("genome_bases", default_genome_bases());
  text += u64_kv("index_entries", default_index_entries());
  text += u64_kv("registry_genomes",
                 static_cast<std::uint64_t>(registry_->size()));
  text += u64_kv("registry_resident_bytes", registry_->resident_bytes());
  text += u64_kv("registry_evictions_total", registry_->evictions());
  text += dbl_kv("index_load_seconds", default_index_load_seconds_);
  text += u64_kv("admission_capacity_reads", admission_.capacity());
  text += u64_kv("admitted_reads", admission_.admitted());
  text += u64_kv("admitted_reads_peak", admission_.peak());
  text += u64_kv("request_window_reads", request_window_reads());
  text += u64_kv("active_connections",
                 static_cast<std::uint64_t>(
                     active_connections_.load(std::memory_order_relaxed)));
  text += u64_kv("connections_total", s.connections_total);
  text += u64_kv("requests_total", s.requests_total);
  text += u64_kv("requests_rejected", s.requests_rejected);
  text += u64_kv("requests_failed", s.requests_failed);
  text += u64_kv("reads_total", s.reads_total);
  text += u64_kv("reads_mapped_total", s.reads_mapped_total);
  text += u64_kv("bytes_received", s.bytes_received);
  text += u64_kv("bytes_sent", s.bytes_sent);
  text += u64_kv("evictions_total", s.evictions_total);
  text += u64_kv("corrupt_frames_total", s.corrupt_frames_total);
  text += u64_kv("deadline_abandoned_total", s.deadline_abandoned_total);
  text += u64_kv("digest_requests", digests_.total_recorded());
  text += u64_kv("digest_ring_capacity", digests_.capacity());
  const auto slowest = digests_.slowest(1);
  text += dbl_kv("slowest_recent_ms",
                 slowest.empty() ? 0.0 : slowest.front().total_seconds * 1e3);
  return text;
}

std::vector<MappingServer::ConnectionInfo> MappingServer::connection_table()
    const {
  std::vector<ConnectionInfo> table;
  std::lock_guard<std::mutex> lock(conns_mutex_);
  table.reserve(conns_.size());
  for (const auto& slot : conns_) {
    if (slot->done.load(std::memory_order_acquire)) continue;
    ConnectionInfo info;
    info.conn_id = slot->conn_id;
    info.peer = slot->peer;
    info.in_request = slot->in_request.load(std::memory_order_relaxed);
    info.cancelled = slot->cancel.load(std::memory_order_relaxed);
    info.rx_bytes = slot->rx_bytes.load(std::memory_order_relaxed);
    info.age_seconds = slot->age.seconds();
    table.push_back(std::move(info));
  }
  return table;
}

std::string MappingServer::statusz_json() const {
  using obs::detail::json_number;
  using obs::detail::json_string;
  const auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  const ServerStats s = stats();
  const obs::BuildInfo& build = obs::build_info();
  const auto& config = registry_->config();

  std::string out = "{\n";
  out += "  \"build\": {\"git_sha\": " + json_string(build.git_sha) +
         ", \"build_type\": " + json_string(build.build_type) +
         ", \"compiler\": " + json_string(build.compiler) +
         ", \"host\": " + json_string(obs::host_name()) +
         ", \"num_cpus\": " + std::to_string(obs::num_cpus()) + "},\n";
  out += "  \"server\": {\"port\": " + std::to_string(port()) +
         ", \"admin_port\": " + std::to_string(admin_port()) +
         ", \"protocol_version\": " + u64(kProtocolVersion) +
         ", \"min_protocol_version\": " + u64(kMinProtocolVersion) +
         ", \"uptime_seconds\": " + json_number(uptime_.seconds()) +
         ", \"draining\": " + (stopping() ? "true" : "false") + "},\n";
  out += "  \"session\": {\"genome_bases\": " +
         u64(default_genome_bases()) +
         ", \"index_entries\": " + u64(default_index_entries()) +
         ", \"threads\": " + std::to_string(config.threads) +
         ", \"stream_batch\": " + std::to_string(config.stream_batch) + "},\n";
  out += "  \"registry\": {\"genomes\": " +
         u64(static_cast<std::uint64_t>(registry_->size())) +
         ", \"resident_bytes\": " + u64(registry_->resident_bytes()) +
         ", \"evictions_total\": " + u64(registry_->evictions()) +
         ", \"entries\": [";
  {
    const auto rows = registry_->rows();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      if (i != 0) out += ", ";
      out += "{\"id\": " + json_string(row.id) +
             ", \"path\": " + json_string(row.path) +
             ", \"resident\": " + (row.resident ? "true" : "false") +
             ", \"from_index_file\": " +
             (row.from_index_file ? "true" : "false") +
             ", \"pinned\": " + (row.pinned ? "true" : "false") +
             ", \"bytes\": " + u64(row.bytes) +
             ", \"load_seconds\": " + json_number(row.load_seconds) +
             ", \"active_leases\": " + u64(row.active_leases) +
             ", \"evictions\": " + u64(row.evictions) + "}";
    }
  }
  out += "]},\n";
  out += "  \"admission\": {\"capacity_reads\": " + u64(admission_.capacity()) +
         ", \"admitted_reads\": " + u64(admission_.admitted()) +
         ", \"admitted_reads_peak\": " + u64(admission_.peak()) +
         ", \"request_window_reads\": " + u64(request_window_reads()) + "},\n";
  out += "  \"counters\": {\"connections_total\": " + u64(s.connections_total) +
         ", \"requests_total\": " + u64(s.requests_total) +
         ", \"requests_rejected\": " + u64(s.requests_rejected) +
         ", \"requests_failed\": " + u64(s.requests_failed) +
         ", \"reads_total\": " + u64(s.reads_total) +
         ", \"reads_mapped_total\": " + u64(s.reads_mapped_total) +
         ", \"bytes_received\": " + u64(s.bytes_received) +
         ", \"bytes_sent\": " + u64(s.bytes_sent) +
         ", \"evictions_total\": " + u64(s.evictions_total) +
         ", \"corrupt_frames_total\": " + u64(s.corrupt_frames_total) +
         ", \"deadline_abandoned_total\": " + u64(s.deadline_abandoned_total) +
         "},\n";
  out += "  \"digests\": {\"recorded\": " + u64(digests_.total_recorded()) +
         ", \"ring_capacity\": " + u64(digests_.capacity()) + "},\n";
  out += "  \"connections\": [";
  const auto table = connection_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const ConnectionInfo& c = table[i];
    if (i != 0) out += ", ";
    out += "{\"conn_id\": " + std::to_string(c.conn_id) +
           ", \"peer\": " + json_string(c.peer) +
           ", \"state\": " +
           json_string(c.cancelled ? "cancelling"
                                   : (c.in_request ? "in_request" : "idle")) +
           ", \"rx_bytes\": " + u64(c.rx_bytes) +
           ", \"age_seconds\": " + json_number(c.age_seconds) + "}";
  }
  out += "]\n}\n";
  return out;
}

std::string MappingServer::health_text() const {
  const bool draining = stopping();
  const int active = active_connections_.load(std::memory_order_relaxed);
  const std::uint64_t window = request_window_reads();
  // Ready = a new connection could be accepted AND a fresh request window
  // would fit the admission budget right now.
  const bool ready = !draining && active < options_.max_connections &&
                     admission_.admitted() + window <= admission_.capacity();
  std::string text;
  text += u64_kv("ready", ready ? 1 : 0);
  text += u64_kv("draining", draining ? 1 : 0);
  text += u64_kv("active_connections", static_cast<std::uint64_t>(active));
  text += u64_kv("max_connections",
                 static_cast<std::uint64_t>(options_.max_connections));
  text += u64_kv("admitted_reads", admission_.admitted());
  text += u64_kv("admission_capacity_reads", admission_.capacity());
  text += u64_kv("request_window_reads", window);
  text += u64_kv("busy_retry_hint_ms", busy_retry_hint());
  text += u64_kv("protocol_version", kProtocolVersion);
  text += u64_kv("uptime_seconds",
                 static_cast<std::uint64_t>(uptime_.seconds()));
  return text;
}

void MappingServer::watchdog_loop() {
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        ConnectionSlot& slot = **it;
        if (slot.done.load(std::memory_order_acquire)) {
          if (slot.thread.joinable()) slot.thread.join();
          it = conns_.erase(it);
          continue;
        }
        if (!slot.cancel.load()) {
          const bool in_request = slot.in_request.load();
          const std::int64_t deadline = slot.deadline_at_ms.load();
          if (options_.max_connection_seconds > 0.0 &&
              slot.age.seconds() > options_.max_connection_seconds) {
            slot.evict_code.store(
                static_cast<int>(WireErrorCode::kEvicted));
            slot.cancel.store(true);
            evictions_total_.fetch_add(1, std::memory_order_relaxed);
            serve_metrics().evictions_total.inc();
            GNUMAP_LOG(kInfo) << "serve: conn " << slot.conn_id << " (peer "
                              << slot.peer << ") evicted: lifetime budget "
                              << options_.max_connection_seconds
                              << " s exhausted";
          } else if (in_request && deadline > 0 && steady_ms() > deadline) {
            // The handler may be wedged in a blocking send (peer stopped
            // reading results); only this thread can abandon the request.
            slot.evict_code.store(
                static_cast<int>(WireErrorCode::kTimeout));
            slot.cancel.store(true);
            evictions_total_.fetch_add(1, std::memory_order_relaxed);
            deadline_abandoned_total_.fetch_add(1, std::memory_order_relaxed);
            serve_metrics().evictions_total.inc();
            serve_metrics().deadline_abandoned_total.inc();
            GNUMAP_LOG(kInfo) << "serve: conn " << slot.conn_id << " (peer "
                              << slot.peer
                              << ") request deadline expired; abandoning";
          } else if (!in_request && stopping()) {
            slot.cancel.store(true);  // drain: close idle connections
          }
        }
        ++it;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

void MappingServer::accept_loop() {
  while (!stopping()) {
    auto sock = listener_->accept(200, &stop_);
    if (!sock.has_value()) continue;
    if (!options_.fault_plan.empty()) {
      // Fresh injector per connection: the same plan batters every
      // connection identically, so chaos drills are reproducible.
      sock->set_fault_injector(make_injector(options_.fault_plan));
    }

    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Typed refusal, not a silent close: the client can back off.  The
      // peer's HELLO is still unread, so a plain close would RST the queued
      // BUSY frame away — linger_close drains it first.
      try {
        write_frame(*sock, FrameType::kBusy,
                    encode_busy(busy_retry_hint(),
                                "connection limit reached"),
                    options_.io_timeout_ms);
      } catch (const WireError&) {
      }
      linger_close(*sock);
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      serve_metrics().rejected_total.inc();
      continue;
    }

    const int conn_id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().connections_total.inc();
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().active_connections.set(
        static_cast<double>(active_connections_.load()));

    auto slot = std::make_unique<ConnectionSlot>();
    slot->conn_id = conn_id;
    slot->peer = sock->peer_address();
    ConnectionSlot* raw = slot.get();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(slot));
    }
    raw->thread = std::thread(
        [this, raw](Socket conn) {
          handle_connection(std::move(conn), *raw);
          admission_.forget_connection(raw->conn_id);
          active_connections_.fetch_sub(1, std::memory_order_relaxed);
          serve_metrics().active_connections.set(
              static_cast<double>(active_connections_.load()));
          raw->done.store(true, std::memory_order_release);
        },
        std::move(*sock));
  }
  listener_->close();
}

void MappingServer::send_error(Socket& sock, WireErrorCode code,
                               const std::string& msg) {
  serve_metrics().errors_total.inc();
  if (code == WireErrorCode::kCorrupt) {
    corrupt_frames_total_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().corrupt_frames_total.inc();
  }
  try {
    write_frame(sock, FrameType::kError, encode_error(code, msg),
                options_.io_timeout_ms);
  } catch (const WireError&) {
    // Best effort: the peer may already be gone.
  }
}

std::pair<WireErrorCode, std::string> MappingServer::cancel_reason(
    const ConnectionSlot& slot) const {
  const auto code = static_cast<WireErrorCode>(slot.evict_code.load());
  if (code == WireErrorCode::kEvicted) {
    return {code, "connection evicted: lifetime budget (" +
                      std::to_string(options_.max_connection_seconds) +
                      " s) exhausted"};
  }
  if (code == WireErrorCode::kTimeout) {
    return {code, "request deadline expired; server abandoned the request"};
  }
  return {WireErrorCode::kShuttingDown, "server is draining"};
}

void MappingServer::handle_connection(Socket sock, ConnectionSlot& slot) {
  // Context prefix for every typed error and log line this connection can
  // produce: chaos-run failures must be attributable to a peer.
  const std::string who = "[peer " + slot.peer + " conn " +
                          std::to_string(slot.conn_id) + "] ";
  try {
    // Handshake: HEALTH probes are answered even before HELLO (fleet
    // supervisors need no handshake), then exactly one HELLO with a
    // version this build can speak.
    std::optional<Frame> hello;
    for (;;) {
      hello = read_frame(sock, options_.max_frame_bytes,
                         options_.io_timeout_ms, &slot.cancel);
      if (!hello.has_value()) return;
      if (hello->type != FrameType::kHealth) break;
      write_frame(sock, FrameType::kHealthOk, health_text(),
                  options_.io_timeout_ms, &slot.cancel);
    }
    if (hello->type != FrameType::kHello) {
      send_error(sock, WireErrorCode::kProtocol,
                 who + "expected HELLO as the first frame");
      linger_close(sock);
      return;
    }
    const auto [version, client_name] = decode_hello(hello->payload);
    if (version < kMinProtocolVersion) {
      send_error(sock, WireErrorCode::kBadVersion,
                 who + "unsupported protocol version " +
                     std::to_string(version) + " (server speaks " +
                     std::to_string(kMinProtocolVersion) + ".." +
                     std::to_string(kProtocolVersion) + ")");
      linger_close(sock);
      return;
    }
    // Negotiate down to the newer endpoint's floor: a v3 client on a v2
    // server proceeds with v2 payload semantics.
    const std::uint16_t agreed =
        std::min<std::uint16_t>(version, kProtocolVersion);
    write_frame(sock, FrameType::kHelloOk,
                encode_hello(agreed,
                             "gnumapd genome_bases=" +
                                 std::to_string(default_genome_bases()) +
                                 " index_entries=" +
                                 std::to_string(default_index_entries()) +
                                 " genomes=" +
                                 std::to_string(registry_->size())),
                options_.io_timeout_ms, &slot.cancel);
    GNUMAP_LOG(kDebug) << "serve: conn " << slot.conn_id << " handshake ok ("
                       << client_name << ", v" << agreed << ")";

    // Request loop.  Waiting for the next request honours the cancel flag
    // (the watchdog trips it on drain, eviction, or an expired deadline);
    // a request in progress runs to completion under its own deadline.
    for (;;) {
      std::optional<Frame> frame;
      try {
        frame = read_frame(sock, options_.max_frame_bytes,
                           /*timeout_ms=*/0, &slot.cancel);
      } catch (const WireError& e) {
        if (e.code() == WireErrorCode::kShuttingDown) {
          const auto [code, msg] = cancel_reason(slot);
          send_error(sock, code, who + msg);
        } else if (e.code() != WireErrorCode::kClosed) {
          // e.g. an oversized or corrupt frame header: answer with the
          // typed error and let the peer read it before the close.
          send_error(sock, e.code(), who + e.what());
          linger_close(sock);
        }
        return;
      }
      if (!frame.has_value()) return;  // clean disconnect

      switch (frame->type) {
        case FrameType::kMapBegin: {
          const MapBeginInfo begin = decode_map_begin(frame->payload);
          if (!handle_map(sock, slot, begin)) {
            linger_close(sock);
            return;
          }
          break;
        }
        case FrameType::kStats:
          write_frame(sock, FrameType::kStatsOk, stats_text(),
                      options_.io_timeout_ms, &slot.cancel);
          break;
        case FrameType::kHealth:
          write_frame(sock, FrameType::kHealthOk, health_text(),
                      options_.io_timeout_ms, &slot.cancel);
          break;
        case FrameType::kShutdown:
          write_frame(sock, FrameType::kShutdownOk, "",
                      options_.io_timeout_ms);
          GNUMAP_LOG(kInfo) << "serve: shutdown requested by conn "
                            << slot.conn_id;
          request_stop();
          return;
        default:
          send_error(sock, WireErrorCode::kProtocol,
                     who + "unexpected frame type " +
                         std::to_string(static_cast<int>(frame->type)));
          linger_close(sock);
          return;
      }
    }
  } catch (const WireError& e) {
    // Transport failure or malformed traffic: answer if possible, close.
    if (e.code() == WireErrorCode::kShuttingDown &&
        slot.cancel.load(std::memory_order_relaxed)) {
      const auto [code, msg] = cancel_reason(slot);
      send_error(sock, code, who + msg);
    } else {
      send_error(sock, e.code(), who + e.what());
    }
    linger_close(sock);
  } catch (const std::exception& e) {
    send_error(sock, WireErrorCode::kInternal, who + e.what());
    linger_close(sock);
  }
}

bool MappingServer::handle_map(Socket& sock, ConnectionSlot& slot,
                               const MapBeginInfo& begin) {
  const std::uint64_t req_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint8_t flags = begin.flags;
  const std::uint32_t client_deadline_ms = begin.deadline_ms;
  std::string who = "[peer " + slot.peer + " conn " +
                    std::to_string(slot.conn_id) + " req " +
                    std::to_string(req_id);
  if (begin.trace_id != 0) who += " trace " + trace_id_hex(begin.trace_id);
  who += "] ";

  // The digest outlives every outcome below: finish_digest records it in
  // the recent-requests ring and emits the structured request_digest line
  // whether the request completed, was refused BUSY, or died with an error.
  RequestDigest digest;
  digest.request_id = req_id;
  digest.conn_id = slot.conn_id;
  digest.trace_id = begin.trace_id;
  Timer request_timer;
  const auto finish_digest = [&](std::uint16_t error_code) {
    digest.error_code = error_code;
    digest.total_seconds = request_timer.seconds();
    digests_.push(digest);
    GNUMAP_LOG(kInfo) << "serve: request_digest conn=" << digest.conn_id
                      << " req=" << digest.request_id << " trace="
                      << (digest.trace_id != 0 ? trace_id_hex(digest.trace_id)
                                               : "-")
                      << " genome="
                      << (digest.genome_id.empty() ? "-" : digest.genome_id)
                      << " error=" << digest.error_code
                      << " total_s=" << digest.total_seconds
                      << " admission_wait_s=" << digest.admission_wait_seconds
                      << " upload_wait_s=" << digest.upload_wait_seconds
                      << " decode_s=" << digest.decode_seconds
                      << " map_stage_s=" << digest.map_stage_seconds
                      << " format_s=" << digest.format_seconds
                      << " splice_s=" << digest.splice_seconds
                      << " call_s=" << digest.call_seconds
                      << " upload_bytes=" << digest.upload_bytes
                      << " result_bytes=" << digest.result_bytes
                      << " reads=" << digest.reads_total
                      << " mapped=" << digest.reads_mapped
                      << " calls=" << digest.calls
                      << " phmm_cells=" << digest.phmm_cells
                      << " gcups=" << digest.gcups
                      << " fp32_recomputed=" << digest.fp32_recomputed;
  };

  if (stopping()) {
    // Refused before admission: no digest — the ring records requests that
    // actually entered the pipeline (BUSY refusals likewise stay out).
    send_error(sock, WireErrorCode::kShuttingDown,
               who + "server is draining");
    return false;
  }

  // Admission: reserve this request's worst-case in-flight reads, or
  // answer BUSY (connection stays open so the client can retry).
  Timer admission_timer;
  const std::uint64_t window = request_window_reads();
  if (!admission_.try_acquire(slot.conn_id, window)) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().rejected_total.inc();
    write_frame(sock, FrameType::kBusy,
                encode_busy(busy_retry_hint(),
                            "admission window full (" +
                                std::to_string(admission_.admitted()) + "/" +
                                std::to_string(admission_.capacity()) +
                                " reads in flight)"),
                options_.io_timeout_ms, &slot.cancel);
    return true;
  }
  digest.admission_wait_seconds = admission_timer.seconds();
  serve_metrics().queue_depth.set(static_cast<double>(admission_.admitted()));
  serve_metrics().admitted_peak.set(static_cast<double>(admission_.peak()));

  struct Release {
    MappingServer& server;
    int conn_id;
    std::uint64_t window;
    ~Release() {
      server.admission_.release(conn_id, window);
      serve_metrics().queue_depth.set(
          static_cast<double>(server.admission_.admitted()));
    }
  } release{*this, slot.conn_id, window};

  // Resolve the genome this request maps against ("" = default).  Unknown
  // ids are a protocol error (client bug; close).  A genome the budget
  // cannot admit right now is a capacity signal: typed kEvicted with a
  // retry-after hint, connection stays open, the client retries like BUSY.
  // A damaged index file is the server's problem, not the client's.
  fleet::GenomeLease lease;
  try {
    lease = registry_->acquire(begin.genome_id);
  } catch (const fleet::UnknownGenomeError& e) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().rejected_total.inc();
    send_error(sock, WireErrorCode::kProtocol, who + e.what());
    return false;
  } catch (const fleet::EvictedError& e) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().rejected_total.inc();
    send_error(sock, WireErrorCode::kEvicted, who + e.what());
    return true;
  } catch (const ParseError& e) {
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    send_error(sock, WireErrorCode::kInternal, who + e.what());
    return false;
  }
  who.insert(who.size() - 2, " genome " + lease->id);
  digest.genome_id = lease->id;

  // Per-genome admission rides on top of the global window, so one hot
  // genome's burst cannot starve requests against the others.
  if (!lease->admission->try_acquire(slot.conn_id, window)) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().rejected_total.inc();
    write_frame(sock, FrameType::kBusy,
                encode_busy(busy_retry_hint(),
                            "genome \"" + lease->id +
                                "\" admission window full (" +
                                std::to_string(lease->admission->admitted()) +
                                "/" +
                                std::to_string(lease->admission->capacity()) +
                                " reads in flight)"),
                options_.io_timeout_ms, &slot.cancel);
    return true;
  }
  struct GenomeRelease {
    AdmissionController& admission;
    int conn_id;
    std::uint64_t window;
    ~GenomeRelease() { admission.release(conn_id, window); }
  } genome_release{*lease->admission, slot.conn_id, window};

  // Effective deadline: the tighter of the server's own cap and what the
  // client asked for in MAP_BEGIN (0 = no client deadline).
  int effective_timeout_ms = options_.request_timeout_ms;
  bool client_tighter = false;
  if (client_deadline_ms > 0 &&
      (effective_timeout_ms <= 0 ||
       static_cast<std::int64_t>(client_deadline_ms) <
           static_cast<std::int64_t>(effective_timeout_ms))) {
    effective_timeout_ms = static_cast<int>(client_deadline_ms);
    client_tighter = true;
  }

  // Publish the in-flight request to the watchdog: the deadline holds even
  // when this thread is wedged in a blocking send.
  struct RequestScope {
    ConnectionSlot& slot;
    RequestScope(ConnectionSlot& s, int deadline_ms) : slot(s) {
      slot.deadline_at_ms.store(
          deadline_ms > 0 ? steady_ms() + deadline_ms : 0);
      slot.in_request.store(true);
    }
    ~RequestScope() {
      slot.in_request.store(false);
      slot.deadline_at_ms.store(0);
    }
  } scope{slot, effective_timeout_ms};

  requests_total_.fetch_add(1, std::memory_order_relaxed);
  serve_metrics().requests_total.inc();
  const bool want_sam = (flags & kFlagWantSam) != 0;
  const int phred_offset = (flags & kFlagPhred64) != 0 ? kPhred64 : kPhred33;

  obs::TraceSpan span("serve_request", "serve", "conn",
                      static_cast<double>(slot.conn_id), "req",
                      static_cast<double>(req_id));
  // Tag the span with the client's trace id (protocol v3) so
  // scripts/merge_traces.py can splice client and server timelines.
  span.set_id(begin.trace_id);

  try {
    if ((flags & kFlagShardPartials) != 0) {
      // Shard-partial mode: the peer is a fleet router, not an end client.
      // No SAM, no TSV, no epilogue — just raw candidates per read.
      if (want_sam) {
        throw WireError(WireErrorCode::kProtocol,
                        "shard-partials requests cannot also request SAM");
      }
      MapStats shard_stats;
      handle_shard_map(sock, slot, lease, shard_stats, effective_timeout_ms);
      reads_total_.fetch_add(shard_stats.reads_total,
                             std::memory_order_relaxed);
      digest.reads_total = shard_stats.reads_total;
      digest.phmm_cells = shard_stats.dp_cells;
      serve_metrics().request_seconds.observe(request_timer.seconds());
      finish_digest(0);
      return true;
    }

    write_frame(sock, FrameType::kMapGo, "", options_.io_timeout_ms,
                &slot.cancel);

    // The wire -> pipeline seam: READS_CHUNK frames are pulled off the
    // socket only as the pipeline's decoder wants more bytes, so the
    // BatchQueue's backpressure reaches all the way back to the client.
    bool saw_end = false;
    ChunkSourceBuf chunk_buf([&](std::string& chunk) -> bool {
      if (saw_end) return false;
      // Upload accounting: this lambda runs on the pipeline's decoder
      // thread, which run() joins before returning — the handler thread
      // reads the digest fields only after that, so plain writes are safe.
      Timer upload_timer;
      int timeout = options_.io_timeout_ms;
      bool deadline_bound = false;
      if (effective_timeout_ms > 0) {
        const int remaining =
            effective_timeout_ms -
            static_cast<int>(request_timer.seconds() * 1000.0);
        if (remaining <= 0) {
          deadline_abandoned_total_.fetch_add(1, std::memory_order_relaxed);
          serve_metrics().deadline_abandoned_total.inc();
          throw WireError(WireErrorCode::kTimeout,
                          "request exceeded the " +
                              std::to_string(effective_timeout_ms) + " ms " +
                              (client_tighter ? "client-requested"
                                              : "server") +
                              " deadline");
        }
        if (remaining < timeout) {
          timeout = remaining;
          deadline_bound = true;
        }
      }
      std::optional<Frame> frame;
      try {
        frame = read_frame(sock, options_.max_frame_bytes, timeout,
                           &slot.cancel);
      } catch (const WireError& e) {
        // When the request deadline (not the per-frame io deadline) was
        // the binding bound, a silent peer is abandoned work: count it and
        // name the deadline in the typed error.
        if (!deadline_bound || e.code() != WireErrorCode::kTimeout) throw;
        deadline_abandoned_total_.fetch_add(1, std::memory_order_relaxed);
        serve_metrics().deadline_abandoned_total.inc();
        throw WireError(WireErrorCode::kTimeout,
                        "request exceeded the " +
                            std::to_string(effective_timeout_ms) + " ms " +
                            (client_tighter ? "client-requested" : "server") +
                            " deadline");
      }
      digest.upload_wait_seconds += upload_timer.seconds();
      if (!frame.has_value()) {
        throw WireError(WireErrorCode::kClosed,
                        "peer disconnected mid-request");
      }
      if (frame->type == FrameType::kMapEnd) {
        saw_end = true;
        return false;
      }
      if (frame->type != FrameType::kReadsChunk) {
        throw WireError(WireErrorCode::kProtocol,
                        "expected READS_CHUNK or MAP_END, got type " +
                            std::to_string(static_cast<int>(frame->type)));
      }
      digest.upload_bytes += frame->payload.size();
      bytes_received_.fetch_add(frame->payload.size(),
                                std::memory_order_relaxed);
      serve_metrics().bytes_rx.inc(frame->payload.size());
      const std::uint64_t conn_rx =
          slot.rx_bytes.fetch_add(frame->payload.size(),
                                  std::memory_order_relaxed) +
          frame->payload.size();
      if (options_.max_connection_bytes > 0 &&
          conn_rx > options_.max_connection_bytes) {
        evictions_total_.fetch_add(1, std::memory_order_relaxed);
        serve_metrics().evictions_total.inc();
        throw WireError(WireErrorCode::kEvicted,
                        "connection exceeded its " +
                            std::to_string(options_.max_connection_bytes) +
                            "-byte receive budget");
      }
      chunk = std::move(frame->payload);
      return true;
    });
    std::istream fastq_text(&chunk_buf);
    // istream operations swallow streambuf exceptions into badbit, which
    // getline reports as plain EOF — a WireError thrown mid-upload (timeout,
    // oversized frame, disconnect) would silently truncate the batch and be
    // answered with MAP_DONE.  With badbit in the exception mask, getline
    // rethrows the original exception and the typed-error paths below apply.
    fastq_text.exceptions(std::ios::badbit);
    FastqReadStream reads(fastq_text, lease->session->config().stream_batch,
                          phred_offset, "<wire>");

    FrameSinkBuf sam_sink(sock, FrameType::kResultSam,
                          options_.io_timeout_ms, bytes_sent_,
                          &digest.result_bytes, &slot.cancel);
    std::ostream sam_stream(&sam_sink);

    const PipelineResult result =
        lease->session->run(reads, nullptr, want_sam ? &sam_stream : nullptr);
    if (want_sam) {
      sam_sink.flush_frames();
      sam_sink.rethrow_if_failed();
    }

    // SNP calls: byte-identical to the offline CLI's --out file.  Rendered
    // with the locale-independent append API straight into the frame
    // buffer — no ostream between the calls and the socket.
    std::string tsv_text;
    append_snps_tsv(tsv_text, result.calls);
    for (std::size_t off = 0; off < tsv_text.size(); off += kChunkBytes) {
      const std::size_t n = std::min(kChunkBytes, tsv_text.size() - off);
      write_frame(sock, FrameType::kResultTsv,
                  std::string_view(tsv_text).substr(off, n),
                  options_.io_timeout_ms, &slot.cancel);
      bytes_sent_.fetch_add(n, std::memory_order_relaxed);
      serve_metrics().bytes_tx.inc(n);
      digest.result_bytes += n;
    }

    reads_total_.fetch_add(result.stats.reads_total,
                           std::memory_order_relaxed);
    reads_mapped_total_.fetch_add(result.stats.reads_mapped,
                                  std::memory_order_relaxed);

    digest.decode_seconds = result.decode_seconds;
    digest.map_stage_seconds = result.map_stage_seconds;
    digest.format_seconds = result.format_seconds;
    digest.splice_seconds = result.splice_seconds;
    digest.call_seconds = result.call_seconds;
    digest.reads_total = result.stats.reads_total;
    digest.reads_mapped = result.stats.reads_mapped;
    digest.calls = result.calls.size();
    digest.phmm_cells = result.stats.dp_cells;
    digest.fp32_recomputed = result.stats.fp32_recomputed_reads;
    const double kernel_seconds =
        result.stats.phmm_forward_seconds + result.stats.phmm_backward_seconds;
    digest.gcups = kernel_seconds > 0.0
                       ? static_cast<double>(result.stats.dp_cells) /
                             kernel_seconds / 1e9
                       : 0.0;

    // MAP_DONE: the per-stage timing summary mirrors the digest, so a v3
    // client sees where its request's time went without scraping anything.
    // v2 clients parse key=value lines and ignore keys they don't know.
    std::string done;
    done += u64_kv("reads_total", result.stats.reads_total);
    done += u64_kv("reads_mapped", result.stats.reads_mapped);
    done += u64_kv("calls", result.calls.size());
    done += u64_kv("batches", result.batches_decoded);
    done += u64_kv("in_flight_peak", result.reads_in_flight_peak);
    done += u64_kv("window_reads", window);
    done += "map_seconds=" + std::to_string(result.map_seconds) + "\n";
    done += dbl_kv("total_seconds", request_timer.seconds());
    done += dbl_kv("admission_wait_seconds", digest.admission_wait_seconds);
    done += dbl_kv("upload_wait_seconds", digest.upload_wait_seconds);
    done += dbl_kv("decode_seconds", digest.decode_seconds);
    done += dbl_kv("map_stage_seconds", digest.map_stage_seconds);
    // drain_seconds (the format+splice sum) predates the worker-format
    // refactor; v2/v3 clients already parse it, so it stays alongside the
    // split keys.
    done += dbl_kv("drain_seconds", digest.drain_seconds());
    done += dbl_kv("format_seconds", digest.format_seconds);
    done += dbl_kv("splice_seconds", digest.splice_seconds);
    done += dbl_kv("call_seconds", digest.call_seconds);
    done += u64_kv("upload_bytes", digest.upload_bytes);
    done += u64_kv("result_bytes", digest.result_bytes);
    done += u64_kv("phmm_cells", digest.phmm_cells);
    done += dbl_kv("gcups", digest.gcups);
    done += u64_kv("fp32_recomputed", digest.fp32_recomputed);
    done += "genome_id=" + lease->id + "\n";
    done += dbl_kv("index_load_seconds", lease->index_load_seconds);
    if (begin.trace_id != 0) {
      done += "trace_id=" + trace_id_hex(begin.trace_id) + "\n";
      done += "parent_span_id=" + trace_id_hex(begin.parent_span_id) + "\n";
    }
    write_frame(sock, FrameType::kMapDone, done, options_.io_timeout_ms,
                &slot.cancel);

    serve_metrics().request_seconds.observe(request_timer.seconds());
    finish_digest(0);
    return true;
  } catch (const WireError& e) {
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    if (e.code() == WireErrorCode::kShuttingDown &&
        slot.cancel.load(std::memory_order_relaxed)) {
      // The watchdog cancelled this request (deadline or budget); report
      // why, not the mechanism.
      const auto [code, msg] = cancel_reason(slot);
      send_error(sock, code, who + msg);
      finish_digest(static_cast<std::uint16_t>(code));
    } else {
      send_error(sock, e.code(), who + e.what());
      finish_digest(static_cast<std::uint16_t>(e.code()));
    }
    return false;
  } catch (const ParseError& e) {
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    send_error(sock, WireErrorCode::kParse, who + e.what());
    finish_digest(static_cast<std::uint16_t>(WireErrorCode::kParse));
    return false;
  } catch (const std::exception& e) {
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    send_error(sock, WireErrorCode::kInternal, who + e.what());
    finish_digest(static_cast<std::uint16_t>(WireErrorCode::kInternal));
    return false;
  }
}

void MappingServer::handle_shard_map(Socket& sock, ConnectionSlot& slot,
                                     const fleet::GenomeLease& lease,
                                     MapStats& stats,
                                     int effective_timeout_ms) {
  Timer request_timer;
  write_frame(sock, FrameType::kMapGo, "", options_.io_timeout_ms,
              &slot.cancel);

  // One workspace for the whole request: SHARD_READS batches arrive in
  // order and are scored synchronously on this thread with the scalar
  // double kernel — partials must be independent of this daemon's SIMD
  // and precision settings (read_mapper.hpp, score_reads_raw).
  MapperWorkspace ws;
  for (;;) {
    int timeout = options_.io_timeout_ms;
    if (effective_timeout_ms > 0) {
      const int remaining =
          effective_timeout_ms -
          static_cast<int>(request_timer.seconds() * 1000.0);
      if (remaining <= 0) {
        deadline_abandoned_total_.fetch_add(1, std::memory_order_relaxed);
        serve_metrics().deadline_abandoned_total.inc();
        throw WireError(WireErrorCode::kTimeout,
                        "shard request exceeded the " +
                            std::to_string(effective_timeout_ms) +
                            " ms deadline");
      }
      timeout = std::min(timeout, remaining);
    }
    std::optional<Frame> frame =
        read_frame(sock, options_.max_frame_bytes, timeout, &slot.cancel);
    if (!frame.has_value()) {
      throw WireError(WireErrorCode::kClosed,
                      "router disconnected mid-request");
    }
    if (frame->type == FrameType::kMapEnd) break;
    if (frame->type != FrameType::kShardReads) {
      throw WireError(WireErrorCode::kProtocol,
                      "expected SHARD_READS or MAP_END, got type " +
                          std::to_string(static_cast<int>(frame->type)));
    }
    bytes_received_.fetch_add(frame->payload.size(),
                              std::memory_order_relaxed);
    serve_metrics().bytes_rx.inc(frame->payload.size());

    const std::vector<Read> reads = fleet::deserialize_reads(frame->payload);
    const auto partials = lease->session->mapper().score_reads_raw(
        reads, ws, stats, lease->core_begin, lease->core_end);
    const std::string out = fleet::serialize_partials(partials);
    write_frame(sock, FrameType::kResultPartial, out, options_.io_timeout_ms,
                &slot.cancel);
    bytes_sent_.fetch_add(out.size(), std::memory_order_relaxed);
    serve_metrics().bytes_tx.inc(out.size());
  }

  std::string done;
  done += u64_kv("reads_total", stats.reads_total);
  done += u64_kv("candidates_evaluated", stats.candidates_evaluated);
  done += u64_kv("phmm_cells", stats.dp_cells);
  done += "genome_id=" + lease->id + "\n";
  done += dbl_kv("index_load_seconds", lease->index_load_seconds);
  done += u64_kv("shard_core_begin", lease->core_begin);
  done += u64_kv("shard_core_end", lease->core_end);
  write_frame(sock, FrameType::kMapDone, done, options_.io_timeout_ms,
              &slot.cancel);
}

}  // namespace gnumap::serve

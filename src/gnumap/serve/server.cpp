#include "gnumap/serve/server.hpp"

#include <algorithm>
#include <exception>
#include <istream>
#include <sstream>
#include <utility>

#include "gnumap/io/chunk_stream.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/io/read_stream.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/obs/metrics.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/util/log.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap::serve {

namespace {

/// Serve-side metric handles, resolved once (registry lookups are
/// mutex-protected; updates are plain atomics).
struct ServeMetrics {
  obs::Histogram& request_seconds;
  obs::Gauge& queue_depth;
  obs::Gauge& admitted_peak;
  obs::Counter& requests_total;
  obs::Counter& rejected_total;
  obs::Counter& errors_total;
  obs::Counter& bytes_rx;
  obs::Counter& bytes_tx;
  obs::Counter& connections_total;
  obs::Gauge& active_connections;
};

ServeMetrics& serve_metrics() {
  static ServeMetrics metrics{
      obs::registry().histogram(
          "gnumap_serve_request_seconds", obs::default_time_buckets(),
          "Wall-clock latency of MAP requests (MAP_BEGIN to MAP_DONE)"),
      obs::registry().gauge(
          "gnumap_serve_queue_depth",
          "Reads currently admitted into the serving window"),
      obs::registry().gauge(
          "gnumap_serve_admitted_reads_peak",
          "High-water mark of reads admitted into the serving window"),
      obs::registry().counter("gnumap_serve_requests_total",
                              "MAP requests accepted for processing"),
      obs::registry().counter(
          "gnumap_serve_rejected_total",
          "MAP requests refused with BUSY by admission control"),
      obs::registry().counter(
          "gnumap_serve_errors_total",
          "Requests or connections terminated with a typed ERROR frame"),
      obs::registry().counter("gnumap_serve_bytes_rx_total",
                              "Frame payload bytes received from clients"),
      obs::registry().counter("gnumap_serve_bytes_tx_total",
                              "Frame payload bytes sent to clients"),
      obs::registry().counter("gnumap_serve_connections_total",
                              "Client connections accepted"),
      obs::registry().gauge("gnumap_serve_active_connections",
                            "Currently open client connections"),
  };
  return metrics;
}

/// streambuf that flushes its buffer to the peer as frames of `type`
/// whenever it passes kChunkBytes (and on sync()).  Send failures are
/// latched instead of thrown: ostream formatting must not unwind through
/// the pipeline's drain loop, and the failure still surfaces — the read
/// side of a dead socket raises in the decoder, and handle_map rethrows
/// the latched error after run() returns.
class FrameSinkBuf final : public std::streambuf {
 public:
  FrameSinkBuf(Socket& sock, FrameType type, int timeout_ms,
               std::atomic<std::uint64_t>& bytes_sent)
      : sock_(sock),
        type_(type),
        timeout_ms_(timeout_ms),
        bytes_sent_(bytes_sent) {}

  /// Sends any buffered bytes as a final (possibly short) frame.
  void flush_frames() {
    if (error_) {
      buf_.clear();  // the peer is gone; don't buffer without bound
      return;
    }
    if (buf_.empty()) return;
    try {
      write_frame(sock_, type_, buf_, timeout_ms_);
      bytes_sent_.fetch_add(buf_.size(), std::memory_order_relaxed);
      serve_metrics().bytes_tx.inc(buf_.size());
    } catch (...) {
      error_ = std::current_exception();
    }
    buf_.clear();
  }

  void rethrow_if_failed() const {
    if (error_) std::rethrow_exception(error_);
  }

 protected:
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      buf_.push_back(traits_type::to_char_type(ch));
      if (buf_.size() >= kChunkBytes) flush_frames();
    }
    return error_ ? traits_type::eof() : ch;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    buf_.append(s, static_cast<std::size_t>(n));
    if (buf_.size() >= kChunkBytes) flush_frames();
    return n;
  }

  int sync() override {
    flush_frames();
    return error_ ? -1 : 0;
  }

 private:
  Socket& sock_;
  FrameType type_;
  int timeout_ms_;
  std::atomic<std::uint64_t>& bytes_sent_;
  std::string buf_;
  std::exception_ptr error_;
};

std::string u64_kv(const std::string& key, std::uint64_t value) {
  return key + "=" + std::to_string(value) + "\n";
}

/// Closing a socket with unread bytes pending makes the kernel send RST,
/// which can destroy a just-queued ERROR frame before the peer reads it.
/// Half-close instead and drain what the peer already sent (bounded), so
/// the typed error is actually deliverable.
void linger_close(Socket& sock) {
  try {
    sock.shutdown_write();
    char discard[4096];
    Timer elapsed;
    while (elapsed.seconds() < 2.0) {
      if (sock.recv_some(discard, sizeof discard, 500) == 0) break;
    }
  } catch (const WireError&) {
    // Timeout or reset: the peer had its chance.
  }
  sock.close();
}

}  // namespace

struct MappingServer::ConnectionSlot {
  std::thread thread;
  std::atomic<bool> done{false};
};

MappingServer::MappingServer(const Genome& genome,
                             const PipelineConfig& config,
                             const ServeOptions& options)
    : genome_(genome),
      options_(options),
      session_(std::make_unique<MappingSession>(genome, config)),
      listener_(std::make_unique<Listener>(options.port, options.bind_any)),
      admission_(options.admission_reads, options.per_connection_reads) {
  serve_metrics();  // register the gnumap_serve_* series up front
  GNUMAP_LOG(kInfo) << "gnumapd: index resident ("
                    << session_->index().num_entries() << " entries over "
                    << genome_.num_bases() << " bases), listening on port "
                    << listener_->port();
}

MappingServer::~MappingServer() {
  request_stop();
  wait();
}

std::uint16_t MappingServer::port() const { return listener_->port(); }

std::uint64_t MappingServer::request_window_reads() const {
  const auto& config = session_->config();
  const std::uint64_t threads =
      static_cast<std::uint64_t>(std::max(1, config.threads));
  const std::uint64_t queue_depth =
      std::max<std::uint64_t>(1, config.queue_depth);
  const std::uint64_t batch = std::max<std::uint32_t>(1, config.stream_batch);
  // The staged pipeline's documented in-flight peak bound (pipeline.hpp).
  return (2 * (queue_depth + threads) + 1) * batch;
}

void MappingServer::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void MappingServer::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited; no new slots can appear.
  std::vector<std::unique_ptr<ConnectionSlot>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (auto& slot : conns) {
    if (slot->thread.joinable()) slot->thread.join();
  }
}

void MappingServer::run() {
  start();
  wait();
}

void MappingServer::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
}

ServerStats MappingServer::stats() const {
  ServerStats s;
  s.connections_total = connections_total_.load(std::memory_order_relaxed);
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  s.requests_rejected = requests_rejected_.load(std::memory_order_relaxed);
  s.requests_failed = requests_failed_.load(std::memory_order_relaxed);
  s.reads_mapped_total = reads_mapped_total_.load(std::memory_order_relaxed);
  s.reads_total = reads_total_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  return s;
}

std::string MappingServer::stats_text() const {
  const ServerStats s = stats();
  std::string text;
  text += u64_kv("protocol_version", kProtocolVersion);
  text += u64_kv("genome_bases", genome_.num_bases());
  text += u64_kv("index_entries", session_->index().num_entries());
  text += u64_kv("admission_capacity_reads", admission_.capacity());
  text += u64_kv("admitted_reads", admission_.admitted());
  text += u64_kv("admitted_reads_peak", admission_.peak());
  text += u64_kv("request_window_reads", request_window_reads());
  text += u64_kv("active_connections",
                 static_cast<std::uint64_t>(
                     active_connections_.load(std::memory_order_relaxed)));
  text += u64_kv("connections_total", s.connections_total);
  text += u64_kv("requests_total", s.requests_total);
  text += u64_kv("requests_rejected", s.requests_rejected);
  text += u64_kv("requests_failed", s.requests_failed);
  text += u64_kv("reads_total", s.reads_total);
  text += u64_kv("reads_mapped_total", s.reads_mapped_total);
  text += u64_kv("bytes_received", s.bytes_received);
  text += u64_kv("bytes_sent", s.bytes_sent);
  return text;
}

void MappingServer::accept_loop() {
  while (!stopping()) {
    auto sock = listener_->accept(200, &stop_);
    if (!sock.has_value()) continue;

    // Reap finished handlers so conns_ stays proportional to the number of
    // live connections, not the number ever accepted.
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }

    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Typed refusal, not a silent close: the client can back off.  The
      // peer's HELLO is still unread, so a plain close would RST the queued
      // BUSY frame away — linger_close drains it first.
      try {
        write_frame(*sock, FrameType::kBusy,
                    encode_busy(options_.busy_retry_ms,
                                "connection limit reached"),
                    options_.io_timeout_ms);
      } catch (const WireError&) {
      }
      linger_close(*sock);
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      serve_metrics().rejected_total.inc();
      continue;
    }

    const int conn_id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().connections_total.inc();
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().active_connections.set(
        static_cast<double>(active_connections_.load()));

    auto slot = std::make_unique<ConnectionSlot>();
    ConnectionSlot* raw = slot.get();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(slot));
    }
    raw->thread = std::thread(
        [this, raw, conn_id](Socket conn) {
          handle_connection(std::move(conn), conn_id);
          admission_.forget_connection(conn_id);
          active_connections_.fetch_sub(1, std::memory_order_relaxed);
          serve_metrics().active_connections.set(
              static_cast<double>(active_connections_.load()));
          raw->done.store(true, std::memory_order_release);
        },
        std::move(*sock));
  }
  listener_->close();
}

void MappingServer::send_error(Socket& sock, WireErrorCode code,
                               const std::string& msg) {
  serve_metrics().errors_total.inc();
  try {
    write_frame(sock, FrameType::kError, encode_error(code, msg),
                options_.io_timeout_ms);
  } catch (const WireError&) {
    // Best effort: the peer may already be gone.
  }
}

void MappingServer::handle_connection(Socket sock, int conn_id) {
  try {
    // Handshake: exactly one HELLO with a matching protocol version.
    auto hello = read_frame(sock, options_.max_frame_bytes,
                            options_.io_timeout_ms, &stop_);
    if (!hello.has_value()) return;
    if (hello->type != FrameType::kHello) {
      send_error(sock, WireErrorCode::kProtocol,
                 "expected HELLO as the first frame");
      linger_close(sock);
      return;
    }
    const auto [version, client_name] = decode_hello(hello->payload);
    if (version != kProtocolVersion) {
      send_error(sock, WireErrorCode::kBadVersion,
                 "unsupported protocol version " + std::to_string(version) +
                     " (server speaks " + std::to_string(kProtocolVersion) +
                     ")");
      linger_close(sock);
      return;
    }
    write_frame(sock, FrameType::kHelloOk,
                encode_hello(kProtocolVersion,
                             "gnumapd genome_bases=" +
                                 std::to_string(genome_.num_bases()) +
                                 " index_entries=" +
                                 std::to_string(session_->index()
                                                    .num_entries())),
                options_.io_timeout_ms);
    GNUMAP_LOG(kDebug) << "serve: conn " << conn_id << " handshake ok ("
                       << client_name << ")";

    // Request loop.  Waiting for the next request honours the stop flag
    // (drain closes idle connections); a request in progress runs to
    // completion under its own deadline.
    for (;;) {
      std::optional<Frame> frame;
      try {
        frame = read_frame(sock, options_.max_frame_bytes,
                           /*timeout_ms=*/0, &stop_);
      } catch (const WireError& e) {
        if (e.code() == WireErrorCode::kShuttingDown) {
          send_error(sock, WireErrorCode::kShuttingDown,
                     "server is draining");
        } else if (e.code() != WireErrorCode::kClosed) {
          // e.g. an oversized frame header: answer with the typed error
          // and let the peer read it before the close.
          send_error(sock, e.code(), e.what());
          linger_close(sock);
        }
        return;
      }
      if (!frame.has_value()) return;  // clean disconnect

      switch (frame->type) {
        case FrameType::kMapBegin: {
          if (frame->payload.size() < 1) {
            send_error(sock, WireErrorCode::kBadFrame,
                       "MAP_BEGIN payload must carry a flags byte");
            linger_close(sock);
            return;
          }
          const auto flags =
              static_cast<std::uint8_t>(frame->payload[0]);
          if (!handle_map(sock, conn_id, flags)) {
            linger_close(sock);
            return;
          }
          break;
        }
        case FrameType::kStats:
          write_frame(sock, FrameType::kStatsOk, stats_text(),
                      options_.io_timeout_ms);
          break;
        case FrameType::kShutdown:
          write_frame(sock, FrameType::kShutdownOk, "",
                      options_.io_timeout_ms);
          GNUMAP_LOG(kInfo) << "serve: shutdown requested by conn "
                            << conn_id;
          request_stop();
          return;
        default:
          send_error(sock, WireErrorCode::kProtocol,
                     "unexpected frame type " +
                         std::to_string(static_cast<int>(frame->type)));
          linger_close(sock);
          return;
      }
    }
  } catch (const WireError& e) {
    // Transport failure or malformed traffic: answer if possible, close.
    send_error(sock, e.code(), e.what());
    linger_close(sock);
  } catch (const std::exception& e) {
    send_error(sock, WireErrorCode::kInternal, e.what());
    linger_close(sock);
  }
}

bool MappingServer::handle_map(Socket& sock, int conn_id,
                               std::uint8_t flags) {
  if (stopping()) {
    send_error(sock, WireErrorCode::kShuttingDown, "server is draining");
    return false;
  }

  // Admission: reserve this request's worst-case in-flight reads, or
  // answer BUSY (connection stays open so the client can retry).
  const std::uint64_t window = request_window_reads();
  if (!admission_.try_acquire(conn_id, window)) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().rejected_total.inc();
    write_frame(sock, FrameType::kBusy,
                encode_busy(options_.busy_retry_ms,
                            "admission window full (" +
                                std::to_string(admission_.admitted()) + "/" +
                                std::to_string(admission_.capacity()) +
                                " reads in flight)"),
                options_.io_timeout_ms);
    return true;
  }
  serve_metrics().queue_depth.set(static_cast<double>(admission_.admitted()));
  serve_metrics().admitted_peak.set(static_cast<double>(admission_.peak()));

  struct Release {
    MappingServer& server;
    int conn_id;
    std::uint64_t window;
    ~Release() {
      server.admission_.release(conn_id, window);
      serve_metrics().queue_depth.set(
          static_cast<double>(server.admission_.admitted()));
    }
  } release{*this, conn_id, window};

  requests_total_.fetch_add(1, std::memory_order_relaxed);
  serve_metrics().requests_total.inc();
  const bool want_sam = (flags & kFlagWantSam) != 0;
  const int phred_offset = (flags & kFlagPhred64) != 0 ? kPhred64 : kPhred33;

  GNUMAP_TRACE_SPAN("serve_request", "serve");
  Timer request_timer;
  write_frame(sock, FrameType::kMapGo, "", options_.io_timeout_ms);

  try {
    // The wire -> pipeline seam: READS_CHUNK frames are pulled off the
    // socket only as the pipeline's decoder wants more bytes, so the
    // BatchQueue's backpressure reaches all the way back to the client.
    bool saw_end = false;
    ChunkSourceBuf chunk_buf([&](std::string& chunk) -> bool {
      if (saw_end) return false;
      int timeout = options_.io_timeout_ms;
      if (options_.request_timeout_ms > 0) {
        const int remaining =
            options_.request_timeout_ms -
            static_cast<int>(request_timer.seconds() * 1000.0);
        if (remaining <= 0) {
          throw WireError(WireErrorCode::kTimeout,
                          "request exceeded the " +
                              std::to_string(options_.request_timeout_ms) +
                              " ms deadline");
        }
        timeout = std::min(timeout, remaining);
      }
      auto frame = read_frame(sock, options_.max_frame_bytes, timeout);
      if (!frame.has_value()) {
        throw WireError(WireErrorCode::kClosed,
                        "peer disconnected mid-request");
      }
      if (frame->type == FrameType::kMapEnd) {
        saw_end = true;
        return false;
      }
      if (frame->type != FrameType::kReadsChunk) {
        throw WireError(WireErrorCode::kProtocol,
                        "expected READS_CHUNK or MAP_END, got type " +
                            std::to_string(static_cast<int>(frame->type)));
      }
      bytes_received_.fetch_add(frame->payload.size(),
                                std::memory_order_relaxed);
      serve_metrics().bytes_rx.inc(frame->payload.size());
      chunk = std::move(frame->payload);
      return true;
    });
    std::istream fastq_text(&chunk_buf);
    // istream operations swallow streambuf exceptions into badbit, which
    // getline reports as plain EOF — a WireError thrown mid-upload (timeout,
    // oversized frame, disconnect) would silently truncate the batch and be
    // answered with MAP_DONE.  With badbit in the exception mask, getline
    // rethrows the original exception and the typed-error paths below apply.
    fastq_text.exceptions(std::ios::badbit);
    FastqReadStream reads(fastq_text, session_->config().stream_batch,
                          phred_offset, "<wire>");

    FrameSinkBuf sam_sink(sock, FrameType::kResultSam,
                          options_.io_timeout_ms, bytes_sent_);
    std::ostream sam_stream(&sam_sink);

    const PipelineResult result =
        session_->run(reads, nullptr, want_sam ? &sam_stream : nullptr);
    if (want_sam) {
      sam_sink.flush_frames();
      sam_sink.rethrow_if_failed();
    }

    // SNP calls: byte-identical to the offline CLI's --out file.
    std::ostringstream tsv;
    write_snps_tsv(tsv, result.calls);
    const std::string tsv_text = tsv.str();
    for (std::size_t off = 0; off < tsv_text.size(); off += kChunkBytes) {
      const std::size_t n = std::min(kChunkBytes, tsv_text.size() - off);
      write_frame(sock, FrameType::kResultTsv,
                  std::string_view(tsv_text).substr(off, n),
                  options_.io_timeout_ms);
      bytes_sent_.fetch_add(n, std::memory_order_relaxed);
      serve_metrics().bytes_tx.inc(n);
    }

    reads_total_.fetch_add(result.stats.reads_total,
                           std::memory_order_relaxed);
    reads_mapped_total_.fetch_add(result.stats.reads_mapped,
                                  std::memory_order_relaxed);

    std::string done;
    done += u64_kv("reads_total", result.stats.reads_total);
    done += u64_kv("reads_mapped", result.stats.reads_mapped);
    done += u64_kv("calls", result.calls.size());
    done += u64_kv("batches", result.batches_decoded);
    done += u64_kv("in_flight_peak", result.reads_in_flight_peak);
    done += u64_kv("window_reads", window);
    done += "map_seconds=" + std::to_string(result.map_seconds) + "\n";
    write_frame(sock, FrameType::kMapDone, done, options_.io_timeout_ms);

    serve_metrics().request_seconds.observe(request_timer.seconds());
    GNUMAP_LOG(kInfo) << "serve: conn " << conn_id << " mapped "
                      << result.stats.reads_mapped << "/"
                      << result.stats.reads_total << " reads, "
                      << result.calls.size() << " calls in "
                      << request_timer.seconds() << " s";
    return true;
  } catch (const WireError& e) {
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    send_error(sock, e.code(), e.what());
    return false;
  } catch (const ParseError& e) {
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    send_error(sock, WireErrorCode::kParse, e.what());
    return false;
  } catch (const std::exception& e) {
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    send_error(sock, WireErrorCode::kInternal, e.what());
    return false;
  }
}

}  // namespace gnumap::serve

// The long-lived mapping server behind gnumapd.
//
// A MappingServer owns one MappingSession — the genome and hash index are
// built at construction and stay hot for the process lifetime — plus a TCP
// listener and one handler thread per connection.  Each MAP request feeds
// the wire's READS_CHUNK frames through a ChunkSourceBuf-backed
// FastqReadStream straight into the staged pipeline, so socket reads are
// pulled by the pipeline's decoder with its normal backpressure, and the
// admission window (admission.hpp) bounds total in-flight reads across all
// concurrent requests; requests that do not fit are answered BUSY with a
// queue-depth-scaled retry hint.  Results stream back as RESULT_* frames
// whose concatenated bytes are identical to the offline CLI's outputs for
// the same input.
//
// Robustness: malformed, corrupt (CRC), or oversized frames, FASTQ parse
// failures, and idle peers get a typed ERROR frame and a closed connection
// — never a dead server.  Every request runs under a deadline that is the
// tighter of the server's request_timeout_ms and the client's MAP_BEGIN
// deadline; a watchdog thread evicts connections stalled past that
// deadline (a peer that stopped reading results can otherwise pin a
// handler in send) and connections over their lifetime budget.
// request_stop() (wired to SIGINT/SIGTERM by gnumapd, or to the SHUTDOWN
// frame) drains: the listener stops accepting, in-flight requests finish,
// idle connections close, then wait() returns.  HEALTH probes — allowed
// even before HELLO — report readiness without consuming a request slot.
//
// Chaos drills: ServeOptions::fault_plan (gnumapd --fault-plan /
// GNUMAP_WIRE_FAULT_PLAN) attaches a fresh deterministic fault injector
// (fault_shim.hpp) to every accepted connection, so eviction, retry, and
// corruption paths can be exercised against a live server.
//
// Observability (docs/OBSERVABILITY.md): gnumap_serve_* metrics — request
// latency histogram, admitted-reads and queue-depth gauges, rejected,
// error, eviction, corrupt-frame, and deadline-abandoned counters, bytes
// on the wire — plus serve_request trace spans tagged with connection and
// request ids and (protocol v3) the client's trace id.  Every finished
// request leaves a RequestDigest (digest.hpp) in a recent-requests ring
// and one structured request_digest log line; MAP_DONE carries the same
// per-stage timing summary back to the client.  ServeOptions::admin_port
// (default off) additionally starts an embedded admin HTTP endpoint
// (admin_http.hpp) serving /metrics, /healthz, /statusz, and /tracez for
// live fleet introspection.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gnumap/core/config.hpp"
#include "gnumap/core/session.hpp"
#include "gnumap/fleet/registry.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/serve/admission.hpp"
#include "gnumap/serve/digest.hpp"
#include "gnumap/serve/fault_shim.hpp"
#include "gnumap/serve/socket.hpp"
#include "gnumap/serve/wire.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap::serve {

class AdminHttpServer;

struct ServeOptions {
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Bind 0.0.0.0 instead of loopback.
  bool bind_any = false;
  /// Concurrent connections; further accepts get BUSY and are closed.
  int max_connections = 16;
  /// Admission window: total reads that may be in flight across all
  /// requests at once (each request reserves its worst-case pipeline
  /// in-flight bound up front).
  std::uint64_t admission_reads = 1u << 20;
  /// Max window share one connection may hold (0 = whole window).
  std::uint64_t per_connection_reads = 0;
  /// Largest accepted frame payload.
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-frame socket deadline: a peer silent this long mid-request is
  /// timed out with a typed error.
  int io_timeout_ms = 30'000;
  /// Whole-request deadline (MAP_BEGIN to MAP_DONE; 0 = unlimited).  The
  /// effective deadline is the tighter of this and the client's MAP_BEGIN
  /// deadline_ms.
  int request_timeout_ms = 300'000;
  /// Base hint sent with BUSY responses; scaled up with queue depth
  /// (capped at busy_retry_max_ms) so a saturated server spreads retries
  /// out instead of inviting a thundering herd.
  std::uint32_t busy_retry_ms = 250;
  /// Ceiling for the queue-depth-scaled BUSY retry hint.
  std::uint32_t busy_retry_max_ms = 10'000;
  /// Lifetime budget per connection in seconds (0 = unlimited); the
  /// watchdog evicts connections older than this with a typed kEvicted.
  double max_connection_seconds = 0.0;
  /// Received-byte budget per connection (0 = unlimited); exceeding it
  /// mid-upload yields a typed kEvicted.
  std::uint64_t max_connection_bytes = 0;
  /// Deterministic wire fault plan applied to every accepted connection
  /// (and the listener, for accept-delay events).  Empty = no faults.
  WireFaultPlan fault_plan;
  /// Embedded admin HTTP endpoint (admin_http.hpp): -1 disables it (no
  /// socket is opened), 0 picks an ephemeral port (read back via
  /// MappingServer::admin_port()), otherwise the fixed port to bind.
  /// Binds loopback unless bind_any is also set.
  int admin_port = -1;
  /// Most recent request digests retained for /tracez and STATS.
  std::size_t digest_ring_capacity = 256;

  // --- fleet registry (multi-genome daemons; see fleet/registry.hpp) ---
  /// Global ceiling on resident genome+index bytes across the registry
  /// (0 = unlimited).  Exceeding it evicts idle genomes LRU-first; when
  /// nothing can be evicted the request gets a typed kEvicted ERROR.
  std::uint64_t registry_memory_budget_bytes = 0;
  /// Retry hint carried by registry kEvicted ERRORs.
  std::uint32_t evicted_retry_ms = 2'000;
  /// Per-genome admission window in reads (0 = same as admission_reads).
  std::uint64_t per_genome_admission_reads = 0;
  /// Shard mode: this daemon owns segment shard_index of shard_count
  /// (shard_index < 0 = whole-genome daemon).  See fleet/registry.hpp.
  int shard_index = -1;
  int shard_count = 0;
  /// Longest read the shard overlap margin must absorb.
  std::uint32_t shard_max_read_len = 512;
};

/// Rolled-up service counters (also exported as gnumap_serve_* metrics;
/// this struct is the STATS frame's source).
struct ServerStats {
  std::uint64_t connections_total = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t requests_failed = 0;
  std::uint64_t reads_mapped_total = 0;
  std::uint64_t reads_total = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t evictions_total = 0;
  std::uint64_t corrupt_frames_total = 0;
  std::uint64_t deadline_abandoned_total = 0;
};

class MappingServer {
 public:
  /// Builds the resident session (the expensive index build happens here)
  /// and binds the listener; throws on bind failure.  `genome` must
  /// outlive the server.  The genome is registered under the id "default"
  /// and pinned (never evicted).
  MappingServer(const Genome& genome, const PipelineConfig& config,
                const ServeOptions& options);

  /// Multi-genome daemon: one resident session per registry spec, loaded
  /// lazily and evicted LRU-first under the memory budget.  The first spec
  /// is the default genome (loaded eagerly so the daemon is serving-ready
  /// when the constructor returns — the fleet instant-start contract when
  /// the spec points at an mmap index file).
  MappingServer(std::vector<fleet::GenomeSpec> genomes,
                const PipelineConfig& config, const ServeOptions& options);
  ~MappingServer();

  MappingServer(const MappingServer&) = delete;
  MappingServer& operator=(const MappingServer&) = delete;

  /// The bound port (useful with ServeOptions::port == 0).
  std::uint16_t port() const;

  /// Starts the accept loop and watchdog on background threads and returns.
  void start();

  /// Blocks until the server has fully stopped (all handlers joined).
  void wait();

  /// start() + wait().
  void run();

  /// Begins a graceful drain; idempotent and safe from any thread.  The
  /// SHUTDOWN frame and gnumapd's signal handlers call this.
  void request_stop();

  bool stopping() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Genome facts for the daemon's default genome, snapshotted at
  /// startup.  The server holds no lease, so the default genome stays
  /// evictable under a registry memory budget; bases/entries are
  /// immutable per genome so the snapshot never goes stale.
  std::uint64_t default_genome_bases() const { return default_genome_bases_; }
  std::uint64_t default_index_entries() const {
    return default_index_entries_;
  }

  /// The genome registry behind this daemon.
  const fleet::GenomeRegistry& registry() const { return *registry_; }

  /// Snapshot of the rolled-up counters.
  ServerStats stats() const;

  /// Worst-case in-flight reads one request reserves from the admission
  /// window: the staged pipeline's documented peak for this config.
  std::uint64_t request_window_reads() const;

  /// The admin endpoint's bound port, or -1 when ServeOptions::admin_port
  /// left it disabled (no admin socket exists then).
  int admin_port() const;

  /// One row of the live connection roster, as served at /statusz.
  struct ConnectionInfo {
    int conn_id = -1;
    std::string peer;
    bool in_request = false;
    bool cancelled = false;  ///< watchdog tripped cancel (drain/eviction)
    std::uint64_t rx_bytes = 0;
    double age_seconds = 0.0;
  };

  /// Snapshot of every live connection (taken under the roster mutex).
  std::vector<ConnectionInfo> connection_table() const;

  /// Recent per-request latency digests (admin /tracez + STATS surface).
  const DigestRing& digests() const { return digests_; }

  /// The STATS / HEALTH key=value payloads; the admin endpoint reuses
  /// health_text() verbatim at /healthz.
  std::string stats_text() const;
  std::string health_text() const;

  /// The /statusz JSON document: build identity, genome/session facts,
  /// admission occupancy, rolled-up counters, and the connection table.
  std::string statusz_json() const;

 private:
  struct ConnectionSlot;

  void accept_loop();
  /// Scans live connections every ~100 ms: cancels idle connections once a
  /// drain begins, evicts connections past their lifetime budget, and
  /// abandons requests whose deadline has expired even when the handler is
  /// wedged in a blocking send (peer stopped reading).  Also reaps
  /// finished handler threads so wait() converges.
  void watchdog_loop();
  void handle_connection(Socket sock, ConnectionSlot& slot);
  /// One MAP transaction after its MAP_BEGIN frame; returns false when the
  /// connection should close.  Resolves the genome id against the registry
  /// (kProtocol for unknown ids, kEvicted + retry hint when the budget
  /// refuses) and dispatches shard-partial requests to handle_shard_map.
  bool handle_map(Socket& sock, ConnectionSlot& slot,
                  const MapBeginInfo& begin);
  /// The kFlagShardPartials request body: SHARD_READS batches scored with
  /// score_reads_raw over the shard's core diagonal range, answered with
  /// RESULT_PARTIAL frames (fleet/partials.hpp).  Runs after MAP_GO.
  void handle_shard_map(Socket& sock, ConnectionSlot& slot,
                        const fleet::GenomeLease& lease, MapStats& stats,
                        int effective_timeout_ms);
  void send_error(Socket& sock, WireErrorCode code, const std::string& msg);
  /// Maps a watchdog cancellation on `slot` to the typed error the peer
  /// should see (eviction, abandoned deadline, or plain drain).
  std::pair<WireErrorCode, std::string> cancel_reason(
      const ConnectionSlot& slot) const;
  /// BUSY retry hint scaled by how many request windows are already
  /// admitted, capped at busy_retry_max_ms.
  std::uint32_t busy_retry_hint() const;

  ServeOptions options_;
  std::unique_ptr<fleet::GenomeRegistry> registry_;
  /// Startup snapshot of the default genome (the ctor loads it once and
  /// releases the lease so a memory budget can still evict it later).
  std::uint64_t default_genome_bases_ = 0;
  std::uint64_t default_index_entries_ = 0;
  double default_index_load_seconds_ = 0.0;
  std::unique_ptr<Listener> listener_;
  AdmissionController admission_;
  DigestRing digests_;
  std::unique_ptr<AdminHttpServer> admin_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> watchdog_stop_{false};
  std::thread accept_thread_;
  std::thread watchdog_thread_;
  Timer uptime_;

  mutable std::mutex conns_mutex_;
  std::vector<std::unique_ptr<ConnectionSlot>> conns_;
  std::atomic<int> active_connections_{0};
  std::atomic<int> next_conn_id_{0};
  std::atomic<std::uint64_t> next_request_id_{0};

  // Rolled-up counters (mirrored into the obs registry as they change).
  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> requests_rejected_{0};
  std::atomic<std::uint64_t> requests_failed_{0};
  std::atomic<std::uint64_t> reads_mapped_total_{0};
  std::atomic<std::uint64_t> reads_total_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> evictions_total_{0};
  std::atomic<std::uint64_t> corrupt_frames_total_{0};
  std::atomic<std::uint64_t> deadline_abandoned_total_{0};
};

}  // namespace gnumap::serve

// Client side of the gnumap serving protocol (wire.hpp).
//
// MappingClient connects, performs the HELLO handshake, and then issues
// MAP / STATS / SHUTDOWN transactions over the one connection.  map() is
// the interesting call: FASTQ text is pushed as READS_CHUNK frames from a
// background sender thread while the calling thread consumes RESULT_*
// frames — the two directions must run concurrently, because the server
// streams results as the pipeline drains, long before the upload finishes.
// BUSY answers to MAP_BEGIN are retried with the server's hint (no reads
// have been sent at that point, so a retry costs nothing).
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>

#include "gnumap/serve/socket.hpp"
#include "gnumap/serve/wire.hpp"

namespace gnumap::serve {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Per-frame socket deadline for handshake and uploads.
  int io_timeout_ms = 30'000;
  /// Deadline while waiting for the next RESULT_* frame (mapping time).
  int result_timeout_ms = 300'000;
  /// How many BUSY answers to absorb before giving up (each waits the
  /// server's retry hint).
  int busy_retries = 10;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Free-text client name sent in HELLO (shows up in server logs).
  std::string name = "gnumap-client";
};

/// Result of one MAP transaction.
struct MapOutcome {
  /// True when the server answered BUSY `busy_retries + 1` times and the
  /// request was never admitted (stats is empty in that case).
  bool busy = false;
  /// Parsed MAP_DONE payload (reads_total, reads_mapped, calls, batches,
  /// in_flight_peak, window_reads, map_seconds).
  std::map<std::string, std::string> stats;
  std::uint64_t tsv_bytes = 0;
  std::uint64_t sam_bytes = 0;
};

class MappingClient {
 public:
  /// Connects and completes the HELLO handshake; throws WireError on
  /// refusal (including a BUSY connection-limit answer).
  explicit MappingClient(const ClientOptions& options);

  MappingClient(const MappingClient&) = delete;
  MappingClient& operator=(const MappingClient&) = delete;

  /// Server banner from HELLO_OK.
  const std::string& banner() const { return banner_; }

  /// Maps the FASTQ text readable from `fastq`.  SNP calls (TSV, identical
  /// to the offline CLI's --out bytes) are written to `tsv_out`; when
  /// `sam_out` is non-null the request also asks for SAM records and
  /// writes them there (identical to --sam bytes).  Throws WireError on
  /// typed server errors or transport failure.
  MapOutcome map(std::istream& fastq, std::ostream& tsv_out,
                 std::ostream* sam_out = nullptr, bool phred64 = false);

  /// STATS round trip: the server's key=value counter snapshot.
  std::string stats();

  /// Asks the server to drain and exit (SHUTDOWN / SHUTDOWN_OK).
  void shutdown_server();

  void close() { sock_.close(); }

 private:
  ClientOptions options_;
  Socket sock_;
  std::string banner_;
};

/// Parses "key=value\n" lines (MAP_DONE and STATS_OK payloads).
std::map<std::string, std::string> parse_kv_lines(std::string_view text);

}  // namespace gnumap::serve

// Client side of the gnumap serving protocol (wire.hpp).
//
// MappingClient connects, performs the HELLO handshake (accepting any
// negotiated version the build can speak), and then issues MAP / STATS /
// HEALTH / SHUTDOWN transactions over the one connection.  map() is the
// interesting call: FASTQ text is pushed as READS_CHUNK frames from a
// background sender thread while the calling thread consumes RESULT_*
// frames — the two directions must run concurrently, because the server
// streams results as the pipeline drains, long before the upload finishes.
//
// Resilience: BUSY answers and (when connect_retries > 0) failed connects
// are retried under jittered capped exponential backoff — each sleep is at
// least the server's retry hint, doubled per consecutive retry, scaled by
// a uniform [0.5, 1.0] jitter so a herd of clients spreads out, and
// bounded by a cumulative backoff budget.  A transport failure mid-map()
// (peer reset, CRC-corrupt reply) triggers an automatic
// reconnect-and-retry when the request is still idempotent: the fastq
// stream can be rewound and no result bytes were delivered yet.  The whole
// call runs under an optional hard deadline that is also sent to the
// server in MAP_BEGIN, so abandoned work is abandoned on both ends.
// MapOutcome reports the attempt/backoff accounting.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <random>
#include <string>

#include "gnumap/serve/fault_shim.hpp"
#include "gnumap/serve/socket.hpp"
#include "gnumap/serve/wire.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap::serve {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Per-frame socket deadline for handshake and uploads.
  int io_timeout_ms = 30'000;
  /// Deadline while waiting for the next RESULT_* frame (mapping time).
  int result_timeout_ms = 300'000;
  /// How many BUSY answers to absorb per map() before giving up.
  int busy_retries = 10;
  /// Extra connect/handshake attempts (constructor and mid-map()
  /// reconnects); 0 = fail on the first refusal, preserving fail-fast
  /// probes.
  int connect_retries = 0;
  /// Reconnect-and-retry attempts after a mid-map() transport failure
  /// (reset, corrupt reply).  A retry happens only while the request is
  /// idempotent: the fastq stream rewinds and no result bytes arrived.
  int transport_retries = 2;
  /// Hard wall-clock deadline for one map() call — backoff sleeps,
  /// reconnects, upload, and mapping time included (0 = unlimited).  Also
  /// sent in MAP_BEGIN so the server abandons work nobody waits for.
  std::uint32_t deadline_ms = 0;
  /// First backoff sleep; doubles per consecutive retry.
  std::uint32_t backoff_base_ms = 50;
  /// Ceiling for a single backoff sleep (a larger server hint wins).
  std::uint32_t backoff_max_ms = 2'000;
  /// Cumulative backoff budget per call (0 = unlimited); once spent, the
  /// next retry gives up instead of sleeping.
  std::uint32_t backoff_total_ms = 60'000;
  /// Jitter seed; 0 draws one from std::random_device (tests pin it).
  std::uint64_t backoff_seed = 0;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Deterministic wire fault plan applied to this client's own sends
  /// (chaos tests: batter the server mid-frame, then exercise the
  /// reconnect path).  One injector serves the client's whole lifetime,
  /// so a one-shot fault fires once and the retry that follows succeeds.
  WireFaultPlan fault_plan;
  /// Free-text client name sent in HELLO (shows up in server logs).
  std::string name = "gnumap-client";
  /// Trace id sent in MAP_BEGIN on a v3 connection; 0 draws a fresh random
  /// id per map() call (tests pin it for byte-exact round-trip checks).
  /// The id survives mid-call reconnects — it names the logical request.
  std::uint64_t trace_id = 0;
  /// Registry genome id sent in MAP_BEGIN ("" = the server's default
  /// genome).  Requires a v4 connection; map() throws
  /// WireError(kBadVersion) when set against an older server rather than
  /// silently mapping to its default genome.
  std::string genome_id;
};

/// Result of one MAP transaction, including retry accounting.
struct MapOutcome {
  /// True when the request was never admitted: every MAP_BEGIN drew BUSY
  /// until the retry/backoff budget ran out (stats is empty then).
  bool busy = false;
  /// Parsed MAP_DONE payload (reads_total, reads_mapped, calls, batches,
  /// in_flight_peak, window_reads, map_seconds, plus the server's
  /// per-stage timing summary — total_seconds, decode_seconds,
  /// map_stage_seconds, drain_seconds (= format_seconds + splice_seconds,
  /// also present split), gcups, ... — and, on a traced v3
  /// request, the echoed trace_id/parent_span_id as hex strings).
  std::map<std::string, std::string> stats;
  std::uint64_t tsv_bytes = 0;
  std::uint64_t sam_bytes = 0;
  /// MAP_BEGIN round trips issued (1 = admitted on the first try).
  int attempts = 0;
  /// BUSY answers absorbed across all attempts.
  int busy_answers = 0;
  /// Connections re-established after a transport failure.
  int reconnects = 0;
  /// Total milliseconds slept in retry backoff.
  std::uint64_t backoff_ms = 0;
  /// Trace id this request carried in MAP_BEGIN (0 on a v2 connection,
  /// where the field does not exist on the wire).
  std::uint64_t trace_id = 0;
};

class MappingClient {
 public:
  /// Connects and completes the HELLO handshake, retrying refused or
  /// failed connects up to connect_retries times under backoff; throws
  /// WireError once the budget is spent.
  explicit MappingClient(const ClientOptions& options);

  MappingClient(const MappingClient&) = delete;
  MappingClient& operator=(const MappingClient&) = delete;

  /// Server banner from HELLO_OK.
  const std::string& banner() const { return banner_; }
  /// Protocol version agreed during the handshake.
  std::uint16_t negotiated_version() const { return version_; }

  /// Maps the FASTQ text readable from `fastq`.  SNP calls (TSV, identical
  /// to the offline CLI's --out bytes) are written to `tsv_out`; when
  /// `sam_out` is non-null the request also asks for SAM records and
  /// writes them there (identical to --sam bytes).  Throws WireError on
  /// typed server errors, transport failure past the retry budget, or the
  /// client deadline.
  MapOutcome map(std::istream& fastq, std::ostream& tsv_out,
                 std::ostream* sam_out = nullptr, bool phred64 = false);

  /// STATS round trip: the server's key=value counter snapshot.
  std::string stats();

  /// HEALTH round trip: the server's key=value readiness snapshot.
  std::string health();

  /// Asks the server to drain and exit (SHUTDOWN / SHUTDOWN_OK).
  void shutdown_server();

  void close() { sock_.close(); }

 private:
  /// One connect + HELLO attempt.  Returns the retry hint when the server
  /// answered BUSY (connection limit); throws on other failures.
  std::optional<std::uint32_t> connect_and_handshake();
  /// Connect with up to connect_retries backoff rounds, accounting into
  /// `outcome` when given.
  void establish(MapOutcome* outcome, const Timer& call_timer);
  /// One MAP transaction on the live connection.
  void map_once(std::istream& fastq, std::ostream& tsv_out,
                std::ostream* sam_out, std::uint8_t flags,
                std::uint64_t trace_id, std::uint64_t parent_span_id,
                MapOutcome& outcome, const Timer& call_timer);
  /// Sleeps the next jittered exponential delay (at least `hint_ms`).
  /// Returns false — without sleeping — when the cumulative backoff budget
  /// or the call deadline would be exceeded.
  bool backoff_sleep(std::uint32_t hint_ms, int consecutive,
                     MapOutcome& outcome, const Timer& call_timer);
  /// `base_ms` clipped to what remains of the call deadline; throws
  /// WireError(kTimeout) once the deadline has passed.
  int bounded_timeout(int base_ms, const Timer& call_timer) const;

  ClientOptions options_;
  Socket sock_;
  std::string banner_;
  std::uint16_t version_ = 0;
  std::mt19937_64 rng_;
  std::shared_ptr<WireFaultInjector> injector_;
};

/// Parses "key=value\n" lines (MAP_DONE and STATS_OK payloads).
std::map<std::string, std::string> parse_kv_lines(std::string_view text);

}  // namespace gnumap::serve

// Admission control for the mapping service: a read-denominated window
// shared by every connection, taken at MAP_BEGIN and returned when the
// request finishes.
//
// Each request reserves its worst-case in-flight read count up front (the
// staged pipeline's documented bound, see PipelineResult); if the
// reservation does not fit the remaining window the request is refused —
// the server answers BUSY with a retry hint instead of buffering without
// bound.  Two fairness rules temper the window:
//
//  * always-admit-one: an idle server admits any request, even one whose
//    reservation alone exceeds the window, so no configuration can
//    deadlock the service;
//  * per-connection cap: a connection may hold at most `per_conn_cap`
//    reads of the window (0 = uncapped), so one aggressive client cannot
//    occupy the whole window while others starve.
//
// Decisions are O(1) under one mutex; the controller never blocks.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

namespace gnumap::serve {

class AdmissionController {
 public:
  explicit AdmissionController(std::uint64_t capacity_reads,
                               std::uint64_t per_conn_cap = 0)
      : capacity_(capacity_reads), per_conn_cap_(per_conn_cap) {}

  /// Tries to reserve `reads` for `conn_id`.  Returns false => BUSY.
  bool try_acquire(int conn_id, std::uint64_t reads) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool idle = admitted_ == 0;
    if (!idle && admitted_ + reads > capacity_) return false;
    if (per_conn_cap_ != 0 && !idle &&
        held_[conn_id] + reads > per_conn_cap_) {
      return false;
    }
    admitted_ += reads;
    held_[conn_id] += reads;
    if (admitted_ > peak_) peak_ = admitted_;
    return true;
  }

  /// Returns a reservation made by try_acquire.
  void release(int conn_id, std::uint64_t reads) {
    std::lock_guard<std::mutex> lock(mutex_);
    admitted_ -= reads < admitted_ ? reads : admitted_;
    auto it = held_.find(conn_id);
    if (it != held_.end()) {
      it->second -= reads < it->second ? reads : it->second;
      if (it->second == 0) held_.erase(it);
    }
  }

  /// Drops the per-connection ledger entry when a connection closes.
  void forget_connection(int conn_id) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = held_.find(conn_id);
    if (it != held_.end()) {
      admitted_ -= it->second < admitted_ ? it->second : admitted_;
      held_.erase(it);
    }
  }

  std::uint64_t admitted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return admitted_;
  }

  /// High-water mark of admitted(); the load test asserts it never exceeds
  /// capacity() (plus one always-admit-one oversized request).
  std::uint64_t peak() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
  }

  std::uint64_t capacity() const { return capacity_; }

 private:
  const std::uint64_t capacity_;
  const std::uint64_t per_conn_cap_;
  mutable std::mutex mutex_;
  std::uint64_t admitted_ = 0;
  std::uint64_t peak_ = 0;
  std::map<int, std::uint64_t> held_;
};

}  // namespace gnumap::serve

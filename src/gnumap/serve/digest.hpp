// Per-request latency digests for the mapping service: one compact record
// per finished MAP request, kept in a fixed-capacity ring of the most
// recent N so a live daemon can answer "what were the slowest recent
// requests, and where did their time go?" without tracing enabled.
//
// Each digest breaks a request's wall clock into the phases an operator
// actually pages on: admission wait, time blocked on the client's upload,
// the pipeline's decode/map/drain stage seconds, SNP calling, plus the
// PHMM work done (DP cells, GCUPS, fp32 recomputes) and the byte counts
// both ways.  The ring backs three surfaces (docs/OBSERVABILITY.md):
// the admin endpoint's /tracez "slowest recent requests" table, the STATS
// frame's digest_* lines, and one structured request_digest log line
// emitted as each request finishes.
//
// Lock discipline: one short mutex-guarded copy per request (requests run
// for milliseconds to minutes; a push is nanoseconds) — deliberately not
// on any per-read or per-frame path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gnumap::serve {

struct RequestDigest {
  std::uint64_t request_id = 0;
  int conn_id = -1;
  std::uint64_t trace_id = 0;  ///< 0 = request was not traced (pre-v3 peer)
  std::string genome_id;       ///< registry id the request mapped against
  /// 0 = completed; otherwise the WireErrorCode the request died with.
  std::uint16_t error_code = 0;

  double total_seconds = 0.0;           ///< MAP_BEGIN to MAP_DONE/ERROR
  double admission_wait_seconds = 0.0;  ///< inside the admission decision
  double upload_wait_seconds = 0.0;     ///< blocked on READS_CHUNK frames
  double decode_seconds = 0.0;          ///< pipeline decoder stage
  double map_stage_seconds = 0.0;       ///< scoring, summed across workers
  double format_seconds = 0.0;          ///< output rendering, across workers
  double splice_seconds = 0.0;          ///< ordered drain's byte splice
  double call_seconds = 0.0;            ///< SNP calling

  /// The pre-split "ordered drain stage" total, kept for the wire
  /// (MAP_DONE drain_seconds key) and /tracez consumers.
  double drain_seconds() const { return format_seconds + splice_seconds; }

  std::uint64_t upload_bytes = 0;  ///< READS_CHUNK payload bytes received
  std::uint64_t result_bytes = 0;  ///< RESULT_TSV + RESULT_SAM bytes sent
  std::uint64_t reads_total = 0;
  std::uint64_t reads_mapped = 0;
  std::uint64_t calls = 0;
  std::uint64_t phmm_cells = 0;      ///< useful DP cell updates
  double gcups = 0.0;                ///< phmm_cells / kernel seconds / 1e9
  std::uint64_t fp32_recomputed = 0; ///< reads re-scored by the fp64 oracle
};

/// Fixed-capacity ring of the most recent request digests, oldest evicted
/// first.  Thread-safe; snapshots copy out under the mutex.
class DigestRing {
 public:
  explicit DigestRing(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {}

  void push(const RequestDigest& digest) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
      ring_.push_back(digest);
    } else {
      ring_[next_] = digest;
      next_ = (next_ + 1) % capacity_;
    }
    ++total_;
  }

  /// Every retained digest, oldest first.
  std::vector<RequestDigest> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RequestDigest> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
    return out;
  }

  /// Up to `k` retained digests, slowest (total_seconds) first.
  std::vector<RequestDigest> slowest(std::size_t k) const {
    std::vector<RequestDigest> out = snapshot();
    std::sort(out.begin(), out.end(),
              [](const RequestDigest& a, const RequestDigest& b) {
                return a.total_seconds > b.total_seconds;
              });
    if (out.size() > k) out.resize(k);
    return out;
  }

  /// Digests ever pushed (retained + evicted).
  std::uint64_t total_recorded() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<RequestDigest> ring_;
  std::size_t next_ = 0;       ///< eviction cursor once the ring is full
  std::uint64_t total_ = 0;
};

}  // namespace gnumap::serve

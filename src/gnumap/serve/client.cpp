#include "gnumap/serve/client.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

#include "gnumap/obs/metrics.hpp"
#include "gnumap/obs/trace.hpp"

namespace gnumap::serve {

namespace {

/// Client-side retry counter (BUSY backoff rounds + reconnects), exported
/// alongside the server's gnumap_serve_* series.
obs::Counter& retries_metric() {
  static obs::Counter& counter = obs::registry().counter(
      "gnumap_serve_retries_total",
      "Client-side retries: BUSY backoff rounds and reconnects");
  return counter;
}

bool transport_retryable(WireErrorCode code) {
  // Peer resets and damaged replies are worth a reconnect; typed server
  // verdicts (parse failures, protocol violations, evictions) are not —
  // they would just repeat.
  return code == WireErrorCode::kClosed || code == WireErrorCode::kCorrupt;
}

}  // namespace

std::map<std::string, std::string> parse_kv_lines(std::string_view text) {
  std::map<std::string, std::string> kv;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    const std::size_t eq = line.find('=');
    if (eq != std::string_view::npos) {
      kv.emplace(std::string(line.substr(0, eq)),
                 std::string(line.substr(eq + 1)));
    }
    start = end + 1;
  }
  return kv;
}

MappingClient::MappingClient(const ClientOptions& options)
    : options_(options),
      rng_(options.backoff_seed != 0 ? options.backoff_seed
                                     : std::random_device{}()),
      injector_(make_injector(options.fault_plan)) {
  const Timer call_timer;
  establish(nullptr, call_timer);
}

int MappingClient::bounded_timeout(int base_ms,
                                   const Timer& call_timer) const {
  if (options_.deadline_ms == 0) return base_ms;
  const std::int64_t remaining =
      static_cast<std::int64_t>(options_.deadline_ms) -
      static_cast<std::int64_t>(call_timer.seconds() * 1000.0);
  if (remaining <= 0) {
    throw WireError(WireErrorCode::kTimeout,
                    "client deadline of " +
                        std::to_string(options_.deadline_ms) +
                        " ms exceeded");
  }
  if (base_ms <= 0) return static_cast<int>(remaining);
  return static_cast<int>(
      std::min<std::int64_t>(base_ms, remaining));
}

bool MappingClient::backoff_sleep(std::uint32_t hint_ms, int consecutive,
                                  MapOutcome& outcome,
                                  const Timer& call_timer) {
  // Exponential base, floored by the server's hint: a saturated server's
  // queue-depth-scaled hint wins over our own schedule.
  std::uint64_t delay = std::max<std::uint64_t>(1, options_.backoff_base_ms);
  for (int i = 0; i < consecutive && delay < options_.backoff_max_ms; ++i) {
    delay *= 2;
  }
  delay = std::min<std::uint64_t>(delay, options_.backoff_max_ms);
  delay = std::max<std::uint64_t>(delay, hint_ms);
  // Full-range-halved jitter: [0.5, 1.0] of the computed delay, so a herd
  // of clients released by the same BUSY wave spreads out.
  std::uniform_real_distribution<double> jitter(0.5, 1.0);
  delay = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(delay) *
                                    jitter(rng_)));

  if (options_.backoff_total_ms > 0 &&
      outcome.backoff_ms + delay > options_.backoff_total_ms) {
    return false;  // cumulative budget spent
  }
  if (options_.deadline_ms > 0) {
    const std::int64_t remaining =
        static_cast<std::int64_t>(options_.deadline_ms) -
        static_cast<std::int64_t>(call_timer.seconds() * 1000.0);
    if (remaining <= static_cast<std::int64_t>(delay)) return false;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  outcome.backoff_ms += delay;
  retries_metric().inc();
  return true;
}

std::optional<std::uint32_t> MappingClient::connect_and_handshake() {
  sock_ = connect_tcp(options_.host, options_.port, options_.io_timeout_ms);
  // The injector (and the events it has already fired) outlives the
  // socket: reconnects do not replay consumed faults.
  if (injector_) sock_.set_fault_injector(injector_);
  write_frame(sock_, FrameType::kHello,
              encode_hello(kProtocolVersion, options_.name),
              options_.io_timeout_ms);
  auto reply = read_frame(sock_, options_.max_frame_bytes,
                          options_.io_timeout_ms);
  if (!reply.has_value()) {
    throw WireError(WireErrorCode::kClosed,
                    "server closed the connection during handshake");
  }
  if (reply->type == FrameType::kBusy) {
    const auto [retry_ms, msg] = decode_busy(reply->payload);
    return retry_ms;  // connection-limit refusal; caller may back off
  }
  if (reply->type == FrameType::kError) {
    const auto [code, msg] = decode_error(reply->payload);
    throw WireError(code, "handshake refused: " + msg);
  }
  if (reply->type != FrameType::kHelloOk) {
    throw WireError(WireErrorCode::kProtocol,
                    "expected HELLO_OK, got frame type " +
                        std::to_string(static_cast<int>(reply->type)));
  }
  const auto [version, banner] = decode_hello(reply->payload);
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    throw WireError(WireErrorCode::kBadVersion,
                    "server negotiated protocol version " +
                        std::to_string(version) + ", client speaks " +
                        std::to_string(kMinProtocolVersion) + ".." +
                        std::to_string(kProtocolVersion));
  }
  version_ = version;
  banner_ = banner;
  return std::nullopt;
}

void MappingClient::establish(MapOutcome* outcome, const Timer& call_timer) {
  MapOutcome scratch;
  MapOutcome& acc = outcome != nullptr ? *outcome : scratch;
  for (int attempt = 0;; ++attempt) {
    std::uint32_t hint_ms = 0;
    try {
      const auto busy = connect_and_handshake();
      if (!busy.has_value()) return;  // connected and negotiated
      hint_ms = *busy;
      ++acc.busy_answers;
      if (attempt >= options_.connect_retries) {
        throw WireError(WireErrorCode::kShuttingDown,
                        "server busy: connection limit reached (retry "
                        "after " +
                            std::to_string(hint_ms) + " ms)");
      }
    } catch (const WireError& e) {
      sock_.close();
      // A damaged handshake (kCorrupt) is as transient as a reset: nothing
      // has been committed, so a fresh connection is always safe.
      const bool retryable = e.code() == WireErrorCode::kClosed ||
                             e.code() == WireErrorCode::kTimeout ||
                             e.code() == WireErrorCode::kCorrupt;
      if (!retryable || attempt >= options_.connect_retries) throw;
    }
    if (!backoff_sleep(hint_ms, attempt, acc, call_timer)) {
      throw WireError(WireErrorCode::kTimeout,
                      "connect retry budget exhausted after " +
                          std::to_string(acc.backoff_ms) + " ms of backoff");
    }
  }
}

MapOutcome MappingClient::map(std::istream& fastq, std::ostream& tsv_out,
                              std::ostream* sam_out, bool phred64) {
  std::uint8_t flags = 0;
  if (sam_out != nullptr) flags |= kFlagWantSam;
  if (phred64) flags |= kFlagPhred64;

  const Timer call_timer;
  MapOutcome outcome;
  const std::istream::pos_type rewind_pos = fastq.tellg();

  // The trace id names the logical request, so it is drawn once per map()
  // call and survives reconnects; it only reaches the wire on v3.
  std::uint64_t trace_id = options_.trace_id;
  while (trace_id == 0) trace_id = rng_();
  std::uint64_t parent_span_id = 0;
  while (parent_span_id == 0) parent_span_id = rng_();

  for (int reconnect = 0;; ++reconnect) {
    try {
      map_once(fastq, tsv_out, sam_out, flags, trace_id, parent_span_id,
               outcome, call_timer);
      return outcome;
    } catch (const WireError& e) {
      // Reconnect-and-retry only while the request is idempotent: the
      // input rewinds and no result bytes reached the caller's streams.
      const bool idempotent =
          rewind_pos != std::istream::pos_type(-1) &&
          outcome.tsv_bytes == 0 && outcome.sam_bytes == 0;
      if (!transport_retryable(e.code()) || !idempotent ||
          reconnect >= options_.transport_retries) {
        throw;
      }
      fastq.clear();
      fastq.seekg(rewind_pos);
      if (!fastq.good()) throw;
      if (!backoff_sleep(0, reconnect, outcome, call_timer)) throw;
      sock_.close();
      ++outcome.reconnects;
      retries_metric().inc();
      establish(&outcome, call_timer);
    }
  }
}

void MappingClient::map_once(std::istream& fastq, std::ostream& tsv_out,
                             std::ostream* sam_out, std::uint8_t flags,
                             std::uint64_t trace_id,
                             std::uint64_t parent_span_id,
                             MapOutcome& outcome, const Timer& call_timer) {
  // The whole transaction under one span carrying the request's trace id,
  // so a merged timeline (scripts/merge_traces.py) shows the client's view
  // of the request next to the server's serve_request span.
  const bool traced = version_ >= 3;
  outcome.trace_id = traced ? trace_id : 0;
  obs::TraceSpan span("map_request", "serve", "attempt",
                      static_cast<double>(outcome.attempts + 1));
  if (traced) span.set_id(trace_id);

  // Admission: MAP_BEGIN until MAP_GO (no reads sent yet, so BUSY retries
  // are free).  The deadline sent along is what remains of ours, so the
  // server stops working the moment nobody is waiting.
  outcome.busy = false;
  for (int attempt = 0;; ++attempt) {
    ++outcome.attempts;
    std::uint32_t server_deadline_ms = 0;
    if (options_.deadline_ms > 0) {
      server_deadline_ms = static_cast<std::uint32_t>(std::max<std::int64_t>(
          1, static_cast<std::int64_t>(options_.deadline_ms) -
                 static_cast<std::int64_t>(call_timer.seconds() * 1000.0)));
    }
    // v3 adds the trace fields and v4 the genome id; a v2 server must see
    // the 5-byte payload it has always seen (asserted byte-exactly in
    // tests/test_serve.cpp).  encode_map_begin throws kBadVersion when a
    // genome id is requested on a pre-v4 connection — better a typed error
    // than silently mapping against the wrong genome.
    std::string begin_payload;
    if (traced) {
      MapBeginInfo info;
      info.flags = flags;
      info.deadline_ms = server_deadline_ms;
      info.trace_id = trace_id;
      info.parent_span_id = parent_span_id;
      info.genome_id = options_.genome_id;
      begin_payload = encode_map_begin(info, version_);
    } else {
      if (!options_.genome_id.empty()) {
        throw WireError(WireErrorCode::kBadVersion,
                        "genome id \"" + options_.genome_id +
                            "\" requires protocol v4, but the server "
                            "negotiated v" + std::to_string(version_));
      }
      begin_payload = encode_map_begin(flags, server_deadline_ms);
    }
    write_frame(sock_, FrameType::kMapBegin, begin_payload,
                bounded_timeout(options_.io_timeout_ms, call_timer));
    auto reply = read_frame(sock_, options_.max_frame_bytes,
                            bounded_timeout(options_.io_timeout_ms,
                                            call_timer));
    if (!reply.has_value()) {
      throw WireError(WireErrorCode::kClosed,
                      "server closed the connection after MAP_BEGIN");
    }
    if (reply->type == FrameType::kMapGo) break;
    if (reply->type == FrameType::kBusy) {
      const auto [retry_ms, msg] = decode_busy(reply->payload);
      ++outcome.busy_answers;
      if (attempt >= options_.busy_retries ||
          !backoff_sleep(retry_ms, attempt, outcome, call_timer)) {
        outcome.busy = true;
        return;
      }
      continue;
    }
    if (reply->type == FrameType::kError) {
      const auto [code, msg] = decode_error(reply->payload);
      if (code == WireErrorCode::kEvicted) {
        // The genome was evicted under memory pressure.  Nothing has been
        // uploaded yet, so this is retryable exactly like BUSY; honour the
        // server's retry_after_ms=N hint embedded in the message.
        std::uint32_t retry_ms = 0;
        const auto pos = msg.find("retry_after_ms=");
        if (pos != std::string::npos) {
          retry_ms = static_cast<std::uint32_t>(
              std::strtoul(msg.c_str() + pos + 15, nullptr, 10));
        }
        ++outcome.busy_answers;
        if (attempt >= options_.busy_retries ||
            !backoff_sleep(retry_ms, attempt, outcome, call_timer)) {
          throw WireError(code, msg);
        }
        continue;
      }
      throw WireError(code, msg);
    }
    throw WireError(WireErrorCode::kProtocol,
                    "expected MAP_GO or BUSY, got frame type " +
                        std::to_string(static_cast<int>(reply->type)));
  }

  // Upload from a background thread: the server streams RESULT_* frames
  // while it is still pulling READS_CHUNK frames, and reading those
  // results here is what keeps the server's sends from blocking.
  std::atomic<bool> stop_sending{false};
  std::exception_ptr send_error;
  std::thread sender([&] {
    try {
      std::string chunk(kChunkBytes, '\0');
      while (!stop_sending.load(std::memory_order_relaxed)) {
        fastq.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
        const std::size_t got = static_cast<std::size_t>(fastq.gcount());
        if (got == 0) break;
        write_frame(sock_, FrameType::kReadsChunk,
                    std::string_view(chunk.data(), got),
                    options_.io_timeout_ms);
      }
      write_frame(sock_, FrameType::kMapEnd, "", options_.io_timeout_ms);
    } catch (...) {
      // Usually the server erroring out mid-upload and closing; the real
      // diagnosis is the ERROR frame the reader loop is about to see.
      send_error = std::current_exception();
    }
  });

  struct JoinSender {
    std::atomic<bool>& stop;
    std::thread& thread;
    ~JoinSender() {
      stop.store(true, std::memory_order_relaxed);
      if (thread.joinable()) thread.join();
    }
  } join_sender{stop_sending, sender};

  try {
    for (;;) {
      auto frame =
          read_frame(sock_, options_.max_frame_bytes,
                     bounded_timeout(options_.result_timeout_ms, call_timer));
      if (!frame.has_value()) {
        throw WireError(WireErrorCode::kClosed,
                        "server closed the connection mid-request");
      }
      switch (frame->type) {
        case FrameType::kResultTsv:
          tsv_out.write(frame->payload.data(),
                        static_cast<std::streamsize>(frame->payload.size()));
          outcome.tsv_bytes += frame->payload.size();
          break;
        case FrameType::kResultSam:
          if (sam_out != nullptr) {
            sam_out->write(
                frame->payload.data(),
                static_cast<std::streamsize>(frame->payload.size()));
          }
          outcome.sam_bytes += frame->payload.size();
          break;
        case FrameType::kMapDone:
          outcome.stats = parse_kv_lines(frame->payload);
          // Graft the server's view into the local timeline: MAP_DONE
          // carries total_seconds, so a span ending now and tagged with
          // the same trace id shows the server-side window even when the
          // two processes never share trace files.
          if (traced && obs::trace_enabled()) {
            const auto total = outcome.stats.find("total_seconds");
            if (total != outcome.stats.end()) {
              const double dur_us =
                  std::atof(total->second.c_str()) * 1e6;
              if (dur_us > 0.0) {
                const double now_us = obs::trace_now_us();
                obs::record_complete("server_elapsed", "serve",
                                     now_us - dur_us, dur_us, nullptr, 0.0,
                                     nullptr, 0.0, trace_id);
              }
            }
          }
          // A completed request means the server consumed the whole
          // upload, so a latched sender error cannot matter here.
          return;
        case FrameType::kError: {
          const auto [code, msg] = decode_error(frame->payload);
          throw WireError(code, msg);
        }
        default:
          throw WireError(WireErrorCode::kProtocol,
                          "unexpected frame type " +
                              std::to_string(static_cast<int>(frame->type)) +
                              " while waiting for results");
      }
    }
  } catch (...) {
    // Prefer the upload-side root cause (e.g. a ParseError from a corrupt
    // local gzip) over the secondary transport error it provoked here.
    stop_sending.store(true, std::memory_order_relaxed);
    if (sender.joinable()) sender.join();
    if (send_error) std::rethrow_exception(send_error);
    throw;
  }
}

std::string MappingClient::stats() {
  write_frame(sock_, FrameType::kStats, "", options_.io_timeout_ms);
  auto reply = read_frame(sock_, options_.max_frame_bytes,
                          options_.io_timeout_ms);
  if (!reply.has_value() || reply->type != FrameType::kStatsOk) {
    throw WireError(WireErrorCode::kProtocol, "STATS request failed");
  }
  return std::move(reply->payload);
}

std::string MappingClient::health() {
  write_frame(sock_, FrameType::kHealth, "", options_.io_timeout_ms);
  auto reply = read_frame(sock_, options_.max_frame_bytes,
                          options_.io_timeout_ms);
  if (!reply.has_value() || reply->type != FrameType::kHealthOk) {
    throw WireError(WireErrorCode::kProtocol, "HEALTH request failed");
  }
  return std::move(reply->payload);
}

void MappingClient::shutdown_server() {
  write_frame(sock_, FrameType::kShutdown, "", options_.io_timeout_ms);
  auto reply = read_frame(sock_, options_.max_frame_bytes,
                          options_.io_timeout_ms);
  if (!reply.has_value() || reply->type != FrameType::kShutdownOk) {
    throw WireError(WireErrorCode::kProtocol, "SHUTDOWN request failed");
  }
}

}  // namespace gnumap::serve

#include "gnumap/serve/client.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

namespace gnumap::serve {

std::map<std::string, std::string> parse_kv_lines(std::string_view text) {
  std::map<std::string, std::string> kv;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    const std::size_t eq = line.find('=');
    if (eq != std::string_view::npos) {
      kv.emplace(std::string(line.substr(0, eq)),
                 std::string(line.substr(eq + 1)));
    }
    start = end + 1;
  }
  return kv;
}

MappingClient::MappingClient(const ClientOptions& options)
    : options_(options),
      sock_(connect_tcp(options.host, options.port, options.io_timeout_ms)) {
  write_frame(sock_, FrameType::kHello,
              encode_hello(kProtocolVersion, options_.name),
              options_.io_timeout_ms);
  auto reply = read_frame(sock_, options_.max_frame_bytes,
                          options_.io_timeout_ms);
  if (!reply.has_value()) {
    throw WireError(WireErrorCode::kClosed,
                    "server closed the connection during handshake");
  }
  if (reply->type == FrameType::kBusy) {
    const auto [retry_ms, msg] = decode_busy(reply->payload);
    throw WireError(WireErrorCode::kShuttingDown,
                    "server busy: " + msg + " (retry after " +
                        std::to_string(retry_ms) + " ms)");
  }
  if (reply->type == FrameType::kError) {
    const auto [code, msg] = decode_error(reply->payload);
    throw WireError(code, "handshake refused: " + msg);
  }
  if (reply->type != FrameType::kHelloOk) {
    throw WireError(WireErrorCode::kProtocol,
                    "expected HELLO_OK, got frame type " +
                        std::to_string(static_cast<int>(reply->type)));
  }
  const auto [version, banner] = decode_hello(reply->payload);
  if (version != kProtocolVersion) {
    throw WireError(WireErrorCode::kBadVersion,
                    "server speaks protocol version " +
                        std::to_string(version) + ", client speaks " +
                        std::to_string(kProtocolVersion));
  }
  banner_ = banner;
}

MapOutcome MappingClient::map(std::istream& fastq, std::ostream& tsv_out,
                              std::ostream* sam_out, bool phred64) {
  std::uint8_t flags = 0;
  if (sam_out != nullptr) flags |= kFlagWantSam;
  if (phred64) flags |= kFlagPhred64;

  // Admission: MAP_BEGIN until MAP_GO (no reads sent yet, so BUSY retries
  // are free).
  MapOutcome outcome;
  for (int attempt = 0;; ++attempt) {
    write_frame(sock_, FrameType::kMapBegin,
                std::string(1, static_cast<char>(flags)),
                options_.io_timeout_ms);
    auto reply = read_frame(sock_, options_.max_frame_bytes,
                            options_.io_timeout_ms);
    if (!reply.has_value()) {
      throw WireError(WireErrorCode::kClosed,
                      "server closed the connection after MAP_BEGIN");
    }
    if (reply->type == FrameType::kMapGo) break;
    if (reply->type == FrameType::kBusy) {
      const auto [retry_ms, msg] = decode_busy(reply->payload);
      if (attempt >= options_.busy_retries) {
        outcome.busy = true;
        return outcome;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          retry_ms > 0 ? retry_ms : 50u));
      continue;
    }
    if (reply->type == FrameType::kError) {
      const auto [code, msg] = decode_error(reply->payload);
      throw WireError(code, msg);
    }
    throw WireError(WireErrorCode::kProtocol,
                    "expected MAP_GO or BUSY, got frame type " +
                        std::to_string(static_cast<int>(reply->type)));
  }

  // Upload from a background thread: the server streams RESULT_* frames
  // while it is still pulling READS_CHUNK frames, and reading those
  // results here is what keeps the server's sends from blocking.
  std::atomic<bool> stop_sending{false};
  std::exception_ptr send_error;
  std::thread sender([&] {
    try {
      std::string chunk(kChunkBytes, '\0');
      while (!stop_sending.load(std::memory_order_relaxed)) {
        fastq.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
        const std::size_t got = static_cast<std::size_t>(fastq.gcount());
        if (got == 0) break;
        write_frame(sock_, FrameType::kReadsChunk,
                    std::string_view(chunk.data(), got),
                    options_.io_timeout_ms);
      }
      write_frame(sock_, FrameType::kMapEnd, "", options_.io_timeout_ms);
    } catch (...) {
      // Usually the server erroring out mid-upload and closing; the real
      // diagnosis is the ERROR frame the reader loop is about to see.
      send_error = std::current_exception();
    }
  });

  struct JoinSender {
    std::atomic<bool>& stop;
    std::thread& thread;
    ~JoinSender() {
      stop.store(true, std::memory_order_relaxed);
      if (thread.joinable()) thread.join();
    }
  } join_sender{stop_sending, sender};

  try {
    for (;;) {
      auto frame = read_frame(sock_, options_.max_frame_bytes,
                              options_.result_timeout_ms);
      if (!frame.has_value()) {
        throw WireError(WireErrorCode::kClosed,
                        "server closed the connection mid-request");
      }
      switch (frame->type) {
        case FrameType::kResultTsv:
          tsv_out.write(frame->payload.data(),
                        static_cast<std::streamsize>(frame->payload.size()));
          outcome.tsv_bytes += frame->payload.size();
          break;
        case FrameType::kResultSam:
          if (sam_out != nullptr) {
            sam_out->write(
                frame->payload.data(),
                static_cast<std::streamsize>(frame->payload.size()));
          }
          outcome.sam_bytes += frame->payload.size();
          break;
        case FrameType::kMapDone:
          outcome.stats = parse_kv_lines(frame->payload);
          // A completed request means the server consumed the whole
          // upload, so a latched sender error cannot matter here.
          return outcome;
        case FrameType::kError: {
          const auto [code, msg] = decode_error(frame->payload);
          throw WireError(code, msg);
        }
        default:
          throw WireError(WireErrorCode::kProtocol,
                          "unexpected frame type " +
                              std::to_string(static_cast<int>(frame->type)) +
                              " while waiting for results");
      }
    }
  } catch (...) {
    // Prefer the upload-side root cause (e.g. a ParseError from a corrupt
    // local gzip) over the secondary transport error it provoked here.
    stop_sending.store(true, std::memory_order_relaxed);
    if (sender.joinable()) sender.join();
    if (send_error) std::rethrow_exception(send_error);
    throw;
  }
}

std::string MappingClient::stats() {
  write_frame(sock_, FrameType::kStats, "", options_.io_timeout_ms);
  auto reply = read_frame(sock_, options_.max_frame_bytes,
                          options_.io_timeout_ms);
  if (!reply.has_value() || reply->type != FrameType::kStatsOk) {
    throw WireError(WireErrorCode::kProtocol, "STATS request failed");
  }
  return std::move(reply->payload);
}

void MappingClient::shutdown_server() {
  write_frame(sock_, FrameType::kShutdown, "", options_.io_timeout_ms);
  auto reply = read_frame(sock_, options_.max_frame_bytes,
                          options_.io_timeout_ms);
  if (!reply.has_value() || reply->type != FrameType::kShutdownOk) {
    throw WireError(WireErrorCode::kProtocol, "SHUTDOWN request failed");
  }
}

}  // namespace gnumap::serve

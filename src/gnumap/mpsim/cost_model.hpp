// Alpha-beta cluster cost model.
//
// The reproduction host is a single core, so thread-per-rank wall clock says
// nothing about multi-node scaling.  Instead each rank's *measured* compute
// time (Communicator::compute_clock) and *counted* communication volume
// (CommStats) are combined under the classic alpha-beta model:
//
//     t_rank = compute + messages * alpha + bytes / beta
//     makespan = max over ranks of t_rank
//
// alpha is the per-message latency and beta the link bandwidth; the defaults
// model the gigabit-Ethernet-class cluster of the paper's era.  DESIGN.md
// documents this substitution: the communication *volume* is real (every
// byte was actually sent through mpsim); only the network constants are
// assumed.
//
// Because all rank-threads time-share one physical core, measured per-rank
// compute time would be inflated by contention when ranks run concurrently.
// The pipeline therefore measures kernel time per rank while ranks execute
// their compute phases serially (barrier-separated), which a 1-core host
// makes cheap; see core/dist_modes.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "gnumap/mpsim/communicator.hpp"

namespace gnumap {

struct CostModelParams {
  /// Per-message latency, seconds (default: 50 us, GigE-era cluster).
  double alpha = 50e-6;
  /// Link bandwidth, bytes/second (default: 1 Gbit/s).
  double beta = 125e6;
};

struct RankCost {
  double compute_seconds = 0.0;
  CommStats comm;
};

/// Simulated time for one rank.
double rank_time(const RankCost& cost, const CostModelParams& params);

/// Simulated parallel makespan: the slowest rank.
double simulated_makespan(const std::vector<RankCost>& costs,
                          const CostModelParams& params);

/// Aggregate communication seconds across all ranks (diagnostics).
double total_comm_seconds(const std::vector<RankCost>& costs,
                          const CostModelParams& params);

// ---------------------------------------------------------------------------
// Recovery accounting (fault-injected runs).
//
// A faulty run is a sequence of attempts: zero or more aborted ones (a rank
// crashed, a message was lost) followed by the attempt that completed from
// the last checkpoints.  Every byte moved and every compute second burned in
// an aborted attempt is recovery cost: the bytes must be re-sent and the
// uncheckpointed compute redone.  run_distributed records the per-attempt
// RankCost vectors so the Figure-4 style reproductions can report simulated
// wall-clock under injected faults, not just the fault-free makespan.

/// What the failed attempts cost (everything before the final attempt).
struct RecoveryCost {
  int restarts = 0;  ///< number of aborted attempts
  std::uint64_t resent_messages = 0;
  std::uint64_t resent_bytes = 0;
  double redone_compute_seconds = 0.0;
  /// α–β seconds of the aborted attempts (each attempt's makespan).
  double recovery_seconds = 0.0;
};

/// Sums the cost of every attempt except the final (successful) one.
RecoveryCost recovery_cost(const std::vector<std::vector<RankCost>>& attempts,
                           const CostModelParams& params);

/// Simulated wall-clock of the whole faulty run: failure detection and
/// restart serialize, so attempts' makespans add.
double simulated_makespan_with_recovery(
    const std::vector<std::vector<RankCost>>& attempts,
    const CostModelParams& params);

}  // namespace gnumap

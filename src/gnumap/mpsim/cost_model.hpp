// Alpha-beta cluster cost model.
//
// The reproduction host is a single core, so thread-per-rank wall clock says
// nothing about multi-node scaling.  Instead each rank's *measured* compute
// time (Communicator::compute_clock) and *counted* communication volume
// (CommStats) are combined under the classic alpha-beta model:
//
//     t_rank = compute + messages * alpha + bytes / beta
//     makespan = max over ranks of t_rank
//
// alpha is the per-message latency and beta the link bandwidth; the defaults
// model the gigabit-Ethernet-class cluster of the paper's era.  DESIGN.md
// documents this substitution: the communication *volume* is real (every
// byte was actually sent through mpsim); only the network constants are
// assumed.
//
// Because all rank-threads time-share one physical core, measured per-rank
// compute time would be inflated by contention when ranks run concurrently.
// The pipeline therefore measures kernel time per rank while ranks execute
// their compute phases serially (barrier-separated), which a 1-core host
// makes cheap; see core/dist_modes.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "gnumap/mpsim/communicator.hpp"

namespace gnumap {

struct CostModelParams {
  /// Per-message latency, seconds (default: 50 us, GigE-era cluster).
  double alpha = 50e-6;
  /// Link bandwidth, bytes/second (default: 1 Gbit/s).
  double beta = 125e6;
};

struct RankCost {
  double compute_seconds = 0.0;
  CommStats comm;
};

/// Simulated time for one rank.
double rank_time(const RankCost& cost, const CostModelParams& params);

/// Simulated parallel makespan: the slowest rank.
double simulated_makespan(const std::vector<RankCost>& costs,
                          const CostModelParams& params);

/// Aggregate communication seconds across all ranks (diagnostics).
double total_comm_seconds(const std::vector<RankCost>& costs,
                          const CostModelParams& params);

}  // namespace gnumap

// In-process message-passing runtime: the cluster substrate.
//
// The paper runs GNUMAP over MPI on up to 30 machines.  This host has no
// MPI and one core, so ranks are threads with mailbox queues and the MPI
// subset GNUMAP needs is implemented on top: point-to-point send/recv,
// barrier, broadcast, reduce, allreduce, gather — the collectives using
// binomial trees like a real MPI implementation, so the *message pattern*
// (who talks to whom, how many bytes) matches what a cluster would see.
// Every byte is counted per rank; the cost model (cost_model.hpp) turns the
// counts plus measured compute time into simulated cluster wall-clock.
//
// Programming model is SPMD exactly as in MPI: every rank runs the same
// function and must call collectives in the same order.  Collective calls
// are sequence-numbered to keep back-to-back collectives from cross-talking.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "gnumap/util/timer.hpp"

namespace gnumap {

/// Per-rank communication counters (for the cost model).
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
};

class World;

class Communicator {
 public:
  Communicator(World& world, int rank);

  int rank() const { return rank_; }
  int size() const;

  /// Blocking tagged send (buffered: never deadlocks on unmatched sends).
  void send(int dest, int tag, std::vector<std::uint8_t> payload);
  /// Blocking receive matching (source, tag); FIFO per (source, tag) pair.
  std::vector<std::uint8_t> recv(int source, int tag);

  /// Typed convenience wrappers.
  void send_u64(int dest, int tag, std::uint64_t value);
  std::uint64_t recv_u64(int source, int tag);
  void send_doubles(int dest, int tag, std::span<const double> values);
  std::vector<double> recv_doubles(int source, int tag);

  /// Binomial-tree collectives.  All ranks must participate in order.
  void barrier();
  std::vector<std::uint8_t> bcast(int root, std::vector<std::uint8_t> data);
  /// Element-wise sum of double vectors; result valid on root only.
  void reduce_sum(std::span<double> inout, int root);
  /// Element-wise sum, result on all ranks.
  void allreduce_sum(std::span<double> inout);
  /// Generic reduce with a user combine on opaque byte payloads (used for
  /// accumulator merges).  Result valid on root only.
  using Combine = std::function<std::vector<std::uint8_t>(
      std::vector<std::uint8_t>, std::vector<std::uint8_t>)>;
  std::vector<std::uint8_t> reduce(int root, std::vector<std::uint8_t> local,
                                   const Combine& combine);
  /// Gathers each rank's payload at root (index = rank); empty elsewhere.
  std::vector<std::vector<std::uint8_t>> gather(
      int root, std::vector<std::uint8_t> data);

  const CommStats& stats() const { return stats_; }

  /// Compute-time attribution for the cost model; the application brackets
  /// its compute phases with start()/stop().
  Stopwatch& compute_clock() { return compute_clock_; }

 private:
  int collective_tag();

  World& world_;
  int rank_;
  CommStats stats_;
  Stopwatch compute_clock_;
  int collective_seq_ = 0;
};

/// Owns the mailboxes; created by run_world.
class World {
 public:
  explicit World(int size);

  int size() const { return static_cast<int>(mailboxes_.size()); }
  void deliver(int dest, int source, int tag,
               std::vector<std::uint8_t> payload);
  std::vector<std::uint8_t> await(int dest, int source, int tag);

 private:
  struct Message {
    int source;
    int tag;
    std::vector<std::uint8_t> payload;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::deque<Message> queue;
  };
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

/// Runs `body` on `world_size` rank-threads; returns each rank's final
/// communication counters (indexed by rank).  Exceptions thrown by any rank
/// are rethrown (first one wins) after all ranks have been joined.
std::vector<CommStats> run_world(
    int world_size, const std::function<void(Communicator&)>& body);

}  // namespace gnumap

// In-process message-passing runtime: the cluster substrate.
//
// The paper runs GNUMAP over MPI on up to 30 machines.  This host has no
// MPI and one core, so ranks are threads with mailbox queues and the MPI
// subset GNUMAP needs is implemented on top: point-to-point send/recv,
// barrier, broadcast, reduce, allreduce, gather — the collectives using
// binomial trees like a real MPI implementation, so the *message pattern*
// (who talks to whom, how many bytes) matches what a cluster would see.
// Every byte is counted per rank; the cost model (cost_model.hpp) turns the
// counts plus measured compute time into simulated cluster wall-clock.
//
// Programming model is SPMD exactly as in MPI: every rank runs the same
// function and must call collectives in the same order.  Collective calls
// are sequence-numbered to keep back-to-back collectives from cross-talking.
//
// Failure semantics (the fault-tolerance layer):
//  * When any rank exits its body by exception, the world aborts: every
//    blocked receiver wakes and throws RankFailedError, so run_world never
//    deadlocks on a dead peer and the first exception wins the rethrow.
//  * A receiver waiting on a rank that already returned cleanly (and so can
//    never send again) throws RankFailedError instead of hanging.
//  * WorldOptions::recv_timeout_seconds bounds every blocking wait; on
//    expiry the receiver throws CommError (covers dropped messages).
//  * WorldOptions::faults points at a FaultState (fault.hpp) to inject
//    crashes, message drops/delays, and compute slowdown deterministically.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "gnumap/mpsim/fault.hpp"
#include "gnumap/obs/metrics.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap {

/// Per-rank communication counters (for the cost model), plus the rank's
/// failure-detection state.
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  /// Blocking waits that expired (dropped message or silent peer).
  std::uint64_t recv_timeouts = 0;
  /// Blocking waits aborted because a peer rank died or exited early.
  std::uint64_t peer_failures_seen = 0;
};

/// World-wide runtime knobs; defaults reproduce the fault-free substrate.
struct WorldOptions {
  /// Upper bound for every blocking receive/collective wait; 0 waits
  /// forever (abort-on-peer-death still applies).
  double recv_timeout_seconds = 0.0;
  /// Fault injector shared by all ranks; nullptr disables injection.
  FaultState* faults = nullptr;
};

class World;

class Communicator {
 public:
  Communicator(World& world, int rank);

  int rank() const { return rank_; }
  int size() const;

  /// Blocking tagged send (buffered: never deadlocks on unmatched sends).
  void send(int dest, int tag, std::vector<std::uint8_t> payload);
  /// Blocking receive matching (source, tag); FIFO per (source, tag) pair.
  /// Throws CommError on timeout, RankFailedError if the peer died.
  std::vector<std::uint8_t> recv(int source, int tag);

  /// Typed convenience wrappers.
  void send_u64(int dest, int tag, std::uint64_t value);
  std::uint64_t recv_u64(int source, int tag);
  void send_doubles(int dest, int tag, std::span<const double> values);
  std::vector<double> recv_doubles(int source, int tag);

  /// Binomial-tree collectives.  All ranks must participate in order.
  void barrier();
  std::vector<std::uint8_t> bcast(int root, std::vector<std::uint8_t> data);
  /// Element-wise sum of double vectors; result valid on root only.
  void reduce_sum(std::span<double> inout, int root);
  /// Element-wise sum, result on all ranks.
  void allreduce_sum(std::span<double> inout);
  /// Generic reduce with a user combine on opaque byte payloads (used for
  /// accumulator merges).  Result valid on root only.
  using Combine = std::function<std::vector<std::uint8_t>(
      std::vector<std::uint8_t>, std::vector<std::uint8_t>)>;
  std::vector<std::uint8_t> reduce(int root, std::vector<std::uint8_t> local,
                                   const Combine& combine);
  /// Gathers each rank's payload at root (index = rank); empty elsewhere.
  std::vector<std::vector<std::uint8_t>> gather(
      int root, std::vector<std::uint8_t> data);

  /// Application progress tick: advances this rank's fault-step counter so
  /// a scripted crash can land mid-compute (e.g. between checkpoints), not
  /// only at communication operations.  No-op without fault injection.
  void step();

  const CommStats& stats() const { return stats_; }

  /// Compute-time attribution for the cost model; the application brackets
  /// its compute phases with start()/stop().
  Stopwatch& compute_clock() { return compute_clock_; }
  /// Accumulated compute seconds scaled by any injected slowdown.  Safe to
  /// sample mid-turn: an interval still open on the clock is included.
  double scaled_compute_seconds() const;

 private:
  int collective_tag();
  /// One fault step: every comm op and every step() call consults the
  /// injector and throws InjectedCrash when scripted to.
  void fault_step();
  /// Tagged send used by collectives (skips the app-tag range check).
  void raw_send(int dest, int tag, std::vector<std::uint8_t> payload);
  /// world_.await plus failure-detection accounting.
  std::vector<std::uint8_t> await_msg(int source, int tag);

  World& world_;
  int rank_;
  CommStats stats_;
  Stopwatch compute_clock_;
  int collective_seq_ = 0;
  std::uint64_t step_count_ = 0;
  std::uint64_t send_count_ = 0;
  /// Message-wait latency (gnumap_comm_wait_seconds); resolved once here so
  /// the await path never takes the registry lock.
  obs::Histogram& wait_histogram_;
};

/// Owns the mailboxes and per-rank liveness state; created by run_world.
class World {
 public:
  explicit World(int size, WorldOptions options = {});

  int size() const { return static_cast<int>(mailboxes_.size()); }
  const WorldOptions& options() const { return options_; }

  void deliver(int dest, int source, int tag,
               std::vector<std::uint8_t> payload);
  /// Blocks until a matching message arrives.  Throws RankFailedError when
  /// any rank has failed (world aborted) or `source` exited without the
  /// message ever being sent; throws CommError on timeout.
  std::vector<std::uint8_t> await(int dest, int source, int tag);

  /// Marks `rank` failed and wakes every blocked receiver; the first call
  /// wins first_failed_rank().  Idempotent.
  void abort(int rank);
  /// Marks `rank` cleanly finished and wakes every blocked receiver (so a
  /// wait on a rank that can never send again fails fast instead of
  /// hanging).
  void mark_finished(int rank);
  /// Rank of the first failure, or -1 if no rank has failed.
  int first_failed_rank() const { return first_failed_.load(); }

 private:
  enum RankState : std::uint8_t { kRunning = 0, kFinished = 1, kFailed = 2 };

  struct Message {
    int source;
    int tag;
    std::vector<std::uint8_t> payload;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::deque<Message> queue;
  };

  void wake_all();

  WorldOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<std::atomic<std::uint8_t>>> rank_state_;
  std::atomic<int> first_failed_{-1};
};

/// Outcome of one world execution, surfaced without throwing so callers
/// (checkpoint/restart drivers) can account for failed attempts.
struct WorldRun {
  std::vector<CommStats> stats;          ///< per-rank counters (even on failure)
  std::vector<double> compute_seconds;   ///< per-rank, slowdown-scaled
  int failed_rank = -1;                  ///< first rank to fail, or -1
  std::exception_ptr error;              ///< the first failure's exception
};

/// Runs `body` on `world_size` rank-threads and reports the outcome.  When a
/// rank throws, the world aborts (peers blocked in await wake with
/// RankFailedError) and `error` carries the first failure's exception.
WorldRun run_world_collect(int world_size, const WorldOptions& options,
                           const std::function<void(Communicator&)>& body);

/// Runs `body` on `world_size` rank-threads; returns each rank's final
/// communication counters (indexed by rank).  If any rank threw, the first
/// rank's exception (in failure order) is rethrown after all ranks have
/// been joined — peers blocked on the failed rank are woken, never
/// deadlocked.
std::vector<CommStats> run_world(
    int world_size, const std::function<void(Communicator&)>& body);
std::vector<CommStats> run_world(
    int world_size, const WorldOptions& options,
    const std::function<void(Communicator&)>& body);

}  // namespace gnumap

#include "gnumap/mpsim/communicator.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <string>
#include <thread>

#include "gnumap/obs/trace.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap {

namespace {
/// Tags below this are available to applications; collectives use the space
/// above, keyed by a per-communicator sequence number.
constexpr int kCollectiveTagBase = 1 << 20;
}  // namespace

// ---------------------------------------------------------------------------
// World

World::World(int size, WorldOptions options) : options_(options) {
  require(size >= 1, "World: size must be >= 1");
  require(options_.recv_timeout_seconds >= 0.0,
          "World: recv_timeout_seconds must be >= 0");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  rank_state_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    rank_state_.push_back(std::make_unique<std::atomic<std::uint8_t>>(kRunning));
  }
}

void World::deliver(int dest, int source, int tag,
                    std::vector<std::uint8_t> payload) {
  require(dest >= 0 && dest < size(), "send: destination rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(Message{source, tag, std::move(payload)});
  }
  box.arrived.notify_all();
}

void World::abort(int rank) {
  int expected = -1;
  first_failed_.compare_exchange_strong(expected, rank);
  rank_state_[static_cast<std::size_t>(rank)]->store(kFailed);
  wake_all();
}

void World::mark_finished(int rank) {
  auto& state = *rank_state_[static_cast<std::size_t>(rank)];
  std::uint8_t expected = kRunning;
  state.compare_exchange_strong(expected, kFinished);
  wake_all();
}

void World::wake_all() {
  // Acquire each mailbox mutex before notifying so a receiver that checked
  // the liveness flags and is about to wait cannot miss the wakeup.
  for (auto& box : mailboxes_) {
    { std::lock_guard<std::mutex> lock(box->mutex); }
    box->arrived.notify_all();
  }
}

std::vector<std::uint8_t> World::await(int dest, int source, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  const bool bounded = options_.recv_timeout_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.recv_timeout_seconds));
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    const auto it = std::find_if(
        box.queue.begin(), box.queue.end(), [&](const Message& m) {
          return m.source == source && m.tag == tag;
        });
    if (it != box.queue.end()) {
      std::vector<std::uint8_t> payload = std::move(it->payload);
      box.queue.erase(it);
      return payload;
    }
    // No matching message: fail fast if it can never arrive.
    const int failed = first_failed_.load();
    if (failed >= 0) {
      throw RankFailedError(
          "rank " + std::to_string(dest) + ": peer rank " +
              std::to_string(failed) + " failed while awaiting (source=" +
              std::to_string(source) + ", tag=" + std::to_string(tag) + ")",
          failed);
    }
    if (rank_state_[static_cast<std::size_t>(source)]->load() == kFinished) {
      throw RankFailedError(
          "rank " + std::to_string(dest) + ": peer rank " +
              std::to_string(source) +
              " exited without sending the awaited message (tag=" +
              std::to_string(tag) + ")",
          source);
    }
    if (bounded) {
      if (box.arrived.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        // Re-scan once: the message may have raced the deadline.
        const auto late = std::find_if(
            box.queue.begin(), box.queue.end(), [&](const Message& m) {
              return m.source == source && m.tag == tag;
            });
        if (late != box.queue.end()) {
          std::vector<std::uint8_t> payload = std::move(late->payload);
          box.queue.erase(late);
          return payload;
        }
        throw CommError(
            "rank " + std::to_string(dest) + ": recv timeout after " +
            std::to_string(options_.recv_timeout_seconds) +
            "s waiting for rank " + std::to_string(source) + " (tag=" +
            std::to_string(tag) + ")");
      }
    } else {
      box.arrived.wait(lock);
    }
  }
}

// ---------------------------------------------------------------------------
// Communicator

Communicator::Communicator(World& world, int rank)
    : world_(world),
      rank_(rank),
      wait_histogram_(obs::registry().histogram(
          "gnumap_comm_wait_seconds", obs::default_time_buckets(),
          "Blocking receive/collective wait latency across all ranks")) {}

int Communicator::size() const { return world_.size(); }

void Communicator::fault_step() {
  const std::uint64_t step = step_count_++;
  FaultState* faults = world_.options().faults;
  if (faults != nullptr && faults->should_crash(rank_, step)) {
    obs::record_instant("injected_crash", "fault", "step",
                        static_cast<double>(step));
    throw InjectedCrash("injected crash: rank " + std::to_string(rank_) +
                            " at step " + std::to_string(step),
                        rank_);
  }
}

void Communicator::step() { fault_step(); }

double Communicator::scaled_compute_seconds() const {
  const FaultState* faults = world_.options().faults;
  const double scale = faults != nullptr ? faults->compute_scale(rank_) : 1.0;
  // elapsed_including_running, not total_seconds: a sample taken mid-turn
  // (progress reporting, a rank dying inside a compute phase) must not
  // silently drop the open interval.
  return compute_clock_.elapsed_including_running() * scale;
}

void Communicator::raw_send(int dest, int tag,
                            std::vector<std::uint8_t> payload) {
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  FaultState* faults = world_.options().faults;
  const std::uint64_t index = send_count_++;
  if (faults != nullptr) {
    double delay = 0.0;
    const auto action = faults->on_send(rank_, index, &delay);
    if (action == FaultState::SendAction::kDrop) {
      // Lost on the wire: the sender paid for it, nobody receives it.
      obs::record_instant("message_dropped", "fault", "dest",
                          static_cast<double>(dest));
      return;
    }
    if (delay > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
  world_.deliver(dest, rank_, tag, std::move(payload));
}

std::vector<std::uint8_t> Communicator::await_msg(int source, int tag) {
  const Timer wait_timer;
  try {
    auto payload = world_.await(rank_, source, tag);
    ++stats_.messages_received;
    wait_histogram_.observe(wait_timer.seconds());
    return payload;
  } catch (const RankFailedError&) {
    ++stats_.peer_failures_seen;
    throw;
  } catch (const CommError&) {
    ++stats_.recv_timeouts;
    throw;
  }
}

void Communicator::send(int dest, int tag, std::vector<std::uint8_t> payload) {
  require(tag >= 0 && tag < kCollectiveTagBase,
          "send: application tags must be < 2^20");
  obs::TraceSpan span("send", "comm", "peer", static_cast<double>(dest),
                      "bytes", static_cast<double>(payload.size()));
  fault_step();
  raw_send(dest, tag, std::move(payload));
}

std::vector<std::uint8_t> Communicator::recv(int source, int tag) {
  obs::TraceSpan span("recv", "comm", "peer", static_cast<double>(source));
  fault_step();
  auto payload = await_msg(source, tag);
  stats_.bytes_received += payload.size();
  return payload;
}

void Communicator::send_u64(int dest, int tag, std::uint64_t value) {
  std::vector<std::uint8_t> payload(sizeof(value));
  std::memcpy(payload.data(), &value, sizeof(value));
  send(dest, tag, std::move(payload));
}

std::uint64_t Communicator::recv_u64(int source, int tag) {
  const auto payload = recv(source, tag);
  require(payload.size() == sizeof(std::uint64_t),
          "recv_u64: payload size mismatch");
  std::uint64_t value = 0;
  std::memcpy(&value, payload.data(), sizeof(value));
  return value;
}

void Communicator::send_doubles(int dest, int tag,
                                std::span<const double> values) {
  std::vector<std::uint8_t> payload(values.size() * sizeof(double));
  std::memcpy(payload.data(), values.data(), payload.size());
  send(dest, tag, std::move(payload));
}

std::vector<double> Communicator::recv_doubles(int source, int tag) {
  const auto payload = recv(source, tag);
  require(payload.size() % sizeof(double) == 0,
          "recv_doubles: payload size not a multiple of 8");
  std::vector<double> values(payload.size() / sizeof(double));
  std::memcpy(values.data(), payload.data(), payload.size());
  return values;
}

int Communicator::collective_tag() {
  // Each collective call consumes one tag; SPMD ordering keeps ranks in
  // lockstep.  Internal sends bypass the application-tag range check.
  return kCollectiveTagBase + (collective_seq_++ & 0xFFFFF);
}

void Communicator::barrier() {
  // Reduce-then-broadcast over empty payloads on a binomial tree.
  obs::TraceSpan span("barrier", "comm");
  fault_step();
  const int tag = collective_tag();
  const int p = size();
  // Fan-in.
  for (int step = 1; step < p; step <<= 1) {
    if ((rank_ & step) != 0) {
      raw_send(rank_ - step, tag, {});
      break;
    }
    if (rank_ + step < p) {
      auto payload = await_msg(rank_ + step, tag);
    }
  }
  // Fan-out.
  const int tag2 = collective_tag();
  int mask = 1;
  while (mask < p) mask <<= 1;
  for (mask >>= 1; mask > 0; mask >>= 1) {
    if ((rank_ & (mask - 1)) == 0) {
      if ((rank_ & mask) == 0) {
        if (rank_ + mask < p) {
          raw_send(rank_ + mask, tag2, {});
        }
      } else {
        auto payload = await_msg(rank_ - mask, tag2);
      }
    }
  }
}

std::vector<std::uint8_t> Communicator::bcast(int root,
                                              std::vector<std::uint8_t> data) {
  require(root >= 0 && root < size(), "bcast: root out of range");
  obs::TraceSpan span("bcast", "comm", "root", static_cast<double>(root),
                      "bytes", static_cast<double>(data.size()));
  fault_step();
  const int tag = collective_tag();
  const int p = size();
  // Rotate ranks so the tree is rooted at `root`.
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) mask <<= 1;
  // Receive from parent (if not the root), then forward down the tree.
  if (vrank != 0) {
    int parent_mask = 1;
    while ((vrank & parent_mask) == 0) parent_mask <<= 1;
    const int vparent = vrank & ~parent_mask;
    const int parent = (vparent + root) % p;
    data = await_msg(parent, tag);
    stats_.bytes_received += data.size();
  }
  int child_mask = 1;
  while ((vrank & child_mask) == 0 && child_mask < p) child_mask <<= 1;
  for (int m = child_mask >> 1; m > 0; m >>= 1) {
    const int vchild = vrank | m;
    if (vchild < p && vchild != vrank) {
      const int child = (vchild + root) % p;
      raw_send(child, tag, data);
    }
  }
  return data;
}

std::vector<std::uint8_t> Communicator::reduce(int root,
                                               std::vector<std::uint8_t> local,
                                               const Combine& combine) {
  require(root >= 0 && root < size(), "reduce: root out of range");
  obs::TraceSpan span("reduce", "comm", "root", static_cast<double>(root),
                      "bytes", static_cast<double>(local.size()));
  fault_step();
  const int tag = collective_tag();
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  for (int step = 1; step < p; step <<= 1) {
    if ((vrank & step) != 0) {
      const int vparent = vrank - step;
      const int parent = (vparent + root) % p;
      raw_send(parent, tag, std::move(local));
      return {};
    }
    const int vchild = vrank + step;
    if (vchild < p) {
      const int child = (vchild + root) % p;
      auto incoming = await_msg(child, tag);
      stats_.bytes_received += incoming.size();
      local = combine(std::move(local), std::move(incoming));
    }
  }
  return local;
}

void Communicator::reduce_sum(std::span<double> inout, int root) {
  std::vector<std::uint8_t> local(inout.size() * sizeof(double));
  std::memcpy(local.data(), inout.data(), local.size());
  auto combined = reduce(
      root, std::move(local),
      [](std::vector<std::uint8_t> a, std::vector<std::uint8_t> b) {
        require(a.size() == b.size(), "reduce_sum: size mismatch");
        auto* da = reinterpret_cast<double*>(a.data());
        const auto* db = reinterpret_cast<const double*>(b.data());
        for (std::size_t i = 0; i < a.size() / sizeof(double); ++i) {
          da[i] += db[i];
        }
        return a;
      });
  if (rank_ == root) {
    require(combined.size() == inout.size() * sizeof(double),
            "reduce_sum: result size mismatch");
    std::memcpy(inout.data(), combined.data(), combined.size());
  }
}

void Communicator::allreduce_sum(std::span<double> inout) {
  obs::TraceSpan span("allreduce", "comm", "doubles",
                      static_cast<double>(inout.size()));
  reduce_sum(inout, 0);
  std::vector<std::uint8_t> bytes;
  if (rank_ == 0) {
    bytes.resize(inout.size() * sizeof(double));
    std::memcpy(bytes.data(), inout.data(), bytes.size());
  }
  bytes = bcast(0, std::move(bytes));
  require(bytes.size() == inout.size() * sizeof(double),
          "allreduce_sum: broadcast size mismatch");
  std::memcpy(inout.data(), bytes.data(), bytes.size());
}

std::vector<std::vector<std::uint8_t>> Communicator::gather(
    int root, std::vector<std::uint8_t> data) {
  require(root >= 0 && root < size(), "gather: root out of range");
  obs::TraceSpan span("gather", "comm", "root", static_cast<double>(root),
                      "bytes", static_cast<double>(data.size()));
  fault_step();
  const int tag = collective_tag();
  const int p = size();
  std::vector<std::vector<std::uint8_t>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(p));
    out[static_cast<std::size_t>(rank_)] = std::move(data);
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = await_msg(r, tag);
      stats_.bytes_received += out[static_cast<std::size_t>(r)].size();
    }
  } else {
    raw_send(root, tag, std::move(data));
  }
  return out;
}

// ---------------------------------------------------------------------------
// run_world

WorldRun run_world_collect(int world_size, const WorldOptions& options,
                           const std::function<void(Communicator&)>& body) {
  require(world_size >= 1, "run_world: world_size must be >= 1");
  World world(world_size, options);
  WorldRun run;
  run.stats.resize(static_cast<std::size_t>(world_size));
  run.compute_seconds.resize(static_cast<std::size_t>(world_size), 0.0);
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(world_size));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([&, r] {
      obs::set_thread_track(r, "rank " + std::to_string(r));
      Communicator comm(world, r);
      try {
        body(comm);
        world.mark_finished(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Wake every peer blocked on this rank *before* exiting, so a
        // failure never requires the other ranks to drain their mailboxes.
        world.abort(r);
      }
      comm.compute_clock().stop();  // capture a turn cut short by a throw
      run.stats[static_cast<std::size_t>(r)] = comm.stats();
      run.compute_seconds[static_cast<std::size_t>(r)] =
          comm.scaled_compute_seconds();
    });
  }
  for (auto& t : threads) t.join();

  run.failed_rank = world.first_failed_rank();
  if (run.failed_rank >= 0) {
    // First failure wins: secondary RankFailedErrors on the woken peers
    // are a consequence, not the cause.
    run.error = errors[static_cast<std::size_t>(run.failed_rank)];
  }
  return run;
}

std::vector<CommStats> run_world(
    int world_size, const WorldOptions& options,
    const std::function<void(Communicator&)>& body) {
  WorldRun run = run_world_collect(world_size, options, body);
  if (run.error) std::rethrow_exception(run.error);
  return std::move(run.stats);
}

std::vector<CommStats> run_world(
    int world_size, const std::function<void(Communicator&)>& body) {
  return run_world(world_size, WorldOptions{}, body);
}

}  // namespace gnumap

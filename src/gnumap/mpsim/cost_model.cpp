#include "gnumap/mpsim/cost_model.hpp"

#include <algorithm>

#include "gnumap/util/error.hpp"

namespace gnumap {

double rank_time(const RankCost& cost, const CostModelParams& params) {
  require(params.alpha >= 0.0 && params.beta > 0.0,
          "CostModelParams: alpha >= 0 and beta > 0 required");
  const double comm =
      static_cast<double>(cost.comm.messages_sent) * params.alpha +
      static_cast<double>(cost.comm.bytes_sent) / params.beta;
  return cost.compute_seconds + comm;
}

double simulated_makespan(const std::vector<RankCost>& costs,
                          const CostModelParams& params) {
  double makespan = 0.0;
  for (const auto& cost : costs) {
    makespan = std::max(makespan, rank_time(cost, params));
  }
  return makespan;
}

double total_comm_seconds(const std::vector<RankCost>& costs,
                          const CostModelParams& params) {
  double total = 0.0;
  for (const auto& cost : costs) {
    total += rank_time(cost, params) - cost.compute_seconds;
  }
  return total;
}

}  // namespace gnumap

#include "gnumap/mpsim/cost_model.hpp"

#include <algorithm>

#include "gnumap/util/error.hpp"

namespace gnumap {

double rank_time(const RankCost& cost, const CostModelParams& params) {
  require(params.alpha >= 0.0 && params.beta > 0.0,
          "CostModelParams: alpha >= 0 and beta > 0 required");
  const double comm =
      static_cast<double>(cost.comm.messages_sent) * params.alpha +
      static_cast<double>(cost.comm.bytes_sent) / params.beta;
  return cost.compute_seconds + comm;
}

double simulated_makespan(const std::vector<RankCost>& costs,
                          const CostModelParams& params) {
  double makespan = 0.0;
  for (const auto& cost : costs) {
    makespan = std::max(makespan, rank_time(cost, params));
  }
  return makespan;
}

double total_comm_seconds(const std::vector<RankCost>& costs,
                          const CostModelParams& params) {
  double total = 0.0;
  for (const auto& cost : costs) {
    total += rank_time(cost, params) - cost.compute_seconds;
  }
  return total;
}

RecoveryCost recovery_cost(const std::vector<std::vector<RankCost>>& attempts,
                           const CostModelParams& params) {
  RecoveryCost out;
  if (attempts.size() < 2) return out;
  out.restarts = static_cast<int>(attempts.size()) - 1;
  for (std::size_t a = 0; a + 1 < attempts.size(); ++a) {
    for (const auto& cost : attempts[a]) {
      out.resent_messages += cost.comm.messages_sent;
      out.resent_bytes += cost.comm.bytes_sent;
      out.redone_compute_seconds += cost.compute_seconds;
    }
    out.recovery_seconds += simulated_makespan(attempts[a], params);
  }
  return out;
}

double simulated_makespan_with_recovery(
    const std::vector<std::vector<RankCost>>& attempts,
    const CostModelParams& params) {
  double total = 0.0;
  for (const auto& attempt : attempts) {
    total += simulated_makespan(attempt, params);
  }
  return total;
}

}  // namespace gnumap

// Forwarding header: the fault-injection core moved to gnumap/fault so the
// serving stack's wire-level shim (serve/fault_shim.hpp) can share the
// plan/state model without dragging in the mpsim runtime.  All names stay
// in namespace gnumap; existing includes of this header keep working.
#pragma once

#include "gnumap/fault/fault.hpp"

#include "gnumap/accum/codebook.hpp"

#include <algorithm>
#include <cmath>

namespace gnumap {

namespace {

/// Smooths a raw composition with epsilon mass on every track, normalized.
TrackVector smoothed(const TrackVector& raw, float epsilon) {
  TrackVector out;
  float sum = 0.0f;
  for (int k = 0; k < 5; ++k) {
    out[static_cast<std::size_t>(k)] =
        raw[static_cast<std::size_t>(k)] + epsilon;
    sum += out[static_cast<std::size_t>(k)];
  }
  for (auto& v : out) v /= sum;
  return out;
}

float distance2(const TrackVector& a, const TrackVector& b) {
  float d2 = 0.0f;
  for (int k = 0; k < 5; ++k) {
    const float d = a[static_cast<std::size_t>(k)] -
                    b[static_cast<std::size_t>(k)];
    d2 += d * d;
  }
  return d2;
}

bool nearly_equal(const TrackVector& a, const TrackVector& b) {
  return distance2(a, b) < 1e-6f;
}

}  // namespace

CentroidCodebook::CentroidCodebook() {
  std::vector<TrackVector> candidates;
  candidates.reserve(512);

  // Code 0: the empty state.
  candidates.push_back(TrackVector{});

  // Smoothed pure states (paper's single-'a' example uses epsilon = 0.05
  // pre-normalization: 0.84 / 0.04).
  for (int base = 0; base < 5; ++base) {
    TrackVector raw{};
    raw[static_cast<std::size_t>(base)] = 1.0f;
    candidates.push_back(smoothed(raw, 0.05f));
  }
  // Uniform background.
  candidates.push_back(TrackVector{0.2f, 0.2f, 0.2f, 0.2f, 0.2f});

  // Two-base mixtures.  Transition pairs get a denser level grid than
  // transversion pairs (biological weighting); base-gap pairs are sparser
  // still.  Levels are the minor-allele fraction.
  auto add_pair = [&](int major, int minor, int levels) {
    for (int step = 1; step <= levels; ++step) {
      const float minor_frac =
          0.5f * static_cast<float>(step) / static_cast<float>(levels);
      TrackVector raw{};
      raw[static_cast<std::size_t>(major)] = 1.0f - minor_frac;
      raw[static_cast<std::size_t>(minor)] = minor_frac;
      candidates.push_back(smoothed(raw, 0.05f));
    }
  };
  const std::array<std::array<int, 2>, 2> transitions{{{0, 2}, {1, 3}}};
  const std::array<std::array<int, 2>, 4> transversions{
      {{0, 1}, {0, 3}, {1, 2}, {2, 3}}};
  for (const auto& pair : transitions) {
    add_pair(pair[0], pair[1], 24);
    add_pair(pair[1], pair[0], 24);
  }
  for (const auto& pair : transversions) {
    add_pair(pair[0], pair[1], 10);
    add_pair(pair[1], pair[0], 10);
  }
  for (int base = 0; base < 4; ++base) {
    add_pair(base, 4, 6);  // base + gap
    add_pair(4, base, 2);  // gap-major states are rare
  }

  // Base + uniform noise blends (mapping errors spread mass everywhere).
  for (int base = 0; base < 4; ++base) {
    for (const float noise : {0.15f, 0.3f, 0.45f, 0.6f}) {
      TrackVector raw{};
      for (int k = 0; k < 5; ++k) {
        raw[static_cast<std::size_t>(k)] = noise / 5.0f;
      }
      raw[static_cast<std::size_t>(base)] += 1.0f - noise;
      candidates.push_back(smoothed(raw, 0.0f));
    }
  }

  // Heterozygous-style 50/50 states for every base pair (diploid calling).
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      TrackVector raw{};
      raw[static_cast<std::size_t>(a)] = 0.5f;
      raw[static_cast<std::size_t>(b)] = 0.5f;
      candidates.push_back(smoothed(raw, 0.02f));
    }
  }

  // Deduplicate preserving order, then take the first 256.
  std::size_t count = 0;
  for (const auto& candidate : candidates) {
    bool duplicate = false;
    for (std::size_t i = 0; i < count; ++i) {
      if (nearly_equal(centroids_[i], candidate)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      centroids_[count++] = candidate;
      if (count == kSize) break;
    }
  }
  // Fill any remaining slots with deterministic lattices over 3-base
  // compositions so the table is always full (several ratio families, so
  // duplicates elsewhere cannot leave empty codes).
  const std::array<std::array<float, 3>, 4> ratio_families{{
      {0.60f, 0.25f, 0.15f},
      {0.45f, 0.35f, 0.20f},
      {0.70f, 0.20f, 0.10f},
      {0.50f, 0.30f, 0.20f},
  }};
  for (const auto& ratios : ratio_families) {
    for (int a = 0; a < 4 && count < kSize; ++a) {
      for (int b = 0; b < 4 && count < kSize; ++b) {
        for (int c = 0; c < 4 && count < kSize; ++c) {
          if (a == b || b == c || a == c) continue;
          TrackVector raw{};
          raw[static_cast<std::size_t>(a)] = ratios[0];
          raw[static_cast<std::size_t>(b)] = ratios[1];
          raw[static_cast<std::size_t>(c)] = ratios[2];
          const auto candidate = smoothed(raw, 0.02f);
          bool duplicate = false;
          for (std::size_t i = 0; i < count; ++i) {
            if (nearly_equal(centroids_[i], candidate)) {
              duplicate = true;
              break;
            }
          }
          if (!duplicate) centroids_[count++] = candidate;
        }
      }
    }
    if (count == kSize) break;
  }

  // Resolve the anchor codes used by the approximate converter.  Each is
  // the nearest centroid to its canonical composition, so the anchors are
  // guaranteed to exist in the table.
  for (int track = 0; track < 5; ++track) {
    TrackVector raw{};
    raw[static_cast<std::size_t>(track)] = 1.0f;
    pure_codes_[static_cast<std::size_t>(track)] = quantize(smoothed(raw, 0.05f));
  }
  uniform_code_ = quantize(TrackVector{0.2f, 0.2f, 0.2f, 0.2f, 0.2f});
  for (int from = 0; from < 5; ++from) {
    for (int to = 0; to < 5; ++to) {
      const auto slot = static_cast<std::size_t>(from) * 5 +
                        static_cast<std::size_t>(to);
      if (from == to) {
        snp_codes_[slot] = pure_codes_[static_cast<std::size_t>(from)];
        het_codes_[slot] = pure_codes_[static_cast<std::size_t>(from)];
        continue;
      }
      // The paper's SNP-event state: majority on the destination base.
      TrackVector snp{0.08f, 0.08f, 0.08f, 0.08f, 0.08f};
      snp[static_cast<std::size_t>(from)] = 0.28f;
      snp[static_cast<std::size_t>(to)] = 0.48f;
      snp_codes_[slot] = quantize(snp);
      TrackVector het{};
      het[static_cast<std::size_t>(from)] = 0.5f;
      het[static_cast<std::size_t>(to)] = 0.5f;
      het_codes_[slot] = quantize(smoothed(het, 0.02f));
    }
  }

  // Merge table: nearest centroid to the unweighted average of each pair.
  merge_table_.resize(static_cast<std::size_t>(kSize) * kSize);
  for (int a = 0; a < kSize; ++a) {
    for (int b = 0; b < kSize; ++b) {
      if (a == kEmptyCode) {
        merge_table_[static_cast<std::size_t>(a) * kSize + b] =
            static_cast<std::uint8_t>(b);
        continue;
      }
      if (b == kEmptyCode) {
        merge_table_[static_cast<std::size_t>(a) * kSize + b] =
            static_cast<std::uint8_t>(a);
        continue;
      }
      TrackVector avg;
      for (int k = 0; k < 5; ++k) {
        const auto ks = static_cast<std::size_t>(k);
        avg[ks] = 0.5f * (centroids_[static_cast<std::size_t>(a)][ks] +
                          centroids_[static_cast<std::size_t>(b)][ks]);
      }
      merge_table_[static_cast<std::size_t>(a) * kSize + b] = quantize(avg);
    }
  }
}

const CentroidCodebook& CentroidCodebook::instance() {
  static const CentroidCodebook codebook;
  return codebook;
}

std::uint8_t CentroidCodebook::quantize(const TrackVector& values) const {
  float sum = 0.0f;
  for (const float v : values) sum += v;
  if (!(sum > 0.0f)) return kEmptyCode;
  TrackVector norm;
  for (int k = 0; k < 5; ++k) {
    norm[static_cast<std::size_t>(k)] =
        values[static_cast<std::size_t>(k)] / sum;
  }
  // Skip the empty state (code 0): it is not a probability vector.
  std::uint8_t best = 1;
  float best_d2 = distance2(norm, centroids_[1]);
  for (int code = 2; code < kSize; ++code) {
    const float d2 = distance2(norm, centroids_[static_cast<std::size_t>(code)]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<std::uint8_t>(code);
    }
  }
  return best;
}

}  // namespace gnumap

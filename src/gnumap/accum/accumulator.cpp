#include "gnumap/accum/accumulator.hpp"

#include "gnumap/accum/centdisc_accumulator.hpp"
#include "gnumap/accum/chardisc_accumulator.hpp"
#include "gnumap/accum/norm_accumulator.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {

AccumKind accum_kind_from_string(const std::string& name) {
  if (name == "norm") return AccumKind::kNorm;
  if (name == "chardisc") return AccumKind::kCharDisc;
  if (name == "centdisc") return AccumKind::kCentDisc;
  throw ConfigError("unknown accumulator kind: '" + name +
                    "' (expected norm|chardisc|centdisc)");
}

const char* accum_kind_name(AccumKind kind) {
  switch (kind) {
    case AccumKind::kNorm:     return "NORM";
    case AccumKind::kCharDisc: return "CHARDISC";
    case AccumKind::kCentDisc: return "CENTDISC";
  }
  return "?";
}

std::unique_ptr<Accumulator> make_accumulator(
    AccumKind kind, std::uint64_t begin, std::uint64_t size,
    CentDiscQuantize centdisc_quantize) {
  switch (kind) {
    case AccumKind::kNorm:
      return std::make_unique<NormAccumulator>(begin, size);
    case AccumKind::kCharDisc:
      return std::make_unique<CharDiscAccumulator>(begin, size);
    case AccumKind::kCentDisc:
      return std::make_unique<CentDiscAccumulator>(begin, size,
                                                   centdisc_quantize);
  }
  throw ConfigError("make_accumulator: invalid kind");
}

}  // namespace gnumap

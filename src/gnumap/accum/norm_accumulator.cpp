#include "gnumap/accum/norm_accumulator.hpp"

#include <cstring>

#include "gnumap/util/error.hpp"

namespace gnumap {

NormAccumulator::NormAccumulator(std::uint64_t begin, std::uint64_t size)
    : begin_(begin), size_(size), data_(size * 5, 0.0f) {}

void NormAccumulator::add(std::uint64_t pos, const TrackVector& delta) {
  if (pos < begin_ || pos >= begin_ + size_) return;
  float* slot = &data_[(pos - begin_) * 5];
  for (int k = 0; k < 5; ++k) slot[k] += delta[static_cast<std::size_t>(k)];
}

TrackVector NormAccumulator::counts(std::uint64_t pos) const {
  TrackVector out{};
  if (pos < begin_ || pos >= begin_ + size_) return out;
  const float* slot = &data_[(pos - begin_) * 5];
  for (int k = 0; k < 5; ++k) out[static_cast<std::size_t>(k)] = slot[k];
  return out;
}

void NormAccumulator::merge(const Accumulator& other) {
  require(other.kind() == AccumKind::kNorm &&
              other.begin() == begin_ && other.size() == size_,
          "NormAccumulator::merge: kind/range mismatch");
  const auto& rhs = static_cast<const NormAccumulator&>(other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
}

std::vector<std::uint8_t> NormAccumulator::to_bytes() const {
  std::vector<std::uint8_t> bytes(data_.size() * sizeof(float));
  std::memcpy(bytes.data(), data_.data(), bytes.size());
  return bytes;
}

void NormAccumulator::from_bytes(const std::vector<std::uint8_t>& bytes) {
  require(bytes.size() == data_.size() * sizeof(float),
          "NormAccumulator::from_bytes: size mismatch");
  std::memcpy(data_.data(), bytes.data(), bytes.size());
}

}  // namespace gnumap

// Centroid codebook for the CENTDISC accumulator (paper, Section VI-B.2).
//
// 256 five-dimensional probability vectors chosen deterministically with the
// paper's biological weighting: "sampling biologically-relevant states at a
// higher rate than those which are not as likely".  Concretely:
//  * smoothed pure states, e.g. a single 'a' -> [0.84, 0.04, 0.04, 0.04, 0.04]
//    (the paper's own example);
//  * two-base mixtures, with transition pairs (A<->G, C<->T) sampled at
//    roughly twice the rate of transversion pairs — including asymmetric
//    "SNP states" like the paper's a->g example [0.28, 0.08, 0.48, 0.08, 0.08];
//  * base+gap mixtures;
//  * base+uniform-noise blends and the uniform background.
//
// The codebook also precomputes the 256 x 256 equal-weight merge table the
// paper describes for the MPI reduction phase ("the sum can be a pre-computed
// table lookup").  Ignoring the relative totals of the two operands is part
// of what makes CENTDISC lossy; we reproduce it as described.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gnumap/accum/accumulator.hpp"

namespace gnumap {

class CentroidCodebook {
 public:
  static constexpr int kSize = 256;

  /// Deterministic construction; identical on every rank/process.
  CentroidCodebook();

  /// The process-wide shared instance (construction is cheap but the merge
  /// table makes sharing worthwhile).
  static const CentroidCodebook& instance();

  const TrackVector& centroid(std::uint8_t code) const {
    return centroids_[code];
  }

  /// Nearest centroid (squared Euclidean distance) to a probability vector.
  /// `values` need not be normalized; it is normalized by its sum first.
  /// All-zero input maps to the dedicated empty state (code 0).
  std::uint8_t quantize(const TrackVector& values) const;

  /// Equal-weight merge: code of the centroid nearest to the average of the
  /// two operand centroids.  Precomputed.
  std::uint8_t merge(std::uint8_t a, std::uint8_t b) const {
    return merge_table_[static_cast<std::size_t>(a) * kSize + b];
  }

  /// Code 0 is reserved for "no mass yet".
  static constexpr std::uint8_t kEmptyCode = 0;

  // Anchor states used by the *approximate* converter (see
  // CentDiscAccumulator).  The paper notes that converting into gamma space
  // "either requires approximation or a somewhat exhaustive search"; its
  // worked example labels an a->g SNP event with the state
  // [0.28, 0.08, 0.48, 0.08, 0.08] — majority on the *destination* base.
  /// Smoothed pure state for a track (base code or kGapTrack).
  std::uint8_t pure_code(int track) const { return pure_codes_[static_cast<std::size_t>(track)]; }
  /// The "SNP from a to b" state: [0.28 a, 0.48 b, 0.08 rest].
  std::uint8_t snp_code(int from, int to) const {
    return snp_codes_[static_cast<std::size_t>(from) * 5 +
                      static_cast<std::size_t>(to)];
  }
  /// 50/50 heterozygous state for two tracks.
  std::uint8_t het_code(int a, int b) const {
    return het_codes_[static_cast<std::size_t>(a) * 5 +
                      static_cast<std::size_t>(b)];
  }
  /// Uniform background state.
  std::uint8_t uniform_code() const { return uniform_code_; }

  /// Memory of the shared tables (Table II bookkeeping).
  std::uint64_t memory_bytes() const {
    return centroids_.size() * sizeof(TrackVector) + merge_table_.size();
  }

 private:
  std::array<TrackVector, kSize> centroids_{};
  std::vector<std::uint8_t> merge_table_;
  std::array<std::uint8_t, 5> pure_codes_{};
  std::array<std::uint8_t, 25> snp_codes_{};
  std::array<std::uint8_t, 25> het_codes_{};
  std::uint8_t uniform_code_ = 0;
};

}  // namespace gnumap

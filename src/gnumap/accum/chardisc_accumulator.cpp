#include "gnumap/accum/chardisc_accumulator.hpp"

#include <algorithm>
#include <cstring>

#include "gnumap/util/error.hpp"

namespace gnumap {

CharDiscAccumulator::CharDiscAccumulator(std::uint64_t begin,
                                         std::uint64_t size)
    : begin_(begin), size_(size), totals_(size, 0.0f), shares_(size * 5, 0) {}

std::array<std::uint8_t, 5> CharDiscAccumulator::quantize(
    const TrackVector& values, float total) {
  std::array<std::uint8_t, 5> shares{};
  if (!(total > 0.0f)) return shares;
  // Largest-remainder method: floor each share, then hand the leftover
  // units to the largest remainders so the shares sum to exactly 255.
  std::array<float, 5> exact;
  std::array<int, 5> base;
  int used = 0;
  for (int k = 0; k < 5; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    exact[ks] = std::clamp(values[ks] / total, 0.0f, 1.0f) * 255.0f;
    base[ks] = static_cast<int>(exact[ks]);
    used += base[ks];
  }
  std::array<int, 5> order{0, 1, 2, 3, 4};
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const float ra = exact[static_cast<std::size_t>(a)] -
                     static_cast<float>(base[static_cast<std::size_t>(a)]);
    const float rb = exact[static_cast<std::size_t>(b)] -
                     static_cast<float>(base[static_cast<std::size_t>(b)]);
    return ra > rb;
  });
  int leftover = 255 - used;
  for (int idx = 0; idx < 5 && leftover > 0; ++idx, --leftover) {
    ++base[static_cast<std::size_t>(order[static_cast<std::size_t>(idx)])];
  }
  for (int k = 0; k < 5; ++k) {
    shares[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(
        std::clamp(base[static_cast<std::size_t>(k)], 0, 255));
  }
  return shares;
}

void CharDiscAccumulator::add(std::uint64_t pos, const TrackVector& delta) {
  if (pos < begin_ || pos >= begin_ + size_) return;
  const std::uint64_t slot = pos - begin_;
  const float old_total = totals_[slot];
  std::uint8_t* share = &shares_[slot * 5];

  // Back to real space: share/255 * total, then add the delta.
  TrackVector real;
  float new_total = 0.0f;
  for (int k = 0; k < 5; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    real[ks] = old_total * static_cast<float>(share[k]) / 255.0f + delta[ks];
    new_total += real[ks];
  }
  const auto quantized = quantize(real, new_total);
  for (int k = 0; k < 5; ++k) share[k] = quantized[static_cast<std::size_t>(k)];
  totals_[slot] = new_total;
}

TrackVector CharDiscAccumulator::counts(std::uint64_t pos) const {
  TrackVector out{};
  if (pos < begin_ || pos >= begin_ + size_) return out;
  const std::uint64_t slot = pos - begin_;
  const float total = totals_[slot];
  const std::uint8_t* share = &shares_[slot * 5];
  for (int k = 0; k < 5; ++k) {
    out[static_cast<std::size_t>(k)] =
        total * static_cast<float>(share[k]) / 255.0f;
  }
  return out;
}

void CharDiscAccumulator::merge(const Accumulator& other) {
  require(other.kind() == AccumKind::kCharDisc &&
              other.begin() == begin_ && other.size() == size_,
          "CharDiscAccumulator::merge: kind/range mismatch");
  const auto& rhs = static_cast<const CharDiscAccumulator&>(other);
  for (std::uint64_t slot = 0; slot < size_; ++slot) {
    if (!(rhs.totals_[slot] > 0.0f)) continue;
    const std::uint8_t* share = &rhs.shares_[slot * 5];
    TrackVector delta;
    for (int k = 0; k < 5; ++k) {
      delta[static_cast<std::size_t>(k)] =
          rhs.totals_[slot] * static_cast<float>(share[k]) / 255.0f;
    }
    add(begin_ + slot, delta);
  }
}

std::vector<std::uint8_t> CharDiscAccumulator::to_bytes() const {
  std::vector<std::uint8_t> bytes(totals_.size() * sizeof(float) +
                                  shares_.size());
  std::memcpy(bytes.data(), totals_.data(), totals_.size() * sizeof(float));
  std::memcpy(bytes.data() + totals_.size() * sizeof(float), shares_.data(),
              shares_.size());
  return bytes;
}

void CharDiscAccumulator::from_bytes(const std::vector<std::uint8_t>& bytes) {
  require(bytes.size() == totals_.size() * sizeof(float) + shares_.size(),
          "CharDiscAccumulator::from_bytes: size mismatch");
  std::memcpy(totals_.data(), bytes.data(), totals_.size() * sizeof(float));
  std::memcpy(shares_.data(), bytes.data() + totals_.size() * sizeof(float),
              shares_.size());
}

}  // namespace gnumap

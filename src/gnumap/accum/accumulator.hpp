// Genome accumulation buffers.
//
// "an array of floats representing the entire genomic sequence is stored in
//  the program's memory, with space allocated for each nucleotide... As each
//  read is aligned to the genome, probabilities are summed to obtain a
//  complete alignment."  (paper, Section VI-A)
//
// Three concrete layouts reproduce Section VI-B:
//  * NORM      — five floats per position (A, C, G, T, gap).
//  * CHARDISC  — one float (total mass) + five bytes (fractions of 255).
//  * CENTDISC  — one byte per position indexing a 256-centroid codebook,
//                plus one float for the total; adds go through repeated
//                nearest-centroid requantization (faithfully lossy).
//
// The interface is deliberately narrow: the mapper only ever adds a 5-vector
// at a position, the caller only ever reads a 5-vector back, and the mpsim
// reduction only ever merges two buffers of the same kind and range.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gnumap {

/// Track vector at one genome position: expected read mass per
/// A, C, G, T, gap.
using TrackVector = std::array<float, 5>;

enum class AccumKind : std::uint8_t { kNorm = 0, kCharDisc = 1, kCentDisc = 2 };

/// Parses "norm" / "chardisc" / "centdisc"; throws ConfigError otherwise.
AccumKind accum_kind_from_string(const std::string& name);
const char* accum_kind_name(AccumKind kind);

class Accumulator {
 public:
  virtual ~Accumulator() = default;

  /// Number of positions covered ([begin, begin+size) in global coords).
  virtual std::uint64_t size() const = 0;
  /// Global genome position of slot 0.
  virtual std::uint64_t begin() const = 0;

  /// Adds `delta` (nonnegative mass per track) at global position `pos`.
  /// Positions outside [begin, begin+size) are ignored (the genome-partition
  /// mode clips window flanks that spill past a segment).
  virtual void add(std::uint64_t pos, const TrackVector& delta) = 0;

  /// Reads back the accumulated 5-vector at global position `pos`.
  virtual TrackVector counts(std::uint64_t pos) const = 0;

  /// Merges another buffer of the same kind and range into this one.
  /// Throws ConfigError on kind/range mismatch.
  virtual void merge(const Accumulator& other) = 0;

  /// Serializes to bytes for the mpsim reduction; deserialize with the
  /// factory's `from_bytes`.
  virtual std::vector<std::uint8_t> to_bytes() const = 0;
  virtual void from_bytes(const std::vector<std::uint8_t>& bytes) = 0;

  /// Bytes of storage per genome position for this layout (the Table II
  /// quantity), excluding fixed overhead shared across positions.
  virtual double bytes_per_position() const = 0;
  /// Actual heap bytes held by this buffer.
  virtual std::uint64_t memory_bytes() const = 0;

  virtual AccumKind kind() const = 0;
};

/// How CENTDISC converts real-valued vectors into centroid space; see
/// centdisc_accumulator.hpp.  Ignored by the other layouts.
enum class CentDiscQuantize : std::uint8_t { kApproximate = 0, kNearest = 1 };

/// Creates a buffer of `kind` covering [begin, begin+size).
std::unique_ptr<Accumulator> make_accumulator(
    AccumKind kind, std::uint64_t begin, std::uint64_t size,
    CentDiscQuantize centdisc_quantize = CentDiscQuantize::kApproximate);

}  // namespace gnumap

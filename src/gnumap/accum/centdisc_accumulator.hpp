// CENTDISC layout: centroid discretization (paper, Section VI-B.2).
//
// Per position: one byte indexing the shared 256-centroid codebook plus one
// float for the total mass.  Every add decodes the centroid to real space,
// adds the delta, and requantizes to the nearest centroid — "the centroid
// method performs significant rounding approximations each time a new
// sequence is added", which is exactly why the paper found its accuracy
// unacceptable (Table III).  Merges between ranks use the precomputed
// equal-weight 256x256 table, as described in the paper; the totals add
// exactly but the composition ignores the operands' relative weights.
#pragma once

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/accum/codebook.hpp"

namespace gnumap {

// CentDiscQuantize (declared in accumulator.hpp) selects the conversion
// back into centroid space:
//
// kApproximate is the paper-faithful default: "converting from continuous
// values to the discretized gamma either requires approximation or a
// somewhat exhaustive search"; GNUMAP chose the approximation, modeled here
// as classifying the composition as pure / SNP-event / heterozygous /
// uniform by its top two tracks.  Per the paper's own a->g example, a
// mixture with a 10-35% secondary base is labeled as a *SNP in progress*
// whose state puts the majority on the destination base — an attractor
// that dilutes or flips the evidence at noisy positions and drives the
// accuracy loss of Table III.
//
// kNearest is the exhaustive search (our extension): exact nearest-centroid
// quantization, which removes the attractor and most of the accuracy loss
// at a ~5x cost per add.
class CentDiscAccumulator final : public Accumulator {
 public:
  CentDiscAccumulator(
      std::uint64_t begin, std::uint64_t size,
      CentDiscQuantize mode = CentDiscQuantize::kApproximate);

  std::uint64_t size() const override { return size_; }
  std::uint64_t begin() const override { return begin_; }
  void add(std::uint64_t pos, const TrackVector& delta) override;
  TrackVector counts(std::uint64_t pos) const override;
  void merge(const Accumulator& other) override;
  std::vector<std::uint8_t> to_bytes() const override;
  void from_bytes(const std::vector<std::uint8_t>& bytes) override;
  double bytes_per_position() const override { return sizeof(float) + 1.0; }
  std::uint64_t memory_bytes() const override {
    return totals_.size() * sizeof(float) + codes_.size();
  }
  AccumKind kind() const override { return AccumKind::kCentDisc; }

  /// The centroid code currently stored at a position (tests/diagnostics).
  std::uint8_t code_at(std::uint64_t pos) const;

  CentDiscQuantize quantize_mode() const { return mode_; }

  /// The approximate composition classifier (exposed for tests).
  static std::uint8_t approximate_code(const CentroidCodebook& codebook,
                                       const TrackVector& values);

 private:
  const CentroidCodebook& codebook_;
  CentDiscQuantize mode_;
  std::uint64_t begin_;
  std::uint64_t size_;
  std::vector<float> totals_;
  std::vector<std::uint8_t> codes_;
};

}  // namespace gnumap

// CHARDISC layout: nucleotide-byte discretization (paper, Section VI-B.1).
//
// Per position: one float holding the total accumulated mass and five bytes
// holding each track's share as a fraction of 255.  An add converts the
// bytes back to real space (fraction * total), adds the delta, and
// requantizes against the new total.
//
// Faithful quirks from the paper:
//  * The largest-remainder rounding keeps the byte shares summing to 255
//    whenever the total is nonzero (the paper's worked example:
//    one 'a' + one 't' -> [128, 0, 0, 127, 0]).
//  * Saturation: "as the total number of sequences assigned to a particular
//    location increases beyond 255, the amount changed at a single character
//    becomes zero" — small deltas on top of a large total round away.
// (The prose says "dividing by 128" but every worked example uses the full
//  byte range; we follow the examples.  See DESIGN.md.)
#pragma once

#include "gnumap/accum/accumulator.hpp"

namespace gnumap {

class CharDiscAccumulator final : public Accumulator {
 public:
  CharDiscAccumulator(std::uint64_t begin, std::uint64_t size);

  std::uint64_t size() const override { return size_; }
  std::uint64_t begin() const override { return begin_; }
  void add(std::uint64_t pos, const TrackVector& delta) override;
  TrackVector counts(std::uint64_t pos) const override;
  void merge(const Accumulator& other) override;
  std::vector<std::uint8_t> to_bytes() const override;
  void from_bytes(const std::vector<std::uint8_t>& bytes) override;
  double bytes_per_position() const override {
    return sizeof(float) + 5.0;  // total + five share bytes
  }
  std::uint64_t memory_bytes() const override {
    return totals_.size() * sizeof(float) + shares_.size();
  }
  AccumKind kind() const override { return AccumKind::kCharDisc; }

  /// Requantizes a real-valued 5-vector into shares of 255 using
  /// largest-remainder rounding.  Exposed for tests.
  static std::array<std::uint8_t, 5> quantize(const TrackVector& values,
                                              float total);

 private:
  std::uint64_t begin_;
  std::uint64_t size_;
  std::vector<float> totals_;         // size_
  std::vector<std::uint8_t> shares_;  // 5 * size_
};

}  // namespace gnumap

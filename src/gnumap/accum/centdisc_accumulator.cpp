#include "gnumap/accum/centdisc_accumulator.hpp"

#include <cstring>

#include "gnumap/util/error.hpp"

namespace gnumap {

CentDiscAccumulator::CentDiscAccumulator(std::uint64_t begin,
                                         std::uint64_t size,
                                         CentDiscQuantize mode)
    : codebook_(CentroidCodebook::instance()),
      mode_(mode),
      begin_(begin),
      size_(size),
      totals_(size, 0.0f),
      codes_(size, CentroidCodebook::kEmptyCode) {}

std::uint8_t CentDiscAccumulator::approximate_code(
    const CentroidCodebook& codebook, const TrackVector& values) {
  float total = 0.0f;
  for (const float v : values) total += v;
  if (!(total > 0.0f)) return CentroidCodebook::kEmptyCode;

  // Top two tracks.
  int major = 0, minor = 1;
  if (values[1] > values[0]) { major = 1; minor = 0; }
  for (int k = 2; k < 5; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    if (values[ks] > values[static_cast<std::size_t>(major)]) {
      minor = major;
      major = k;
    } else if (values[ks] > values[static_cast<std::size_t>(minor)]) {
      minor = k;
    }
  }
  const float top2 = values[static_cast<std::size_t>(major)] +
                     values[static_cast<std::size_t>(minor)];
  const float minor_frac =
      top2 > 0.0f ? values[static_cast<std::size_t>(minor)] / top2 : 0.0f;
  // Background check: if the top two tracks carry less than 60% of the
  // mass the composition is noise.
  if (top2 < 0.6f * total) return codebook.uniform_code();
  if (minor_frac < 0.08f) return codebook.pure_code(major);
  if (minor_frac < 0.35f) {
    // "A SNP from <major> to <minor>": per the paper's example the state's
    // majority sits on the destination base.
    return codebook.snp_code(major, minor);
  }
  return codebook.het_code(major, minor);
}

void CentDiscAccumulator::add(std::uint64_t pos, const TrackVector& delta) {
  if (pos < begin_ || pos >= begin_ + size_) return;
  const std::uint64_t slot = pos - begin_;
  const float old_total = totals_[slot];
  const TrackVector& centroid = codebook_.centroid(codes_[slot]);

  TrackVector real;
  float new_total = 0.0f;
  for (int k = 0; k < 5; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    real[ks] = old_total * centroid[ks] + delta[ks];
    new_total += real[ks];
  }
  if (!(new_total > 0.0f)) return;
  codes_[slot] = mode_ == CentDiscQuantize::kNearest
                     ? codebook_.quantize(real)
                     : approximate_code(codebook_, real);
  totals_[slot] = new_total;
}

TrackVector CentDiscAccumulator::counts(std::uint64_t pos) const {
  TrackVector out{};
  if (pos < begin_ || pos >= begin_ + size_) return out;
  const std::uint64_t slot = pos - begin_;
  const TrackVector& centroid = codebook_.centroid(codes_[slot]);
  for (int k = 0; k < 5; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    out[ks] = totals_[slot] * centroid[ks];
  }
  return out;
}

void CentDiscAccumulator::merge(const Accumulator& other) {
  require(other.kind() == AccumKind::kCentDisc &&
              other.begin() == begin_ && other.size() == size_,
          "CentDiscAccumulator::merge: kind/range mismatch");
  const auto& rhs = static_cast<const CentDiscAccumulator&>(other);
  for (std::uint64_t slot = 0; slot < size_; ++slot) {
    // Paper-faithful reduction: composition via the equal-weight table,
    // totals added exactly.
    codes_[slot] = codebook_.merge(codes_[slot], rhs.codes_[slot]);
    totals_[slot] += rhs.totals_[slot];
  }
}

std::uint8_t CentDiscAccumulator::code_at(std::uint64_t pos) const {
  require(pos >= begin_ && pos < begin_ + size_,
          "CentDiscAccumulator::code_at: position out of range");
  return codes_[pos - begin_];
}

std::vector<std::uint8_t> CentDiscAccumulator::to_bytes() const {
  std::vector<std::uint8_t> bytes(totals_.size() * sizeof(float) +
                                  codes_.size());
  std::memcpy(bytes.data(), totals_.data(), totals_.size() * sizeof(float));
  std::memcpy(bytes.data() + totals_.size() * sizeof(float), codes_.data(),
              codes_.size());
  return bytes;
}

void CentDiscAccumulator::from_bytes(const std::vector<std::uint8_t>& bytes) {
  require(bytes.size() == totals_.size() * sizeof(float) + codes_.size(),
          "CentDiscAccumulator::from_bytes: size mismatch");
  std::memcpy(totals_.data(), bytes.data(), totals_.size() * sizeof(float));
  std::memcpy(codes_.data(), bytes.data() + totals_.size() * sizeof(float),
              codes_.size());
}

}  // namespace gnumap

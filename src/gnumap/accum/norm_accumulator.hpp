// NORM layout: five floats per genome position.
//
// This is the paper's baseline: exact accumulation, 20 bytes per position.
#pragma once

#include "gnumap/accum/accumulator.hpp"

namespace gnumap {

class NormAccumulator final : public Accumulator {
 public:
  NormAccumulator(std::uint64_t begin, std::uint64_t size);

  std::uint64_t size() const override { return size_; }
  std::uint64_t begin() const override { return begin_; }
  void add(std::uint64_t pos, const TrackVector& delta) override;
  TrackVector counts(std::uint64_t pos) const override;
  void merge(const Accumulator& other) override;
  std::vector<std::uint8_t> to_bytes() const override;
  void from_bytes(const std::vector<std::uint8_t>& bytes) override;
  double bytes_per_position() const override { return 5.0 * sizeof(float); }
  std::uint64_t memory_bytes() const override {
    return data_.size() * sizeof(float);
  }
  AccumKind kind() const override { return AccumKind::kNorm; }

 private:
  std::uint64_t begin_;
  std::uint64_t size_;
  std::vector<float> data_;  // 5 * size_, position-major
};

}  // namespace gnumap

// Small string helpers used by the text-format parsers and report printers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gnumap {

/// Splits on a single delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view strip(std::string_view text);

/// Removes a leading UTF-8 byte-order mark, if present (Windows tools
/// sometimes prepend one to otherwise-plain text files).
void strip_bom(std::string& line);

/// True if `text` begins with `prefix`.
inline bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

/// Parses a non-negative integer; throws ParseError on junk.
std::uint64_t parse_u64(std::string_view text);

/// Parses a double; throws ParseError on junk.
double parse_double(std::string_view text);

/// Human-readable byte count ("4.76 GB").
std::string format_bytes(std::uint64_t bytes);

/// Fixed-point formatting helper ("93.2%").
std::string format_percent(double fraction, int decimals = 1);

/// "HH:MM:SS" from seconds, mirroring the paper's wall-clock column.
std::string format_hms(double seconds);

}  // namespace gnumap

// Fixed-size thread pool with a blocking parallel_for.
//
// The shared-memory parallelism in the pipeline (mapping reads within one
// rank) is expressed as parallel_for over read batches, mirroring the
// OpenMP-style worksharing the paper uses on shared-memory nodes.  Chunks are
// distributed dynamically (atomic counter) so uneven per-read cost — reads
// hitting repeat regions align against many candidate windows — balances out.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gnumap {

class ThreadPool {
 public:
  /// Creates `num_threads` workers.  0 means "hardware concurrency".
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(begin..end) split into dynamic chunks across the pool, including
  /// the calling thread.  Blocks until complete.  `grain` is the chunk size.
  void parallel_for(std::size_t begin, std::size_t end,
                    std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Standalone dynamic-chunk parallel_for that spins up transient threads.
/// Convenient for callers that do not want to hold a pool.
void parallel_for(std::size_t num_threads, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace gnumap

// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (read simulator, mutation
// placement, tie breaking) draw from Xoshiro256**, seeded through SplitMix64
// so that a single 64-bit seed reproduces an entire experiment bit-for-bit
// regardless of platform.  <random> engines are avoided because their
// distributions are not specified to be identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace gnumap {

/// SplitMix64: used to expand a user seed into engine state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6e75736e70ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).  `bound` must be nonzero.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// True with probability `p` (clamped to [0,1]).
  bool bernoulli(double p) { return next_double() < p; }

  /// Standard normal via Marsaglia polar method.
  double next_gaussian();

  /// Poisson-distributed count with mean `lambda` (Knuth for small lambda,
  /// normal approximation above 64).
  unsigned next_poisson(double lambda);

  /// Derive an independent child stream (for per-thread determinism).
  Rng split() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  // Cached second Gaussian deviate from the polar method.
  double gauss_cache_ = 0.0;
  bool gauss_cached_ = false;
};

}  // namespace gnumap

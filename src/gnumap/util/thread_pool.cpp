#include "gnumap/util/thread_pool.hpp"

#include <algorithm>

namespace gnumap {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with an empty queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);

  auto drain = [next, end, grain, &fn] {
    for (;;) {
      const std::size_t chunk_begin = next->fetch_add(grain);
      if (chunk_begin >= end) return;
      fn(chunk_begin, std::min(end, chunk_begin + grain));
    }
  };

  // Workers pull chunks; the caller also participates so a 1-thread pool
  // still makes progress while this thread would otherwise idle.
  const std::size_t helpers = workers_.size();
  std::atomic<std::size_t> done{0};
  std::mutex m;
  std::condition_variable cv;
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([&] {
      drain();
      if (done.fetch_add(1) + 1 == helpers) {
        std::lock_guard<std::mutex> lock(m);
        cv.notify_all();
      }
    });
  }
  drain();
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done.load() == helpers; });
}

void parallel_for(std::size_t num_threads, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  num_threads = std::max<std::size_t>(1, num_threads);
  grain = std::max<std::size_t>(1, grain);
  std::atomic<std::size_t> next{begin};
  auto drain = [&] {
    for (;;) {
      const std::size_t chunk_begin = next.fetch_add(grain);
      if (chunk_begin >= end) return;
      fn(chunk_begin, std::min(end, chunk_begin + grain));
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (std::size_t i = 1; i < num_threads; ++i) threads.emplace_back(drain);
  drain();
  for (auto& t : threads) t.join();
}

}  // namespace gnumap

#include "gnumap/util/rng.hpp"

#include <cmath>

namespace gnumap {

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire (2019): unbiased bounded integers without division on the fast
  // path.  128-bit multiply keeps the high word as the candidate.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_gaussian() {
  if (gauss_cached_) {
    gauss_cached_ = false;
    return gauss_cache_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  gauss_cache_ = v * factor;
  gauss_cached_ = true;
  return u * factor;
}

unsigned Rng::next_poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // coverage-sampling use case.
    const double x = lambda + std::sqrt(lambda) * next_gaussian() + 0.5;
    return x < 0.0 ? 0u : static_cast<unsigned>(x);
  }
  const double limit = std::exp(-lambda);
  double product = next_double();
  unsigned count = 0;
  while (product > limit) {
    ++count;
    product *= next_double();
  }
  return count;
}

}  // namespace gnumap

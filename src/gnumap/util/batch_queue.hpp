// Bounded multi-producer/multi-consumer queue and an order-restoring
// companion, the two seams of the streaming read pipeline.
//
// BatchQueue<T> carries batches from the decoder to the mapper workers with
// backpressure: push() blocks while the queue is at capacity, so a fast
// decoder can never hold more than `capacity` batches ahead of the slowest
// consumer — the invariant that makes pipeline memory O(queue_depth x
// batch) instead of O(dataset).
//
// ReorderBuffer<T> sits between the (out-of-order) workers and the single
// ordered drain: workers push completed items tagged with their input
// sequence number, the drain pops them back in exactly input order.  Its
// capacity bound doubles as backpressure on stragglers — a worker that
// finished item seq cannot park it while the drain is still more than
// `capacity` items behind — with the guarantee that the item the drain is
// waiting for is always accepted, so the window can never deadlock.
//
// The optional weight budget extends the same admission window to a second
// resource: each push may carry a weight (the pipeline uses rendered output
// bytes), and a push beyond the window's weight budget blocks like a push
// beyond its count capacity.  The in-order item (seq == next_seq) is exempt
// from BOTH limits, which is what makes the window deadlock-free: the
// upstream queue hands sequence numbers to workers in order, so the
// smallest undrained seq is always held by some worker whose push is
// admitted unconditionally, and popping it releases budget for everyone
// else.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "gnumap/util/error.hpp"

namespace gnumap {

template <typename T>
class BatchQueue {
 public:
  /// `capacity` > 0: the most items that can be queued at once.
  explicit BatchQueue(std::size_t capacity) : capacity_(capacity) {
    require(capacity > 0, "BatchQueue: capacity must be positive");
  }

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Blocks while the queue is full.  Returns false (dropping `item`) if the
  /// queue was closed before space opened up.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    peak_size_ = std::max(peak_size_, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty.  Returns nullopt once the queue is
  /// closed *and* drained; items queued before close() are still delivered.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Ends the stream: blocked pushers return false, poppers drain what is
  /// queued and then get nullopt.  Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// High-water mark of size() over the queue's lifetime (for the
  /// bounded-memory assertions and the queue-depth gauge).
  std::size_t peak_size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_size_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t peak_size_ = 0;
  bool closed_ = false;
};

template <typename T>
class ReorderBuffer {
 public:
  /// `capacity` bounds how far ahead of the drain a parked item may be:
  /// push(seq) admits seq < next_seq + capacity.  Choose capacity >= the
  /// number of items that can be in flight upstream (queue depth + workers)
  /// so every producer's push is eventually admissible.  `weight_capacity`
  /// additionally bounds the summed weight of parked items (0 = no weight
  /// limit); the in-order item is exempt so the limit cannot deadlock.
  explicit ReorderBuffer(std::size_t capacity,
                         std::uint64_t weight_capacity = 0)
      : capacity_(capacity), weight_capacity_(weight_capacity) {
    require(capacity > 0, "ReorderBuffer: capacity must be positive");
  }

  ReorderBuffer(const ReorderBuffer&) = delete;
  ReorderBuffer& operator=(const ReorderBuffer&) = delete;

  /// Parks `item` as sequence number `seq` (each seq pushed exactly once)
  /// carrying `weight` against the weight budget.  Blocks while seq is
  /// beyond the admission window or the budget is exhausted; the item the
  /// drain needs next (seq == next_seq) is always admitted immediately.
  /// Returns false if the buffer was closed first.
  bool push(std::uint64_t seq, T item, std::uint64_t weight = 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    admissible_.wait(lock, [&] {
      if (closed_ || seq == next_seq_) return true;
      if (seq >= next_seq_ + capacity_) return false;
      return weight_capacity_ == 0 ||
             weight_pending_ + weight <= weight_capacity_;
    });
    if (closed_) return false;
    pending_.emplace(seq, Parked{std::move(item), weight});
    weight_pending_ += weight;
    peak_pending_ = std::max(peak_pending_, pending_.size());
    peak_weight_pending_ = std::max(peak_weight_pending_, weight_pending_);
    if (seq == next_seq_) {
      lock.unlock();
      next_ready_.notify_one();
    }
    return true;
  }

  /// Blocks until the item with the next input sequence number arrives,
  /// then returns it.  Returns nullopt once closed with no next item parked.
  std::optional<T> pop_next() {
    std::unique_lock<std::mutex> lock(mutex_);
    next_ready_.wait(lock, [&] {
      return (!pending_.empty() && pending_.begin()->first == next_seq_) ||
             closed_;
    });
    auto it = pending_.begin();
    if (it == pending_.end() || it->first != next_seq_) return std::nullopt;
    T item = std::move(it->second.item);
    weight_pending_ -= it->second.weight;
    pending_.erase(it);
    ++next_seq_;
    lock.unlock();
    // Advancing next_seq_ widens the admission window (and popping released
    // weight budget) for every waiter.
    admissible_.notify_all();
    next_ready_.notify_one();
    return item;
  }

  /// Unblocks every waiter; pending out-of-order items are discarded.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    admissible_.notify_all();
    next_ready_.notify_all();
  }

  std::size_t peak_pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_pending_;
  }

  /// High-water mark of the summed weight of parked items.  The in-order
  /// exemption means this can exceed weight_capacity by one item's weight.
  std::uint64_t peak_weight_pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_weight_pending_;
  }

  std::size_t capacity() const { return capacity_; }
  std::uint64_t weight_capacity() const { return weight_capacity_; }

 private:
  struct Parked {
    T item;
    std::uint64_t weight = 0;
  };

  const std::size_t capacity_;
  const std::uint64_t weight_capacity_;
  mutable std::mutex mutex_;
  std::condition_variable admissible_;
  std::condition_variable next_ready_;
  std::map<std::uint64_t, Parked> pending_;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_pending_ = 0;
  std::uint64_t weight_pending_ = 0;
  std::uint64_t peak_weight_pending_ = 0;
  bool closed_ = false;
};

}  // namespace gnumap

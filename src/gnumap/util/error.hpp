// Error hierarchy for the gnumap library.
//
// The library throws exceptions for unrecoverable misuse (bad configuration,
// malformed input files); hot paths never throw and report via return values.
#pragma once

#include <stdexcept>
#include <string>

namespace gnumap {

/// Base class for every error thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or truncated input data (FASTA/FASTQ/catalog files, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Invalid configuration or API misuse detected at a checked boundary.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Communication failure in the mpsim runtime: a blocking receive or
/// collective timed out, or a peer exited without sending an expected
/// message.  Retryable — the distributed driver restarts from checkpoints.
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// A peer rank died (crashed, or threw out of its rank body) while this
/// rank was blocked on it; thrown by every receiver the abort wakes.
class RankFailedError : public CommError {
 public:
  RankFailedError(const std::string& what, int rank)
      : CommError(what), rank_(rank) {}
  /// The rank whose failure aborted the wait.
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// Throws ConfigError if `cond` is false.  Used at API boundaries only.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw ConfigError(what);
}

}  // namespace gnumap

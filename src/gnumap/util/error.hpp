// Error hierarchy for the gnumap library.
//
// The library throws exceptions for unrecoverable misuse (bad configuration,
// malformed input files); hot paths never throw and report via return values.
#pragma once

#include <stdexcept>
#include <string>

namespace gnumap {

/// Base class for every error thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or truncated input data (FASTA/FASTQ/catalog files, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Invalid configuration or API misuse detected at a checked boundary.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Throws ConfigError if `cond` is false.  Used at API boundaries only.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw ConfigError(what);
}

}  // namespace gnumap

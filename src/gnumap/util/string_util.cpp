#include "gnumap/util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "gnumap/util/error.hpp"

namespace gnumap {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view strip(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

void strip_bom(std::string& line) {
  if (line.size() >= 3 && line[0] == '\xEF' && line[1] == '\xBB' &&
      line[2] == '\xBF') {
    line.erase(0, 3);
  }
}

std::uint64_t parse_u64(std::string_view text) {
  text = strip(text);
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw ParseError("not an unsigned integer: '" + std::string(text) + "'");
  }
  return value;
}

double parse_double(std::string_view text) {
  text = strip(text);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw ParseError("not a number: '" + std::string(text) + "'");
  }
  return value;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f %s", value, kUnits[unit]);
  return buffer;
}

std::string format_percent(double fraction, int decimals) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals, fraction * 100.0);
  return buffer;
}

std::string format_hms(double seconds) {
  if (seconds < 0.0 || !std::isfinite(seconds)) seconds = 0.0;
  const auto total = static_cast<std::uint64_t>(seconds + 0.5);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%02llu:%02llu:%02llu",
                static_cast<unsigned long long>(total / 3600),
                static_cast<unsigned long long>((total / 60) % 60),
                static_cast<unsigned long long>(total % 60));
  return buffer;
}

}  // namespace gnumap

// Minimal leveled logger.
//
// The library itself logs sparingly (progress of long pipeline phases,
// warnings about degenerate inputs).  Output goes to stderr; the level is a
// process-wide atomic so examples and benches can silence it.
#pragma once

#include <sstream>
#include <string>

namespace gnumap {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that is actually emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

/// Stream-style log statement: LOG(kInfo) << "mapped " << n << " reads";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace gnumap

#define GNUMAP_LOG(level)                                  \
  if (static_cast<int>(::gnumap::LogLevel::level) <        \
      static_cast<int>(::gnumap::log_level())) {           \
  } else                                                   \
    ::gnumap::LogLine(::gnumap::LogLevel::level)

// Monotonic wall-clock timing.
#pragma once

#include <chrono>

namespace gnumap {

/// Simple stopwatch around std::chrono::steady_clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating timer: sums disjoint timed intervals.  Used by the mpsim cost
/// model to attribute compute time to individual ranks.
class Stopwatch {
 public:
  void start() { timer_.reset(); running_ = true; }

  void stop() {
    if (running_) {
      total_ += timer_.seconds();
      running_ = false;
    }
  }

  /// Total accumulated seconds (excluding a currently running interval).
  double total_seconds() const { return total_; }

  void add_seconds(double s) { total_ += s; }
  void reset() { total_ = 0.0; running_ = false; }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace gnumap

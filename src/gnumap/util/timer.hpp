// Monotonic wall-clock timing.
#pragma once

#include <chrono>

namespace gnumap {

/// Simple stopwatch around std::chrono::steady_clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating timer: sums disjoint timed intervals.  Used by the mpsim cost
/// model to attribute compute time to individual ranks.
class Stopwatch {
 public:
  void start() { timer_.reset(); running_ = true; }

  void stop() {
    if (running_) {
      total_ += timer_.seconds();
      running_ = false;
    }
  }

  /// True while an interval is open (start() without a matching stop()).
  bool running() const { return running_; }

  /// Total accumulated seconds — closed intervals only.  Footgun: while an
  /// interval is open this silently under-reports; readers sampling a live
  /// stopwatch (mpsim cost attribution, progress displays) want
  /// elapsed_including_running().
  double total_seconds() const { return total_; }

  /// Seconds of the currently open interval (0 when stopped).
  double running_seconds() const { return running_ ? timer_.seconds() : 0.0; }

  /// Closed intervals plus any open one: safe to sample at any time.
  double elapsed_including_running() const {
    return total_ + running_seconds();
  }

  void add_seconds(double s) { total_ += s; }
  void reset() { total_ = 0.0; running_ = false; }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace gnumap

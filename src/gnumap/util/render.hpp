// Locale-independent number-to-text rendering for the output hot path.
//
// Every byte the pipeline emits (SAM, TSV, VCF) goes through these helpers
// instead of std::ostream operator<< or snprintf.  Two reasons:
//
//  * Locale independence.  ostream insertion honours the stream's imbued
//    locale and snprintf honours LC_NUMERIC, so a host running under a
//    comma-decimal locale would silently corrupt TSV columns ("3,14") and
//    grouped integers ("1.234.567").  std::to_chars is specified to format
//    "in the 'C' locale" unconditionally, so output is identical under any
//    locale the process or thread happens to have.
//  * Speed.  to_chars writes into a caller-provided buffer with no
//    virtual-dispatch streambuf hops, no sentry construction and no locale
//    lookups — the properties that let mapper workers render whole batches
//    into flat byte buffers (io/output_chunk.hpp).
//
// The precision overloads of to_chars are specified as printf-equivalent
// ("%.Nf" / "%.Ne" / "%.Ng" in the C locale), so replacing the previous
// snprintf calls is byte-identical where it matters: the regression suite
// asserts exact equality against reference output.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>

#include "gnumap/util/error.hpp"

namespace gnumap {

/// Appends `value` in decimal (any integral type to_chars accepts).
template <typename Int>
inline void append_int(std::string& out, Int value) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), value);
  require(r.ec == std::errc(), "append_int: value does not fit");
  out.append(buf, r.ptr);
}

/// Appends `value` as printf "%.<precision>f" would in the C locale.
inline void append_fixed(std::string& out, double value, int precision) {
  char buf[512];  // worst-case fixed rendering of a double is ~330 chars
  const auto r = std::to_chars(buf, buf + sizeof(buf), value,
                               std::chars_format::fixed, precision);
  require(r.ec == std::errc(), "append_fixed: buffer too small");
  out.append(buf, r.ptr);
}

/// Appends `value` as printf "%.<precision>e" would in the C locale.
inline void append_scientific(std::string& out, double value, int precision) {
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof(buf), value,
                               std::chars_format::scientific, precision);
  require(r.ec == std::errc(), "append_scientific: buffer too small");
  out.append(buf, r.ptr);
}

/// Appends `value` as printf "%.<precision>g" would in the C locale.
inline void append_general(std::string& out, double value, int precision) {
  char buf[512];
  const auto r = std::to_chars(buf, buf + sizeof(buf), value,
                               std::chars_format::general, precision);
  require(r.ec == std::errc(), "append_general: buffer too small");
  out.append(buf, r.ptr);
}

}  // namespace gnumap

// Genome partitioning for the spread-memory (genome-partition) MPI mode.
//
// "the genome is split into equal segments and distributed across the
//  participating machines so no one machine performs more work than any
//  other" (paper, Step 1).
//
// Each segment carries an overlap margin on both sides so reads seeded near a
// boundary can still be aligned locally; ownership of accumulated positions is
// exclusive (half-open core range) so no base is double-called.
#pragma once

#include <cstdint>
#include <vector>

#include "gnumap/genome/genome.hpp"

namespace gnumap {

struct GenomeSegment {
  /// Rank that owns this segment.
  int rank = 0;
  /// Owned core range [core_begin, core_end) in global coordinates.
  GenomePos core_begin = 0;
  GenomePos core_end = 0;
  /// Stored range including the overlap margin.
  GenomePos store_begin = 0;
  GenomePos store_end = 0;
};

/// Splits [0, genome.padded_size()) into `num_ranks` near-equal core ranges
/// with `margin` bases of overlap on each side.  Every position belongs to
/// exactly one core range; segments never extend past the array.
std::vector<GenomeSegment> partition_genome(const Genome& genome,
                                            int num_ranks,
                                            std::uint64_t margin);

}  // namespace gnumap

// Reference genome container.
//
// Contigs are concatenated into one coded byte array with an N-padding gap
// between contigs so k-mers never straddle a contig boundary.  Positions used
// throughout the mapper are *global* offsets into this array; helpers convert
// to (contig, local offset) coordinates for reporting.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gnumap/genome/sequence.hpp"

namespace gnumap {

/// Global genome position.
using GenomePos = std::uint64_t;

/// Position resolved into contig coordinates.
struct ContigCoord {
  std::uint32_t contig_id = 0;
  std::uint64_t offset = 0;  ///< 0-based offset within the contig
};

class Genome {
 public:
  Genome() = default;

  /// Appends a contig; returns its id.  Name must be unique.  Rejected on a
  /// borrowed genome (see from_borrowed).
  std::uint32_t add_contig(std::string name, std::vector<std::uint8_t> codes);
  std::uint32_t add_contig(std::string name, std::string_view ascii);

  /// Wraps a pre-encoded concatenated array (padding included) without
  /// copying — the zero-copy path for the mmap'ed fleet index file.  `data`
  /// must outlive the Genome; `starts`/`ends` are global contig bounds into
  /// it.  Throws ConfigError when the metadata is inconsistent.
  static Genome from_borrowed(std::span<const std::uint8_t> data,
                              std::vector<std::string> names,
                              std::vector<std::uint64_t> starts,
                              std::vector<std::uint64_t> ends);

  std::uint32_t num_contigs() const {
    return static_cast<std::uint32_t>(names_.size());
  }
  /// Total bases across contigs (excludes inter-contig padding).
  std::uint64_t num_bases() const { return num_bases_; }
  /// Size of the concatenated coded array (includes padding).
  std::uint64_t padded_size() const { return storage().size(); }

  const std::string& contig_name(std::uint32_t id) const { return names_[id]; }
  std::uint64_t contig_size(std::uint32_t id) const {
    return ends_[id] - starts_[id];
  }
  /// Global position of the first base of a contig.
  GenomePos contig_start(std::uint32_t id) const { return starts_[id]; }

  /// Base code at a global position (N for padding).
  std::uint8_t at(GenomePos pos) const { return storage()[pos]; }

  /// Read-only view of the concatenated coded array.
  std::span<const std::uint8_t> data() const { return storage(); }

  /// View of a window [begin, end) clamped to the array.
  std::span<const std::uint8_t> window(GenomePos begin, GenomePos end) const;

  /// True if `pos` falls inside a real contig (not padding).
  bool in_contig(GenomePos pos) const;

  /// Resolves a global position; throws ConfigError for padding positions.
  ContigCoord resolve(GenomePos pos) const;

  /// Global position from contig coordinates.
  GenomePos global_pos(std::uint32_t contig_id, std::uint64_t offset) const;

  /// Bases between contigs (and after the final one) to isolate k-mers.
  static constexpr std::uint64_t kContigPad = 32;

 private:
  /// Either the owned array or the borrowed view, whichever is active.
  std::span<const std::uint8_t> storage() const {
    return view_.data() != nullptr
               ? view_
               : std::span<const std::uint8_t>(data_.data(), data_.size());
  }

  std::vector<std::uint8_t> data_;
  std::span<const std::uint8_t> view_;  // non-null => borrowed storage
  std::vector<std::string> names_;
  std::vector<std::uint64_t> starts_;  // global start of each contig
  std::vector<std::uint64_t> ends_;    // global one-past-end of each contig
  std::uint64_t num_bases_ = 0;
};

}  // namespace gnumap

// Nucleotide alphabet and sequence helpers.
//
// The library works over the 5-letter alphabet {A, C, G, T, N}.  N marks
// ambiguous reference positions; following the paper, per-position genome
// state is a 5-vector (A, C, G, T, gap) and reads carry per-base quality.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gnumap {

/// Number of concrete nucleotides.
inline constexpr int kNumBases = 4;
/// Size of the accumulation vector per genome position: A, C, G, T, gap.
/// (The paper stores "five floating-point values" per position.)
inline constexpr int kNumTracks = 5;
/// Index of the gap track inside a 5-vector.
inline constexpr int kGapTrack = 4;

/// Base codes.  A..T are 0..3 so they index emission tables directly.
enum class Base : std::uint8_t { A = 0, C = 1, G = 2, T = 3, N = 4 };

inline constexpr std::uint8_t kBaseN = 4;

/// Encodes an ASCII nucleotide (case-insensitive); anything unknown -> N.
constexpr std::uint8_t encode_base(char c) {
  switch (c) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default:            return kBaseN;
  }
}

/// Decodes a base code back to an upper-case ASCII character.
constexpr char decode_base(std::uint8_t code) {
  constexpr char kLetters[] = {'A', 'C', 'G', 'T', 'N'};
  return code <= 4 ? kLetters[code] : 'N';
}

/// Watson-Crick complement; N maps to N.
constexpr std::uint8_t complement(std::uint8_t code) {
  return code < 4 ? static_cast<std::uint8_t>(3 - code) : kBaseN;
}

/// True for purines (A, G).  Transitions (purine<->purine or
/// pyrimidine<->pyrimidine) are biologically more frequent than
/// transversions; the centroid codebook and catalog generator use this.
constexpr bool is_purine(std::uint8_t code) { return code == 0 || code == 2; }

/// True if a->b is a transition (both purine or both pyrimidine, a != b).
constexpr bool is_transition(std::uint8_t a, std::uint8_t b) {
  return a != b && a < 4 && b < 4 && is_purine(a) == is_purine(b);
}

/// Encodes an ASCII sequence into base codes.
std::vector<std::uint8_t> encode_sequence(std::string_view text);

/// Decodes base codes into an ASCII string.
std::string decode_sequence(const std::vector<std::uint8_t>& codes);

/// Reverse complement of a coded sequence.
std::vector<std::uint8_t> reverse_complement(
    const std::vector<std::uint8_t>& codes);

}  // namespace gnumap

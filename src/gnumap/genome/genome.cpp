#include "gnumap/genome/genome.hpp"

#include <algorithm>

#include "gnumap/util/error.hpp"

namespace gnumap {

std::uint32_t Genome::add_contig(std::string name,
                                 std::vector<std::uint8_t> codes) {
  require(view_.data() == nullptr,
          "cannot add a contig to a borrowed (mmap-backed) genome");
  require(!name.empty(), "contig name must not be empty");
  for (const auto& existing : names_) {
    require(existing != name, "duplicate contig name: " + name);
  }
  const std::uint64_t start = data_.size();
  data_.insert(data_.end(), codes.begin(), codes.end());
  data_.insert(data_.end(), kContigPad, kBaseN);
  names_.push_back(std::move(name));
  starts_.push_back(start);
  ends_.push_back(start + codes.size());
  num_bases_ += codes.size();
  return static_cast<std::uint32_t>(names_.size() - 1);
}

std::uint32_t Genome::add_contig(std::string name, std::string_view ascii) {
  return add_contig(std::move(name), encode_sequence(ascii));
}

Genome Genome::from_borrowed(std::span<const std::uint8_t> data,
                             std::vector<std::string> names,
                             std::vector<std::uint64_t> starts,
                             std::vector<std::uint64_t> ends) {
  require(names.size() == starts.size() && names.size() == ends.size(),
          "borrowed genome: contig metadata arrays disagree in length");
  Genome genome;
  std::uint64_t prev_end = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    require(!names[i].empty(), "borrowed genome: empty contig name");
    for (std::size_t j = 0; j < i; ++j) {
      require(names[j] != names[i],
              "borrowed genome: duplicate contig name: " + names[i]);
    }
    require(starts[i] >= prev_end && starts[i] <= ends[i] &&
                ends[i] <= data.size(),
            "borrowed genome: contig bounds out of order or past the array");
    prev_end = ends[i];
    genome.num_bases_ += ends[i] - starts[i];
  }
  genome.view_ = data;
  genome.names_ = std::move(names);
  genome.starts_ = std::move(starts);
  genome.ends_ = std::move(ends);
  return genome;
}

std::span<const std::uint8_t> Genome::window(GenomePos begin,
                                             GenomePos end) const {
  const auto data = storage();
  begin = std::min<GenomePos>(begin, data.size());
  end = std::clamp<GenomePos>(end, begin, data.size());
  return {data.data() + begin, static_cast<std::size_t>(end - begin)};
}

bool Genome::in_contig(GenomePos pos) const {
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    if (pos >= starts_[i] && pos < ends_[i]) return true;
  }
  return false;
}

ContigCoord Genome::resolve(GenomePos pos) const {
  // Contigs are sorted by construction; binary-search the start array.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
  require(it != starts_.begin(), "position before first contig");
  const auto id = static_cast<std::uint32_t>(it - starts_.begin() - 1);
  require(pos < ends_[id], "position falls in inter-contig padding");
  return ContigCoord{id, pos - starts_[id]};
}

GenomePos Genome::global_pos(std::uint32_t contig_id,
                             std::uint64_t offset) const {
  require(contig_id < names_.size(), "contig id out of range");
  require(offset < contig_size(contig_id), "offset past end of contig");
  return starts_[contig_id] + offset;
}

}  // namespace gnumap

#include "gnumap/genome/align_ops.hpp"

namespace gnumap {

std::string ops_to_cigar(const std::vector<AlignOp>& ops) {
  std::string cigar;
  std::size_t run = 0;
  AlignOp current = AlignOp::kMatch;
  auto flush = [&] {
    if (run == 0) return;
    cigar += std::to_string(run);
    switch (current) {
      case AlignOp::kMatch:     cigar += 'M'; break;
      case AlignOp::kReadGap:   cigar += 'I'; break;
      case AlignOp::kGenomeGap: cigar += 'D'; break;
    }
  };
  for (const AlignOp op : ops) {
    if (run > 0 && op == current) {
      ++run;
    } else {
      flush();
      current = op;
      run = 1;
    }
  }
  flush();
  return cigar;
}

}  // namespace gnumap

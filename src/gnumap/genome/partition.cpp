#include "gnumap/genome/partition.hpp"

#include <algorithm>

#include "gnumap/util/error.hpp"

namespace gnumap {

std::vector<GenomeSegment> partition_genome(const Genome& genome,
                                            int num_ranks,
                                            std::uint64_t margin) {
  require(num_ranks >= 1, "partition_genome: need at least one rank");
  const std::uint64_t total = genome.padded_size();
  const auto ranks = static_cast<std::uint64_t>(num_ranks);

  std::vector<GenomeSegment> segments;
  segments.reserve(ranks);
  // Distribute the remainder one base at a time so sizes differ by <= 1.
  const std::uint64_t base_size = ranks ? total / ranks : 0;
  const std::uint64_t remainder = ranks ? total % ranks : 0;

  GenomePos cursor = 0;
  for (std::uint64_t r = 0; r < ranks; ++r) {
    GenomeSegment seg;
    seg.rank = static_cast<int>(r);
    seg.core_begin = cursor;
    seg.core_end = cursor + base_size + (r < remainder ? 1 : 0);
    seg.store_begin = seg.core_begin >= margin ? seg.core_begin - margin : 0;
    seg.store_end = std::min<GenomePos>(seg.core_end + margin, total);
    segments.push_back(seg);
    cursor = seg.core_end;
  }
  return segments;
}

}  // namespace gnumap

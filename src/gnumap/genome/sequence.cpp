#include "gnumap/genome/sequence.hpp"

#include <algorithm>

namespace gnumap {

std::vector<std::uint8_t> encode_sequence(std::string_view text) {
  std::vector<std::uint8_t> codes(text.size());
  std::transform(text.begin(), text.end(), codes.begin(),
                 [](char c) { return encode_base(c); });
  return codes;
}

std::string decode_sequence(const std::vector<std::uint8_t>& codes) {
  std::string text(codes.size(), 'N');
  std::transform(codes.begin(), codes.end(), text.begin(),
                 [](std::uint8_t code) { return decode_base(code); });
  return text;
}

std::vector<std::uint8_t> reverse_complement(
    const std::vector<std::uint8_t>& codes) {
  std::vector<std::uint8_t> out(codes.size());
  std::transform(codes.rbegin(), codes.rend(), out.begin(),
                 [](std::uint8_t code) { return complement(code); });
  return out;
}

}  // namespace gnumap

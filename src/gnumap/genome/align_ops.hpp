// Alignment operations shared by the aligners (phmm) and writers (io).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gnumap {

/// One column of a pairwise alignment between a read and the genome.
enum class AlignOp : std::uint8_t {
  kMatch,      ///< read base aligned to a genome base (match or mismatch)
  kReadGap,    ///< read base against a gap (insertion relative to genome)
  kGenomeGap,  ///< genome base against a gap (deletion in the read)
};

/// Renders an alignment as CIGAR text ("42M1I19M").  kMatch -> M,
/// kReadGap -> I, kGenomeGap -> D.
std::string ops_to_cigar(const std::vector<AlignOp>& ops);

}  // namespace gnumap

#include "gnumap/baseline/maq_like.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/rng.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap {

namespace {

/// Per-position consensus state: quality mass per base + read depth.
struct ConsensusColumn {
  std::array<float, 4> quality_mass{};
  float depth = 0.0f;
};

struct Placement {
  GenomePos window_begin = 0;
  double score = 0.0;
  bool reverse = false;
  NwResult alignment;
};

/// Applies one placed read to the consensus columns.
void pile_up(const Read& oriented, const Placement& placement,
             std::vector<ConsensusColumn>& columns) {
  std::size_t i = 0;                                  // read cursor
  GenomePos g = placement.window_begin + placement.alignment.window_begin;
  for (const AlignOp op : placement.alignment.ops) {
    switch (op) {
      case AlignOp::kMatch: {
        if (g < columns.size() && oriented.bases[i] < 4) {
          auto& column = columns[static_cast<std::size_t>(g)];
          const std::uint8_t q =
              i < oriented.quals.size() ? oriented.quals[i] : 30;
          column.quality_mass[oriented.bases[i]] += static_cast<float>(q);
          column.depth += 1.0f;
        }
        ++i;
        ++g;
        break;
      }
      case AlignOp::kReadGap:
        ++i;
        break;
      case AlignOp::kGenomeGap:
        ++g;
        break;
    }
  }
}

}  // namespace

MaqLikeResult run_maq_like(const Genome& genome,
                           const std::vector<Read>& reads,
                           const MaqLikeConfig& config,
                           const HashIndex* shared_index) {
  MaqLikeResult result;
  Timer timer;
  Rng rng(config.seed);

  std::optional<HashIndex> own_index;
  const HashIndex* index = shared_index;
  if (index == nullptr) {
    own_index.emplace(genome, config.index);
    index = &*own_index;
  } else {
    require(index->k() == config.index.k,
            "run_maq_like: shared index k does not match config");
  }
  const Seeder seeder(*index, config.seeder);

  std::vector<ConsensusColumn> columns(genome.padded_size());
  const auto pad = static_cast<GenomePos>(config.window_pad);

  timer.reset();
  for (const Read& read : reads) {
    ++result.stats.reads_total;
    const auto candidates = seeder.candidates(read);
    if (candidates.empty()) continue;

    // Align every candidate; keep the best and second-best scores.
    std::optional<Read> rc;
    std::vector<Placement> placements;
    placements.reserve(candidates.size());
    for (const Candidate& candidate : candidates) {
      const GenomePos win_begin =
          candidate.diagonal >= pad ? candidate.diagonal - pad : 0;
      const GenomePos win_end =
          candidate.diagonal + static_cast<GenomePos>(read.length()) + pad;
      const auto window = genome.window(win_begin, win_end);
      if (window.size() < read.length() / 2) continue;
      ++result.stats.candidates_evaluated;
      result.stats.dp_cells += (read.length() + 1) * (window.size() + 1);

      const Read* oriented = &read;
      if (candidate.reverse) {
        if (!rc) {
          Read flipped;
          flipped.name = read.name;
          flipped.bases = reverse_complement(read.bases);
          flipped.quals.assign(read.quals.rbegin(), read.quals.rend());
          rc = std::move(flipped);
        }
        oriented = &*rc;
      }
      Placement placement;
      placement.window_begin = win_begin;
      placement.reverse = candidate.reverse;
      placement.alignment = nw_align(*oriented, window, config.nw);
      placement.score = placement.alignment.score;
      placements.push_back(std::move(placement));
    }
    if (placements.empty()) continue;

    std::sort(placements.begin(), placements.end(),
              [](const Placement& a, const Placement& b) {
                return a.score > b.score;
              });
    const Placement* best = &placements.front();
    if (best->score <
        config.min_score_per_base * static_cast<double>(read.length())) {
      continue;
    }
    // Mapping quality from the best/second-best gap (MAQ's core idea, here
    // in score units scaled to a Phred-like range).
    double mapq = 60.0;
    if (placements.size() > 1) {
      mapq = std::clamp((best->score - placements[1].score) * 10.0, 0.0, 60.0);
    }
    if (mapq < config.mapq_threshold) {
      if (!config.random_assign_multimapped) {
        ++result.reads_dropped_multimapped;
        continue;
      }
      // Randomly assign among the near-ties.
      std::size_t tie_count = 1;
      while (tie_count < placements.size() &&
             best->score - placements[tie_count].score < 1e-9) {
        ++tie_count;
      }
      best = &placements[rng.next_below(tie_count)];
      ++result.reads_random_assigned;
    }
    ++result.stats.reads_mapped;
    ++result.stats.sites_accumulated;
    pile_up(best->reverse && rc ? *rc : read, *best, columns);
  }
  result.map_seconds = timer.seconds();
  result.consensus_memory_bytes = columns.size() * sizeof(ConsensusColumn);

  // Consensus calling with fixed cutoffs.
  timer.reset();
  for (GenomePos pos = 0; pos < columns.size(); ++pos) {
    const auto& column = columns[static_cast<std::size_t>(pos)];
    if (column.depth < config.min_depth) continue;
    const std::uint8_t ref = genome.at(pos);
    if (ref >= 4 || !genome.in_contig(pos)) continue;

    int consensus = 0;
    for (int b = 1; b < 4; ++b) {
      if (column.quality_mass[static_cast<std::size_t>(b)] >
          column.quality_mass[static_cast<std::size_t>(consensus)]) {
        consensus = b;
      }
    }
    if (static_cast<std::uint8_t>(consensus) == ref) continue;
    double runner_up = 0.0;
    for (int b = 0; b < 4; ++b) {
      if (b == consensus) continue;
      runner_up = std::max(
          runner_up,
          static_cast<double>(column.quality_mass[static_cast<std::size_t>(b)]));
    }
    const double margin =
        static_cast<double>(
            column.quality_mass[static_cast<std::size_t>(consensus)]) -
        runner_up;
    if (margin < config.min_consensus_margin) continue;

    const ContigCoord coord = genome.resolve(pos);
    SnpCall call;
    call.contig = genome.contig_name(coord.contig_id);
    call.position = coord.offset;
    call.ref = ref;
    call.allele1 = static_cast<std::uint8_t>(consensus);
    call.allele2 = call.allele1;
    call.coverage = column.depth;
    call.lrt_stat = margin;  // consensus margin, not an LRT
    call.p_value = 1.0;      // this method does not produce p-values
    result.calls.push_back(std::move(call));
  }
  result.call_seconds = timer.seconds();
  return result;
}

}  // namespace gnumap

// MAQ-like baseline mapper and SNP caller.
//
// The paper compares GNUMAP-SNP against MAQ (Li, Ruan & Durbin 2008).  MAQ
// itself is a closed pipeline from 2008; this module reimplements the two
// design decisions the paper contrasts with, using the same index/seeding
// substrate so the comparison isolates the calling methodology:
//
//  * Single best alignment.  Each read is placed at its single best-scoring
//    candidate (quality-weighted Needleman-Wunsch); a mapping quality is
//    derived from the gap between the best and second-best scores; reads
//    below the mapQ threshold are dropped — or randomly assigned among the
//    tied best sites ("remove or randomly assign reads that map to multiple
//    locations", as the paper puts it).
//
//  * Ad hoc consensus cutoffs.  Per-position consensus is the quality-
//    weighted plurality base; a SNP is reported when the consensus differs
//    from the reference and the quality margin over the runner-up exceeds a
//    fixed threshold.  No background-noise model, no p-value — exactly the
//    property the paper's LRT framework adds.
#pragma once

#include <cstdint>
#include <vector>

#include "gnumap/core/config.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/index/hash_index.hpp"
#include "gnumap/index/seeder.hpp"
#include "gnumap/io/read.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/phmm/nw.hpp"

namespace gnumap {

struct MaqLikeConfig {
  HashIndexOptions index;
  SeederOptions seeder;
  NwParams nw;
  int window_pad = 12;
  /// Phred-scaled mapping-quality threshold; lower-mapQ reads are dropped
  /// unless random_assign_multimapped is set.
  int mapq_threshold = 10;
  bool random_assign_multimapped = false;
  /// Minimum NW score per read base for a placement to count at all.
  double min_score_per_base = 0.35;
  /// Ad hoc SNP cutoff: quality margin (consensus minus runner-up summed
  /// Phred mass) required to report a SNP.
  double min_consensus_margin = 40.0;
  /// Minimum read depth at a position.
  double min_depth = 3.0;
  std::uint64_t seed = 11;
};

struct MaqLikeResult {
  std::vector<SnpCall> calls;  ///< lrt_stat carries the consensus margin;
                               ///< p_value is not produced by this method (1.0)
  MapStats stats;
  std::uint64_t reads_dropped_multimapped = 0;
  std::uint64_t reads_random_assigned = 0;
  double map_seconds = 0.0;
  double call_seconds = 0.0;
  std::uint64_t consensus_memory_bytes = 0;
};

/// Runs the full MAQ-like pipeline.  Pass `shared_index` to reuse an index
/// built with the same HashIndexOptions (it is validated).
MaqLikeResult run_maq_like(const Genome& genome,
                           const std::vector<Read>& reads,
                           const MaqLikeConfig& config,
                           const HashIndex* shared_index = nullptr);

}  // namespace gnumap

// Converting a read's scored sites into SAM alignment records.
//
// The probabilistic mapper does not commit to one alignment internally, but
// downstream tools expect SAM.  Each retained site becomes one record whose
// CIGAR is the Viterbi (most probable) path at that site; the posterior
// site weight is preserved in the ZW:f tag, the strongest site is primary,
// and MAPQ encodes the primary site's posterior as -10*log10(1 - w).
#pragma once

#include <vector>

#include "gnumap/core/read_mapper.hpp"
#include "gnumap/io/sam.hpp"

namespace gnumap {

/// Builds SAM records for one read.  `sites` comes from
/// ReadMapper::score_read; an empty vector yields a single unmapped record.
std::vector<SamRecord> to_sam_records(const Genome& genome, const Read& read,
                                      const std::vector<ScoredSite>& sites,
                                      const PipelineConfig& config);

}  // namespace gnumap

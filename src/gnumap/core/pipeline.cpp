#include "gnumap/core/pipeline.hpp"

#include <algorithm>

#include "gnumap/core/session.hpp"

namespace gnumap {

PipelineResult run_pipeline_stream(const Genome& genome, ReadStream& reads,
                                   const PipelineConfig& config,
                                   std::unique_ptr<Accumulator>* accum_out,
                                   std::ostream* sam_out) {
  // One-shot form: build the session (index + mapper), run it once, drop
  // it.  Long-lived callers (gnumapd) construct MappingSession directly and
  // call run() per request so the index build is paid exactly once.
  const MappingSession session(genome, config);
  return session.run(reads, accum_out, sam_out);
}

PipelineResult run_pipeline_with_accumulator(
    const Genome& genome, const std::vector<Read>& reads,
    const PipelineConfig& config, std::unique_ptr<Accumulator>* accum_out,
    std::ostream* sam_out) {
  VectorReadStream stream(reads,
                          std::max<std::uint32_t>(1, config.stream_batch));
  return run_pipeline_stream(genome, stream, config, accum_out, sam_out);
}

PipelineResult run_pipeline(const Genome& genome,
                            const std::vector<Read>& reads,
                            const PipelineConfig& config) {
  return run_pipeline_with_accumulator(genome, reads, config, nullptr);
}

}  // namespace gnumap

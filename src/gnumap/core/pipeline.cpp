#include "gnumap/core/pipeline.hpp"

#include <algorithm>
#include <mutex>
#include <ostream>
#include <span>

#include "gnumap/core/obs_bridge.hpp"
#include "gnumap/core/read_mapper.hpp"
#include "gnumap/core/sam_export.hpp"
#include "gnumap/core/snp_caller.hpp"
#include "gnumap/io/sam.hpp"
#include "gnumap/index/hash_index.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/util/log.hpp"
#include "gnumap/util/thread_pool.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap {

PipelineResult run_pipeline_with_accumulator(
    const Genome& genome, const std::vector<Read>& reads,
    const PipelineConfig& config, std::unique_ptr<Accumulator>* accum_out,
    std::ostream* sam_out) {
  PipelineResult result;
  Timer timer;

  // Phase spans are recorded explicitly (not RAII) because the phases share
  // one scope; each uses the phase timing the pipeline already measures.
  double phase_start_us = obs::trace_now_us();
  const HashIndex index(genome, config.index);
  result.index_seconds = timer.seconds();
  obs::record_complete("index_build", "pipeline", phase_start_us,
                       obs::trace_now_us() - phase_start_us, "bases",
                       static_cast<double>(genome.num_bases()));
  result.index_memory_bytes = index.memory_bytes();
  GNUMAP_LOG(kInfo) << "index built: " << index.num_entries()
                    << " entries over " << genome.num_bases() << " bases in "
                    << result.index_seconds << " s";

  phase_start_us = obs::trace_now_us();
  const ReadMapper mapper(genome, index, config);
  auto accum = make_accumulator(config.accum_kind, 0, genome.padded_size(),
                       config.centdisc_quantize);

  if (sam_out != nullptr) write_sam_header(*sam_out, genome);

  timer.reset();
  const int threads = std::max(1, config.threads);
  if (threads == 1 || reads.size() < 64) {
    // Serial path, chunked so the batched SIMD PHMM engine always has
    // enough independent alignment problems to fill its lanes.
    constexpr std::size_t kMapBatch = 32;
    MapperWorkspace ws;
    for (std::size_t begin = 0; begin < reads.size(); begin += kMapBatch) {
      const std::size_t end = std::min(reads.size(), begin + kMapBatch);
      const std::span<const Read> chunk(reads.data() + begin, end - begin);
      const auto scored = mapper.score_reads(chunk, ws, result.stats);
      for (std::size_t r = 0; r < chunk.size(); ++r) {
        ReadMapper::accumulate(scored[r], *accum);
        if (sam_out != nullptr) {
          for (const auto& record :
               to_sam_records(genome, chunk[r], scored[r], config)) {
            write_sam_record(*sam_out, genome, record);
          }
        }
      }
    }
  } else {
    // Dynamic read partition across threads.  Scoring (the PHMM DP) is the
    // dominant cost and runs lock-free with thread-local workspaces — each
    // grain is one SIMD batch — while the cheap accumulation step drains
    // each chunk's scored sites under one lock, which keeps a single shared
    // accumulator correct without per-position atomics or per-thread
    // genome-sized buffers.
    std::mutex accum_mutex;
    parallel_for(
        static_cast<std::size_t>(threads), 0, reads.size(), 64,
        [&](std::size_t begin, std::size_t end) {
          thread_local MapperWorkspace ws;
          MapStats local_stats;
          const auto scored = mapper.score_reads(
              std::span<const Read>(reads.data() + begin, end - begin), ws,
              local_stats);
          std::lock_guard<std::mutex> lock(accum_mutex);
          for (std::size_t r = begin; r < end; ++r) {
            const auto& sites = scored[r - begin];
            ReadMapper::accumulate(sites, *accum);
            if (sam_out != nullptr) {
              for (const auto& record :
                   to_sam_records(genome, reads[r], sites, config)) {
                write_sam_record(*sam_out, genome, record);
              }
            }
          }
          result.stats += local_stats;
        });
  }
  result.map_seconds = timer.seconds();
  obs::record_complete("map_reads", "pipeline", phase_start_us,
                       obs::trace_now_us() - phase_start_us, "reads",
                       static_cast<double>(reads.size()));
  result.accum_memory_bytes = accum->memory_bytes();
  GNUMAP_LOG(kInfo) << "mapped " << result.stats.reads_mapped << "/"
                    << result.stats.reads_total << " reads in "
                    << result.map_seconds << " s";

  timer.reset();
  phase_start_us = obs::trace_now_us();
  result.calls = call_snps(genome, *accum, config);
  result.call_seconds = timer.seconds();
  obs::record_complete("call_snps", "pipeline", phase_start_us,
                       obs::trace_now_us() - phase_start_us, "calls",
                       static_cast<double>(result.calls.size()));
  GNUMAP_LOG(kInfo) << "called " << result.calls.size() << " SNPs in "
                    << result.call_seconds << " s";

  publish_pipeline_result(result);
  if (accum_out != nullptr) *accum_out = std::move(accum);
  return result;
}

PipelineResult run_pipeline(const Genome& genome,
                            const std::vector<Read>& reads,
                            const PipelineConfig& config) {
  return run_pipeline_with_accumulator(genome, reads, config, nullptr);
}

}  // namespace gnumap

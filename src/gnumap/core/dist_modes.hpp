// The paper's two distributed-memory strategies (Section VI, Step 1), run
// over the mpsim message-passing substrate:
//
//  * kReadPartition ("shared memory mode" in Figure 4): every rank holds the
//    full genome, hash table, and accumulation buffer, and maps a 1/p shard
//    of the reads.  "At the end of the run, each of the machines will
//    communicate the state of their genome" — a reduction of the
//    accumulation buffers — "and SNPs will be called accordingly."
//
//  * kGenomePartition ("spread memory mode"): the genome is split into equal
//    segments with an overlap margin; every rank sees *all* reads (broadcast
//    from rank 0, counted as communication) but only seeds/aligns candidates
//    whose diagonal it owns.  Per-read mapping posteriors need the total
//    alignment likelihood across every rank's candidate sites, obtained with
//    a batched allreduce — the cross-machine score normalization the paper
//    describes.  Each rank then calls SNPs on its own segment and the calls
//    are gathered at rank 0.
//
// Because the host is one physical core, per-rank compute is measured with
// ranks' compute phases serialized (barrier-separated turns); communication
// volumes are exact.  The cost model turns (compute, comm) into simulated
// cluster wall-clock for the Figure 4/5 reproductions.
#pragma once

#include <cstdint>
#include <vector>

#include "gnumap/core/config.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/index/hash_index.hpp"
#include "gnumap/io/read.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/mpsim/cost_model.hpp"

namespace gnumap {

enum class DistMode { kReadPartition, kGenomePartition };

struct DistResult {
  std::vector<SnpCall> calls;
  MapStats stats;               ///< aggregated over ranks
  std::vector<RankCost> costs;  ///< per-rank measured compute + counted comm
  double wall_seconds = 0.0;    ///< host wall time (diagnostic only)
  /// Per-rank accumulator memory: equal on every rank in read-partition
  /// mode, segment-sized in genome-partition mode.
  std::uint64_t max_rank_accum_bytes = 0;
  std::uint64_t total_accum_bytes = 0;
  std::uint64_t max_rank_index_bytes = 0;
};

struct DistOptions {
  int ranks = 4;
  DistMode mode = DistMode::kReadPartition;
  /// Serialize rank compute phases for clean per-rank timing (see above).
  bool serialize_compute = true;
  /// Batch size for the genome-partition score-normalization allreduce.
  std::uint32_t batch_size = 512;
};

/// Runs the pipeline distributed.  `shared_index` may be passed for
/// read-partition mode to avoid rebuilding one identical index per rank on
/// this single-core host (a real cluster would build it once per machine);
/// pass nullptr to have each rank build its own (timed as compute).
/// In genome-partition mode each rank always builds its segment index.
DistResult run_distributed(const Genome& genome,
                           const std::vector<Read>& reads,
                           const PipelineConfig& config,
                           const DistOptions& options,
                           const HashIndex* shared_index = nullptr);

}  // namespace gnumap

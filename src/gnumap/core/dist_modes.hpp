// The paper's two distributed-memory strategies (Section VI, Step 1), run
// over the mpsim message-passing substrate:
//
//  * kReadPartition ("shared memory mode" in Figure 4): every rank holds the
//    full genome, hash table, and accumulation buffer, and maps a 1/p shard
//    of the reads.  "At the end of the run, each of the machines will
//    communicate the state of their genome" — a reduction of the
//    accumulation buffers — "and SNPs will be called accordingly."
//
//  * kGenomePartition ("spread memory mode"): the genome is split into equal
//    segments with an overlap margin; every rank sees *all* reads (broadcast
//    from rank 0, counted as communication) but only seeds/aligns candidates
//    whose diagonal it owns.  Per-read mapping posteriors need the total
//    alignment likelihood across every rank's candidate sites, obtained with
//    a batched allreduce — the cross-machine score normalization the paper
//    describes.  Each rank then calls SNPs on its own segment and the calls
//    are gathered at rank 0.
//
// Because the host is one physical core, per-rank compute is measured with
// ranks' compute phases serialized (barrier-separated turns); communication
// volumes are exact.  The cost model turns (compute, comm) into simulated
// cluster wall-clock for the Figure 4/5 reproductions.
#pragma once

#include <cstdint>
#include <vector>

#include "gnumap/core/config.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/index/hash_index.hpp"
#include "gnumap/io/read.hpp"
#include "gnumap/io/read_stream.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/mpsim/cost_model.hpp"

namespace gnumap {

enum class DistMode { kReadPartition, kGenomePartition };

/// How run_distributed recovers when a rank dies mid-run (fault injection).
enum class RecoveryPolicy {
  /// Restart the failed rank from its last checkpoint (both modes); the
  /// survivors also rewind to their checkpoints and the attempt replays.
  kRestartRank,
  /// Read-partition only: the failed rank's recovered checkpoint is merged
  /// as-is and its *unprocessed* reads are redistributed across the
  /// surviving ranks (graceful degradation).  Falls back to kRestartRank in
  /// genome-partition mode, where a segment cannot be reclaimed without
  /// re-indexing.
  kReclaimReads,
};

/// What recovering from injected faults cost, summarized per run.
struct RecoverySummary {
  int attempts = 1;               ///< total world executions (>= 1)
  std::vector<int> failed_ranks;  ///< first failed rank of each aborted attempt
  std::uint64_t resent_messages = 0;  ///< traffic of aborted attempts
  std::uint64_t resent_bytes = 0;
  double redone_compute_seconds = 0.0;  ///< compute burned in aborted attempts
};

struct DistResult {
  std::vector<SnpCall> calls;
  /// The complete TSV document (header + rows), assembled from rank-local
  /// formatting: in genome-partition mode every rank renders its own
  /// segment's rows with the locale-independent append API and rank 0
  /// splices the preformatted bodies in rank order (segments are
  /// position-ordered, so no re-sort is needed); in read-partition mode
  /// only rank 0 holds final calls and renders them itself.  Byte-identical
  /// to write_snps_tsv(calls) — and to the serial pipeline's output.
  std::string tsv;
  MapStats stats;               ///< aggregated over ranks
  std::vector<RankCost> costs;  ///< per-rank costs of the final attempt
  double wall_seconds = 0.0;    ///< host wall time (diagnostic only)
  /// Per-rank accumulator memory: equal on every rank in read-partition
  /// mode, segment-sized in genome-partition mode.
  std::uint64_t max_rank_accum_bytes = 0;
  std::uint64_t total_accum_bytes = 0;
  std::uint64_t max_rank_index_bytes = 0;
  /// Every attempt's per-rank costs (aborted attempts included), for
  /// simulated_makespan_with_recovery; attempt_costs.back() == costs.
  std::vector<std::vector<RankCost>> attempt_costs;
  RecoverySummary recovery;
};

struct DistOptions {
  int ranks = 4;
  DistMode mode = DistMode::kReadPartition;
  /// Serialize rank compute phases for clean per-rank timing (see above).
  bool serialize_compute = true;
  /// Batch size for the genome-partition score-normalization allreduce.
  std::uint32_t batch_size = 512;

  // --- Fault tolerance (no effect when `faults` is empty) ---------------
  /// Injected faults for this run; an empty plan reproduces the fault-free
  /// substrate bit-for-bit (no timeouts, no checkpoints, identical comm
  /// counts).
  FaultPlan faults;
  /// Blocking-wait bound while injecting faults; 0 picks a generous
  /// default.  Needed so dropped messages surface as CommError instead of
  /// hanging a collective.
  double recv_timeout_seconds = 0.0;
  /// Checkpoint every N reads of a rank's shard (read-partition) or every
  /// N broadcast batches (genome-partition); 0 picks a default.
  std::uint64_t checkpoint_interval = 0;
  /// World executions allowed before the fault is considered permanent and
  /// the first failure is rethrown.
  int max_attempts = 5;
  RecoveryPolicy recovery = RecoveryPolicy::kRestartRank;

  // --- Streaming overload only -----------------------------------------
  /// Genome-partition mode sizes its overlap margin from the longest read.
  /// The vector overload measures this directly; the streaming overload
  /// needs either this hint or a resettable stream it can prescan.  0 =
  /// prescan.
  std::uint32_t max_read_len = 0;
};

/// Runs the pipeline distributed.  `shared_index` may be passed for
/// read-partition mode to avoid rebuilding one identical index per rank on
/// this single-core host (a real cluster would build it once per machine);
/// pass nullptr to have each rank build its own (timed as compute).
/// In genome-partition mode each rank always builds its segment index.
DistResult run_distributed(const Genome& genome,
                           const std::vector<Read>& reads,
                           const PipelineConfig& config,
                           const DistOptions& options,
                           const HashIndex* shared_index = nullptr);

/// Streaming form: reads are pulled from `reads` batch by batch instead of
/// being materialized up front, so no rank ever holds the whole read set.
///
///  * kReadPartition: rank 0 decodes the stream and *ships* batches to
///    their owning ranks (counted as communication), throttled by a
///    per-rank ack window of config.queue_depth batches so in-flight read
///    memory stays O(queue_depth x batch) per rank.  When the stream knows
///    its size (size_hint), batches follow the vector path's contiguous
///    1/p shards and the SNP calls are byte-identical to it; unsized
///    streams are dealt round-robin by batch.
///  * kGenomePartition: rank 0 re-batches the stream into
///    options.batch_size broadcast payloads — the same batches the vector
///    path builds, so calls are byte-identical to it (the margin comes
///    from options.max_read_len or a prescan).
///
/// Checkpoints record the stream cursor (reads completed); recovery resets
/// the stream and replays, so fault tolerance requires ReadStream::reset()
/// support.  RecoveryPolicy::kReclaimReads falls back to kRestartRank, and
/// serialize_compute is ignored (stages overlap by design — per-rank
/// compute times are still measured, just not barrier-separated).
/// The stream must be positioned at its start.
DistResult run_distributed(const Genome& genome, ReadStream& reads,
                           const PipelineConfig& config,
                           const DistOptions& options,
                           const HashIndex* shared_index = nullptr);

}  // namespace gnumap

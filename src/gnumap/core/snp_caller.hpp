// Step 3 / Figure 1 steps (C)-(D): scanning the accumulated genome and
// applying the LRT at every covered position.
#pragma once

#include <vector>

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/core/config.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/io/snp_writer.hpp"

namespace gnumap {

/// Calls SNPs over global positions [begin, end) (clamped to the
/// accumulator's range and to real contig positions).  A site becomes a SNP
/// call when the LRT is significant at config.alpha (or survives BH-FDR at
/// config.fdr_q when config.use_fdr) AND the winning allele set differs from
/// the reference.  Gap-allele wins (deletions) are reported with the gap
/// code in allele1/allele2.
std::vector<SnpCall> call_snps(const Genome& genome, const Accumulator& accum,
                               const PipelineConfig& config,
                               GenomePos begin = 0, GenomePos end = 0);

}  // namespace gnumap

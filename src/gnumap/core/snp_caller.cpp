#include "gnumap/core/snp_caller.hpp"

#include <algorithm>

#include "gnumap/obs/metrics.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/stats/fdr.hpp"
#include "gnumap/stats/lrt.hpp"

namespace gnumap {

std::vector<SnpCall> call_snps(const Genome& genome, const Accumulator& accum,
                               const PipelineConfig& config,
                               GenomePos begin, GenomePos end) {
  obs::TraceSpan span("call_snps", "snp", "positions",
                      static_cast<double>(accum.size()));
  const GenomePos accum_begin = accum.begin();
  const GenomePos accum_end = accum.begin() + accum.size();
  begin = std::max(begin, accum_begin);
  end = end == 0 ? accum_end : std::min(end, accum_end);

  std::vector<SnpCall> candidates;
  for (GenomePos pos = begin; pos < end; ++pos) {
    const std::uint8_t ref = genome.at(pos);
    // Skip N reference positions (assembly gaps) and inter-contig padding:
    // a "SNP" against an unknown base is meaningless.
    if (ref >= 4) continue;
    if (!genome.in_contig(pos)) continue;

    const TrackVector counts = accum.counts(pos);
    TrackCounts z;
    double n = 0.0;
    for (int k = 0; k < kNumTracks; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      z[ks] = static_cast<double>(counts[ks]);
      n += z[ks];
    }
    if (n < config.min_coverage) continue;

    const LrtResult lrt = lrt_test(z, config.ploidy);
    // SNP condition: significant AND the called allele set differs from the
    // reference base.  (Significance filtering happens below, jointly for
    // the fixed-alpha and FDR paths.)
    const bool differs = lrt.allele1 != ref || lrt.allele2 != ref;
    if (!differs) continue;

    const ContigCoord coord = genome.resolve(pos);
    SnpCall call;
    call.contig = genome.contig_name(coord.contig_id);
    call.position = coord.offset;
    call.ref = ref;
    call.allele1 = lrt.allele1;
    call.allele2 = lrt.allele2;
    call.coverage = n;
    call.lrt_stat = lrt.statistic;
    call.p_value = lrt.p_adjusted;
    candidates.push_back(std::move(call));
  }

  std::vector<SnpCall> calls;
  if (config.use_fdr) {
    std::vector<double> p_values;
    p_values.reserve(candidates.size());
    for (const auto& call : candidates) p_values.push_back(call.p_value);
    const auto keep = benjamini_hochberg(p_values, config.fdr_q);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (keep[i]) calls.push_back(std::move(candidates[i]));
    }
  } else {
    for (auto& call : candidates) {
      if (call.p_value < config.alpha) calls.push_back(std::move(call));
    }
  }
  static obs::Counter& calls_counter = obs::registry().counter(
      "gnumap_snp_calls_total", "SNP calls emitted across all call_snps runs");
  calls_counter.inc(calls.size());
  return calls;
}

}  // namespace gnumap

#include "gnumap/core/sam_export.hpp"

#include <algorithm>
#include <cmath>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/phmm/viterbi.hpp"

namespace gnumap {

namespace {

std::uint8_t mapq_from_weight(double weight) {
  // Phred-scaled probability that the placement is wrong.
  const double wrong = std::clamp(1.0 - weight, 1e-6, 1.0);
  const double q = -10.0 * std::log10(wrong);
  return static_cast<std::uint8_t>(std::clamp(q, 0.0, 60.0));
}

}  // namespace

std::vector<SamRecord> to_sam_records(const Genome& genome, const Read& read,
                                      const std::vector<ScoredSite>& sites,
                                      const PipelineConfig& config) {
  std::vector<SamRecord> records;
  if (sites.empty()) {
    SamRecord record;
    record.qname = read.name;
    record.flags = SamRecord::kUnmapped;
    record.bases = read.bases;
    record.quals = read.quals;
    records.push_back(std::move(record));
    return records;
  }

  // Strongest site is the primary alignment.
  std::size_t primary = 0;
  for (std::size_t s = 1; s < sites.size(); ++s) {
    if (sites[s].weight > sites[primary].weight) primary = s;
  }

  const PairHmm hmm(config.phmm, BoundaryMode::kSemiGlobal);
  for (std::size_t s = 0; s < sites.size(); ++s) {
    const ScoredSite& site = sites[s];
    SamRecord record;
    record.qname = read.name;
    record.weight = site.weight;
    record.mapq = mapq_from_weight(site.weight);
    if (s != primary) record.flags |= SamRecord::kSecondary;

    // Alignment-orientation sequence.
    if (site.reverse) {
      record.flags |= SamRecord::kReverse;
      record.bases = reverse_complement(read.bases);
      record.quals.assign(read.quals.rbegin(), read.quals.rend());
    } else {
      record.bases = read.bases;
      record.quals = read.quals;
    }

    // CIGAR from the most probable path through the site's window.
    const Pwm pwm = site.reverse ? Pwm::from_read_reverse(read)
                                 : Pwm::from_read(read);
    const std::uint64_t window_len =
        site.contributions.tracks.size();
    const auto window =
        genome.window(site.window_begin, site.window_begin + window_len);
    const ViterbiResult best = viterbi_align(hmm, pwm, window);
    record.cigar = best.ops;

    const GenomePos start = site.window_begin + best.window_begin;
    if (!genome.in_contig(start)) {
      // Window began in padding (read overhangs a contig edge); emit as
      // unmapped rather than fabricate coordinates.
      record.flags |= SamRecord::kUnmapped;
      records.push_back(std::move(record));
      continue;
    }
    const ContigCoord coord = genome.resolve(start);
    record.contig_id = coord.contig_id;
    record.position = coord.offset;
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace gnumap

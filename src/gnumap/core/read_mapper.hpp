// Mapping one read: seed -> PHMM forward/backward per candidate ->
// posterior-weighted marginal accumulation.
//
// This is the paper's Figure 1 steps (A) and (B).  The posterior mapping
// weight is what distinguishes GNUMAP from single-alignment mappers: each
// candidate site s contributes with weight
//     w_s = P_s / sum_s' P_s'
// (P_s = the site's total alignment likelihood), so reads mapping to
// repeats spread their evidence instead of being dropped or randomly
// assigned.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/core/config.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/index/hash_index.hpp"
#include "gnumap/index/seeder.hpp"
#include "gnumap/io/output_chunk.hpp"
#include "gnumap/io/read.hpp"
#include "gnumap/phmm/batched.hpp"
#include "gnumap/phmm/forward_backward.hpp"

namespace gnumap {

/// Scratch state reused across map_read / score_reads calls; one per worker
/// thread (neither member is thread-safe).  Both members retain capacity
/// across calls, so a long-lived workspace stops allocating once it has seen
/// the largest read/window shape.
struct MapperWorkspace {
  AlignmentMatrices mats;       ///< scalar path (score_read / map_read)
  phmm::BatchedForward batch;   ///< batched path (score_reads / map_reads)
};

/// One scored candidate site with its condensed contributions.
struct ScoredSite {
  GenomePos window_begin = 0;
  double log_likelihood = 0.0;
  double weight = 0.0;  ///< posterior across the read's candidate sites
  bool reverse = false;
  ColumnContributions contributions;
};

/// One candidate in pre-epilogue form: the seeder's identity fields plus the
/// alignment outcome, *before* truncation-aware merging and the posterior
/// softmax.  This is what a shard daemon ships to the fleet router: the
/// router merges per-shard lists in seeder order, truncates to
/// max_candidates (filtered/failed entries still consume a slot, exactly as
/// they do in a single-daemon run), and only then finalizes — which is what
/// makes router output byte-identical to the single-daemon answer.
struct RawCandidate {
  GenomePos diagonal = 0;  ///< band representative (seeder identity)
  std::int32_t votes = 0;
  bool reverse = false;
  bool filtered = false;  ///< window too small; no alignment attempted
  bool ok = false;        ///< alignment produced a finite likelihood
  ScoredSite site;        ///< valid only when ok
};

/// The per-read epilogue shared by every scoring path: mapped-at-all
/// cutoff, posterior softmax, pruning, renormalization, and the
/// mapped/site counters.  Empties `sites` for unmapped reads.  Exposed as
/// a free function so the fleet router replays bit-identical float
/// arithmetic on merged shard partials.
void finalize_scored_sites(const PipelineConfig& config, const Read& read,
                           std::vector<ScoredSite>& sites, MapStats& stats);

class ReadMapper {
 public:
  /// The mapper holds references; genome/index/config must outlive it.
  ReadMapper(const Genome& genome, const HashIndex& index,
             const PipelineConfig& config);

  /// Scores every candidate site of `read`.  Sites are pruned to those with
  /// posterior weight >= config.min_site_posterior; weights sum to 1 over
  /// the returned set.  Empty result = unmapped read.
  /// When `diagonal_begin`/`diagonal_end` are set (genome-partition mode),
  /// only candidates whose diagonal falls in [begin, end) are considered.
  std::vector<ScoredSite> score_read(const Read& read, MapperWorkspace& ws,
                                     MapStats& stats,
                                     GenomePos diagonal_begin = 0,
                                     GenomePos diagonal_end = 0) const;

  /// Batched twin of score_read: scores `reads` together so every candidate
  /// alignment of the chunk runs through the SIMD Pair-HMM engine in one
  /// sweep (inter-task parallelism; see phmm::BatchedForward).  Returns one
  /// site vector per read, in input order.  Results are bit-identical to
  /// calling score_read on each read in sequence — candidate enumeration,
  /// kernel arithmetic, and the posterior softmax all happen in the same
  /// order — and kernel time is recorded in stats.phmm_{forward,backward}_
  /// seconds.  The dispatch level comes from PipelineConfig::simd.
  /// Internally drains the engine's recycled matrix pool (run(consume)),
  /// condensing each task's marginals while its matrices are cache-hot;
  /// see docs/KERNELS.md §5.
  std::vector<std::vector<ScoredSite>> score_reads(
      std::span<const Read> reads, MapperWorkspace& ws, MapStats& stats,
      GenomePos diagonal_begin = 0, GenomePos diagonal_end = 0) const;

  /// Shard-partial scoring: one RawCandidate per surviving seeder candidate
  /// of each read, in seeder order, *without* the finalize epilogue.
  /// Window-filtered candidates are kept as `filtered` placeholders and
  /// failed alignments as `ok == false` ones, because both consume a
  /// max_candidates slot in a single-daemon run and the router must see
  /// them to truncate identically.  Always runs the scalar double kernel
  /// (the oracle path), so partials are independent of the daemon's SIMD
  /// and precision settings.
  std::vector<std::vector<RawCandidate>> score_reads_raw(
      std::span<const Read> reads, MapperWorkspace& ws, MapStats& stats,
      GenomePos diagonal_begin = 0, GenomePos diagonal_end = 0) const;

  /// Adds one site's contributions, scaled by its weight, into `accum`.
  static void accumulate_site(const ScoredSite& site, Accumulator& accum);

  /// Adds every site's contributions, scaled by its weight, into `accum`.
  static void accumulate(const std::vector<ScoredSite>& sites,
                         Accumulator& accum);

  /// Appends every site's weight-scaled contributions to `out` in exactly
  /// the order accumulate() would add() them.  This is the worker-side half
  /// of the split accumulation path: the multiply (order-free) happens
  /// here, the order-sensitive float adds happen when the ordered drain
  /// replays the list (io::apply_accum_deltas), so the result is
  /// bit-identical to serial accumulation.  accumulate()/accumulate_site()
  /// share the same traversal, keeping the two paths in lockstep.
  static void flatten_contributions(const std::vector<ScoredSite>& sites,
                                    std::vector<io::AccumDelta>& out);

  /// Convenience: score + accumulate; returns true if the read mapped.
  bool map_read(const Read& read, Accumulator& accum, MapperWorkspace& ws,
                MapStats& stats) const;

  /// Batched convenience: score_reads + accumulate.  Returns the number of
  /// reads that mapped.
  std::size_t map_reads(std::span<const Read> reads, Accumulator& accum,
                        MapperWorkspace& ws, MapStats& stats) const;

  const Seeder& seeder() const { return seeder_; }

  /// Concrete SIMD level the batched path executes at (never kAuto).
  phmm::SimdLevel simd_level() const { return simd_level_; }

  /// Concrete lane precision the batched path executes at (never kAuto).
  /// kSingle engages the fp32 kernels plus the recompute guard below; the
  /// scalar score_read path always runs double.
  phmm::Precision phmm_precision() const { return precision_; }

 private:
  /// One candidate alignment problem, ready for the PHMM.  `window` views
  /// genome storage and `pwm` points into a ReadPwms; both stay valid for
  /// the scoring call that produced them.
  struct CandidateWindow {
    GenomePos window_begin = 0;
    std::span<const std::uint8_t> window;
    const Pwm* pwm = nullptr;
    bool reverse = false;
    // Seeder identity, carried so score_reads_raw can ship it to the
    // router's merge; `skip` marks a window-filtered candidate kept only
    // for its max_candidates slot (pwm stays null).
    GenomePos diagonal = 0;
    std::int32_t votes = 0;
    bool skip = false;
  };
  /// Lazily-built per-orientation PWMs for one read.
  struct ReadPwms {
    Pwm fwd, rev;
    bool have_fwd = false, have_rev = false;
  };

  /// Seeds `read` and materializes every surviving candidate window.  The
  /// single source of candidate enumeration: both the scalar and the
  /// batched scoring paths consume its output, which is what keeps them
  /// bit-identical.  Updates reads_total / candidates_evaluated.  With
  /// `keep_filtered`, window-filtered candidates stay in the list as
  /// `skip` placeholders (the shard-partial path needs their slots).
  std::vector<CandidateWindow> gather_candidates(
      const Read& read, ReadPwms& pwms, MapStats& stats,
      GenomePos diagonal_begin, GenomePos diagonal_end,
      bool keep_filtered = false) const;

  /// Member shim over finalize_scored_sites (the free function above).
  void finalize_sites(const Read& read, std::vector<ScoredSite>& sites,
                      MapStats& stats) const;

  /// FP32 guard: true when one of `read`'s mapping decisions — the
  /// mapped-at-all cutoff or a site-posterior prune — lands within
  /// config.phmm_fp32_margin of its threshold, close enough that fp32
  /// rounding could flip it.  An empty site list is NOT borderline: no
  /// candidate produced a nonzero-probability path, which is a structural
  /// verdict, not a rounding one (docs/KERNELS.md §8).
  bool fp32_borderline(const Read& read,
                       const std::vector<ScoredSite>& sites) const;

  const Genome& genome_;
  const HashIndex& index_;
  const PipelineConfig& config_;
  Seeder seeder_;
  PairHmm hmm_;
  phmm::SimdLevel simd_level_ = phmm::SimdLevel::kScalar;
  phmm::Precision precision_ = phmm::Precision::kDouble;
};

}  // namespace gnumap

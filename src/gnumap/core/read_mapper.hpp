// Mapping one read: seed -> PHMM forward/backward per candidate ->
// posterior-weighted marginal accumulation.
//
// This is the paper's Figure 1 steps (A) and (B).  The posterior mapping
// weight is what distinguishes GNUMAP from single-alignment mappers: each
// candidate site s contributes with weight
//     w_s = P_s / sum_s' P_s'
// (P_s = the site's total alignment likelihood), so reads mapping to
// repeats spread their evidence instead of being dropped or randomly
// assigned.
#pragma once

#include <cstdint>
#include <vector>

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/core/config.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/index/hash_index.hpp"
#include "gnumap/index/seeder.hpp"
#include "gnumap/io/read.hpp"
#include "gnumap/phmm/forward_backward.hpp"

namespace gnumap {

/// Scratch state reused across map_read calls; one per worker thread.
struct MapperWorkspace {
  AlignmentMatrices mats;
};

/// One scored candidate site with its condensed contributions.
struct ScoredSite {
  GenomePos window_begin = 0;
  double log_likelihood = 0.0;
  double weight = 0.0;  ///< posterior across the read's candidate sites
  bool reverse = false;
  ColumnContributions contributions;
};

class ReadMapper {
 public:
  /// The mapper holds references; genome/index/config must outlive it.
  ReadMapper(const Genome& genome, const HashIndex& index,
             const PipelineConfig& config);

  /// Scores every candidate site of `read`.  Sites are pruned to those with
  /// posterior weight >= config.min_site_posterior; weights sum to 1 over
  /// the returned set.  Empty result = unmapped read.
  /// When `diagonal_begin`/`diagonal_end` are set (genome-partition mode),
  /// only candidates whose diagonal falls in [begin, end) are considered.
  std::vector<ScoredSite> score_read(const Read& read, MapperWorkspace& ws,
                                     MapStats& stats,
                                     GenomePos diagonal_begin = 0,
                                     GenomePos diagonal_end = 0) const;

  /// Adds one site's contributions, scaled by its weight, into `accum`.
  static void accumulate_site(const ScoredSite& site, Accumulator& accum);

  /// Adds every site's contributions, scaled by its weight, into `accum`.
  static void accumulate(const std::vector<ScoredSite>& sites,
                         Accumulator& accum);

  /// Convenience: score + accumulate; returns true if the read mapped.
  bool map_read(const Read& read, Accumulator& accum, MapperWorkspace& ws,
                MapStats& stats) const;

  const Seeder& seeder() const { return seeder_; }

 private:
  const Genome& genome_;
  const HashIndex& index_;
  const PipelineConfig& config_;
  Seeder seeder_;
  PairHmm hmm_;
};

}  // namespace gnumap

#include "gnumap/core/obs_bridge.hpp"

#include <string>

#include "gnumap/core/dist_modes.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/obs/metrics.hpp"

namespace gnumap {

namespace {

void set_gauge(const char* name, const char* help, double value) {
  obs::registry().gauge(name, help).set(value);
}

void set_rank_gauge(const std::string& base, int rank, const char* help,
                    double value) {
  obs::registry()
      .gauge(base + "{rank=\"" + std::to_string(rank) + "\"}", help)
      .set(value);
}

}  // namespace

void publish_map_stats(const MapStats& stats) {
  set_gauge("gnumap_reads_total", "Reads presented to the mapper",
            static_cast<double>(stats.reads_total));
  set_gauge("gnumap_reads_mapped_total", "Reads with at least one mapping",
            static_cast<double>(stats.reads_mapped));
  set_gauge("gnumap_candidates_evaluated_total",
            "Candidate sites scored through the PHMM",
            static_cast<double>(stats.candidates_evaluated));
  set_gauge("gnumap_sites_accumulated_total",
            "Genome positions receiving posterior mass",
            static_cast<double>(stats.sites_accumulated));
  set_gauge("gnumap_phmm_dp_cells_total", "Pair-HMM DP cells computed",
            static_cast<double>(stats.dp_cells));
  set_gauge("gnumap_phmm_forward_seconds",
            "Wall seconds inside batched forward kernels",
            stats.phmm_forward_seconds);
  set_gauge("gnumap_phmm_backward_seconds",
            "Wall seconds inside batched backward kernels",
            stats.phmm_backward_seconds);
}

void publish_comm_stats(int rank, const CommStats& stats) {
  set_rank_gauge("gnumap_rank_messages_sent_total", rank,
                 "Messages sent by the rank",
                 static_cast<double>(stats.messages_sent));
  set_rank_gauge("gnumap_rank_bytes_sent_total", rank,
                 "Payload bytes sent by the rank",
                 static_cast<double>(stats.bytes_sent));
  set_rank_gauge("gnumap_rank_messages_received_total", rank,
                 "Messages received by the rank",
                 static_cast<double>(stats.messages_received));
  set_rank_gauge("gnumap_rank_bytes_received_total", rank,
                 "Payload bytes received by the rank",
                 static_cast<double>(stats.bytes_received));
  set_rank_gauge("gnumap_rank_recv_timeouts_total", rank,
                 "Blocking waits that expired",
                 static_cast<double>(stats.recv_timeouts));
  set_rank_gauge("gnumap_rank_peer_failures_total", rank,
                 "Waits aborted by a dead or finished peer",
                 static_cast<double>(stats.peer_failures_seen));
}

void publish_pipeline_result(const PipelineResult& result) {
  publish_map_stats(result.stats);
  set_gauge("gnumap_pipeline_index_seconds", "Hash-index build phase",
            result.index_seconds);
  set_gauge("gnumap_pipeline_map_seconds", "Read-mapping phase",
            result.map_seconds);
  set_gauge("gnumap_pipeline_call_seconds", "SNP-calling phase",
            result.call_seconds);
  set_gauge("gnumap_accum_memory_bytes", "Accumulation buffer heap bytes",
            static_cast<double>(result.accum_memory_bytes));
  set_gauge("gnumap_index_memory_bytes", "Hash-index heap bytes",
            static_cast<double>(result.index_memory_bytes));
  set_gauge("gnumap_stream_reads_in_flight_peak",
            "High-water mark of reads decoded but not yet drained",
            static_cast<double>(result.reads_in_flight_peak));
  set_gauge("gnumap_stream_batches_total",
            "ReadBatches drained through the pipeline",
            static_cast<double>(result.batches_decoded));
  set_gauge("gnumap_output_format_seconds",
            "Worker-side output rendering (SAM bytes + accumulator-delta "
            "scaling) summed across mapper workers",
            result.format_seconds);
  set_gauge("gnumap_output_splice_seconds",
            "Ordered-drain splice time (byte writes + replaying "
            "accumulator adds); with format_in_drain this is the whole "
            "former drain",
            result.splice_seconds);
  obs::registry()
      .counter("gnumap_output_bytes_total",
               "Output bytes written to sinks by the ordered drain")
      .inc(result.output_bytes);
  set_gauge("gnumap_snp_calls_emitted", "SNP calls in the final output",
            static_cast<double>(result.calls.size()));
}

void publish_dist_result(const DistResult& result) {
  publish_map_stats(result.stats);
  for (std::size_t r = 0; r < result.costs.size(); ++r) {
    publish_comm_stats(static_cast<int>(r), result.costs[r].comm);
    set_rank_gauge("gnumap_rank_compute_seconds", static_cast<int>(r),
                   "Slowdown-scaled compute seconds of the final attempt",
                   result.costs[r].compute_seconds);
  }
  set_gauge("gnumap_dist_ranks", "World size of the distributed run",
            static_cast<double>(result.costs.size()));
  set_gauge("gnumap_dist_wall_seconds", "Host wall time (diagnostic)",
            result.wall_seconds);
  set_gauge("gnumap_dist_attempts_total",
            "World executions including aborted attempts",
            static_cast<double>(result.recovery.attempts));
  set_gauge("gnumap_dist_resent_messages_total",
            "Messages burned in aborted attempts",
            static_cast<double>(result.recovery.resent_messages));
  set_gauge("gnumap_dist_resent_bytes_total",
            "Payload bytes burned in aborted attempts",
            static_cast<double>(result.recovery.resent_bytes));
  set_gauge("gnumap_dist_redone_compute_seconds",
            "Compute seconds burned in aborted attempts",
            result.recovery.redone_compute_seconds);
  set_gauge("gnumap_snp_calls_emitted", "SNP calls in the final output",
            static_cast<double>(result.calls.size()));
}

}  // namespace gnumap

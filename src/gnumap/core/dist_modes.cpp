#include "gnumap/core/dist_modes.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <optional>

#include "gnumap/core/read_mapper.hpp"
#include "gnumap/core/snp_caller.hpp"
#include "gnumap/genome/partition.hpp"
#include "gnumap/mpsim/communicator.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap {

namespace {

// ---------------------------------------------------------------------------
// Binary (de)serialization helpers for broadcast/gather payloads.

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

struct Cursor {
  const std::vector<std::uint8_t>& data;
  std::size_t at = 0;

  template <typename T>
  T take() {
    require(at + sizeof(T) <= data.size(), "deserialize: truncated payload");
    T v;
    std::memcpy(&v, data.data() + at, sizeof(T));
    at += sizeof(T);
    return v;
  }
  std::vector<std::uint8_t> take_bytes(std::size_t n) {
    require(at + n <= data.size(), "deserialize: truncated payload");
    std::vector<std::uint8_t> v(data.begin() + static_cast<std::ptrdiff_t>(at),
                                data.begin() + static_cast<std::ptrdiff_t>(at + n));
    at += n;
    return v;
  }
  std::string take_string(std::size_t n) {
    require(at + n <= data.size(), "deserialize: truncated payload");
    std::string s(reinterpret_cast<const char*>(data.data() + at), n);
    at += n;
    return s;
  }
};

std::vector<std::uint8_t> serialize_reads(const std::vector<Read>& reads,
                                          std::size_t begin,
                                          std::size_t end) {
  std::vector<std::uint8_t> out;
  put_u64(out, end - begin);
  for (std::size_t r = begin; r < end; ++r) {
    const Read& read = reads[r];
    put_u32(out, static_cast<std::uint32_t>(read.name.size()));
    out.insert(out.end(), read.name.begin(), read.name.end());
    put_u32(out, static_cast<std::uint32_t>(read.bases.size()));
    out.insert(out.end(), read.bases.begin(), read.bases.end());
    out.insert(out.end(), read.quals.begin(), read.quals.end());
  }
  return out;
}

std::vector<Read> deserialize_reads(const std::vector<std::uint8_t>& bytes) {
  Cursor cursor{bytes};
  const std::uint64_t count = cursor.take<std::uint64_t>();
  std::vector<Read> reads;
  reads.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Read read;
    const auto name_len = cursor.take<std::uint32_t>();
    read.name = cursor.take_string(name_len);
    const auto len = cursor.take<std::uint32_t>();
    read.bases = cursor.take_bytes(len);
    read.quals = cursor.take_bytes(len);
    reads.push_back(std::move(read));
  }
  return reads;
}

std::vector<std::uint8_t> serialize_calls(const std::vector<SnpCall>& calls) {
  std::vector<std::uint8_t> out;
  put_u64(out, calls.size());
  for (const auto& call : calls) {
    put_u32(out, static_cast<std::uint32_t>(call.contig.size()));
    out.insert(out.end(), call.contig.begin(), call.contig.end());
    put_u64(out, call.position);
    out.push_back(call.ref);
    out.push_back(call.allele1);
    out.push_back(call.allele2);
    put_f64(out, call.coverage);
    put_f64(out, call.lrt_stat);
    put_f64(out, call.p_value);
  }
  return out;
}

std::vector<SnpCall> deserialize_calls(const std::vector<std::uint8_t>& bytes) {
  Cursor cursor{bytes};
  const std::uint64_t count = cursor.take<std::uint64_t>();
  std::vector<SnpCall> calls;
  calls.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SnpCall call;
    const auto len = cursor.take<std::uint32_t>();
    call.contig = cursor.take_string(len);
    call.position = cursor.take<std::uint64_t>();
    call.ref = cursor.take<std::uint8_t>();
    call.allele1 = cursor.take<std::uint8_t>();
    call.allele2 = cursor.take<std::uint8_t>();
    call.coverage = cursor.take<double>();
    call.lrt_stat = cursor.take<double>();
    call.p_value = cursor.take<double>();
    calls.push_back(std::move(call));
  }
  return calls;
}

/// Runs `fn` as this rank's compute turn.  When `serialize` is set, ranks
/// take strictly ordered turns (barrier-separated) so wall-clock attribution
/// on a single core is clean; the stopwatch brackets only this rank's work.
template <typename Fn>
void compute_turn(Communicator& comm, bool serialize, Stopwatch& clock,
                  Fn&& fn) {
  if (!serialize) {
    clock.start();
    fn();
    clock.stop();
    return;
  }
  for (int turn = 0; turn < comm.size(); ++turn) {
    if (turn == comm.rank()) {
      clock.start();
      fn();
      clock.stop();
    }
    comm.barrier();
  }
}

}  // namespace

DistResult run_distributed(const Genome& genome,
                           const std::vector<Read>& reads,
                           const PipelineConfig& config,
                           const DistOptions& options,
                           const HashIndex* shared_index) {
  require(options.ranks >= 1, "run_distributed: ranks must be >= 1");
  require(options.batch_size >= 1, "run_distributed: batch_size must be >= 1");

  DistResult result;
  result.costs.resize(static_cast<std::size_t>(options.ranks));
  std::mutex result_mutex;
  Timer wall;

  const auto body = [&](Communicator& comm) {
    const int rank = comm.rank();
    const int p = comm.size();
    Stopwatch& clock = comm.compute_clock();

    if (options.mode == DistMode::kReadPartition) {
      // --- Shared-genome mode: map a read shard, reduce accumulators. ---
      std::optional<HashIndex> own_index;
      const HashIndex* index = shared_index;
      if (index == nullptr) {
        compute_turn(comm, options.serialize_compute, clock, [&] {
          own_index.emplace(genome, config.index);
        });
        index = &*own_index;
      }
      const ReadMapper mapper(genome, *index, config);
      auto accum =
          make_accumulator(config.accum_kind, 0, genome.padded_size(),
                       config.centdisc_quantize);

      const std::size_t shard_begin =
          reads.size() * static_cast<std::size_t>(rank) /
          static_cast<std::size_t>(p);
      const std::size_t shard_end =
          reads.size() * (static_cast<std::size_t>(rank) + 1) /
          static_cast<std::size_t>(p);
      MapStats stats;
      compute_turn(comm, options.serialize_compute, clock, [&] {
        MapperWorkspace ws;
        for (std::size_t r = shard_begin; r < shard_end; ++r) {
          mapper.map_read(reads[r], *accum, ws, stats);
        }
      });

      // Reduce the genome state at rank 0 (the end-of-run communication).
      auto reduced = comm.reduce(
          0, accum->to_bytes(),
          [&](std::vector<std::uint8_t> a, std::vector<std::uint8_t> b) {
            auto left =
                make_accumulator(config.accum_kind, 0, genome.padded_size(),
                       config.centdisc_quantize);
            auto right =
                make_accumulator(config.accum_kind, 0, genome.padded_size(),
                       config.centdisc_quantize);
            left->from_bytes(a);
            right->from_bytes(b);
            left->merge(*right);
            return left->to_bytes();
          });

      std::vector<SnpCall> calls;
      if (rank == 0) {
        accum->from_bytes(reduced);
        clock.start();
        calls = call_snps(genome, *accum, config);
        clock.stop();
      }

      std::lock_guard<std::mutex> lock(result_mutex);
      result.stats += stats;
      result.costs[static_cast<std::size_t>(rank)].compute_seconds =
          clock.total_seconds();
      result.max_rank_accum_bytes =
          std::max(result.max_rank_accum_bytes, accum->memory_bytes());
      result.total_accum_bytes += accum->memory_bytes();
      if (index != nullptr) {
        result.max_rank_index_bytes =
            std::max(result.max_rank_index_bytes, index->memory_bytes());
      }
      if (rank == 0) result.calls = std::move(calls);
      return;
    }

    // --- Spread-memory mode: genome segments, reads broadcast. ---
    std::uint32_t max_read_len = 0;
    for (const auto& read : reads) {
      max_read_len =
          std::max(max_read_len, static_cast<std::uint32_t>(read.length()));
    }
    const std::uint64_t margin =
        static_cast<std::uint64_t>(max_read_len) +
        static_cast<std::uint64_t>(config.window_pad) +
        static_cast<std::uint64_t>(config.seeder.band_width);
    const auto segments = partition_genome(genome, p, margin);
    // The halo exchange below assumes halos only reach into *adjacent*
    // cores; require every segment to be at least one margin long.
    for (const auto& s : segments) {
      require(s.core_end - s.core_begin >= margin,
              "run_distributed: genome too small for this many ranks "
              "(segment shorter than the read-length margin)");
    }
    const GenomeSegment& seg = segments[static_cast<std::size_t>(rank)];

    std::optional<HashIndex> index;
    compute_turn(comm, options.serialize_compute, clock, [&] {
      index.emplace(genome, config.index, seg.store_begin, seg.store_end);
    });
    const ReadMapper mapper(genome, *index, config);
    // The rank accumulates over its core plus halos: a read whose diagonal
    // this rank owns can contribute to positions just inside a neighbor's
    // core.  Halo slices are exchanged after mapping (below) so every
    // position's owner sees the full evidence.
    auto accum = make_accumulator(config.accum_kind, seg.core_begin,
                                  seg.core_end - seg.core_begin,
                                  config.centdisc_quantize);
    std::unique_ptr<Accumulator> left_halo, right_halo;
    if (seg.store_begin < seg.core_begin) {
      left_halo = make_accumulator(config.accum_kind, seg.store_begin,
                                   seg.core_begin - seg.store_begin,
                                   config.centdisc_quantize);
    }
    if (seg.store_end > seg.core_end) {
      right_halo = make_accumulator(config.accum_kind, seg.core_end,
                                    seg.store_end - seg.core_end,
                                    config.centdisc_quantize);
    }
    auto accumulate_everywhere = [&](const ScoredSite& site) {
      ReadMapper::accumulate_site(site, *accum);
      if (left_halo) ReadMapper::accumulate_site(site, *left_halo);
      if (right_halo) ReadMapper::accumulate_site(site, *right_halo);
    };

    MapStats stats;
    std::uint64_t mapped_reads = 0;
    const std::size_t total_reads = reads.size();
    MapperWorkspace ws;
    for (std::size_t batch_begin = 0; batch_begin < total_reads;
         batch_begin += options.batch_size) {
      const std::size_t batch_end =
          std::min(total_reads, batch_begin + options.batch_size);
      // Rank 0 broadcasts the batch; every rank pays the communication.
      std::vector<std::uint8_t> payload;
      if (rank == 0) payload = serialize_reads(reads, batch_begin, batch_end);
      payload = comm.bcast(0, std::move(payload));
      const std::vector<Read> batch = deserialize_reads(payload);

      // Score local candidates; collect per-read raw likelihood sums.
      std::vector<double> likelihood_sum(batch.size(), 0.0);
      std::vector<std::vector<ScoredSite>> scored(batch.size());
      compute_turn(comm, options.serialize_compute, clock, [&] {
        for (std::size_t r = 0; r < batch.size(); ++r) {
          scored[r] = mapper.score_read(batch[r], ws, stats, seg.core_begin,
                                        seg.core_end);
          // score_read already applied the per-read softmax locally; undo
          // nothing — we need raw likelihoods, which it kept in
          // log_likelihood.  Recompute the local raw sum.
          for (const auto& site : scored[r]) {
            likelihood_sum[r] += std::exp(site.log_likelihood);
          }
        }
      });

      // Cross-machine score normalization (the paper's "calculates the
      // final score" traffic): total likelihood across all segments.
      comm.allreduce_sum(likelihood_sum);

      compute_turn(comm, options.serialize_compute, clock, [&] {
        for (std::size_t r = 0; r < batch.size(); ++r) {
          const double total = likelihood_sum[r];
          if (!(total > 0.0)) continue;
          // Global mapped test mirrors the serial per-base cutoff.
          const double cutoff = std::exp(
              config.min_loglik_per_base *
              static_cast<double>(batch[r].length()));
          if (total < cutoff) continue;
          if (rank == 0) ++mapped_reads;
          for (auto& site : scored[r]) {
            const double weight = std::exp(site.log_likelihood) / total;
            if (weight < config.min_site_posterior) continue;
            site.weight = weight;
            accumulate_everywhere(site);
          }
        }
      });
    }

    // Halo exchange: ship the slices that spilled past this rank's core to
    // their owners, and fold the neighbors' spill into this core.  One
    // message to each neighbor; merged position-by-position because the
    // halo range is a sub-range of the receiver's core.
    constexpr int kHaloLeftTag = 101;   // payload heading to rank - 1
    constexpr int kHaloRightTag = 102;  // payload heading to rank + 1
    auto fold_halo = [&](const std::vector<std::uint8_t>& bytes,
                         GenomePos begin, GenomePos end) {
      if (bytes.empty()) return;
      auto temp = make_accumulator(config.accum_kind, begin, end - begin,
                                   config.centdisc_quantize);
      temp->from_bytes(bytes);
      for (GenomePos pos = begin; pos < end; ++pos) {
        const TrackVector counts = temp->counts(pos);
        bool any = false;
        for (const float v : counts) any |= v > 0.0f;
        if (any) accum->add(pos, counts);
      }
    };
    if (p > 1) {
      // Even/odd phases avoid send/recv ordering deadlock... not needed:
      // mpsim sends are buffered, so everyone sends first, then receives.
      if (rank > 0) {
        comm.send(rank - 1, kHaloLeftTag,
                  left_halo ? left_halo->to_bytes()
                            : std::vector<std::uint8_t>{});
      }
      if (rank + 1 < p) {
        comm.send(rank + 1, kHaloRightTag,
                  right_halo ? right_halo->to_bytes()
                             : std::vector<std::uint8_t>{});
      }
      if (rank + 1 < p) {
        // Neighbor r+1's left halo covers [their store_begin, their
        // core_begin) = a suffix of this rank's core.
        const auto& next = segments[static_cast<std::size_t>(rank + 1)];
        fold_halo(comm.recv(rank + 1, kHaloLeftTag), next.store_begin,
                  next.core_begin);
      }
      if (rank > 0) {
        const auto& prev = segments[static_cast<std::size_t>(rank - 1)];
        fold_halo(comm.recv(rank - 1, kHaloRightTag), prev.core_end,
                  prev.store_end);
      }
    }

    // Each rank calls SNPs on the segment it owns; gather at rank 0.
    std::vector<SnpCall> local_calls;
    compute_turn(comm, options.serialize_compute, clock, [&] {
      local_calls =
          call_snps(genome, *accum, config, seg.core_begin, seg.core_end);
    });
    auto gathered = comm.gather(0, serialize_calls(local_calls));

    std::lock_guard<std::mutex> lock(result_mutex);
    // In this mode every rank sees every read; count the stream once.
    stats.reads_total = rank == 0 ? total_reads : 0;
    stats.reads_mapped = rank == 0 ? mapped_reads : 0;
    result.stats += stats;
    result.costs[static_cast<std::size_t>(rank)].compute_seconds =
        clock.total_seconds();
    result.max_rank_accum_bytes =
        std::max(result.max_rank_accum_bytes, accum->memory_bytes());
    result.total_accum_bytes += accum->memory_bytes();
    result.max_rank_index_bytes =
        std::max(result.max_rank_index_bytes, index->memory_bytes());
    if (rank == 0) {
      std::vector<SnpCall> all;
      for (auto& payload : gathered) {
        auto calls = deserialize_calls(payload);
        all.insert(all.end(), std::make_move_iterator(calls.begin()),
                   std::make_move_iterator(calls.end()));
      }
      std::sort(all.begin(), all.end(),
                [](const SnpCall& a, const SnpCall& b) {
                  if (a.contig != b.contig) return a.contig < b.contig;
                  return a.position < b.position;
                });
      result.calls = std::move(all);
    }
  };

  const auto comm_stats = run_world(options.ranks, body);
  for (int r = 0; r < options.ranks; ++r) {
    result.costs[static_cast<std::size_t>(r)].comm =
        comm_stats[static_cast<std::size_t>(r)];
  }
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace gnumap

#include "gnumap/core/dist_modes.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <utility>

#include "gnumap/core/obs_bridge.hpp"
#include "gnumap/core/read_mapper.hpp"
#include "gnumap/core/snp_caller.hpp"
#include "gnumap/genome/partition.hpp"
#include "gnumap/mpsim/communicator.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/phmm/batched.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap {

namespace {

// ---------------------------------------------------------------------------
// Binary (de)serialization helpers for broadcast/gather payloads.

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

struct Cursor {
  const std::vector<std::uint8_t>& data;
  std::size_t at = 0;

  template <typename T>
  T take() {
    require(at + sizeof(T) <= data.size(), "deserialize: truncated payload");
    T v;
    std::memcpy(&v, data.data() + at, sizeof(T));
    at += sizeof(T);
    return v;
  }
  std::vector<std::uint8_t> take_bytes(std::size_t n) {
    require(at + n <= data.size(), "deserialize: truncated payload");
    std::vector<std::uint8_t> v(data.begin() + static_cast<std::ptrdiff_t>(at),
                                data.begin() + static_cast<std::ptrdiff_t>(at + n));
    at += n;
    return v;
  }
  std::string take_string(std::size_t n) {
    require(at + n <= data.size(), "deserialize: truncated payload");
    std::string s(reinterpret_cast<const char*>(data.data() + at), n);
    at += n;
    return s;
  }
};

std::vector<std::uint8_t> serialize_reads(const std::vector<Read>& reads,
                                          std::size_t begin,
                                          std::size_t end) {
  std::vector<std::uint8_t> out;
  put_u64(out, end - begin);
  for (std::size_t r = begin; r < end; ++r) {
    const Read& read = reads[r];
    put_u32(out, static_cast<std::uint32_t>(read.name.size()));
    out.insert(out.end(), read.name.begin(), read.name.end());
    put_u32(out, static_cast<std::uint32_t>(read.bases.size()));
    out.insert(out.end(), read.bases.begin(), read.bases.end());
    out.insert(out.end(), read.quals.begin(), read.quals.end());
  }
  return out;
}

std::vector<std::uint8_t> serialize_reads(const std::vector<Read>& reads) {
  return serialize_reads(reads, 0, reads.size());
}

std::vector<Read> deserialize_reads(const std::vector<std::uint8_t>& bytes) {
  Cursor cursor{bytes};
  const std::uint64_t count = cursor.take<std::uint64_t>();
  std::vector<Read> reads;
  reads.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Read read;
    const auto name_len = cursor.take<std::uint32_t>();
    read.name = cursor.take_string(name_len);
    const auto len = cursor.take<std::uint32_t>();
    read.bases = cursor.take_bytes(len);
    read.quals = cursor.take_bytes(len);
    reads.push_back(std::move(read));
  }
  return reads;
}

std::vector<std::uint8_t> serialize_calls(const std::vector<SnpCall>& calls) {
  std::vector<std::uint8_t> out;
  put_u64(out, calls.size());
  for (const auto& call : calls) {
    put_u32(out, static_cast<std::uint32_t>(call.contig.size()));
    out.insert(out.end(), call.contig.begin(), call.contig.end());
    put_u64(out, call.position);
    out.push_back(call.ref);
    out.push_back(call.allele1);
    out.push_back(call.allele2);
    put_f64(out, call.coverage);
    put_f64(out, call.lrt_stat);
    put_f64(out, call.p_value);
  }
  return out;
}

std::vector<SnpCall> take_calls(Cursor& cursor) {
  const std::uint64_t count = cursor.take<std::uint64_t>();
  std::vector<SnpCall> calls;
  calls.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SnpCall call;
    const auto len = cursor.take<std::uint32_t>();
    call.contig = cursor.take_string(len);
    call.position = cursor.take<std::uint64_t>();
    call.ref = cursor.take<std::uint8_t>();
    call.allele1 = cursor.take<std::uint8_t>();
    call.allele2 = cursor.take<std::uint8_t>();
    call.coverage = cursor.take<double>();
    call.lrt_stat = cursor.take<double>();
    call.p_value = cursor.take<double>();
    calls.push_back(std::move(call));
  }
  return calls;
}

/// Gather payload for the genome-partition root splice: the rank's TSV
/// rows, preformatted locally with the locale-independent append API
/// (rank-local formatting — the root never renders another rank's calls),
/// followed by the structured calls for DistResult::calls.
std::vector<std::uint8_t> serialize_rank_output(
    const std::vector<SnpCall>& calls) {
  std::string tsv;
  append_snps_tsv_body(tsv, calls);
  std::vector<std::uint8_t> out;
  put_u64(out, tsv.size());
  out.insert(out.end(), tsv.begin(), tsv.end());
  const auto call_bytes = serialize_calls(calls);
  out.insert(out.end(), call_bytes.begin(), call_bytes.end());
  return out;
}

/// Root-side splice of gathered rank outputs, in rank order.  Genome
/// segments are assigned to ranks in position order and call_snps scans a
/// segment in position order, so rank-order concatenation IS global genome
/// order — the same order the serial caller emits.  (The former sort by
/// (contig name, position) could disagree with genome order for contig
/// names that don't sort lexicographically; splicing cannot.)
void splice_rank_outputs(const std::vector<std::vector<std::uint8_t>>& gathered,
                         std::string& tsv, std::vector<SnpCall>& calls) {
  tsv.clear();
  append_snps_tsv_header(tsv);
  calls.clear();
  for (const auto& payload : gathered) {
    Cursor cursor{payload};
    const auto tsv_len = cursor.take<std::uint64_t>();
    tsv += cursor.take_string(static_cast<std::size_t>(tsv_len));
    auto rank_calls = take_calls(cursor);
    calls.insert(calls.end(), std::make_move_iterator(rank_calls.begin()),
                 std::make_move_iterator(rank_calls.end()));
  }
}

/// Runs `fn` as this rank's compute turn.  When `serialize` is set, ranks
/// take strictly ordered turns (barrier-separated) so wall-clock attribution
/// on a single core is clean; the stopwatch brackets only this rank's work.
template <typename Fn>
void compute_turn(Communicator& comm, bool serialize, Stopwatch& clock,
                  Fn&& fn) {
  if (!serialize) {
    clock.start();
    { GNUMAP_TRACE_SPAN("compute_turn", "compute"); fn(); }
    clock.stop();
    return;
  }
  for (int turn = 0; turn < comm.size(); ++turn) {
    if (turn == comm.rank()) {
      clock.start();
      { GNUMAP_TRACE_SPAN("compute_turn", "compute"); fn(); }
      clock.stop();
    }
    comm.barrier();
  }
}

// ---------------------------------------------------------------------------
// Checkpointing.
//
// Each rank periodically serializes its recoverable state — accumulator
// bytes, shard/batch cursor, mapping statistics — to an in-process store
// standing in for the stable storage a real cluster would use.  After an
// aborted attempt the next attempt restores from these snapshots instead of
// starting over.  Accumulator (de)serialization round-trips floats exactly,
// so a restarted run replays into bit-identical state.

struct Checkpoint {
  /// Reads completed: within the rank's shard (read-partition) or the
  /// global read offset of the last finished batch (genome-partition).
  std::uint64_t progress = 0;
  std::vector<std::uint8_t> accum;
  std::vector<std::uint8_t> left_halo;   // genome-partition only
  std::vector<std::uint8_t> right_halo;  // genome-partition only
  MapStats stats;
  std::uint64_t mapped_reads = 0;  // genome-partition, rank 0 only
};

class CheckpointStore {
 public:
  explicit CheckpointStore(int ranks)
      : per_rank_(static_cast<std::size_t>(ranks)) {}

  /// `keep_history` retains earlier snapshots so the genome-partition mode
  /// can rewind every rank to a common batch boundary; the read-partition
  /// mode only ever needs the latest snapshot per rank.
  void save(int rank, Checkpoint cp, bool keep_history) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& history = per_rank_[static_cast<std::size_t>(rank)];
    if (!keep_history) history.clear();
    history.push_back(std::move(cp));
  }

  std::optional<Checkpoint> latest(int rank) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto& history = per_rank_[static_cast<std::size_t>(rank)];
    if (history.empty()) return std::nullopt;
    return history.back();
  }

  std::optional<Checkpoint> at(int rank, std::uint64_t progress) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto& history = per_rank_[static_cast<std::size_t>(rank)];
    for (auto it = history.rbegin(); it != history.rend(); ++it) {
      if (it->progress == progress) return *it;
    }
    return std::nullopt;
  }

  std::uint64_t latest_progress(int rank) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto& history = per_rank_[static_cast<std::size_t>(rank)];
    return history.empty() ? 0 : history.back().progress;
  }

  /// Highest progress value every rank has a snapshot for.  Ranks take
  /// snapshots at identical deterministic boundaries, so the minimum of the
  /// per-rank maxima is reachable by every rank (0 = start over).
  std::uint64_t common_progress() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t common = UINT64_MAX;
    for (const auto& history : per_rank_) {
      common = std::min(common, history.empty() ? 0 : history.back().progress);
    }
    return common == UINT64_MAX ? 0 : common;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<Checkpoint>> per_rank_;
};

/// Read-index ranges reclaimed from dead ranks, per surviving rank.
using ExtraRanges = std::vector<std::vector<std::pair<std::size_t, std::size_t>>>;

std::pair<std::size_t, std::size_t> shard_of(std::size_t total_reads, int rank,
                                             int ranks) {
  const std::size_t begin = total_reads * static_cast<std::size_t>(rank) /
                            static_cast<std::size_t>(ranks);
  const std::size_t end = total_reads * (static_cast<std::size_t>(rank) + 1) /
                          static_cast<std::size_t>(ranks);
  return {begin, end};
}

/// Everything one attempt's rank bodies need, fixed for that attempt.
struct AttemptContext {
  const Genome& genome;
  const std::vector<Read>& reads;
  const PipelineConfig& config;
  const DistOptions& options;
  const HashIndex* shared_index;
  CheckpointStore& store;
  bool fault_mode = false;
  std::uint64_t checkpoint_interval = 0;
  /// Ranks lost to kReclaimReads: they restore their last checkpoint and
  /// contribute it to the reduction, but map nothing further.
  const std::set<int>& lost;
  const ExtraRanges& extra;      ///< reclaimed read ranges per rank
  std::uint64_t resume_reads = 0;  ///< genome-partition common resume offset
  DistResult& result;
  std::mutex& result_mutex;
};

// ---------------------------------------------------------------------------
// Read-partition mode ("shared memory mode"): every rank holds the full
// genome and maps a shard of the reads; accumulators reduce at rank 0.

void run_read_partition_rank(Communicator& comm, const AttemptContext& ctx) {
  const int rank = comm.rank();
  const int p = comm.size();
  const PipelineConfig& config = ctx.config;
  Stopwatch& clock = comm.compute_clock();

  std::optional<HashIndex> own_index;
  const HashIndex* index = ctx.shared_index;
  if (index == nullptr) {
    compute_turn(comm, ctx.options.serialize_compute, clock, [&] {
      own_index.emplace(ctx.genome, config.index);
    });
    index = &*own_index;
  }
  const ReadMapper mapper(ctx.genome, *index, config);
  auto accum = make_accumulator(config.accum_kind, 0, ctx.genome.padded_size(),
                                config.centdisc_quantize);

  const auto [shard_begin, shard_end] =
      shard_of(ctx.reads.size(), rank, p);
  const std::uint64_t shard_size = shard_end - shard_begin;
  const bool ghost = ctx.lost.count(rank) > 0;

  MapStats stats;
  std::uint64_t done = 0;  // reads of this rank's shard completed
  if (ctx.fault_mode) {
    if (const auto cp = ctx.store.latest(rank)) {
      GNUMAP_TRACE_SPAN("checkpoint_restore", "ckpt");
      accum->from_bytes(cp->accum);
      stats = cp->stats;
      done = cp->progress;
    }
  }

  compute_turn(comm, ctx.options.serialize_compute, clock, [&] {
    if (ghost) return;  // recovered from stable storage; shard reclaimed
    MapperWorkspace ws;
    // Reads are scored in SIMD batches, but accumulated — and stepped past
    // the fault-injection clock — one at a time, so checkpoint contents and
    // crash points land exactly where the per-read loop put them.
    constexpr std::size_t kScoreBatch = 32;
    auto map_range = [&](std::size_t range_begin, std::size_t range_end,
                         bool checkpointing) {
      std::size_t r = range_begin;
      while (r < range_end) {
        const std::size_t len =
            std::min<std::size_t>(kScoreBatch, range_end - r);
        const auto scored = mapper.score_reads(
            std::span<const Read>(ctx.reads.data() + r, len), ws, stats);
        for (const auto& sites : scored) {
          ReadMapper::accumulate(sites, *accum);
          if (checkpointing) {
            ++done;
            comm.step();
            if (ctx.fault_mode && ctx.checkpoint_interval > 0 &&
                done % ctx.checkpoint_interval == 0 && done < shard_size) {
              obs::TraceSpan cp_span("checkpoint_save", "ckpt", "progress",
                                     static_cast<double>(done));
              ctx.store.save(rank, Checkpoint{done, accum->to_bytes(), {},
                                              {}, stats, 0},
                             /*keep_history=*/false);
            }
          } else {
            comm.step();
          }
        }
        r += len;
      }
    };
    map_range(shard_begin + done, shard_end, /*checkpointing=*/true);
    if (ctx.fault_mode) {
      // Final shard snapshot: a crash during the reduction restarts
      // without redoing any mapping.  Taken before reclaimed ranges so a
      // later restore never double-counts them.
      obs::TraceSpan cp_span("checkpoint_save", "ckpt", "progress",
                             static_cast<double>(done));
      ctx.store.save(rank, Checkpoint{done, accum->to_bytes(), {}, {},
                                      stats, 0},
                     /*keep_history=*/false);
    }
    for (const auto& [extra_begin, extra_end] :
         ctx.extra[static_cast<std::size_t>(rank)]) {
      map_range(extra_begin, extra_end, /*checkpointing=*/false);
    }
  });

  // Reduce the genome state at rank 0 (the end-of-run communication).
  auto reduced = comm.reduce(
      0, accum->to_bytes(),
      [&](std::vector<std::uint8_t> a, std::vector<std::uint8_t> b) {
        auto left = make_accumulator(config.accum_kind, 0,
                                     ctx.genome.padded_size(),
                                     config.centdisc_quantize);
        auto right = make_accumulator(config.accum_kind, 0,
                                      ctx.genome.padded_size(),
                                      config.centdisc_quantize);
        left->from_bytes(a);
        right->from_bytes(b);
        left->merge(*right);
        return left->to_bytes();
      });

  std::vector<SnpCall> calls;
  if (rank == 0) {
    accum->from_bytes(reduced);
    clock.start();
    calls = call_snps(ctx.genome, *accum, config);
    clock.stop();
  }

  std::lock_guard<std::mutex> lock(ctx.result_mutex);
  ctx.result.stats += stats;
  ctx.result.max_rank_accum_bytes =
      std::max(ctx.result.max_rank_accum_bytes, accum->memory_bytes());
  ctx.result.total_accum_bytes += accum->memory_bytes();
  if (index != nullptr) {
    ctx.result.max_rank_index_bytes =
        std::max(ctx.result.max_rank_index_bytes, index->memory_bytes());
  }
  if (rank == 0) {
    // Rank-local formatting: only rank 0 holds final calls in this mode, so
    // it renders the whole document (locale-independent append API).
    append_snps_tsv(ctx.result.tsv, calls);
    ctx.result.calls = std::move(calls);
  }
}

// ---------------------------------------------------------------------------
// Genome-partition mode ("spread memory mode"): genome segments, reads
// broadcast, per-read score normalization via allreduce, halo exchange.

void run_genome_partition_rank(Communicator& comm, const AttemptContext& ctx) {
  const int rank = comm.rank();
  const int p = comm.size();
  const PipelineConfig& config = ctx.config;
  const std::vector<Read>& reads = ctx.reads;
  Stopwatch& clock = comm.compute_clock();

  std::uint32_t max_read_len = 0;
  for (const auto& read : reads) {
    max_read_len =
        std::max(max_read_len, static_cast<std::uint32_t>(read.length()));
  }
  const std::uint64_t margin =
      static_cast<std::uint64_t>(max_read_len) +
      static_cast<std::uint64_t>(config.window_pad) +
      static_cast<std::uint64_t>(config.seeder.band_width);
  const auto segments = partition_genome(ctx.genome, p, margin);
  // The halo exchange below assumes halos only reach into *adjacent*
  // cores; require every segment to be at least one margin long.
  for (const auto& s : segments) {
    require(s.core_end - s.core_begin >= margin,
            "run_distributed: genome too small for this many ranks "
            "(segment shorter than the read-length margin)");
  }
  const GenomeSegment& seg = segments[static_cast<std::size_t>(rank)];

  std::optional<HashIndex> index;
  compute_turn(comm, ctx.options.serialize_compute, clock, [&] {
    index.emplace(ctx.genome, config.index, seg.store_begin, seg.store_end);
  });
  const ReadMapper mapper(ctx.genome, *index, config);
  // The rank accumulates over its core plus halos: a read whose diagonal
  // this rank owns can contribute to positions just inside a neighbor's
  // core.  Halo slices are exchanged after mapping (below) so every
  // position's owner sees the full evidence.
  auto accum = make_accumulator(config.accum_kind, seg.core_begin,
                                seg.core_end - seg.core_begin,
                                config.centdisc_quantize);
  std::unique_ptr<Accumulator> left_halo, right_halo;
  if (seg.store_begin < seg.core_begin) {
    left_halo = make_accumulator(config.accum_kind, seg.store_begin,
                                 seg.core_begin - seg.store_begin,
                                 config.centdisc_quantize);
  }
  if (seg.store_end > seg.core_end) {
    right_halo = make_accumulator(config.accum_kind, seg.core_end,
                                  seg.store_end - seg.core_end,
                                  config.centdisc_quantize);
  }
  auto accumulate_everywhere = [&](const ScoredSite& site) {
    ReadMapper::accumulate_site(site, *accum);
    if (left_halo) ReadMapper::accumulate_site(site, *left_halo);
    if (right_halo) ReadMapper::accumulate_site(site, *right_halo);
  };

  MapStats stats;
  std::uint64_t mapped_reads = 0;
  const std::size_t total_reads = reads.size();
  std::size_t resume_begin = 0;
  if (ctx.fault_mode && ctx.resume_reads > 0) {
    GNUMAP_TRACE_SPAN("checkpoint_restore", "ckpt");
    const auto cp = ctx.store.at(rank, ctx.resume_reads);
    require(cp.has_value(),
            "run_distributed: missing checkpoint at common resume point");
    accum->from_bytes(cp->accum);
    if (left_halo && !cp->left_halo.empty()) {
      left_halo->from_bytes(cp->left_halo);
    }
    if (right_halo && !cp->right_halo.empty()) {
      right_halo->from_bytes(cp->right_halo);
    }
    stats = cp->stats;
    mapped_reads = cp->mapped_reads;
    resume_begin = ctx.resume_reads;
  }

  MapperWorkspace ws;
  for (std::size_t batch_begin = resume_begin; batch_begin < total_reads;
       batch_begin += ctx.options.batch_size) {
    const std::size_t batch_end =
        std::min(total_reads, batch_begin + ctx.options.batch_size);
    // Rank 0 broadcasts the batch; every rank pays the communication.
    std::vector<std::uint8_t> payload;
    if (rank == 0) payload = serialize_reads(reads, batch_begin, batch_end);
    payload = comm.bcast(0, std::move(payload));
    const std::vector<Read> batch = deserialize_reads(payload);

    // Score local candidates (one SIMD batch per broadcast batch); collect
    // per-read raw likelihood sums.
    std::vector<double> likelihood_sum(batch.size(), 0.0);
    std::vector<std::vector<ScoredSite>> scored(batch.size());
    compute_turn(comm, ctx.options.serialize_compute, clock, [&] {
      scored = mapper.score_reads(
          std::span<const Read>(batch.data(), batch.size()), ws, stats,
          seg.core_begin, seg.core_end);
      // score_reads already applied the per-read softmax locally; undo
      // nothing — we need raw likelihoods, which it kept in
      // log_likelihood.  Recompute the local raw sum.
      for (std::size_t r = 0; r < batch.size(); ++r) {
        for (const auto& site : scored[r]) {
          likelihood_sum[r] += std::exp(site.log_likelihood);
        }
      }
    });

    // Cross-machine score normalization (the paper's "calculates the
    // final score" traffic): total likelihood across all segments.
    comm.allreduce_sum(likelihood_sum);

    compute_turn(comm, ctx.options.serialize_compute, clock, [&] {
      for (std::size_t r = 0; r < batch.size(); ++r) {
        const double total = likelihood_sum[r];
        if (!(total > 0.0)) continue;
        // Global mapped test mirrors the serial per-base cutoff.
        const double cutoff = std::exp(
            config.min_loglik_per_base *
            static_cast<double>(batch[r].length()));
        if (total < cutoff) continue;
        if (rank == 0) ++mapped_reads;
        for (auto& site : scored[r]) {
          const double weight = std::exp(site.log_likelihood) / total;
          if (weight < config.min_site_posterior) continue;
          site.weight = weight;
          accumulate_everywhere(site);
        }
      }
    });

    comm.step();
    if (ctx.fault_mode && ctx.checkpoint_interval > 0) {
      // Batch boundaries are a fixed grid (multiples of batch_size), so
      // every rank snapshots at the same `progress` values across
      // attempts — the invariant common_progress() relies on.
      const std::uint64_t batches_done =
          (batch_end + ctx.options.batch_size - 1) / ctx.options.batch_size;
      if (batches_done % ctx.checkpoint_interval == 0 ||
          batch_end == total_reads) {
        obs::TraceSpan cp_span("checkpoint_save", "ckpt", "progress",
                               static_cast<double>(batch_end));
        ctx.store.save(
            rank,
            Checkpoint{batch_end, accum->to_bytes(),
                       left_halo ? left_halo->to_bytes()
                                 : std::vector<std::uint8_t>{},
                       right_halo ? right_halo->to_bytes()
                                  : std::vector<std::uint8_t>{},
                       stats, mapped_reads},
            /*keep_history=*/true);
      }
    }
  }

  // Halo exchange: ship the slices that spilled past this rank's core to
  // their owners, and fold the neighbors' spill into this core.  One
  // message to each neighbor; merged position-by-position because the
  // halo range is a sub-range of the receiver's core.
  constexpr int kHaloLeftTag = 101;   // payload heading to rank - 1
  constexpr int kHaloRightTag = 102;  // payload heading to rank + 1
  auto fold_halo = [&](const std::vector<std::uint8_t>& bytes,
                       GenomePos begin, GenomePos end) {
    if (bytes.empty()) return;
    auto temp = make_accumulator(config.accum_kind, begin, end - begin,
                                 config.centdisc_quantize);
    temp->from_bytes(bytes);
    for (GenomePos pos = begin; pos < end; ++pos) {
      const TrackVector counts = temp->counts(pos);
      bool any = false;
      for (const float v : counts) any |= v > 0.0f;
      if (any) accum->add(pos, counts);
    }
  };
  if (p > 1) {
    GNUMAP_TRACE_SPAN("halo_exchange", "comm");
    // Even/odd phases avoid send/recv ordering deadlock... not needed:
    // mpsim sends are buffered, so everyone sends first, then receives.
    if (rank > 0) {
      comm.send(rank - 1, kHaloLeftTag,
                left_halo ? left_halo->to_bytes()
                          : std::vector<std::uint8_t>{});
    }
    if (rank + 1 < p) {
      comm.send(rank + 1, kHaloRightTag,
                right_halo ? right_halo->to_bytes()
                           : std::vector<std::uint8_t>{});
    }
    if (rank + 1 < p) {
      // Neighbor r+1's left halo covers [their store_begin, their
      // core_begin) = a suffix of this rank's core.
      const auto& next = segments[static_cast<std::size_t>(rank + 1)];
      fold_halo(comm.recv(rank + 1, kHaloLeftTag), next.store_begin,
                next.core_begin);
    }
    if (rank > 0) {
      const auto& prev = segments[static_cast<std::size_t>(rank - 1)];
      fold_halo(comm.recv(rank - 1, kHaloRightTag), prev.core_end,
                prev.store_end);
    }
  }

  // Each rank calls SNPs on the segment it owns; gather at rank 0.
  std::vector<SnpCall> local_calls;
  compute_turn(comm, ctx.options.serialize_compute, clock, [&] {
    local_calls =
        call_snps(ctx.genome, *accum, config, seg.core_begin, seg.core_end);
  });
  auto gathered = comm.gather(0, serialize_rank_output(local_calls));

  std::lock_guard<std::mutex> lock(ctx.result_mutex);
  // In this mode every rank sees every read; count the stream once.
  stats.reads_total = rank == 0 ? total_reads : 0;
  stats.reads_mapped = rank == 0 ? mapped_reads : 0;
  ctx.result.stats += stats;
  ctx.result.max_rank_accum_bytes =
      std::max(ctx.result.max_rank_accum_bytes, accum->memory_bytes());
  ctx.result.total_accum_bytes += accum->memory_bytes();
  ctx.result.max_rank_index_bytes =
      std::max(ctx.result.max_rank_index_bytes, index->memory_bytes());
  if (rank == 0) {
    splice_rank_outputs(gathered, ctx.result.tsv, ctx.result.calls);
  }
}

// ---------------------------------------------------------------------------
// Streaming variants (dist_modes.hpp overload taking a ReadStream).
//
// The compute bodies are the legacy ones; only read *delivery* changes.
// Rank 0 owns the stream and never materializes it: read-partition ships
// batches point-to-point under an ack window, genome-partition re-batches
// into the same broadcast payloads the vector path builds.  Compute is
// never barrier-serialized here (stages are meant to overlap), so
// serialize_compute is ignored; per-rank compute seconds still bracket only
// that rank's work.

/// Read-partition delivery protocol: rank 0 -> owner, one message per
/// shipped piece; the owner acks each piece after mapping it so rank 0
/// keeps at most `queue_depth` pieces in flight per rank.
constexpr int kStreamBatchTag = 110;  // serialized reads; empty = end of shard
constexpr int kStreamAckTag = 111;    // empty payload back per mapped piece

/// Everything one streaming attempt's rank bodies need, fixed for that
/// attempt.  Only rank 0 may touch `reads`.
struct StreamAttemptContext {
  const Genome& genome;
  ReadStream& reads;
  const PipelineConfig& config;
  const DistOptions& options;
  const HashIndex* shared_index;
  CheckpointStore& store;
  bool fault_mode = false;
  std::uint64_t checkpoint_interval = 0;
  std::uint64_t resume_reads = 0;  ///< genome-partition common resume offset
  std::uint32_t max_read_len = 0;  ///< genome-partition margin input
  DistResult& result;
  std::mutex& result_mutex;
};

void run_read_partition_rank_stream(Communicator& comm,
                                    const StreamAttemptContext& ctx) {
  const int rank = comm.rank();
  const int p = comm.size();
  const PipelineConfig& config = ctx.config;
  Stopwatch& clock = comm.compute_clock();

  std::optional<HashIndex> own_index;
  const HashIndex* index = ctx.shared_index;
  if (index == nullptr) {
    compute_turn(comm, /*serialize=*/false, clock, [&] {
      own_index.emplace(ctx.genome, config.index);
    });
    index = &*own_index;
  }
  const ReadMapper mapper(ctx.genome, *index, config);
  auto accum = make_accumulator(config.accum_kind, 0, ctx.genome.padded_size(),
                                config.centdisc_quantize);

  MapStats stats;
  std::uint64_t done = 0;  // reads of this rank's (virtual) shard completed
  if (ctx.fault_mode) {
    if (const auto cp = ctx.store.latest(rank)) {
      GNUMAP_TRACE_SPAN("checkpoint_restore", "ckpt");
      accum->from_bytes(cp->accum);
      stats = cp->stats;
      done = cp->progress;
    }
  }

  MapperWorkspace ws;
  // Maps one delivered piece of this rank's shard, in delivery order.
  // Scoring is chunked for the SIMD engine (bit-identical at any chunking,
  // see phmm/batched.hpp) but accumulated — and stepped past the
  // fault-injection clock — one read at a time, exactly like the vector
  // path, so checkpoints and crash points land on the same grid.
  auto process_reads = [&](const std::vector<Read>& piece) {
    compute_turn(comm, /*serialize=*/false, clock, [&] {
      constexpr std::size_t kScoreBatch = 32;
      std::size_t r = 0;
      while (r < piece.size()) {
        const std::size_t len =
            std::min<std::size_t>(kScoreBatch, piece.size() - r);
        const auto scored = mapper.score_reads(
            std::span<const Read>(piece.data() + r, len), ws, stats);
        for (const auto& sites : scored) {
          ReadMapper::accumulate(sites, *accum);
          ++done;
          comm.step();
          if (ctx.fault_mode && ctx.checkpoint_interval > 0 &&
              done % ctx.checkpoint_interval == 0) {
            obs::TraceSpan cp_span("checkpoint_save", "ckpt", "progress",
                                   static_cast<double>(done));
            ctx.store.save(rank,
                           Checkpoint{done, accum->to_bytes(), {}, {}, stats,
                                      0},
                           /*keep_history=*/false);
          }
        }
        r += len;
      }
    });
  };

  if (rank == 0) {
    // The pump: decode the stream and ship every piece to its owner (its
    // own pieces are mapped inline).  After a restart, each rank's restored
    // prefix is dropped at the pump — delivery is deterministic, so the
    // replayed assignment matches the checkpointed one.
    const auto size_hint = ctx.reads.size_hint();
    const std::uint64_t window =
        std::max<std::uint32_t>(1, config.queue_depth);
    std::vector<std::uint64_t> skip(static_cast<std::size_t>(p), 0);
    std::vector<std::uint64_t> outstanding(static_cast<std::size_t>(p), 0);
    if (ctx.fault_mode) {
      for (int r = 0; r < p; ++r) {
        skip[static_cast<std::size_t>(r)] = ctx.store.latest_progress(r);
      }
    }

    auto deliver = [&](int dest, std::vector<Read>&& piece) {
      if (piece.empty()) return;
      if (dest == 0) {
        process_reads(piece);
        return;
      }
      auto& pending = outstanding[static_cast<std::size_t>(dest)];
      while (pending >= window) {
        comm.recv(dest, kStreamAckTag);
        --pending;
      }
      comm.send(dest, kStreamBatchTag, serialize_reads(piece));
      ++pending;
    };

    ReadBatch batch;
    if (size_hint.has_value()) {
      // Sized stream: pieces follow the vector path's contiguous shard_of
      // boundaries, so per-rank read sets — and hence accumulators, the
      // reduce, and the calls — are byte-identical to it.
      std::vector<std::pair<std::size_t, std::size_t>> shards(
          static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        shards[static_cast<std::size_t>(r)] =
            shard_of(static_cast<std::size_t>(*size_hint), r, p);
      }
      int dest = 0;
      while (ctx.reads.next(batch)) {
        std::size_t i = 0;
        while (i < batch.reads.size()) {
          const std::uint64_t g = batch.first_index + i;
          while (dest + 1 < p &&
                 g >= shards[static_cast<std::size_t>(dest)].second) {
            ++dest;
          }
          const auto& [shard_begin, shard_end] =
              shards[static_cast<std::size_t>(dest)];
          const std::size_t len = static_cast<std::size_t>(
              std::min<std::uint64_t>(batch.reads.size() - i, shard_end - g));
          const std::uint64_t off = g - shard_begin;  // offset within shard
          const std::size_t drop =
              off < skip[static_cast<std::size_t>(dest)]
                  ? static_cast<std::size_t>(std::min<std::uint64_t>(
                        len, skip[static_cast<std::size_t>(dest)] - off))
                  : 0;
          std::vector<Read> piece(
              batch.reads.begin() + static_cast<std::ptrdiff_t>(i + drop),
              batch.reads.begin() + static_cast<std::ptrdiff_t>(i + len));
          deliver(dest, std::move(piece));
          i += len;
        }
      }
    } else {
      // Unsized stream: deal whole batches round-robin.  Deterministic, so
      // recovery still replays the same assignment — but not the vector
      // path's shards, so byte-identity with it is not promised here.
      std::uint64_t seq = 0;
      std::vector<std::uint64_t> dealt(static_cast<std::size_t>(p), 0);
      while (ctx.reads.next(batch)) {
        const int dest = static_cast<int>(seq++ % static_cast<std::uint64_t>(p));
        const std::uint64_t off = dealt[static_cast<std::size_t>(dest)];
        dealt[static_cast<std::size_t>(dest)] += batch.reads.size();
        const std::size_t drop =
            off < skip[static_cast<std::size_t>(dest)]
                ? static_cast<std::size_t>(std::min<std::uint64_t>(
                      batch.reads.size(),
                      skip[static_cast<std::size_t>(dest)] - off))
                : 0;
        std::vector<Read> piece(
            batch.reads.begin() + static_cast<std::ptrdiff_t>(drop),
            batch.reads.end());
        deliver(dest, std::move(piece));
      }
    }

    // End-of-stream: an empty payload per rank, then drain the remaining
    // acks so the attempt's message ledger balances.
    for (int r = 1; r < p; ++r) {
      comm.send(r, kStreamBatchTag, serialize_reads(std::vector<Read>{}));
      auto& pending = outstanding[static_cast<std::size_t>(r)];
      while (pending > 0) {
        comm.recv(r, kStreamAckTag);
        --pending;
      }
    }
  } else {
    for (;;) {
      const std::vector<Read> piece =
          deserialize_reads(comm.recv(0, kStreamBatchTag));
      if (piece.empty()) break;
      process_reads(piece);
      comm.send(0, kStreamAckTag, {});
    }
  }

  if (ctx.fault_mode) {
    // Final shard snapshot, as in the vector path: a crash during the
    // reduction restarts without redoing any mapping.
    obs::TraceSpan cp_span("checkpoint_save", "ckpt", "progress",
                           static_cast<double>(done));
    ctx.store.save(rank, Checkpoint{done, accum->to_bytes(), {}, {}, stats, 0},
                   /*keep_history=*/false);
  }

  // Reduce the genome state at rank 0 (the end-of-run communication).
  auto reduced = comm.reduce(
      0, accum->to_bytes(),
      [&](std::vector<std::uint8_t> a, std::vector<std::uint8_t> b) {
        auto left = make_accumulator(config.accum_kind, 0,
                                     ctx.genome.padded_size(),
                                     config.centdisc_quantize);
        auto right = make_accumulator(config.accum_kind, 0,
                                      ctx.genome.padded_size(),
                                      config.centdisc_quantize);
        left->from_bytes(a);
        right->from_bytes(b);
        left->merge(*right);
        return left->to_bytes();
      });

  std::vector<SnpCall> calls;
  if (rank == 0) {
    accum->from_bytes(reduced);
    clock.start();
    calls = call_snps(ctx.genome, *accum, config);
    clock.stop();
  }

  std::lock_guard<std::mutex> lock(ctx.result_mutex);
  ctx.result.stats += stats;
  ctx.result.max_rank_accum_bytes =
      std::max(ctx.result.max_rank_accum_bytes, accum->memory_bytes());
  ctx.result.total_accum_bytes += accum->memory_bytes();
  if (index != nullptr) {
    ctx.result.max_rank_index_bytes =
        std::max(ctx.result.max_rank_index_bytes, index->memory_bytes());
  }
  if (rank == 0) {
    // Rank-local formatting: only rank 0 holds final calls in this mode, so
    // it renders the whole document (locale-independent append API).
    append_snps_tsv(ctx.result.tsv, calls);
    ctx.result.calls = std::move(calls);
  }
}

void run_genome_partition_rank_stream(Communicator& comm,
                                      const StreamAttemptContext& ctx) {
  const int rank = comm.rank();
  const int p = comm.size();
  const PipelineConfig& config = ctx.config;
  Stopwatch& clock = comm.compute_clock();

  // The margin comes from the driver (options.max_read_len or a prescan of
  // the stream) instead of a pass over an in-memory vector.
  const std::uint64_t margin =
      static_cast<std::uint64_t>(ctx.max_read_len) +
      static_cast<std::uint64_t>(config.window_pad) +
      static_cast<std::uint64_t>(config.seeder.band_width);
  const auto segments = partition_genome(ctx.genome, p, margin);
  for (const auto& s : segments) {
    require(s.core_end - s.core_begin >= margin,
            "run_distributed: genome too small for this many ranks "
            "(segment shorter than the read-length margin)");
  }
  const GenomeSegment& seg = segments[static_cast<std::size_t>(rank)];

  std::optional<HashIndex> index;
  compute_turn(comm, /*serialize=*/false, clock, [&] {
    index.emplace(ctx.genome, config.index, seg.store_begin, seg.store_end);
  });
  const ReadMapper mapper(ctx.genome, *index, config);
  auto accum = make_accumulator(config.accum_kind, seg.core_begin,
                                seg.core_end - seg.core_begin,
                                config.centdisc_quantize);
  std::unique_ptr<Accumulator> left_halo, right_halo;
  if (seg.store_begin < seg.core_begin) {
    left_halo = make_accumulator(config.accum_kind, seg.store_begin,
                                 seg.core_begin - seg.store_begin,
                                 config.centdisc_quantize);
  }
  if (seg.store_end > seg.core_end) {
    right_halo = make_accumulator(config.accum_kind, seg.core_end,
                                  seg.store_end - seg.core_end,
                                  config.centdisc_quantize);
  }
  auto accumulate_everywhere = [&](const ScoredSite& site) {
    ReadMapper::accumulate_site(site, *accum);
    if (left_halo) ReadMapper::accumulate_site(site, *left_halo);
    if (right_halo) ReadMapper::accumulate_site(site, *right_halo);
  };

  MapStats stats;
  std::uint64_t mapped_reads = 0;
  std::uint64_t batch_begin = ctx.resume_reads;  // global read offset
  if (ctx.fault_mode && ctx.resume_reads > 0) {
    GNUMAP_TRACE_SPAN("checkpoint_restore", "ckpt");
    const auto cp = ctx.store.at(rank, ctx.resume_reads);
    require(cp.has_value(),
            "run_distributed: missing checkpoint at common resume point");
    accum->from_bytes(cp->accum);
    if (left_halo && !cp->left_halo.empty()) {
      left_halo->from_bytes(cp->left_halo);
    }
    if (right_halo && !cp->right_halo.empty()) {
      right_halo->from_bytes(cp->right_halo);
    }
    stats = cp->stats;
    mapped_reads = cp->mapped_reads;
  }

  // Rank 0 re-batches the stream into exactly options.batch_size broadcast
  // payloads — the same batches the vector path slices — carrying leftover
  // reads between pulls; an empty payload terminates every rank's loop.
  std::deque<Read> carry;
  bool exhausted = false;
  MapperWorkspace ws;
  for (;;) {
    std::vector<std::uint8_t> payload;
    if (rank == 0) {
      ReadBatch pulled;
      while (carry.size() < ctx.options.batch_size && !exhausted) {
        if (ctx.reads.next(pulled)) {
          for (auto& read : pulled.reads) carry.push_back(std::move(read));
        } else {
          exhausted = true;
        }
      }
      const std::size_t n =
          std::min<std::size_t>(carry.size(), ctx.options.batch_size);
      std::vector<Read> batch_reads(
          std::make_move_iterator(carry.begin()),
          std::make_move_iterator(carry.begin() + static_cast<std::ptrdiff_t>(n)));
      carry.erase(carry.begin(), carry.begin() + static_cast<std::ptrdiff_t>(n));
      payload = serialize_reads(batch_reads);
    }
    payload = comm.bcast(0, std::move(payload));
    const std::vector<Read> batch = deserialize_reads(payload);
    if (batch.empty()) break;
    const std::uint64_t batch_end = batch_begin + batch.size();

    std::vector<double> likelihood_sum(batch.size(), 0.0);
    std::vector<std::vector<ScoredSite>> scored(batch.size());
    compute_turn(comm, /*serialize=*/false, clock, [&] {
      scored = mapper.score_reads(
          std::span<const Read>(batch.data(), batch.size()), ws, stats,
          seg.core_begin, seg.core_end);
      for (std::size_t r = 0; r < batch.size(); ++r) {
        for (const auto& site : scored[r]) {
          likelihood_sum[r] += std::exp(site.log_likelihood);
        }
      }
    });

    comm.allreduce_sum(likelihood_sum);

    compute_turn(comm, /*serialize=*/false, clock, [&] {
      for (std::size_t r = 0; r < batch.size(); ++r) {
        const double total = likelihood_sum[r];
        if (!(total > 0.0)) continue;
        const double cutoff = std::exp(
            config.min_loglik_per_base *
            static_cast<double>(batch[r].length()));
        if (total < cutoff) continue;
        if (rank == 0) ++mapped_reads;
        for (auto& site : scored[r]) {
          const double weight = std::exp(site.log_likelihood) / total;
          if (weight < config.min_site_posterior) continue;
          site.weight = weight;
          accumulate_everywhere(site);
        }
      }
    });

    comm.step();
    if (ctx.fault_mode && ctx.checkpoint_interval > 0) {
      // Same fixed grid as the vector path (multiples of batch_size), so
      // common_progress() still names a boundary every rank snapshotted.
      const std::uint64_t batches_done =
          (batch_end + ctx.options.batch_size - 1) / ctx.options.batch_size;
      if (batches_done % ctx.checkpoint_interval == 0) {
        obs::TraceSpan cp_span("checkpoint_save", "ckpt", "progress",
                               static_cast<double>(batch_end));
        ctx.store.save(
            rank,
            Checkpoint{batch_end, accum->to_bytes(),
                       left_halo ? left_halo->to_bytes()
                                 : std::vector<std::uint8_t>{},
                       right_halo ? right_halo->to_bytes()
                                  : std::vector<std::uint8_t>{},
                       stats, mapped_reads},
            /*keep_history=*/true);
      }
    }
    batch_begin = batch_end;
  }

  if (ctx.fault_mode) {
    // The vector path snapshots at batch_end == total_reads inside the
    // loop; a stream only learns "that was the last batch" after the fact,
    // so the final snapshot lands here.
    obs::TraceSpan cp_span("checkpoint_save", "ckpt", "progress",
                           static_cast<double>(batch_begin));
    ctx.store.save(
        rank,
        Checkpoint{batch_begin, accum->to_bytes(),
                   left_halo ? left_halo->to_bytes()
                             : std::vector<std::uint8_t>{},
                   right_halo ? right_halo->to_bytes()
                              : std::vector<std::uint8_t>{},
                   stats, mapped_reads},
        /*keep_history=*/true);
  }

  // Halo exchange, segment calls, and the gather are the vector path's.
  constexpr int kHaloLeftTag = 101;
  constexpr int kHaloRightTag = 102;
  auto fold_halo = [&](const std::vector<std::uint8_t>& bytes,
                       GenomePos begin, GenomePos end) {
    if (bytes.empty()) return;
    auto temp = make_accumulator(config.accum_kind, begin, end - begin,
                                 config.centdisc_quantize);
    temp->from_bytes(bytes);
    for (GenomePos pos = begin; pos < end; ++pos) {
      const TrackVector counts = temp->counts(pos);
      bool any = false;
      for (const float v : counts) any |= v > 0.0f;
      if (any) accum->add(pos, counts);
    }
  };
  if (p > 1) {
    GNUMAP_TRACE_SPAN("halo_exchange", "comm");
    if (rank > 0) {
      comm.send(rank - 1, kHaloLeftTag,
                left_halo ? left_halo->to_bytes()
                          : std::vector<std::uint8_t>{});
    }
    if (rank + 1 < p) {
      comm.send(rank + 1, kHaloRightTag,
                right_halo ? right_halo->to_bytes()
                           : std::vector<std::uint8_t>{});
    }
    if (rank + 1 < p) {
      const auto& next = segments[static_cast<std::size_t>(rank + 1)];
      fold_halo(comm.recv(rank + 1, kHaloLeftTag), next.store_begin,
                next.core_begin);
    }
    if (rank > 0) {
      const auto& prev = segments[static_cast<std::size_t>(rank - 1)];
      fold_halo(comm.recv(rank - 1, kHaloRightTag), prev.core_end,
                prev.store_end);
    }
  }

  std::vector<SnpCall> local_calls;
  compute_turn(comm, /*serialize=*/false, clock, [&] {
    local_calls =
        call_snps(ctx.genome, *accum, config, seg.core_begin, seg.core_end);
  });
  auto gathered = comm.gather(0, serialize_rank_output(local_calls));

  std::lock_guard<std::mutex> lock(ctx.result_mutex);
  // Every rank saw every read; count the stream once, at rank 0, where
  // batch_begin ended up equal to the stream length.
  stats.reads_total = rank == 0 ? batch_begin : 0;
  stats.reads_mapped = rank == 0 ? mapped_reads : 0;
  ctx.result.stats += stats;
  ctx.result.max_rank_accum_bytes =
      std::max(ctx.result.max_rank_accum_bytes, accum->memory_bytes());
  ctx.result.total_accum_bytes += accum->memory_bytes();
  ctx.result.max_rank_index_bytes =
      std::max(ctx.result.max_rank_index_bytes, index->memory_bytes());
  if (rank == 0) {
    splice_rank_outputs(gathered, ctx.result.tsv, ctx.result.calls);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// run_distributed: the recovery driver.
//
// Fault-free runs execute the world exactly once, with no timeouts and no
// checkpoints — bit-identical to the substrate without this layer.  With a
// FaultPlan, the driver loops: each attempt runs the world with a recv
// timeout and periodic checkpoints; if the attempt aborts on a CommError
// (injected crash, dropped message, peer death), the next attempt restores
// from the checkpoints — restarting the failed rank, or, under
// kReclaimReads, redistributing its unprocessed reads over the survivors.
// Non-communication exceptions (real bugs) propagate immediately.

DistResult run_distributed(const Genome& genome,
                           const std::vector<Read>& reads,
                           const PipelineConfig& config,
                           const DistOptions& options,
                           const HashIndex* shared_index) {
  require(options.ranks >= 1, "run_distributed: ranks must be >= 1");
  require(options.batch_size >= 1, "run_distributed: batch_size must be >= 1");
  require(options.max_attempts >= 1,
          "run_distributed: max_attempts must be >= 1");

  obs::set_trace_metadata("ranks", std::to_string(options.ranks));
  obs::set_trace_metadata("dist_mode",
                          options.mode == DistMode::kReadPartition
                              ? "read_partition"
                              : "genome_partition");
  obs::set_trace_metadata(
      "simd_level",
      phmm::simd_level_name(phmm::resolve_simd_level(config.simd)));

  const bool fault_mode = !options.faults.empty();
  FaultState fault_state(options.faults);
  WorldOptions world_options;
  world_options.faults = fault_mode ? &fault_state : nullptr;
  world_options.recv_timeout_seconds =
      options.recv_timeout_seconds > 0.0
          ? options.recv_timeout_seconds
          : (fault_mode ? 5.0 : 0.0);

  std::uint64_t checkpoint_interval = options.checkpoint_interval;
  if (fault_mode && checkpoint_interval == 0) {
    if (options.mode == DistMode::kReadPartition) {
      // ~4 checkpoints per shard.
      checkpoint_interval = std::max<std::uint64_t>(
          1, reads.size() / static_cast<std::size_t>(options.ranks) / 4);
    } else {
      checkpoint_interval = 1;  // every broadcast batch
    }
  }

  const bool reclaim = options.recovery == RecoveryPolicy::kReclaimReads &&
                       options.mode == DistMode::kReadPartition;
  const int max_attempts = fault_mode ? options.max_attempts : 1;

  CheckpointStore store(options.ranks);
  std::set<int> lost;
  std::vector<int> failed_ranks;
  std::vector<std::vector<RankCost>> attempt_costs;
  Timer wall;

  for (int attempt = 0;; ++attempt) {
    DistResult result;
    result.costs.resize(static_cast<std::size_t>(options.ranks));
    std::mutex result_mutex;

    // Reclaimed shard ranges for this attempt: each lost rank's reads past
    // its last checkpoint, split contiguously over the survivors.
    ExtraRanges extra(static_cast<std::size_t>(options.ranks));
    if (reclaim && !lost.empty()) {
      std::vector<int> survivors;
      for (int r = 0; r < options.ranks; ++r) {
        if (lost.count(r) == 0) survivors.push_back(r);
      }
      require(!survivors.empty(),
              "run_distributed: every rank failed; nothing left to reclaim");
      for (const int f : lost) {
        const auto [f_begin, f_end] = shard_of(reads.size(), f, options.ranks);
        const std::size_t todo_begin = f_begin + store.latest_progress(f);
        const std::size_t n = f_end > todo_begin ? f_end - todo_begin : 0;
        const std::size_t m = survivors.size();
        for (std::size_t k = 0; k < m; ++k) {
          const std::size_t piece_begin = todo_begin + n * k / m;
          const std::size_t piece_end = todo_begin + n * (k + 1) / m;
          if (piece_begin < piece_end) {
            extra[static_cast<std::size_t>(survivors[k])].emplace_back(
                piece_begin, piece_end);
          }
        }
      }
    }

    AttemptContext ctx{genome,
                       reads,
                       config,
                       options,
                       shared_index,
                       store,
                       fault_mode,
                       checkpoint_interval,
                       lost,
                       extra,
                       /*resume_reads=*/
                       (fault_mode && options.mode == DistMode::kGenomePartition)
                           ? store.common_progress()
                           : 0,
                       result,
                       result_mutex};

    obs::TraceSpan attempt_span("attempt", "dist", "attempt",
                                static_cast<double>(attempt));
    const WorldRun run = run_world_collect(
        options.ranks, world_options, [&](Communicator& comm) {
          if (options.mode == DistMode::kReadPartition) {
            run_read_partition_rank(comm, ctx);
          } else {
            run_genome_partition_rank(comm, ctx);
          }
        });

    std::vector<RankCost> costs(static_cast<std::size_t>(options.ranks));
    for (int r = 0; r < options.ranks; ++r) {
      costs[static_cast<std::size_t>(r)].compute_seconds =
          run.compute_seconds[static_cast<std::size_t>(r)];
      costs[static_cast<std::size_t>(r)].comm =
          run.stats[static_cast<std::size_t>(r)];
    }
    attempt_costs.push_back(std::move(costs));

    if (!run.error) {
      result.costs = attempt_costs.back();
      result.recovery.attempts = attempt + 1;
      result.recovery.failed_ranks = failed_ranks;
      const RecoveryCost rc = recovery_cost(attempt_costs, CostModelParams{});
      result.recovery.resent_messages = rc.resent_messages;
      result.recovery.resent_bytes = rc.resent_bytes;
      result.recovery.redone_compute_seconds = rc.redone_compute_seconds;
      result.attempt_costs = std::move(attempt_costs);
      result.wall_seconds = wall.seconds();
      publish_dist_result(result);
      return result;
    }

    obs::record_instant("attempt_failed", "dist", "failed_rank",
                        static_cast<double>(run.failed_rank));
    failed_ranks.push_back(run.failed_rank);
    try {
      std::rethrow_exception(run.error);
    } catch (const CommError&) {
      // Retryable: injected crash, dropped-message timeout, or the
      // cascade of RankFailedErrors a dying peer causes.
      if (attempt + 1 >= max_attempts) throw;
    }
    // Anything that is not a CommError escaped the catch above and has
    // already propagated: real bugs are not retried.
    if (reclaim && run.failed_rank >= 0) lost.insert(run.failed_rank);
  }
}

DistResult run_distributed(const Genome& genome, ReadStream& reads,
                           const PipelineConfig& config,
                           const DistOptions& options,
                           const HashIndex* shared_index) {
  require(options.ranks >= 1, "run_distributed: ranks must be >= 1");
  require(options.batch_size >= 1, "run_distributed: batch_size must be >= 1");
  require(options.max_attempts >= 1,
          "run_distributed: max_attempts must be >= 1");
  require(reads.cursor() == 0,
          "run_distributed: stream must be positioned at its start");

  obs::set_trace_metadata("ranks", std::to_string(options.ranks));
  obs::set_trace_metadata("dist_mode",
                          options.mode == DistMode::kReadPartition
                              ? "read_partition"
                              : "genome_partition");
  obs::set_trace_metadata(
      "simd_level",
      phmm::simd_level_name(phmm::resolve_simd_level(config.simd)));

  const bool fault_mode = !options.faults.empty();

  std::uint32_t max_read_len = options.max_read_len;
  if (options.mode == DistMode::kGenomePartition && max_read_len == 0) {
    // The overlap margin needs the longest read before any segment exists;
    // without the hint, burn one pass over the stream to measure it.
    ReadBatch prescan;
    while (reads.next(prescan)) {
      for (const auto& read : prescan.reads) {
        max_read_len =
            std::max(max_read_len, static_cast<std::uint32_t>(read.length()));
      }
    }
    require(reads.reset(),
            "run_distributed: genome-partition margin prescan needs a "
            "resettable stream (or set DistOptions::max_read_len)");
  }
  if (fault_mode) {
    require(reads.reset(),
            "run_distributed: fault tolerance needs a resettable stream "
            "(recovery rewinds and replays it)");
  }

  FaultState fault_state(options.faults);
  WorldOptions world_options;
  world_options.faults = fault_mode ? &fault_state : nullptr;
  world_options.recv_timeout_seconds =
      options.recv_timeout_seconds > 0.0
          ? options.recv_timeout_seconds
          : (fault_mode ? 5.0 : 0.0);

  std::uint64_t checkpoint_interval = options.checkpoint_interval;
  if (fault_mode && checkpoint_interval == 0) {
    if (options.mode == DistMode::kReadPartition) {
      const auto hint = reads.size_hint();
      checkpoint_interval =
          hint.has_value()
              ? std::max<std::uint64_t>(
                    1, *hint / static_cast<std::uint64_t>(options.ranks) / 4)
              : 1024;
    } else {
      checkpoint_interval = 1;  // every broadcast batch
    }
  }

  const int max_attempts = fault_mode ? options.max_attempts : 1;

  CheckpointStore store(options.ranks);
  std::vector<int> failed_ranks;
  std::vector<std::vector<RankCost>> attempt_costs;
  Timer wall;

  for (int attempt = 0;; ++attempt) {
    DistResult result;
    result.costs.resize(static_cast<std::size_t>(options.ranks));
    std::mutex result_mutex;

    // Genome-partition recovery rewinds every rank to the last broadcast
    // boundary they all snapshotted and fast-forwards the stream to it;
    // read-partition recovery drops each rank's restored prefix at the
    // pump instead (per-rank progress differs there).
    std::uint64_t resume_reads = 0;
    if (fault_mode && options.mode == DistMode::kGenomePartition) {
      resume_reads = store.common_progress();
    }
    if (attempt > 0) {
      require(reads.reset(),
              "run_distributed: stream reset failed during recovery");
      if (resume_reads > 0) {
        require(reads.skip(resume_reads) == resume_reads,
                "run_distributed: stream ended before the recovery resume "
                "point");
      }
    }

    StreamAttemptContext ctx{genome,
                             reads,
                             config,
                             options,
                             shared_index,
                             store,
                             fault_mode,
                             checkpoint_interval,
                             resume_reads,
                             max_read_len,
                             result,
                             result_mutex};

    obs::TraceSpan attempt_span("attempt", "dist", "attempt",
                                static_cast<double>(attempt));
    const WorldRun run = run_world_collect(
        options.ranks, world_options, [&](Communicator& comm) {
          if (options.mode == DistMode::kReadPartition) {
            run_read_partition_rank_stream(comm, ctx);
          } else {
            run_genome_partition_rank_stream(comm, ctx);
          }
        });

    std::vector<RankCost> costs(static_cast<std::size_t>(options.ranks));
    for (int r = 0; r < options.ranks; ++r) {
      costs[static_cast<std::size_t>(r)].compute_seconds =
          run.compute_seconds[static_cast<std::size_t>(r)];
      costs[static_cast<std::size_t>(r)].comm =
          run.stats[static_cast<std::size_t>(r)];
    }
    attempt_costs.push_back(std::move(costs));

    if (!run.error) {
      result.costs = attempt_costs.back();
      result.recovery.attempts = attempt + 1;
      result.recovery.failed_ranks = failed_ranks;
      const RecoveryCost rc = recovery_cost(attempt_costs, CostModelParams{});
      result.recovery.resent_messages = rc.resent_messages;
      result.recovery.resent_bytes = rc.resent_bytes;
      result.recovery.redone_compute_seconds = rc.redone_compute_seconds;
      result.attempt_costs = std::move(attempt_costs);
      result.wall_seconds = wall.seconds();
      publish_dist_result(result);
      return result;
    }

    obs::record_instant("attempt_failed", "dist", "failed_rank",
                        static_cast<double>(run.failed_rank));
    failed_ranks.push_back(run.failed_rank);
    try {
      std::rethrow_exception(run.error);
    } catch (const CommError&) {
      // kReclaimReads has no streaming equivalent (a shard cannot be
      // redistributed after delivery), so every retryable failure takes
      // the kRestartRank path here.
      if (attempt + 1 >= max_attempts) throw;
    }
  }
}

}  // namespace gnumap

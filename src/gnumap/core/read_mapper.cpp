#include "gnumap/core/read_mapper.hpp"

#include <algorithm>
#include <cmath>

#include "gnumap/phmm/marginal.hpp"

namespace gnumap {

ReadMapper::ReadMapper(const Genome& genome, const HashIndex& index,
                       const PipelineConfig& config)
    : genome_(genome),
      index_(index),
      config_(config),
      seeder_(index, config.seeder),
      hmm_(config.phmm, BoundaryMode::kSemiGlobal) {}

std::vector<ScoredSite> ReadMapper::score_read(const Read& read,
                                               MapperWorkspace& ws,
                                               MapStats& stats,
                                               GenomePos diagonal_begin,
                                               GenomePos diagonal_end) const {
  ++stats.reads_total;
  std::vector<ScoredSite> sites;
  if (read.length() < static_cast<std::size_t>(index_.k())) return sites;

  const bool restrict_diagonals = diagonal_end > diagonal_begin;
  const auto candidates = seeder_.candidates(read);
  if (candidates.empty()) return sites;

  // PWMs for both orientations, built lazily.
  const Pwm fwd = Pwm::from_read(read);
  Pwm rev;
  bool have_rev = false;

  const auto pad = static_cast<GenomePos>(config_.window_pad);
  const auto read_len = static_cast<GenomePos>(read.length());

  for (const Candidate& candidate : candidates) {
    if (restrict_diagonals && (candidate.diagonal < diagonal_begin ||
                               candidate.diagonal >= diagonal_end)) {
      continue;
    }
    const GenomePos win_begin =
        candidate.diagonal >= pad ? candidate.diagonal - pad : 0;
    const GenomePos win_end = candidate.diagonal + read_len + pad;
    const auto window = genome_.window(win_begin, win_end);
    if (window.size() < read.length() / 2) continue;

    ++stats.candidates_evaluated;
    const Pwm* pwm = &fwd;
    if (candidate.reverse) {
      if (!have_rev) {
        rev = Pwm::from_read_reverse(read);
        have_rev = true;
      }
      pwm = &rev;
    }
    if (!hmm_.align(*pwm, window, ws.mats)) continue;
    stats.dp_cells += (read.length() + 1) * (window.size() + 1);

    ScoredSite site;
    site.window_begin = win_begin;
    site.log_likelihood = ws.mats.log_likelihood;
    site.reverse = candidate.reverse;
    site.contributions = condense_marginals(hmm_, *pwm, ws.mats,
                                            config_.marginal);
    sites.push_back(std::move(site));
  }
  if (sites.empty()) return sites;

  // Mapped-at-all test: best per-base log-likelihood above the cutoff.
  double best_ll = sites.front().log_likelihood;
  for (const auto& site : sites) best_ll = std::max(best_ll, site.log_likelihood);
  if (best_ll < config_.min_loglik_per_base *
                    static_cast<double>(read.length())) {
    sites.clear();
    return sites;
  }

  // Posterior mapping weights: softmax of the site log-likelihoods.
  double norm = 0.0;
  for (const auto& site : sites) {
    norm += std::exp(site.log_likelihood - best_ll);
  }
  for (auto& site : sites) {
    site.weight = std::exp(site.log_likelihood - best_ll) / norm;
  }
  // Prune negligible sites, then renormalize the survivors.
  std::erase_if(sites, [&](const ScoredSite& site) {
    return site.weight < config_.min_site_posterior;
  });
  double kept = 0.0;
  for (const auto& site : sites) kept += site.weight;
  if (kept > 0.0) {
    for (auto& site : sites) site.weight /= kept;
  }
  if (!sites.empty()) ++stats.reads_mapped;
  stats.sites_accumulated += sites.size();
  return sites;
}

void ReadMapper::accumulate_site(const ScoredSite& site, Accumulator& accum) {
  const auto weight = static_cast<float>(site.weight);
  const auto& tracks = site.contributions.tracks;
  for (std::size_t j = 0; j < tracks.size(); ++j) {
    TrackVector delta;
    bool any = false;
    for (int k = 0; k < kNumTracks; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      delta[ks] = tracks[j][ks] * weight;
      any |= delta[ks] > 0.0f;
    }
    if (any) accum.add(site.window_begin + j, delta);
  }
}

void ReadMapper::accumulate(const std::vector<ScoredSite>& sites,
                            Accumulator& accum) {
  for (const auto& site : sites) accumulate_site(site, accum);
}

bool ReadMapper::map_read(const Read& read, Accumulator& accum,
                          MapperWorkspace& ws, MapStats& stats) const {
  const auto sites = score_read(read, ws, stats);
  if (sites.empty()) return false;
  accumulate(sites, accum);
  return true;
}

}  // namespace gnumap

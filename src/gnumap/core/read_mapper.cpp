#include "gnumap/core/read_mapper.hpp"

#include <algorithm>
#include <cmath>

#include "gnumap/obs/metrics.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/phmm/marginal.hpp"

namespace gnumap {

ReadMapper::ReadMapper(const Genome& genome, const HashIndex& index,
                       const PipelineConfig& config)
    : genome_(genome),
      index_(index),
      config_(config),
      seeder_(index, config.seeder),
      hmm_(config.phmm, BoundaryMode::kSemiGlobal),
      simd_level_(phmm::resolve_simd_level(config.simd)),
      precision_(phmm::resolve_precision(config.phmm_precision)) {}

std::vector<ReadMapper::CandidateWindow> ReadMapper::gather_candidates(
    const Read& read, ReadPwms& pwms, MapStats& stats,
    GenomePos diagonal_begin, GenomePos diagonal_end,
    bool keep_filtered) const {
  ++stats.reads_total;
  std::vector<CandidateWindow> out;
  if (read.length() < static_cast<std::size_t>(index_.k())) return out;

  const bool restrict_diagonals = diagonal_end > diagonal_begin;
  const auto candidates = seeder_.candidates(read);
  if (candidates.empty()) return out;

  const auto pad = static_cast<GenomePos>(config_.window_pad);
  const auto read_len = static_cast<GenomePos>(read.length());

  for (const Candidate& candidate : candidates) {
    if (restrict_diagonals && (candidate.diagonal < diagonal_begin ||
                               candidate.diagonal >= diagonal_end)) {
      continue;
    }
    CandidateWindow cw;
    cw.reverse = candidate.reverse;
    cw.diagonal = candidate.diagonal;
    cw.votes = candidate.votes;
    const GenomePos win_begin =
        candidate.diagonal >= pad ? candidate.diagonal - pad : 0;
    const GenomePos win_end = candidate.diagonal + read_len + pad;
    const auto window = genome_.window(win_begin, win_end);
    if (window.size() < read.length() / 2) {
      if (keep_filtered) {
        cw.skip = true;
        out.push_back(std::move(cw));
      }
      continue;
    }

    ++stats.candidates_evaluated;
    const Pwm* pwm;
    if (candidate.reverse) {
      if (!pwms.have_rev) {
        pwms.rev = Pwm::from_read_reverse(read);
        pwms.have_rev = true;
      }
      pwm = &pwms.rev;
    } else {
      if (!pwms.have_fwd) {
        pwms.fwd = Pwm::from_read(read);
        pwms.have_fwd = true;
      }
      pwm = &pwms.fwd;
    }
    cw.window_begin = win_begin;
    cw.window = window;
    cw.pwm = pwm;
    out.push_back(std::move(cw));
  }
  return out;
}

void finalize_scored_sites(const PipelineConfig& config, const Read& read,
                           std::vector<ScoredSite>& sites, MapStats& stats) {
  if (sites.empty()) return;

  // Mapped-at-all test: best per-base log-likelihood above the cutoff.
  double best_ll = sites.front().log_likelihood;
  for (const auto& site : sites) best_ll = std::max(best_ll, site.log_likelihood);
  if (best_ll < config.min_loglik_per_base *
                    static_cast<double>(read.length())) {
    sites.clear();
    return;
  }

  // Posterior mapping weights: softmax of the site log-likelihoods.
  double norm = 0.0;
  for (const auto& site : sites) {
    norm += std::exp(site.log_likelihood - best_ll);
  }
  for (auto& site : sites) {
    site.weight = std::exp(site.log_likelihood - best_ll) / norm;
  }
  // Prune negligible sites, then renormalize the survivors.
  std::erase_if(sites, [&](const ScoredSite& site) {
    return site.weight < config.min_site_posterior;
  });
  double kept = 0.0;
  for (const auto& site : sites) kept += site.weight;
  if (kept > 0.0) {
    for (auto& site : sites) site.weight /= kept;
  }
  if (!sites.empty()) ++stats.reads_mapped;
  stats.sites_accumulated += sites.size();
}

void ReadMapper::finalize_sites(const Read& read,
                                std::vector<ScoredSite>& sites,
                                MapStats& stats) const {
  finalize_scored_sites(config_, read, sites, stats);
}

std::vector<ScoredSite> ReadMapper::score_read(const Read& read,
                                               MapperWorkspace& ws,
                                               MapStats& stats,
                                               GenomePos diagonal_begin,
                                               GenomePos diagonal_end) const {
  ReadPwms pwms;
  const auto candidates =
      gather_candidates(read, pwms, stats, diagonal_begin, diagonal_end);

  std::vector<ScoredSite> sites;
  for (const CandidateWindow& cw : candidates) {
    if (!hmm_.align(*cw.pwm, cw.window, ws.mats)) continue;
    stats.dp_cells += (read.length() + 1) * (cw.window.size() + 1);

    ScoredSite site;
    site.window_begin = cw.window_begin;
    site.log_likelihood = ws.mats.log_likelihood;
    site.reverse = cw.reverse;
    site.contributions = condense_marginals(hmm_, *cw.pwm, ws.mats,
                                            config_.marginal);
    sites.push_back(std::move(site));
  }
  finalize_sites(read, sites, stats);
  return sites;
}

std::vector<std::vector<ScoredSite>> ReadMapper::score_reads(
    std::span<const Read> reads, MapperWorkspace& ws, MapStats& stats,
    GenomePos diagonal_begin, GenomePos diagonal_end) const {
  std::vector<std::vector<ScoredSite>> scored(reads.size());
  if (reads.empty()) return scored;

  // Phase 1: seed every read and queue all candidate alignments.  PWM and
  // candidate storage is pre-sized so the pointers the batch borrows stay
  // put until run() returns.
  ws.batch.configure(config_.phmm, BoundaryMode::kSemiGlobal,
                     phmm::EngineOptions{.simd = simd_level_,
                                         .precision = precision_,
                                         .bin_slack = config_.phmm_bin_slack});
  std::vector<ReadPwms> pwms(reads.size());
  std::vector<std::vector<CandidateWindow>> candidates(reads.size());
  struct Pending {
    std::size_t read;
    std::size_t cand;
  };
  std::vector<Pending> pending;
  for (std::size_t r = 0; r < reads.size(); ++r) {
    candidates[r] = gather_candidates(reads[r], pwms[r], stats,
                                      diagonal_begin, diagonal_end);
    for (std::size_t c = 0; c < candidates[r].size(); ++c) {
      ws.batch.add(*candidates[r][c].pwm, candidates[r][c].window);
      pending.push_back(Pending{r, c});
    }
  }

  // Phase 2: one vectorized forward/backward sweep over the whole chunk,
  // draining each SIMD pack through posterior extraction while its matrices
  // are still cache-hot (the engine recycles a width-sized matrix pool).
  // Tasks drain in shape-grouped pack order, so results land in positional
  // slots keyed by task id.
  std::vector<ScoredSite> task_sites(pending.size());
  std::vector<unsigned char> task_scored(pending.size(), 0);
  const double batch_start_us = obs::trace_now_us();
  ws.batch.run([&](std::size_t task) {
    if (!ws.batch.outcome(task).ok) return;
    const Read& read = reads[pending[task].read];
    const CandidateWindow& cw =
        candidates[pending[task].read][pending[task].cand];
    stats.dp_cells += (read.length() + 1) * (cw.window.size() + 1);

    ScoredSite& site = task_sites[task];
    site.window_begin = cw.window_begin;
    site.log_likelihood = ws.batch.outcome(task).log_likelihood;
    site.reverse = cw.reverse;
    site.contributions = condense_marginals(hmm_, *cw.pwm,
                                            ws.batch.matrices(task),
                                            config_.marginal);
    task_scored[task] = 1;
  });
  obs::record_complete("phmm_batch", "phmm", batch_start_us,
                       obs::trace_now_us() - batch_start_us, "tasks",
                       static_cast<double>(pending.size()), "reads",
                       static_cast<double>(reads.size()));
  stats.phmm_forward_seconds += ws.batch.timings().forward_seconds;
  stats.phmm_backward_seconds += ws.batch.timings().backward_seconds;
  // Per-batch kernel latency; resolved once so per-chunk updates are a pair
  // of relaxed atomics.
  static obs::Histogram& batch_histogram = obs::registry().histogram(
      "gnumap_phmm_batch_seconds", obs::default_time_buckets(),
      "Forward+backward kernel time per SIMD batch sweep");
  batch_histogram.observe(ws.batch.timings().forward_seconds +
                          ws.batch.timings().backward_seconds);

  // Phase 3: tasks were added read-major, so walking the slots in id order
  // rebuilds each read's site list in exactly the order the scalar path
  // produces — the accumulation downstream is order-sensitive in float.
  for (std::size_t task = 0; task < pending.size(); ++task) {
    if (task_scored[task] == 0) continue;
    scored[pending[task].read].push_back(std::move(task_sites[task]));
  }

  // FP32 guard: before the decisions in finalize_sites are taken on
  // single-precision scores, re-score any read whose decisions sit within
  // the configured margin of a threshold with the scalar double oracle —
  // its candidate windows are still staged, so this reuses the exact
  // enumeration the batch saw.  Off-margin decisions are unaffected by fp32
  // rounding by construction, so the calls the pipeline emits match the
  // fp64 path read for read (docs/KERNELS.md §8).
  if (precision_ == phmm::Precision::kSingle) {
    static obs::Counter& recomputed = obs::registry().counter(
        "gnumap_phmm_fp32_recomputed_total",
        "Reads re-scored with the scalar double oracle because an fp32 "
        "mapping decision was within the recompute margin");
    for (std::size_t r = 0; r < reads.size(); ++r) {
      if (!fp32_borderline(reads[r], scored[r])) continue;
      ++stats.fp32_recomputed_reads;
      recomputed.inc();
      scored[r].clear();
      for (const CandidateWindow& cw : candidates[r]) {
        if (!hmm_.align(*cw.pwm, cw.window, ws.mats)) continue;
        ScoredSite site;
        site.window_begin = cw.window_begin;
        site.log_likelihood = ws.mats.log_likelihood;
        site.reverse = cw.reverse;
        site.contributions =
            condense_marginals(hmm_, *cw.pwm, ws.mats, config_.marginal);
        scored[r].push_back(std::move(site));
      }
    }
  }

  for (std::size_t r = 0; r < reads.size(); ++r) {
    finalize_sites(reads[r], scored[r], stats);
  }
  return scored;
}

std::vector<std::vector<RawCandidate>> ReadMapper::score_reads_raw(
    std::span<const Read> reads, MapperWorkspace& ws, MapStats& stats,
    GenomePos diagonal_begin, GenomePos diagonal_end) const {
  std::vector<std::vector<RawCandidate>> out(reads.size());
  for (std::size_t r = 0; r < reads.size(); ++r) {
    ReadPwms pwms;
    const auto candidates =
        gather_candidates(reads[r], pwms, stats, diagonal_begin, diagonal_end,
                          /*keep_filtered=*/true);
    out[r].reserve(candidates.size());
    for (const CandidateWindow& cw : candidates) {
      RawCandidate raw;
      raw.diagonal = cw.diagonal;
      raw.votes = cw.votes;
      raw.reverse = cw.reverse;
      raw.filtered = cw.skip;
      if (!cw.skip) {
        raw.ok = hmm_.align(*cw.pwm, cw.window, ws.mats);
        if (raw.ok) {
          stats.dp_cells += (reads[r].length() + 1) * (cw.window.size() + 1);
          raw.site.window_begin = cw.window_begin;
          raw.site.log_likelihood = ws.mats.log_likelihood;
          raw.site.reverse = cw.reverse;
          raw.site.contributions =
              condense_marginals(hmm_, *cw.pwm, ws.mats, config_.marginal);
        }
      }
      out[r].push_back(std::move(raw));
    }
  }
  return out;
}

bool ReadMapper::fp32_borderline(const Read& read,
                                 const std::vector<ScoredSite>& sites) const {
  // No surviving alignment: ok-ness is a structural zero (no path has
  // nonzero probability), not a rounding artifact — never borderline.
  if (sites.empty()) return false;
  const double margin = config_.phmm_fp32_margin;
  double best = sites.front().log_likelihood;
  for (const auto& site : sites) best = std::max(best, site.log_likelihood);
  // Decision 1: the mapped-at-all cutoff in finalize_sites.
  const double cutoff =
      config_.min_loglik_per_base * static_cast<double>(read.length());
  if (std::abs(best - cutoff) <= margin) return true;
  if (best < cutoff) return false;  // comfortably unmapped
  // Decision 2: the per-site posterior prune.  The pre-prune weight is
  // exp(ll - best) / norm; compare in log space so the margin is in the
  // same log-likelihood units as the scores.
  double norm = 0.0;
  for (const auto& site : sites) norm += std::exp(site.log_likelihood - best);
  const double log_norm = std::log(norm);
  const double log_min = std::log(config_.min_site_posterior);
  for (const auto& site : sites) {
    const double log_w = (site.log_likelihood - best) - log_norm;
    if (std::abs(log_w - log_min) <= margin) return true;
  }
  return false;
}

namespace {

/// The one traversal of a site's weight-scaled contributions, shared by the
/// direct accumulate path and the worker-side flattening so the two can
/// never drift: `emit(pos, delta)` fires in exactly serial add() order.
template <typename Emit>
void for_each_contribution(const ScoredSite& site, Emit&& emit) {
  const auto weight = static_cast<float>(site.weight);
  const auto& tracks = site.contributions.tracks;
  for (std::size_t j = 0; j < tracks.size(); ++j) {
    TrackVector delta;
    bool any = false;
    for (int k = 0; k < kNumTracks; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      delta[ks] = tracks[j][ks] * weight;
      any |= delta[ks] > 0.0f;
    }
    if (any) emit(site.window_begin + j, delta);
  }
}

}  // namespace

void ReadMapper::accumulate_site(const ScoredSite& site, Accumulator& accum) {
  for_each_contribution(site, [&](GenomePos pos, const TrackVector& delta) {
    accum.add(pos, delta);
  });
}

void ReadMapper::accumulate(const std::vector<ScoredSite>& sites,
                            Accumulator& accum) {
  for (const auto& site : sites) accumulate_site(site, accum);
}

void ReadMapper::flatten_contributions(const std::vector<ScoredSite>& sites,
                                       std::vector<io::AccumDelta>& out) {
  for (const auto& site : sites) {
    for_each_contribution(site, [&](GenomePos pos, const TrackVector& delta) {
      out.push_back(io::AccumDelta{pos, delta});
    });
  }
}

bool ReadMapper::map_read(const Read& read, Accumulator& accum,
                          MapperWorkspace& ws, MapStats& stats) const {
  const auto sites = score_read(read, ws, stats);
  if (sites.empty()) return false;
  accumulate(sites, accum);
  return true;
}

std::size_t ReadMapper::map_reads(std::span<const Read> reads,
                                  Accumulator& accum, MapperWorkspace& ws,
                                  MapStats& stats) const {
  const auto scored = score_reads(reads, ws, stats);
  std::size_t mapped = 0;
  for (const auto& sites : scored) {
    if (sites.empty()) continue;
    accumulate(sites, accum);
    ++mapped;
  }
  return mapped;
}

}  // namespace gnumap

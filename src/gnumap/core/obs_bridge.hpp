// Bridges the pipeline's value-type statistics (MapStats, CommStats, the
// run-result structs) into the obs metrics registry.
//
// MapStats/CommStats stay plain value types — workers accumulate them
// thread-locally, `+=` merges shards, and checkpoints serialize them — so the
// registry cannot be their storage.  Instead the drivers publish a finished
// run's aggregates here as gauges (set() snapshot semantics: a later run
// overwrites, exports always describe the most recent run).  Existing code
// that reads the structs directly is unaffected; --metrics-out readers get
// the same numbers under stable gnumap_* names.
#pragma once

#include "gnumap/core/config.hpp"
#include "gnumap/mpsim/communicator.hpp"

namespace gnumap {

struct PipelineResult;
struct DistResult;

/// Publishes mapping aggregates (reads, candidates, dp cells, kernel time)
/// as gnumap_map_* / gnumap_phmm_* gauges.
void publish_map_stats(const MapStats& stats);

/// Publishes one rank's communication counters as per-rank labelled gauges
/// (gnumap_rank_bytes_sent_total{rank="3"} …).
void publish_comm_stats(int rank, const CommStats& stats);

/// publish_map_stats plus the pipeline phase timings and memory footprints.
void publish_pipeline_result(const PipelineResult& result);

/// Aggregated stats, every rank's CommStats-derived cost counters, and the
/// recovery summary of a distributed run.
void publish_dist_result(const DistResult& result);

}  // namespace gnumap

// Scoring called SNPs against the planted truth (Table I / Table III
// metrics: TP, FP, FN, precision).
#pragma once

#include <cstdint>
#include <vector>

#include "gnumap/io/snp_catalog.hpp"
#include "gnumap/io/snp_writer.hpp"

namespace gnumap {

struct EvalResult {
  std::uint64_t tp = 0;  ///< calls matching a truth site (position + allele)
  std::uint64_t fp = 0;  ///< calls with no matching truth site
  std::uint64_t fn = 0;  ///< truth sites never called

  double precision() const {
    return tp + fp == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fp);
  }
  double recall() const {
    return tp + fn == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fn);
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// A call is a true positive when a truth entry exists at the same contig
/// and position and the called allele set contains the truth alt allele.
/// When `require_allele_match` is false, position agreement suffices.
EvalResult evaluate_calls(const std::vector<SnpCall>& calls,
                          const SnpCatalog& truth,
                          bool require_allele_match = true);

}  // namespace gnumap

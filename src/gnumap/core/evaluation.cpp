#include "gnumap/core/evaluation.hpp"

#include <map>
#include <string>
#include <utility>

namespace gnumap {

EvalResult evaluate_calls(const std::vector<SnpCall>& calls,
                          const SnpCatalog& truth,
                          bool require_allele_match) {
  std::map<std::pair<std::string, std::uint64_t>, const CatalogEntry*> index;
  for (const auto& entry : truth) {
    index[{entry.contig, entry.position}] = &entry;
  }

  EvalResult result;
  std::map<std::pair<std::string, std::uint64_t>, bool> hit;
  for (const auto& call : calls) {
    const auto it = index.find({call.contig, call.position});
    const bool position_match = it != index.end();
    const bool allele_match =
        position_match && (call.allele1 == it->second->alt ||
                           call.allele2 == it->second->alt);
    if (position_match && (allele_match || !require_allele_match)) {
      // Count each truth site at most once even if called repeatedly.
      if (!hit[{call.contig, call.position}]) {
        ++result.tp;
        hit[{call.contig, call.position}] = true;
      }
    } else {
      ++result.fp;
    }
  }
  result.fn = truth.size() - result.tp;
  return result;
}

}  // namespace gnumap

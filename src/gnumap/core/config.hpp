// Pipeline configuration: one struct that threads every knob through the
// three-step GNUMAP-SNP approach (hash/seed -> PHMM marginal alignment ->
// LRT SNP calling).
#pragma once

#include <cstdint>

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/index/hash_index.hpp"
#include "gnumap/index/seeder.hpp"
#include "gnumap/phmm/batched.hpp"
#include "gnumap/phmm/marginal.hpp"
#include "gnumap/phmm/params.hpp"
#include "gnumap/stats/lrt.hpp"

namespace gnumap {

struct PipelineConfig {
  // Step 1: genomic hash table + seeding.
  HashIndexOptions index;
  SeederOptions seeder;

  // Step 2: PHMM marginal alignment.
  PhmmParams phmm;
  MarginalOptions marginal;
  /// SIMD dispatch level for the batched PHMM kernel.  kAuto defers to the
  /// GNUMAP_SIMD environment variable, then to the best level the host
  /// supports; every level produces bit-identical results (see
  /// docs/KERNELS.md), so this is purely a speed knob.
  phmm::SimdLevel simd = phmm::SimdLevel::kAuto;
  /// Lane precision for the batched PHMM kernel.  kAuto defers to the
  /// GNUMAP_PHMM_FP32 environment variable and otherwise stays fp64 (the
  /// bit-identical default).  kSingle doubles the lane count; reads whose
  /// mapping decisions land within phmm_fp32_margin of a threshold are
  /// recomputed with the scalar double oracle so call decisions match the
  /// fp64 pipeline (docs/KERNELS.md §8).
  phmm::Precision phmm_precision = phmm::Precision::kAuto;
  /// Length-binning slack for the batched PHMM scheduler: the DP-shape
  /// spread allowed within one SIMD pack (0 = identical shapes only, the
  /// pre-binning packing).  Purely a speed knob — results are bit-identical
  /// at any value (docs/KERNELS.md §7).
  std::size_t phmm_bin_slack = phmm::kDefaultBinSlack;
  /// FP32 only: the recompute margin, in log-likelihood units.  A read is
  /// re-scored with the scalar double oracle when its best score lands
  /// within this margin of the mapped-at-all cutoff, or any site posterior
  /// lands within it (in log units) of min_site_posterior.
  double phmm_fp32_margin = 0.5;
  /// Extra genome bases on each side of a candidate window (absorbs indels
  /// and diagonal binning slack).
  int window_pad = 12;
  /// A read is considered mapped when its best candidate's log-likelihood
  /// per read base exceeds this (a perfectly matching read scores ~ -1.5;
  /// a random placement ~ -2.8 under default parameters).
  double min_loglik_per_base = -2.0;
  /// Candidate sites whose mapping posterior falls below this are dropped
  /// from the marginal accumulation.
  double min_site_posterior = 1e-3;

  // Genome accumulation (Section VI-B).
  AccumKind accum_kind = AccumKind::kNorm;
  /// CENTDISC only: paper-style approximate conversion vs exact
  /// nearest-centroid (our extension).
  CentDiscQuantize centdisc_quantize = CentDiscQuantize::kApproximate;

  // Step 3: LRT SNP calling.
  Ploidy ploidy = Ploidy::kMonoploid;
  /// SNP-wise false-positive rate; the decision threshold is the
  /// (1 - alpha/5) quantile of chi^2_1.
  double alpha = 1e-4;
  /// If true, Benjamini-Hochberg at level fdr_q replaces the fixed cutoff.
  bool use_fdr = false;
  double fdr_q = 0.05;
  /// Minimum accumulated mass n at a position before the LRT is attempted.
  double min_coverage = 3.0;

  /// Worker threads for shared-memory mapping (1 = serial).
  int threads = 1;

  // Streaming read pipeline (see DESIGN.md §9).
  /// Reads per ReadBatch when the pipeline batches a stream or wraps a
  /// vector in one.  Results are independent of this value (the batched
  /// PHMM engine is bit-identical at any chunking); it trades queue memory
  /// against scheduling overhead.
  std::uint32_t stream_batch = 256;
  /// Decoded batches the decode->map queue may hold; with the reorder
  /// window this bounds peak in-flight read memory at about
  /// 2 * (queue_depth + threads) * stream_batch reads, independent of
  /// dataset size.
  std::uint32_t queue_depth = 4;
  /// Inputs smaller than this run on the serial in-line path even when
  /// threads > 1 (spinning up the staged pipeline costs more than mapping a
  /// handful of reads).  Tests set this to 0 to force the parallel path on
  /// tiny deterministic inputs.
  std::uint32_t min_parallel_reads = 64;
  /// Rendered-but-not-yet-spliced output bytes the drain's reorder window
  /// may buffer (the --output-buffer-bytes knob).  Workers format their own
  /// batches (DESIGN.md §12), so without this cap a straggler holding the
  /// in-order batch would let the others park unbounded preformatted
  /// output; with it a worker whose chunk does not fit blocks until the
  /// drain catches up.  0 derives a default from stream_batch (roughly
  /// (queue_depth + threads) average-sized SAM chunks, 1 MiB floor); the
  /// in-order chunk is always admitted, so any value is deadlock-free.
  std::uint64_t output_buffer_bytes = 0;
  /// Legacy output path: keep formatting (SAM rendering + accumulation
  /// scaling) inside the single ordered drain instead of the mapper
  /// workers.  Output is byte-identical either way; this exists as the A/B
  /// baseline for the drain-scaling bench and the equivalence tests, not as
  /// a supported mode.
  bool format_in_drain = false;
};

/// Counters describing one mapping run.
struct MapStats {
  std::uint64_t reads_total = 0;
  std::uint64_t reads_mapped = 0;
  std::uint64_t candidates_evaluated = 0;
  std::uint64_t sites_accumulated = 0;
  std::uint64_t dp_cells = 0;
  /// Wall-clock seconds inside the batched PHMM kernels (score_reads path
  /// only; the scalar score_read path is untimed).  Feeds the alpha-beta
  /// cost model and the Figure-4 / Table-3 benches.
  double phmm_forward_seconds = 0.0;
  double phmm_backward_seconds = 0.0;
  /// Reads re-scored with the scalar double oracle because an fp32 mapping
  /// decision was within the recompute margin (always 0 in fp64 mode).
  std::uint64_t fp32_recomputed_reads = 0;

  MapStats& operator+=(const MapStats& other) {
    reads_total += other.reads_total;
    reads_mapped += other.reads_mapped;
    candidates_evaluated += other.candidates_evaluated;
    sites_accumulated += other.sites_accumulated;
    dp_cells += other.dp_cells;
    phmm_forward_seconds += other.phmm_forward_seconds;
    phmm_backward_seconds += other.phmm_backward_seconds;
    fp32_recomputed_reads += other.fp32_recomputed_reads;
    return *this;
  }
};

}  // namespace gnumap

// The shared-memory GNUMAP-SNP pipeline: build the hash table, map every
// read through the PHMM, accumulate, then LRT-call SNPs.
//
// Mapping runs as a staged streaming pipeline (DESIGN.md §9): a decoder
// thread pulls fixed-size ReadBatches from a ReadStream into a bounded
// BatchQueue, N mapper workers score batches concurrently (thread-local
// workspaces, lock-free on the PHMM hot path), and the caller's thread
// drains results through a ReorderBuffer in input order.  Consequences:
//
//  * peak read memory is O((queue_depth + threads) x stream_batch),
//    independent of dataset size — IO overlaps the SIMD PHMM sweeps;
//  * SAM records and accumulator updates are applied in input order, so
//    output is byte-identical for any thread count (and identical to the
//    serial path).
//
// The std::vector<Read> overloads are compatibility shims over an in-memory
// VectorReadStream.  For distributed-memory execution see dist_modes.hpp.
// The mapping machinery itself lives behind core/session.hpp: a
// MappingSession owns the built index + mapper and can run many read sets
// against them; run_pipeline_stream is the one-shot wrapper.
#pragma once

#include <memory>
#include <vector>

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/core/config.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/io/read.hpp"
#include "gnumap/io/read_stream.hpp"
#include "gnumap/io/snp_writer.hpp"

namespace gnumap {

struct PipelineResult {
  std::vector<SnpCall> calls;
  MapStats stats;
  double index_seconds = 0.0;
  double map_seconds = 0.0;
  double call_seconds = 0.0;
  /// Heap bytes of the accumulation buffer (Table II / III `MEM` column
  /// counts this plus genome + index, reported separately by the bench).
  std::uint64_t accum_memory_bytes = 0;
  std::uint64_t index_memory_bytes = 0;
  /// High-water mark of reads resident in the mapping stage (decoded but
  /// not yet drained).  On the streaming path this is bounded by
  /// (2 * (queue_depth + threads) + 1) * stream_batch whatever the dataset
  /// size; the bound is asserted in tests/test_stream.cpp and reported by
  /// bench/bench_pipeline_stream.
  std::uint64_t reads_in_flight_peak = 0;
  std::uint64_t batches_decoded = 0;
  /// Per-stage wall-clock totals for the mapping phase, feeding the serve
  /// layer's per-request latency digests: decode_seconds is time inside
  /// ReadStream::next on the decoder (serial path: the calling) thread,
  /// map_stage_seconds sums scoring time across mapper workers (can exceed
  /// map_seconds when threads > 1).  The former drain_seconds is split
  /// along the worker-format refactor (DESIGN.md §12): format_seconds is
  /// output rendering (SAM bytes + accumulator-delta scaling), summed
  /// across workers like map_stage_seconds; splice_seconds is what is left
  /// on the single ordered drain (byte splicing + replaying accumulator
  /// adds).  With config.format_in_drain both land in splice_seconds, which
  /// is then the former drain_seconds.  drain_seconds() is kept as the sum
  /// for wire/digest compatibility.  Pure observers: timing adds no
  /// synchronization to the staged pipeline beyond one addition per batch
  /// per stage.
  double decode_seconds = 0.0;
  double map_stage_seconds = 0.0;
  double format_seconds = 0.0;
  double splice_seconds = 0.0;
  double drain_seconds() const { return format_seconds + splice_seconds; }
  /// Output bytes spliced by the drain (SAM on the shared-memory path;
  /// accumulator deltas are counted by the splicer's buffer budget but not
  /// here — this is bytes that reach a sink).
  std::uint64_t output_bytes = 0;
};

/// Runs the full pipeline over a read stream (the primary entry point).
/// The accumulator covers the whole padded genome.  Optionally returns the
/// final accumulator (tests, experiments inspecting the accumulated z
/// vectors) via `accum_out` and streams SAM records for every read to
/// `sam_out` (header included; unmapped reads get unmapped records), always
/// in input order.
PipelineResult run_pipeline_stream(
    const Genome& genome, ReadStream& reads, const PipelineConfig& config,
    std::unique_ptr<Accumulator>* accum_out = nullptr,
    std::ostream* sam_out = nullptr);

/// Compatibility overload: wraps `reads` in a VectorReadStream.
PipelineResult run_pipeline(const Genome& genome,
                            const std::vector<Read>& reads,
                            const PipelineConfig& config);

/// Compatibility overload of run_pipeline_stream over an in-memory vector.
PipelineResult run_pipeline_with_accumulator(
    const Genome& genome, const std::vector<Read>& reads,
    const PipelineConfig& config, std::unique_ptr<Accumulator>* accum_out,
    std::ostream* sam_out = nullptr);

}  // namespace gnumap

// The shared-memory GNUMAP-SNP pipeline: build the hash table, map every
// read through the PHMM, accumulate, then LRT-call SNPs.
//
// Shared-memory parallelism follows the read-partition pattern: each worker
// thread maps a dynamic shard of the reads into a private accumulator
// (avoiding per-position locking) and the shards are merged before calling.
// For distributed-memory execution over mpsim see dist_modes.hpp.
#pragma once

#include <memory>
#include <vector>

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/core/config.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/io/read.hpp"
#include "gnumap/io/snp_writer.hpp"

namespace gnumap {

struct PipelineResult {
  std::vector<SnpCall> calls;
  MapStats stats;
  double index_seconds = 0.0;
  double map_seconds = 0.0;
  double call_seconds = 0.0;
  /// Heap bytes of the accumulation buffer (Table II / III `MEM` column
  /// counts this plus genome + index, reported separately by the bench).
  std::uint64_t accum_memory_bytes = 0;
  std::uint64_t index_memory_bytes = 0;
};

/// Runs the full pipeline.  The accumulator covers the whole padded genome.
PipelineResult run_pipeline(const Genome& genome,
                            const std::vector<Read>& reads,
                            const PipelineConfig& config);

/// As run_pipeline, but also returns the final accumulator (for tests and
/// for experiments that inspect the accumulated z vectors directly), and
/// optionally streams SAM alignment records for every read to `sam_out`
/// (header included; unmapped reads get unmapped records).  With threads>1
/// the record order follows chunk completion, not input order.
PipelineResult run_pipeline_with_accumulator(
    const Genome& genome, const std::vector<Read>& reads,
    const PipelineConfig& config, std::unique_ptr<Accumulator>* accum_out,
    std::ostream* sam_out = nullptr);

}  // namespace gnumap

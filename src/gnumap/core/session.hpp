// A resident mapping session: the genome-derived state the pipeline builds
// once and can reuse across many read sets.
//
// The paper's pipeline amortizes one expensive hash-index build over
// millions of reads; a MappingSession makes that amortization explicit so a
// long-lived process (gnumapd, notebooks, repeated experiments) pays for
// the index exactly once.  Construction builds the HashIndex and the
// ReadMapper against an owned copy of the config; run() then executes the
// map -> accumulate -> LRT-call phases over any ReadStream with the index
// hot.  run() is const and safe to call from several threads at once: each
// call owns its accumulator, result, and staged-pipeline threads, while the
// genome, index, and mapper are only read.
//
// run_pipeline_stream (pipeline.hpp) is now a thin wrapper: construct a
// session, run it once.  Output is byte-identical between the two entry
// points by construction — they share every line of mapping code.
#pragma once

#include <memory>
#include <ostream>

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/core/config.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/core/read_mapper.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/index/hash_index.hpp"
#include "gnumap/io/read_stream.hpp"

namespace gnumap {

class MappingSession {
 public:
  /// Builds the hash index (the expensive part) and the mapper.  `genome`
  /// must outlive the session; `config` is copied.
  MappingSession(const Genome& genome, const PipelineConfig& config);

  /// Adopts a prebuilt index instead of building one — the fleet
  /// instant-start path (mmap'ed index file) and shard daemons (segment
  /// index) use this.  `index_seconds` records what producing the index
  /// cost (e.g. the mmap load time) and is reported exactly like a build
  /// time.  The index's k must match `config.index.k`.
  MappingSession(const Genome& genome, const PipelineConfig& config,
                 HashIndex&& index, double index_seconds);

  MappingSession(const MappingSession&) = delete;
  MappingSession& operator=(const MappingSession&) = delete;

  /// Maps every read of `reads`, accumulates, and LRT-calls SNPs, reusing
  /// the resident index.  Semantics and output bytes match
  /// run_pipeline_stream exactly (serial escape hatch, staged pipeline,
  /// ordered drain, SAM header + records when `sam_out` is set).
  /// Thread-safe: concurrent run() calls do not share mutable state.
  PipelineResult run(ReadStream& reads,
                     std::unique_ptr<Accumulator>* accum_out = nullptr,
                     std::ostream* sam_out = nullptr) const;

  const Genome& genome() const { return genome_; }
  const HashIndex& index() const { return index_; }
  const PipelineConfig& config() const { return config_; }
  /// The resident mapper; shard daemons drive it directly (score_reads_raw)
  /// to produce per-read partials without the run() epilogue.
  const ReadMapper& mapper() const { return mapper_; }
  /// Wall-clock cost of the index build paid at construction; reported in
  /// every run()'s PipelineResult so per-run results match the one-shot
  /// pipeline's shape.
  double index_seconds() const { return index_seconds_; }

 private:
  const Genome& genome_;
  PipelineConfig config_;  ///< owned: the mapper keeps a reference into it
  /// Declared before index_: the constructor's index-building initializer
  /// assigns it, so it must already be initialized at that point.
  double index_seconds_ = 0.0;
  HashIndex index_;
  ReadMapper mapper_;
};

}  // namespace gnumap

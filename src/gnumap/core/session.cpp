#include "gnumap/core/session.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "gnumap/core/obs_bridge.hpp"
#include "gnumap/core/sam_export.hpp"
#include "gnumap/core/snp_caller.hpp"
#include "gnumap/io/output_chunk.hpp"
#include "gnumap/io/sam.hpp"
#include "gnumap/obs/metrics.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/util/batch_queue.hpp"
#include "gnumap/util/log.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap {

namespace {

/// One batch on its way from the decoder to a mapper worker.
struct DecodedBatch {
  std::uint64_t seq = 0;  ///< batch sequence number (0, 1, 2, ... in input order)
  ReadBatch batch;
};

/// One batch a worker finished, parked until the drain reaches its seq.
/// On the default worker-format path the worker has already rendered the
/// batch into `chunk` and dropped the reads; with config.format_in_drain
/// (the legacy A/B baseline) `batch` + `scored` travel to the drain
/// unrendered and `chunk` stays empty.
struct WorkedBatch {
  std::uint64_t reads = 0;  ///< batch size, for in-flight accounting
  MapStats stats;
  io::OutputChunk chunk;
  ReadBatch batch;                              ///< legacy mode only
  std::vector<std::vector<ScoredSite>> scored;  ///< legacy mode only

  /// Byte weight for the splicer's output-buffer budget.  Legacy batches
  /// weigh nothing — their memory is bounded by the count window alone,
  /// exactly as before the refactor.
  std::uint64_t bytes() const { return chunk.bytes(); }
};

/// Everything the mapping stage mutates, shared by the serial and staged
/// paths so they drain identically.
struct DrainSink {
  const Genome& genome;
  const PipelineConfig& config;
  Accumulator& accum;
  std::ostream* sam_out;
  PipelineResult& result;
};

/// The --output-buffer-bytes default: room for one average-sized SAM chunk
/// per admission-window slot (a record is a few hundred bytes for typical
/// short reads), floored at 1 MiB so tiny configurations never throttle.
std::uint64_t output_buffer_budget(const PipelineConfig& config,
                                   int threads) {
  if (config.output_buffer_bytes != 0) return config.output_buffer_bytes;
  const std::uint64_t window =
      std::max<std::uint64_t>(1, config.queue_depth) +
      static_cast<std::uint64_t>(threads);
  return std::max<std::uint64_t>(std::uint64_t{1} << 20,
                                 window * config.stream_batch * 512);
}

/// Worker-side rendering: one scored batch becomes an OutputChunk — SAM
/// bytes plus the pre-scaled accumulator delta list, both in input order.
/// Runs concurrently on every mapper worker; touches nothing shared.
void render_chunk(const Genome& genome, const PipelineConfig& config,
                  const ReadBatch& batch,
                  const std::vector<std::vector<ScoredSite>>& scored,
                  bool want_sam, io::OutputChunk& chunk) {
  for (std::size_t r = 0; r < batch.reads.size(); ++r) {
    ReadMapper::flatten_contributions(scored[r], chunk.accum);
    if (want_sam) {
      for (const auto& record :
           to_sam_records(genome, batch.reads[r], scored[r], config)) {
        append_sam_record(chunk.sam, genome, record);
      }
    }
  }
}

/// Drain-side splice of a rendered chunk: replay the accumulator deltas in
/// order, then write() the preformatted bytes.  This is all that remains
/// on the single ordered consumer — everything it touches is free of locks
/// because only the draining thread calls it.
void splice_chunk(DrainSink& sink, WorkedBatch&& item) {
  GNUMAP_TRACE_SPAN("splice_chunk", "stream");
  Timer stage;
  io::apply_accum_deltas(sink.accum, item.chunk.accum);
  if (sink.sam_out != nullptr && !item.chunk.sam.empty()) {
    sink.sam_out->write(item.chunk.sam.data(),
                        static_cast<std::streamsize>(item.chunk.sam.size()));
    sink.result.output_bytes += item.chunk.sam.size();
  }
  sink.result.stats += item.stats;
  ++sink.result.batches_decoded;
  sink.result.splice_seconds += stage.seconds();
}

/// Legacy drain (config.format_in_drain): accumulate and format each read
/// inside the ordered consumer, exactly the pre-refactor behaviour.  Kept
/// as the A/B baseline for the drain-scaling bench; output is byte-identical
/// to the splice path.
void drain_batch_legacy(DrainSink& sink, WorkedBatch&& mapped) {
  GNUMAP_TRACE_SPAN("drain_batch", "stream");
  Timer stage;
  std::string rendered;
  for (std::size_t r = 0; r < mapped.batch.reads.size(); ++r) {
    ReadMapper::accumulate(mapped.scored[r], sink.accum);
    if (sink.sam_out != nullptr) {
      rendered.clear();
      for (const auto& record :
           to_sam_records(sink.genome, mapped.batch.reads[r],
                          mapped.scored[r], sink.config)) {
        append_sam_record(rendered, sink.genome, record);
      }
      sink.sam_out->write(rendered.data(),
                          static_cast<std::streamsize>(rendered.size()));
      sink.result.output_bytes += rendered.size();
    }
  }
  sink.result.stats += mapped.stats;
  ++sink.result.batches_decoded;
  sink.result.splice_seconds += stage.seconds();
}

/// Serial in-line path: decode -> score -> render -> splice on the calling
/// thread.  One batch is resident at a time, so the memory bound holds
/// trivially, and going through the same render/splice pair as the staged
/// path is what makes threaded output byte-identical by construction.
void map_serial(ReadStream& reads, const ReadMapper& mapper, DrainSink& sink) {
  const bool worker_format = !sink.config.format_in_drain;
  const bool want_sam = sink.sam_out != nullptr;
  MapperWorkspace ws;
  ReadBatch batch;
  Timer stage;
  for (;;) {
    stage.reset();
    const bool more = reads.next(batch);
    sink.result.decode_seconds += stage.seconds();
    if (!more) break;
    sink.result.reads_in_flight_peak =
        std::max<std::uint64_t>(sink.result.reads_in_flight_peak,
                                batch.size());
    WorkedBatch item;
    item.reads = batch.size();
    item.batch = std::move(batch);
    stage.reset();
    item.scored = mapper.score_reads(
        std::span<const Read>(item.batch.reads.data(),
                              item.batch.reads.size()),
        ws, item.stats);
    sink.result.map_stage_seconds += stage.seconds();
    if (worker_format) {
      stage.reset();
      render_chunk(sink.genome, sink.config, item.batch, item.scored,
                   want_sam, item.chunk);
      sink.result.format_seconds += stage.seconds();
      splice_chunk(sink, std::move(item));
    } else {
      drain_batch_legacy(sink, std::move(item));
    }
  }
}

/// Staged path: decoder thread -> BatchQueue -> N workers (score + render)
/// -> ChunkSplicer -> ordered drain on the calling thread.
void map_staged(ReadStream& reads, const ReadMapper& mapper, DrainSink& sink,
                int threads) {
  const PipelineConfig& config = sink.config;
  const bool worker_format = !config.format_in_drain;
  const bool want_sam = sink.sam_out != nullptr;
  const std::size_t queue_depth = std::max<std::size_t>(1, config.queue_depth);
  BatchQueue<DecodedBatch> queue(queue_depth);
  // Worst case every worker holds one batch while one more is parked per
  // in-flight slot; queue_depth + threads admits them all (the drain's next
  // batch is always admitted, so the window cannot deadlock).  The splicer
  // additionally caps the rendered bytes parked in the window — a worker
  // whose chunk does not fit blocks until the drain catches up (legacy
  // batches weigh 0, so format_in_drain keeps the pre-refactor window).
  io::ChunkSplicer<WorkedBatch> splicer(
      queue_depth + static_cast<std::size_t>(threads),
      worker_format ? output_buffer_budget(config, threads) : 0);

  auto& bytes_decoded = obs::registry().counter(
      "gnumap_stream_bytes_decoded_total",
      "Read bytes (name+bases+quals) decoded by the pipeline decoder");
  auto& queue_peak = obs::registry().gauge(
      "gnumap_stream_queue_depth_peak",
      "High-water mark of the decode->map batch queue");
  auto& batch_wait = obs::registry().histogram(
      "gnumap_stream_batch_wait_seconds", obs::default_time_buckets(),
      "Time mapper workers spend blocked waiting for a decoded batch");

  // First-exception-wins across decoder and workers; the loser stages shut
  // down via the queue/reorder close() calls.
  std::mutex error_mutex;
  std::exception_ptr error;
  auto capture_error = [&] {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!error) error = std::current_exception();
    queue.close();
    splicer.close();
  };

  // Reads decoded but not yet drained; the peak is the memory-bound test
  // hook surfaced as PipelineResult::reads_in_flight_peak.
  std::atomic<std::uint64_t> in_flight{0};
  std::atomic<std::uint64_t> in_flight_peak{0};

  // Stage-seconds accounting: the decoder and drain are single threads
  // (plain doubles), workers sum their local scoring and formatting time
  // under a mutex once at exit — no hot-path synchronization is added.
  double decode_seconds = 0.0;
  std::mutex map_stage_mutex;
  double map_stage_seconds = 0.0;
  double format_seconds = 0.0;

  std::thread decoder([&] {
    try {
      ReadBatch batch;
      std::uint64_t seq = 0;
      Timer stage;
      for (;;) {
        const double start_us = obs::trace_now_us();
        stage.reset();
        const bool more = reads.next(batch);
        decode_seconds += stage.seconds();
        if (!more) break;
        obs::record_complete("decode_batch", "stream", start_us,
                             obs::trace_now_us() - start_us, "reads",
                             static_cast<double>(batch.size()));
        bytes_decoded.inc(batch.bytes());
        const std::uint64_t now =
            in_flight.fetch_add(batch.size(), std::memory_order_relaxed) +
            batch.size();
        std::uint64_t peak = in_flight_peak.load(std::memory_order_relaxed);
        while (now > peak &&
               !in_flight_peak.compare_exchange_weak(
                   peak, now, std::memory_order_relaxed)) {
        }
        if (!queue.push(DecodedBatch{seq++, std::move(batch)})) break;
      }
    } catch (...) {
      capture_error();
    }
    queue.close();
  });

  std::atomic<int> workers_left{threads};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      double scored_seconds = 0.0;
      double rendered_seconds = 0.0;
      try {
        MapperWorkspace ws;
        for (;;) {
          Timer wait;
          auto decoded = queue.pop();
          batch_wait.observe(wait.seconds());
          if (!decoded) break;
          GNUMAP_TRACE_SPAN("map_batch", "stream");
          WorkedBatch worked;
          worked.reads = decoded->batch.size();
          worked.batch = std::move(decoded->batch);
          Timer stage;
          worked.scored = mapper.score_reads(
              std::span<const Read>(worked.batch.reads.data(),
                                    worked.batch.reads.size()),
              ws, worked.stats);
          scored_seconds += stage.seconds();
          if (worker_format) {
            GNUMAP_TRACE_SPAN("render_chunk", "stream");
            stage.reset();
            render_chunk(sink.genome, config, worked.batch, worked.scored,
                         want_sam, worked.chunk);
            rendered_seconds += stage.seconds();
            // Rendered: the decoded reads and scored sites are dead weight
            // now — drop them here instead of shipping them to the drain.
            worked.batch = ReadBatch{};
            worked.scored.clear();
            worked.scored.shrink_to_fit();
          }
          if (!splicer.push(decoded->seq, std::move(worked))) break;
        }
      } catch (...) {
        capture_error();
      }
      {
        std::lock_guard<std::mutex> lock(map_stage_mutex);
        map_stage_seconds += scored_seconds;
        format_seconds += rendered_seconds;
      }
      // The last worker out closes the splicer: every pushed batch is
      // already parked, so the drain still empties the in-order prefix.
      if (workers_left.fetch_sub(1) == 1) splicer.close();
    });
  }

  while (auto worked = splicer.pop_next()) {
    in_flight.fetch_sub(worked->reads, std::memory_order_relaxed);
    if (worker_format) {
      splice_chunk(sink, std::move(*worked));
    } else {
      drain_batch_legacy(sink, std::move(*worked));
    }
  }

  decoder.join();
  for (auto& worker : workers) worker.join();
  queue_peak.set(static_cast<double>(queue.peak_size()));
  obs::registry()
      .gauge("gnumap_stream_output_buffered_bytes_peak",
             "High-water mark of rendered output bytes parked in the "
             "splice window")
      .set(static_cast<double>(splicer.peak_pending_bytes()));
  sink.result.reads_in_flight_peak = std::max(
      sink.result.reads_in_flight_peak,
      in_flight_peak.load(std::memory_order_relaxed));
  sink.result.decode_seconds += decode_seconds;
  sink.result.map_stage_seconds += map_stage_seconds;
  sink.result.format_seconds += format_seconds;
  if (error) std::rethrow_exception(error);
}

}  // namespace

MappingSession::MappingSession(const Genome& genome,
                               const PipelineConfig& config)
    : genome_(genome),
      config_(config),
      index_([&]() -> HashIndex {
        Timer timer;
        const double start_us = obs::trace_now_us();
        HashIndex index(genome, config.index);
        index_seconds_ = timer.seconds();
        obs::record_complete("index_build", "pipeline", start_us,
                             obs::trace_now_us() - start_us, "bases",
                             static_cast<double>(genome.num_bases()));
        return index;
      }()),
      mapper_(genome_, index_, config_) {
  GNUMAP_LOG(kInfo) << "index built: " << index_.num_entries()
                    << " entries over " << genome_.num_bases() << " bases in "
                    << index_seconds_ << " s";
}

MappingSession::MappingSession(const Genome& genome,
                               const PipelineConfig& config, HashIndex&& index,
                               double index_seconds)
    : genome_(genome),
      config_(config),
      index_seconds_(index_seconds),
      index_(std::move(index)),
      mapper_(genome_, index_, config_) {
  require(index_.k() == config_.index.k,
          "MappingSession: prebuilt index k=" + std::to_string(index_.k()) +
              " disagrees with config k=" + std::to_string(config_.index.k));
  GNUMAP_LOG(kInfo) << "index adopted: " << index_.num_entries()
                    << " entries over " << genome_.num_bases()
                    << " bases (produced in " << index_seconds_ << " s)";
}

PipelineResult MappingSession::run(ReadStream& reads,
                                   std::unique_ptr<Accumulator>* accum_out,
                                   std::ostream* sam_out) const {
  PipelineResult result;
  result.index_seconds = index_seconds_;
  result.index_memory_bytes = index_.memory_bytes();

  double phase_start_us = obs::trace_now_us();
  auto accum = make_accumulator(config_.accum_kind, 0, genome_.padded_size(),
                                config_.centdisc_quantize);

  if (sam_out != nullptr) write_sam_header(*sam_out, genome_);

  Timer timer;
  const int threads = std::max(1, config_.threads);
  DrainSink sink{genome_, config_, *accum, sam_out, result};
  // The sized-stream escape hatch: spinning up the staged pipeline for a
  // handful of reads costs more than mapping them.  Unsized streams always
  // take the staged path when threads > 1 (their length is unknowable
  // before the last batch).
  const auto total = reads.size_hint();
  const bool serial =
      threads == 1 ||
      (total.has_value() &&
       *total - std::min<std::uint64_t>(*total, reads.cursor()) <
           config_.min_parallel_reads);
  if (serial) {
    map_serial(reads, mapper_, sink);
  } else {
    map_staged(reads, mapper_, sink, threads);
  }
  result.map_seconds = timer.seconds();
  obs::record_complete("map_reads", "pipeline", phase_start_us,
                       obs::trace_now_us() - phase_start_us, "reads",
                       static_cast<double>(result.stats.reads_total));
  result.accum_memory_bytes = accum->memory_bytes();
  GNUMAP_LOG(kInfo) << "mapped " << result.stats.reads_mapped << "/"
                    << result.stats.reads_total << " reads in "
                    << result.map_seconds << " s";

  timer.reset();
  phase_start_us = obs::trace_now_us();
  result.calls = call_snps(genome_, *accum, config_);
  result.call_seconds = timer.seconds();
  obs::record_complete("call_snps", "pipeline", phase_start_us,
                       obs::trace_now_us() - phase_start_us, "calls",
                       static_cast<double>(result.calls.size()));
  GNUMAP_LOG(kInfo) << "called " << result.calls.size() << " SNPs in "
                    << result.call_seconds << " s";

  publish_pipeline_result(result);
  if (accum_out != nullptr) *accum_out = std::move(accum);
  return result;
}

}  // namespace gnumap

#include "gnumap/core/session.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "gnumap/core/obs_bridge.hpp"
#include "gnumap/core/sam_export.hpp"
#include "gnumap/core/snp_caller.hpp"
#include "gnumap/io/sam.hpp"
#include "gnumap/obs/metrics.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/util/batch_queue.hpp"
#include "gnumap/util/log.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap {

namespace {

/// One batch on its way from the decoder to a mapper worker.
struct DecodedBatch {
  std::uint64_t seq = 0;  ///< batch sequence number (0, 1, 2, ... in input order)
  ReadBatch batch;
};

/// One batch a worker finished, parked until the drain reaches its seq.
struct MappedBatch {
  ReadBatch batch;
  std::vector<std::vector<ScoredSite>> scored;  ///< per read, input order
  MapStats stats;
};

/// Everything the mapping stage mutates, shared by the serial and staged
/// paths so they drain identically.
struct DrainSink {
  const Genome& genome;
  const PipelineConfig& config;
  Accumulator& accum;
  std::ostream* sam_out;
  PipelineResult& result;
};

/// Applies one scored batch in input order: accumulate, then SAM.  This is
/// the single ordered consumer — everything it touches is free of locks
/// because only the draining thread calls it.
void drain_batch(DrainSink& sink, MappedBatch&& mapped) {
  GNUMAP_TRACE_SPAN("drain_batch", "stream");
  // Only the single draining thread calls this, so the stage-seconds
  // accumulation below needs no lock.
  Timer stage;
  for (std::size_t r = 0; r < mapped.batch.reads.size(); ++r) {
    ReadMapper::accumulate(mapped.scored[r], sink.accum);
    if (sink.sam_out != nullptr) {
      for (const auto& record :
           to_sam_records(sink.genome, mapped.batch.reads[r], mapped.scored[r],
                          sink.config)) {
        write_sam_record(*sink.sam_out, sink.genome, record);
      }
    }
  }
  sink.result.stats += mapped.stats;
  ++sink.result.batches_decoded;
  sink.result.drain_seconds += stage.seconds();
}

/// Serial in-line path: decode -> score -> drain on the calling thread.
/// One batch is resident at a time, so the memory bound holds trivially.
void map_serial(ReadStream& reads, const ReadMapper& mapper, DrainSink& sink) {
  MapperWorkspace ws;
  ReadBatch batch;
  Timer stage;
  for (;;) {
    stage.reset();
    const bool more = reads.next(batch);
    sink.result.decode_seconds += stage.seconds();
    if (!more) break;
    sink.result.reads_in_flight_peak =
        std::max<std::uint64_t>(sink.result.reads_in_flight_peak,
                                batch.size());
    MappedBatch mapped;
    mapped.batch = std::move(batch);
    stage.reset();
    mapped.scored = mapper.score_reads(
        std::span<const Read>(mapped.batch.reads.data(),
                              mapped.batch.reads.size()),
        ws, mapped.stats);
    sink.result.map_stage_seconds += stage.seconds();
    drain_batch(sink, std::move(mapped));
  }
}

/// Staged path: decoder thread -> BatchQueue -> N workers -> ReorderBuffer
/// -> ordered drain on the calling thread.
void map_staged(ReadStream& reads, const ReadMapper& mapper, DrainSink& sink,
                int threads) {
  const PipelineConfig& config = sink.config;
  const std::size_t queue_depth = std::max<std::size_t>(1, config.queue_depth);
  BatchQueue<DecodedBatch> queue(queue_depth);
  // Worst case every worker holds one batch while one more is parked per
  // in-flight slot; queue_depth + threads admits them all (the drain's next
  // batch is always admitted, so the window cannot deadlock).
  ReorderBuffer<MappedBatch> reorder(queue_depth +
                                     static_cast<std::size_t>(threads));

  auto& bytes_decoded = obs::registry().counter(
      "gnumap_stream_bytes_decoded_total",
      "Read bytes (name+bases+quals) decoded by the pipeline decoder");
  auto& queue_peak = obs::registry().gauge(
      "gnumap_stream_queue_depth_peak",
      "High-water mark of the decode->map batch queue");
  auto& batch_wait = obs::registry().histogram(
      "gnumap_stream_batch_wait_seconds", obs::default_time_buckets(),
      "Time mapper workers spend blocked waiting for a decoded batch");

  // First-exception-wins across decoder and workers; the loser stages shut
  // down via the queue/reorder close() calls.
  std::mutex error_mutex;
  std::exception_ptr error;
  auto capture_error = [&] {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!error) error = std::current_exception();
    queue.close();
    reorder.close();
  };

  // Reads decoded but not yet drained; the peak is the memory-bound test
  // hook surfaced as PipelineResult::reads_in_flight_peak.
  std::atomic<std::uint64_t> in_flight{0};
  std::atomic<std::uint64_t> in_flight_peak{0};

  // Stage-seconds accounting: the decoder and drain are single threads
  // (plain doubles), workers sum their local scoring time under a mutex
  // once at exit — no hot-path synchronization is added.
  double decode_seconds = 0.0;
  std::mutex map_stage_mutex;
  double map_stage_seconds = 0.0;

  std::thread decoder([&] {
    try {
      ReadBatch batch;
      std::uint64_t seq = 0;
      Timer stage;
      for (;;) {
        const double start_us = obs::trace_now_us();
        stage.reset();
        const bool more = reads.next(batch);
        decode_seconds += stage.seconds();
        if (!more) break;
        obs::record_complete("decode_batch", "stream", start_us,
                             obs::trace_now_us() - start_us, "reads",
                             static_cast<double>(batch.size()));
        bytes_decoded.inc(batch.bytes());
        const std::uint64_t now =
            in_flight.fetch_add(batch.size(), std::memory_order_relaxed) +
            batch.size();
        std::uint64_t peak = in_flight_peak.load(std::memory_order_relaxed);
        while (now > peak &&
               !in_flight_peak.compare_exchange_weak(
                   peak, now, std::memory_order_relaxed)) {
        }
        if (!queue.push(DecodedBatch{seq++, std::move(batch)})) break;
      }
    } catch (...) {
      capture_error();
    }
    queue.close();
  });

  std::atomic<int> workers_left{threads};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      double scored_seconds = 0.0;
      try {
        MapperWorkspace ws;
        for (;;) {
          Timer wait;
          auto item = queue.pop();
          batch_wait.observe(wait.seconds());
          if (!item) break;
          GNUMAP_TRACE_SPAN("map_batch", "stream");
          MappedBatch mapped;
          mapped.batch = std::move(item->batch);
          Timer stage;
          mapped.scored = mapper.score_reads(
              std::span<const Read>(mapped.batch.reads.data(),
                                    mapped.batch.reads.size()),
              ws, mapped.stats);
          scored_seconds += stage.seconds();
          if (!reorder.push(item->seq, std::move(mapped))) break;
        }
      } catch (...) {
        capture_error();
      }
      {
        std::lock_guard<std::mutex> lock(map_stage_mutex);
        map_stage_seconds += scored_seconds;
      }
      // The last worker out closes the reorder buffer: every pushed batch
      // is already parked, so the drain still empties the in-order prefix.
      if (workers_left.fetch_sub(1) == 1) reorder.close();
    });
  }

  while (auto mapped = reorder.pop_next()) {
    in_flight.fetch_sub(mapped->batch.size(), std::memory_order_relaxed);
    drain_batch(sink, std::move(*mapped));
  }

  decoder.join();
  for (auto& worker : workers) worker.join();
  queue_peak.set(static_cast<double>(queue.peak_size()));
  sink.result.reads_in_flight_peak = std::max(
      sink.result.reads_in_flight_peak,
      in_flight_peak.load(std::memory_order_relaxed));
  sink.result.decode_seconds += decode_seconds;
  sink.result.map_stage_seconds += map_stage_seconds;
  if (error) std::rethrow_exception(error);
}

}  // namespace

MappingSession::MappingSession(const Genome& genome,
                               const PipelineConfig& config)
    : genome_(genome),
      config_(config),
      index_([&]() -> HashIndex {
        Timer timer;
        const double start_us = obs::trace_now_us();
        HashIndex index(genome, config.index);
        index_seconds_ = timer.seconds();
        obs::record_complete("index_build", "pipeline", start_us,
                             obs::trace_now_us() - start_us, "bases",
                             static_cast<double>(genome.num_bases()));
        return index;
      }()),
      mapper_(genome_, index_, config_) {
  GNUMAP_LOG(kInfo) << "index built: " << index_.num_entries()
                    << " entries over " << genome_.num_bases() << " bases in "
                    << index_seconds_ << " s";
}

PipelineResult MappingSession::run(ReadStream& reads,
                                   std::unique_ptr<Accumulator>* accum_out,
                                   std::ostream* sam_out) const {
  PipelineResult result;
  result.index_seconds = index_seconds_;
  result.index_memory_bytes = index_.memory_bytes();

  double phase_start_us = obs::trace_now_us();
  auto accum = make_accumulator(config_.accum_kind, 0, genome_.padded_size(),
                                config_.centdisc_quantize);

  if (sam_out != nullptr) write_sam_header(*sam_out, genome_);

  Timer timer;
  const int threads = std::max(1, config_.threads);
  DrainSink sink{genome_, config_, *accum, sam_out, result};
  // The sized-stream escape hatch: spinning up the staged pipeline for a
  // handful of reads costs more than mapping them.  Unsized streams always
  // take the staged path when threads > 1 (their length is unknowable
  // before the last batch).
  const auto total = reads.size_hint();
  const bool serial =
      threads == 1 ||
      (total.has_value() &&
       *total - std::min<std::uint64_t>(*total, reads.cursor()) <
           config_.min_parallel_reads);
  if (serial) {
    map_serial(reads, mapper_, sink);
  } else {
    map_staged(reads, mapper_, sink, threads);
  }
  result.map_seconds = timer.seconds();
  obs::record_complete("map_reads", "pipeline", phase_start_us,
                       obs::trace_now_us() - phase_start_us, "reads",
                       static_cast<double>(result.stats.reads_total));
  result.accum_memory_bytes = accum->memory_bytes();
  GNUMAP_LOG(kInfo) << "mapped " << result.stats.reads_mapped << "/"
                    << result.stats.reads_total << " reads in "
                    << result.map_seconds << " s";

  timer.reset();
  phase_start_us = obs::trace_now_us();
  result.calls = call_snps(genome_, *accum, config_);
  result.call_seconds = timer.seconds();
  obs::record_complete("call_snps", "pipeline", phase_start_us,
                       obs::trace_now_us() - phase_start_us, "calls",
                       static_cast<double>(result.calls.size()));
  GNUMAP_LOG(kInfo) << "called " << result.calls.size() << " SNPs in "
                    << result.call_seconds << " s";

  publish_pipeline_result(result);
  if (accum_out != nullptr) *accum_out = std::move(accum);
  return result;
}

}  // namespace gnumap

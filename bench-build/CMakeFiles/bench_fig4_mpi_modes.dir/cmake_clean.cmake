file(REMOVE_RECURSE
  "../bench/bench_fig4_mpi_modes"
  "../bench/bench_fig4_mpi_modes.pdb"
  "CMakeFiles/bench_fig4_mpi_modes.dir/bench_fig4_mpi_modes.cpp.o"
  "CMakeFiles/bench_fig4_mpi_modes.dir/bench_fig4_mpi_modes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mpi_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

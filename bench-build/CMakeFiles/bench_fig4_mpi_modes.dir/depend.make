# Empty dependencies file for bench_fig4_mpi_modes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_table2_memory"
  "../bench/bench_table2_memory.pdb"
  "CMakeFiles/bench_table2_memory.dir/bench_table2_memory.cpp.o"
  "CMakeFiles/bench_table2_memory.dir/bench_table2_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_table3_optimizations"
  "../bench/bench_table3_optimizations.pdb"
  "CMakeFiles/bench_table3_optimizations.dir/bench_table3_optimizations.cpp.o"
  "CMakeFiles/bench_table3_optimizations.dir/bench_table3_optimizations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

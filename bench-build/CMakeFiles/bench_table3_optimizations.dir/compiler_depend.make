# Empty compiler generated dependencies file for bench_table3_optimizations.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_coverage.cpp" "bench-build/CMakeFiles/bench_ablation_coverage.dir/bench_ablation_coverage.cpp.o" "gcc" "bench-build/CMakeFiles/bench_ablation_coverage.dir/bench_ablation_coverage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gnumap_baseline.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_sim.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_serve.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_core.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_index.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_phmm.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_accum.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_stats.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_mpsim.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_io.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_genome.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_obs.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_fault.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gnumap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

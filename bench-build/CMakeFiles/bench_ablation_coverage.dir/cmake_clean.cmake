file(REMOVE_RECURSE
  "../bench/bench_ablation_coverage"
  "../bench/bench_ablation_coverage.pdb"
  "CMakeFiles/bench_ablation_coverage.dir/bench_ablation_coverage.cpp.o"
  "CMakeFiles/bench_ablation_coverage.dir/bench_ablation_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

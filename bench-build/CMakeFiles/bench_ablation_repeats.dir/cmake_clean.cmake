file(REMOVE_RECURSE
  "../bench/bench_ablation_repeats"
  "../bench/bench_ablation_repeats.pdb"
  "CMakeFiles/bench_ablation_repeats.dir/bench_ablation_repeats.cpp.o"
  "CMakeFiles/bench_ablation_repeats.dir/bench_ablation_repeats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_repeats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

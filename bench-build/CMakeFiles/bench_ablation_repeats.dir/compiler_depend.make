# Empty compiler generated dependencies file for bench_ablation_repeats.
# This may be replaced when dependencies are built.

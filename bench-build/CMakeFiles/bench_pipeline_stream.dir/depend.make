# Empty dependencies file for bench_pipeline_stream.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_pipeline_stream"
  "../bench/bench_pipeline_stream.pdb"
  "CMakeFiles/bench_pipeline_stream.dir/bench_pipeline_stream.cpp.o"
  "CMakeFiles/bench_pipeline_stream.dir/bench_pipeline_stream.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

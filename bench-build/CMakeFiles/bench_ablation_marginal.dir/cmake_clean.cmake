file(REMOVE_RECURSE
  "../bench/bench_ablation_marginal"
  "../bench/bench_ablation_marginal.pdb"
  "CMakeFiles/bench_ablation_marginal.dir/bench_ablation_marginal.cpp.o"
  "CMakeFiles/bench_ablation_marginal.dir/bench_ablation_marginal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_marginal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

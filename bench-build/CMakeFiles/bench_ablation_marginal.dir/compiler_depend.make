# Empty compiler generated dependencies file for bench_ablation_marginal.
# This may be replaced when dependencies are built.

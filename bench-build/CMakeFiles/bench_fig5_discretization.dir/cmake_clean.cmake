file(REMOVE_RECURSE
  "../bench/bench_fig5_discretization"
  "../bench/bench_fig5_discretization.pdb"
  "CMakeFiles/bench_fig5_discretization.dir/bench_fig5_discretization.cpp.o"
  "CMakeFiles/bench_fig5_discretization.dir/bench_fig5_discretization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_discretization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig5_discretization.
# This may be replaced when dependencies are built.

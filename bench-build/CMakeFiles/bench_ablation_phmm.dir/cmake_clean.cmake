file(REMOVE_RECURSE
  "../bench/bench_ablation_phmm"
  "../bench/bench_ablation_phmm.pdb"
  "CMakeFiles/bench_ablation_phmm.dir/bench_ablation_phmm.cpp.o"
  "CMakeFiles/bench_ablation_phmm.dir/bench_ablation_phmm.cpp.o.d"
  "CMakeFiles/bench_ablation_phmm.dir/bench_main.cpp.o"
  "CMakeFiles/bench_ablation_phmm.dir/bench_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_phmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

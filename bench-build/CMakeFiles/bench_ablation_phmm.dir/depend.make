# Empty dependencies file for bench_ablation_phmm.
# This may be replaced when dependencies are built.

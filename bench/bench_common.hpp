// Shared workload construction for the paper-reproduction benches.
//
// The paper's evaluation: human chrX (155 Mbp), dbSNP-derived catalog of
// 14,501 evenly spaced SNPs (~1 per 10.7 kbp), 31M 62-bp MetaSim reads at
// ~12x coverage.  The benches scale the genome down (single-core host) but
// keep the same SNP density, read length, coverage, and error profile, so
// the reported *shapes* are comparable.  Every bench prints its scaled
// parameters next to the paper's originals.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "gnumap/core/config.hpp"
#include "gnumap/genome/genome.hpp"
#include "gnumap/io/read.hpp"
#include "gnumap/io/snp_catalog.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"

namespace gnumap::bench {

/// Paper constants the workloads scale from.
inline constexpr double kPaperSnpSpacing = 153.0e6 / 14501.0;  // ~10.6 kbp
inline constexpr std::uint32_t kPaperReadLength = 62;
inline constexpr double kPaperCoverage = 12.0;

struct Workload {
  Genome reference;
  SnpCatalog catalog;
  std::vector<Read> reads;
  std::uint64_t genome_length = 0;
  double coverage = 0.0;
};

struct WorkloadOptions {
  std::uint64_t genome_length = 2'000'000;
  double coverage = kPaperCoverage;
  double repeat_fraction = 0.03;   // keep some repeats: the paper stresses them
  double repeat_divergence = 0.02; // per-base divergence between copies
  double n_fraction = 0.001;
  std::uint64_t seed = 20120521;
};

inline Workload make_workload(const WorkloadOptions& options) {
  Workload w;
  w.genome_length = options.genome_length;
  w.coverage = options.coverage;

  ReferenceGenOptions ref_options;
  ref_options.length = options.genome_length;
  ref_options.repeat_fraction = options.repeat_fraction;
  ref_options.repeat_divergence = options.repeat_divergence;
  ref_options.n_fraction = options.n_fraction;
  ref_options.seed = options.seed;
  w.reference = generate_reference(ref_options);

  CatalogGenOptions catalog_options;
  catalog_options.count = std::max<std::uint64_t>(
      10, static_cast<std::uint64_t>(
              static_cast<double>(options.genome_length) / kPaperSnpSpacing));
  catalog_options.seed = options.seed + 1;
  w.catalog = generate_catalog(w.reference, catalog_options);

  const Genome individual = apply_catalog(w.reference, w.catalog);
  ReadSimOptions sim_options;
  sim_options.read_length = kPaperReadLength;
  sim_options.coverage = options.coverage;
  sim_options.seed = options.seed + 2;
  w.reads = strip_metadata(simulate_reads(individual, sim_options));
  return w;
}

inline PipelineConfig default_pipeline_config() {
  PipelineConfig config;
  config.index.k = 10;  // the paper's default mer size
  config.alpha = 1e-4;
  config.min_coverage = 3.0;
  return config;
}

/// Prints an aligned row of a plain-text table.
inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace gnumap::bench

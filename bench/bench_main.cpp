// Custom google-benchmark main for the ablation benches: peels off the
// shared observability flags (--trace-out / --metrics-out) before gbench
// parses the remainder, and stamps the resolved SIMD dispatch level into
// the export context so a --metrics-out file carries the same identity
// fields (host, cpus, build, SIMD level) as the committed BENCH_*.json
// gbench outputs.
#include <benchmark/benchmark.h>

#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/phmm/batched.hpp"

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  gnumap::obs::set_trace_metadata(
      "simd_level",
      gnumap::phmm::simd_level_name(gnumap::phmm::resolve_simd_level()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

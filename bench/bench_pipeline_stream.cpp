// bench_pipeline_stream — monolithic (load-then-map) vs streaming pipeline.
//
// For three read counts, runs the same FASTQ workload two ways:
//
//  * monolithic: read_fastq_file into one std::vector<Read>, then map — the
//    pre-streaming shape, peak read memory O(dataset);
//  * streaming:  FastqReadStream pulled by the staged pipeline — peak read
//    memory O((queue_depth + threads) x stream_batch), IO overlapping the
//    SIMD PHMM sweeps.
//
// A second section measures drain scaling: the same SAM-heavy workload at
// several thread counts, formatted the legacy way (inside the drain,
// config.format_in_drain) versus in the mapper workers (the PR 9 output
// path, where the drain only splices bytes).  SAM goes to a byte-counting
// null stream so rendering cost is measured without disk noise.  The split
// timings (format_seconds / splice_seconds) land in BENCH_pipeline.json;
// the refactor's claim is splice << the legacy drain at high thread counts.
//
// Emits BENCH_pipeline.json (reads/sec, peak RSS, in-flight peak per run)
// next to the table it prints.  Peak RSS is VmHWM from /proc/self/status,
// reset between phases via /proc/self/clear_refs where the kernel allows;
// when the reset is unavailable VmHWM is monotonic and later phases inherit
// earlier peaks (flagged in the JSON).
//
// Usage: bench_pipeline_stream [threads] [genome_bp]
//        (--metrics-out FILE / --trace-out FILE via the common obs flags)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/io/fastq.hpp"
#include "gnumap/io/read_stream.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/util/timer.hpp"

using namespace gnumap;

namespace {

std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::uint64_t kb = 0;
      fields >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

/// Resets the VmHWM high-water mark to the current RSS.  Returns false when
/// the kernel refuses (then VmHWM carries earlier phases' peaks forward).
bool reset_peak_rss() {
  std::ofstream clear("/proc/self/clear_refs");
  if (!clear) return false;
  clear << "5";
  return static_cast<bool>(clear);
}

struct RunResult {
  std::string mode;
  std::uint64_t reads = 0;
  double seconds = 0.0;
  std::uint64_t peak_rss = 0;
  std::uint64_t in_flight_peak = 0;
  std::uint64_t calls = 0;
};

/// Swallows SAM bytes while counting them: rendering cost without disk IO.
class CountingNullBuf : public std::streambuf {
 public:
  std::uint64_t bytes = 0;

 protected:
  int overflow(int ch) override {
    ++bytes;
    return ch;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    bytes += static_cast<std::uint64_t>(n);
    return n;
  }
};

struct DrainRun {
  int threads = 0;
  std::string mode;
  std::uint64_t reads = 0;
  double seconds = 0.0;
  double format_seconds = 0.0;
  double splice_seconds = 0.0;
  std::uint64_t output_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t genome_bp =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200'000;
  const double coverages[] = {3.0, 6.0, 12.0};

  PipelineConfig config = bench::default_pipeline_config();
  config.threads = threads;

  const bool rss_resets = reset_peak_rss();
  std::printf("pipeline stream bench: %.2f Mbp genome, threads=%d, "
              "batch=%u, queue_depth=%u%s\n\n",
              static_cast<double>(genome_bp) / 1e6, threads,
              config.stream_batch, config.queue_depth,
              rss_resets ? "" : " (VmHWM reset unavailable: RSS is a "
                                "monotonic upper bound)");
  std::printf("%-9s %-11s %10s %9s %12s %14s %7s\n", "reads", "mode",
              "seconds", "reads/s", "peak RSS", "in-flight peak", "calls");
  bench::print_rule();

  std::vector<RunResult> results;
  for (const double coverage : coverages) {
    bench::WorkloadOptions options;
    options.genome_length = genome_bp;
    options.coverage = coverage;
    const bench::Workload w = bench::make_workload(options);

    // One FASTQ file feeds both shapes, like a real run would.
    const std::string fastq_path =
        "bench_stream_" + std::to_string(w.reads.size()) + ".fastq";
    {
      std::ofstream out(fastq_path);
      write_fastq(out, w.reads);
    }

    for (const bool streaming : {false, true}) {
      reset_peak_rss();
      RunResult run;
      run.mode = streaming ? "streaming" : "monolithic";
      run.reads = w.reads.size();
      Timer timer;
      if (streaming) {
        FastqReadStream stream(fastq_path, config.stream_batch);
        const auto result =
            run_pipeline_stream(w.reference, stream, config);
        run.in_flight_peak = result.reads_in_flight_peak;
        run.calls = result.calls.size();
      } else {
        const auto reads = read_fastq_file(fastq_path);
        const auto result = run_pipeline(w.reference, reads, config);
        run.in_flight_peak = result.reads_in_flight_peak;
        run.calls = result.calls.size();
      }
      run.seconds = timer.seconds();
      run.peak_rss = peak_rss_bytes();
      std::printf("%-9zu %-11s %9.2fs %9.0f %9.1f MB %14llu %7llu\n",
                  static_cast<std::size_t>(run.reads), run.mode.c_str(),
                  run.seconds,
                  static_cast<double>(run.reads) / run.seconds,
                  static_cast<double>(run.peak_rss) / (1024.0 * 1024.0),
                  static_cast<unsigned long long>(run.in_flight_peak),
                  static_cast<unsigned long long>(run.calls));
      results.push_back(run);
    }
    std::remove(fastq_path.c_str());
  }

  // --- Drain scaling: who pays for output formatting? ---------------------
  // SAM rendering (with per-record Viterbi) dominates the drain; the legacy
  // shape serializes it behind one thread, the worker shape leaves only the
  // byte splice there.
  std::printf("\ndrain scaling (SAM to null sink, %.2f Mbp genome)\n",
              static_cast<double>(genome_bp) / 1e6);
  std::printf("%-8s %-13s %9s %9s %10s %10s %12s\n", "threads", "mode",
              "seconds", "reads/s", "format s", "splice s", "output MB");
  bench::print_rule();

  bench::WorkloadOptions drain_options;
  drain_options.genome_length = genome_bp;
  drain_options.coverage = 12.0;
  const bench::Workload drain_w = bench::make_workload(drain_options);

  std::vector<DrainRun> drain_runs;
  for (const int t : {1, 2, 4, 8}) {
    for (const bool worker_format : {false, true}) {
      PipelineConfig drain_config = bench::default_pipeline_config();
      drain_config.threads = t;
      drain_config.min_parallel_reads = 0;  // staged path at every size
      drain_config.format_in_drain = !worker_format;

      CountingNullBuf null_buf;
      std::ostream sam_sink(&null_buf);
      Timer timer;
      const auto result = run_pipeline_with_accumulator(
          drain_w.reference, drain_w.reads, drain_config, nullptr, &sam_sink);
      DrainRun run;
      run.threads = t;
      run.mode = worker_format ? "worker-format" : "legacy-drain";
      run.reads = drain_w.reads.size();
      run.seconds = timer.seconds();
      run.format_seconds = result.format_seconds;
      run.splice_seconds = result.splice_seconds;
      run.output_bytes = result.output_bytes;
      std::printf("%-8d %-13s %8.2fs %9.0f %9.3fs %9.3fs %9.1f MB\n", t,
                  run.mode.c_str(), run.seconds,
                  static_cast<double>(run.reads) / run.seconds,
                  run.format_seconds, run.splice_seconds,
                  static_cast<double>(run.output_bytes) / (1024.0 * 1024.0));
      drain_runs.push_back(run);
    }
  }

  std::ofstream json("BENCH_pipeline.json");
  json << "{\n"
       << "  \"bench\": \"pipeline_stream\",\n"
       << "  \"genome_bp\": " << genome_bp << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"stream_batch\": " << config.stream_batch << ",\n"
       << "  \"queue_depth\": " << config.queue_depth << ",\n"
       << "  \"rss_reset_supported\": " << (rss_resets ? "true" : "false")
       << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& run = results[i];
    json << "    {\"reads\": " << run.reads << ", \"mode\": \"" << run.mode
         << "\", \"seconds\": " << run.seconds << ", \"reads_per_sec\": "
         << static_cast<double>(run.reads) / run.seconds
         << ", \"peak_rss_bytes\": " << run.peak_rss
         << ", \"reads_in_flight_peak\": " << run.in_flight_peak
         << ", \"calls\": " << run.calls << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"drain_scaling\": [\n";
  for (std::size_t i = 0; i < drain_runs.size(); ++i) {
    const DrainRun& run = drain_runs[i];
    json << "    {\"threads\": " << run.threads << ", \"mode\": \""
         << run.mode << "\", \"reads\": " << run.reads
         << ", \"seconds\": " << run.seconds << ", \"reads_per_sec\": "
         << static_cast<double>(run.reads) / run.seconds
         << ", \"format_seconds\": " << run.format_seconds
         << ", \"splice_seconds\": " << run.splice_seconds
         << ", \"output_bytes\": " << run.output_bytes << "}"
         << (i + 1 < drain_runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_pipeline.json\n");
  return 0;
}
